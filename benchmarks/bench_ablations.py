"""Ablations — measure the contribution of each design decision.

Beyond the paper's own evaluation: switch off Algorithm 1, sweep δ̂ and
the block geometry, couple the congestion control, and vary the MPTCP
baseline's scheduler, all on Table I case 4 (the hardest loss-ramp case).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import bench_duration
from repro.experiments.ablations import (
    ablate_allocation,
    ablate_block_size,
    ablate_congestion_coupling,
    ablate_delta_hat,
    ablate_mptcp_scheduler,
)


def _summary_line(name, result):
    summary = result.summary
    return (
        f"{name:>18}: goodput {summary['goodput_mbytes_per_s']:.3f} MB/s, "
        f"delay {summary['mean_block_delay_ms']:.0f} ms, "
        f"jitter {summary['jitter_ms']:.1f} ms"
    )


def test_ablation_eat_vs_greedy_allocation(benchmark, report):
    duration = min(bench_duration(), 40.0)

    def run():
        return {
            case_id: ablate_allocation(case_id=case_id, duration_s=duration)
            for case_id in (4, 5)
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Algorithm 1 (EAT) vs greedy vs HMTP-like stop-and-wait"]
    for case_id, modes in results.items():
        for name, result in modes.items():
            lines.append(
                f"{_summary_line(f'case{case_id}/{name}', result)}, "
                f"redundancy {result.extras['redundancy_ratio']:.2f}"
            )
    # HMTP's stop-and-wait (send until the decode confirmation arrives)
    # wastes an order of magnitude in redundancy — the paper's Section II
    # criticism, quantified.
    stopwait = results[4]["stopwait"]
    eat = results[4]["eat"]
    assert stopwait.extras["redundancy_ratio"] > 5 * eat.extras["redundancy_ratio"]
    assert (
        eat.summary["goodput_mbytes_per_s"]
        > 3 * stopwait.summary["goodput_mbytes_per_s"]
    )
    # The EAT allocator pays off where path delays diverge (case 5:
    # subflow 2 is fast but lossy): higher goodput and lower block delay
    # because urgent symbols ride the path that arrives first. On
    # delay-equal paths (case 4) the two allocators are near-identical.
    case5 = results[5]
    assert (
        case5["eat"].summary["goodput_mbytes_per_s"]
        >= case5["greedy"].summary["goodput_mbytes_per_s"]
    )
    assert (
        case5["eat"].summary["mean_block_delay_ms"]
        <= case5["greedy"].summary["mean_block_delay_ms"]
    )
    case4 = results[4]
    assert case4["eat"].summary["goodput_mbytes_per_s"] == pytest.approx(
        case4["greedy"].summary["goodput_mbytes_per_s"], rel=0.15
    )
    report("ablation_allocation", lines)


def test_ablation_delta_hat_tradeoff(benchmark, report):
    duration = min(bench_duration(), 30.0)
    deltas = [1e-1, 1e-2, 1e-3, 1e-5]
    results = benchmark.pedantic(
        lambda: ablate_delta_hat(deltas=deltas, duration_s=duration),
        rounds=1,
        iterations=1,
    )
    lines = ["δ̂ sweep (redundancy vs reliability), case 4"]
    redundancies = []
    for delta in deltas:
        result = results[delta]
        redundancy = result.extras["redundancy_ratio"]
        redundancies.append(redundancy)
        lines.append(
            f"{_summary_line(f'δ̂={delta:g}', result)}, redundancy {redundancy:.3f}"
        )
    # Stricter delta-hat -> monotonically more redundancy.
    assert redundancies == sorted(redundancies)
    report("ablation_delta_hat", lines)


def test_ablation_block_size(benchmark, report):
    duration = min(bench_duration(), 30.0)
    ks = [64, 128, 256, 512]
    results = benchmark.pedantic(
        lambda: ablate_block_size(ks=ks, duration_s=duration), rounds=1, iterations=1
    )
    lines = ["block geometry sweep (8 KiB block, varying k̂), case 4"]
    for k in ks:
        result = results[k]
        lines.append(
            f"{_summary_line(f'k={k}', result)}, "
            f"redundancy {result.extras['redundancy_ratio']:.3f}"
        )
    # Larger k amortises the log2(1/δ̂) margin: redundancy must shrink.
    assert (
        results[512].extras["redundancy_ratio"]
        < results[64].extras["redundancy_ratio"]
    )
    report("ablation_block_size", lines)


def test_ablation_congestion_coupling(benchmark, report):
    duration = min(bench_duration(), 30.0)
    results = benchmark.pedantic(
        lambda: ablate_congestion_coupling(duration_s=duration), rounds=1, iterations=1
    )
    lines = [
        "uncoupled Reno vs LIA coupling on disjoint paths, case 4",
        "(paper Section III-A: the choice should not influence results much)",
    ]
    for name, result in results.items():
        lines.append(_summary_line(name, result))
    reno = results["reno"].summary["goodput_mbytes_per_s"]
    lia = results["lia"].summary["goodput_mbytes_per_s"]
    assert lia > 0.5 * reno  # same ballpark on disjoint paths
    report("ablation_congestion", lines)


def test_ablation_buffer_size(benchmark, report):
    from repro.experiments.ablations import ablate_buffer_size
    from repro.metrics.stats import mean

    duration = 80.0 if bench_duration() < 30.0 else 120.0
    results = benchmark.pedantic(
        lambda: ablate_buffer_size(duration_s=duration), rounds=1, iterations=1
    )

    def during_rate(result, duration_s):
        lo, hi = duration_s / 4, 3 * duration_s / 4
        return mean([v for t, v in result.goodput_series if lo <= t < hi])

    lines = [
        "receive-buffer sensitivity under the 35% loss surge",
        "(head-of-line blocking binds only when the buffer is scarce)",
        f"{'buffer':>10} {'FMTCP during':>14} {'MPTCP during':>14} {'gap':>6}",
    ]
    gaps = {}
    for blocks, pair in results.items():
        fmtcp_rate = during_rate(pair["fmtcp"], duration)
        mptcp_rate = during_rate(pair["mptcp"], duration)
        gaps[blocks] = fmtcp_rate / max(mptcp_rate, 1e-9)
        lines.append(
            f"{blocks * 8:>8}KB {fmtcp_rate:>14.3f} {mptcp_rate:>14.3f} "
            f"{gaps[blocks]:>6.2f}"
        )
    # Scarcer buffers hurt MPTCP (HoL) more than FMTCP.
    smallest, largest = min(gaps), max(gaps)
    assert gaps[smallest] > gaps[largest]
    report("ablation_buffer_size", lines)


def test_ablation_mptcp_scheduler(benchmark, report):
    duration = min(bench_duration(), 30.0)
    results = benchmark.pedantic(
        lambda: ablate_mptcp_scheduler(duration_s=duration), rounds=1, iterations=1
    )
    lines = ["MPTCP baseline scheduler variants, case 4"]
    for name, result in results.items():
        lines.append(
            f"{_summary_line(name, result)}, "
            f"retx {result.extras['chunks_retransmitted']}, "
            f"reinjected {result.extras['chunks_reinjected']}"
        )
    assert results["minrtt+reinject"].extras["chunks_reinjected"] > 0
    # Even the NSDI'12-style ORP baseline does not close the gap to FMTCP
    # (compare against the fig3/fig5 FMTCP numbers for case 4).
    orp = results["minrtt+orp"].summary["mean_block_delay_ms"]
    plain = results["minrtt"].summary["mean_block_delay_ms"]
    assert orp <= plain * 1.05, "ORP should not make delay worse"
    report("ablation_mptcp_scheduler", lines)
