"""Section IV-C analysis — SEDT (Eq. 13), Theorem 2 and Theorem 3.

Monte-Carlo cross-check of the SEDT closed form, the quality ordering it
induces over the Table I paths, and the delivery-time-ratio comparison
that closes the section: FMTCP's bound beats MPTCP's ratio m once path
diversity exceeds m* = 1 + 2(1-p1)/(p2(1+p1)).
"""

from __future__ import annotations

import random

from repro.analysis.allocation import (
    fmtcp_beats_mptcp_condition,
    mptcp_delivery_ratio,
    theorem3_ratio_bound,
)
from repro.core.estimators import sedt
from repro.workloads.scenarios import TABLE1_CASES


def simulate_sedt(rtt, loss, rto, trials=50_000, seed=3):
    """Empirical single-path expected delivery time (Definition 8)."""
    rng = random.Random(seed)
    total = 0.0
    for __ in range(trials):
        elapsed = 0.0
        while rng.random() < loss:
            elapsed += rto  # timeout, send again
        total += elapsed + rtt / 2.0
    return total / trials


def test_sedt_closed_form_matches_simulation(benchmark, report):
    points = [(0.2, 0.02, 0.2), (0.2, 0.15, 0.25), (0.3, 0.10, 0.4), (0.05, 0.10, 0.2)]

    def run():
        return [
            (rtt, loss, rto, sedt(rtt, loss, rto), simulate_sedt(rtt, loss, rto))
            for rtt, loss, rto in points
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "SEDT (Eq. 13) closed form vs Monte-Carlo",
        f"{'rtt':>6} {'loss':>6} {'rto':>6} {'eq13':>8} {'empirical':>10}",
    ]
    for rtt, loss, rto, closed, empirical in rows:
        lines.append(
            f"{rtt:>6.2f} {loss:>6.2f} {rto:>6.2f} {closed:>8.4f} {empirical:>10.4f}"
        )
        assert abs(empirical - closed) / closed < 0.03
    report("analysis_sedt", lines)


def test_theorem2_ordering_on_table1_paths(benchmark, report):
    """SEDT must rank the Table I variants consistently with quality."""

    def run():
        rows = []
        for case in TABLE1_CASES:
            rtt = 2 * case.delay_s
            rows.append((case, sedt(rtt, case.loss_rate, max(2 * rtt, 0.2))))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["SEDT of subflow-2 variants (s)"]
    for case, value in rows:
        lines.append(f"  case {case.case_id} ({case.label()}): {value:.4f}")
    by_case = {case.case_id: value for case, value in rows}
    # More loss at equal delay -> larger SEDT (cases 1-4).
    assert by_case[1] < by_case[2] < by_case[3] < by_case[4]
    # More delay at equal loss -> larger SEDT (cases 5-8).
    assert by_case[5] < by_case[6] < by_case[7] < by_case[8]
    report("analysis_theorem2", lines)


def test_theorem3_ratio_bound_table(benchmark, report):
    p1 = 0.01

    def run():
        rows = []
        for p2 in (0.05, 0.10, 0.15, 0.25):
            threshold = fmtcp_beats_mptcp_condition(p1, p2)
            for m in (2.0, threshold, 2 * threshold):
                rows.append(
                    (p2, m, theorem3_ratio_bound(p1, p2, m), mptcp_delivery_ratio(m))
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"Theorem 3 (Eq. 17) vs MPTCP's ratio m (p1={p1})",
        f"{'p2':>6} {'m':>8} {'FMTCP bound':>12} {'MPTCP':>8} {'winner':>8}",
    ]
    for p2, m, bound, mptcp in rows:
        winner = "FMTCP" if bound < mptcp else "MPTCP"
        lines.append(f"{p2:>6.2f} {m:>8.2f} {bound:>12.2f} {mptcp:>8.2f} {winner:>8}")
    # Beyond the threshold FMTCP's bound always wins.
    for p2, m, bound, mptcp in rows:
        if m > fmtcp_beats_mptcp_condition(p1, p2) * 1.01:
            assert bound < mptcp
    report("analysis_theorem3", lines)
