"""Section III-B analysis — Eqs. (3)-(7) against Monte-Carlo simulation.

Regenerates the paper's quantitative argument for rateless over
fixed-rate coding: the Chernoff bound on retransmission-free delivery of
a fixed-rate block (Eq. 6) and the fountain's constant additive symbol
overhead (Eq. 7).
"""

from __future__ import annotations

from repro.analysis.coding import (
    chernoff_no_retransmission_bound,
    expected_packets_delivered,
    fountain_expected_symbols_bound,
    fountain_expected_symbols_exact,
    simulate_fixed_rate_delivery,
    simulate_fountain_delivery,
)

SCENARIOS = [  # (A packets, estimated p1, actual p2)
    (50, 0.05, 0.10),
    (100, 0.05, 0.10),
    (100, 0.05, 0.15),
    (200, 0.10, 0.20),
]

FOUNTAIN_POINTS = [(256, 0.0), (256, 0.1), (256, 0.2), (64, 0.15)]


def test_analysis_eq3_to_eq6_fixed_rate(benchmark, report):
    def run():
        rows = []
        for block, p1, p2 in SCENARIOS:
            rows.append(
                (
                    block,
                    p1,
                    p2,
                    expected_packets_delivered(block, p1),
                    chernoff_no_retransmission_bound(block, p1, p2),
                    simulate_fixed_rate_delivery(block, p1, p2, trials=4000),
                )
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "fixed-rate coding with underestimated loss (Eqs. 3-6)",
        f"{'A':>5} {'p1':>5} {'p2':>5} {'E(X) eq3':>9} {'bound eq6':>10} {'empirical':>10}",
    ]
    for block, p1, p2, expected, bound, empirical in rows:
        lines.append(
            f"{block:>5} {p1:>5.2f} {p2:>5.2f} {expected:>9.1f} "
            f"{bound:>10.4f} {empirical:>10.4f}"
        )
        assert empirical <= bound + 0.02, "Chernoff bound violated"
    # Exponential decay in block size: larger A, smaller success probability.
    assert rows[1][5] <= rows[0][5] + 0.02
    report("analysis_fixed_rate", lines)


def test_analysis_eq7_fountain_overhead(benchmark, report):
    def run():
        return [
            (
                k,
                p,
                fountain_expected_symbols_bound(k, p),
                fountain_expected_symbols_exact(k, p),
                simulate_fountain_delivery(k, p, trials=300),
            )
            for k, p in FOUNTAIN_POINTS
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "fountain symbol cost per block (Eq. 7): E(Y) <= (k+4)/(1-p)",
        f"{'k':>5} {'p':>5} {'bound':>8} {'exact':>8} {'empirical':>10}",
    ]
    for k, p, bound, exact, empirical in rows:
        lines.append(f"{k:>5} {p:>5.2f} {bound:>8.1f} {exact:>8.1f} {empirical:>10.1f}")
        assert exact <= bound
        assert abs(empirical - exact) / exact < 0.05
    report("analysis_fountain_overhead", lines)
