"""Goodput vs. receive-buffer budget: the buffer-blocking sweep.

The motivation the paper opens with (Section II, citing Iyengar et al.):
multipath TCP under heterogeneous paths needs a *large* receive buffer,
because a loss on the slow path stalls the in-order frontier while
fast-path data piles up out of order — with a small buffer the advertised
window collapses and every path stops. FMTCP's fountain coding removes
the per-packet ordering dependency (any fresh symbol repairs a loss), so
its goodput should degrade less as the buffer budget shrinks.

Both stacks run with end-to-end flow control on and the *same byte
budget*; FMTCP additionally sizes its block k̂ against the buffer as
Section III-B prescribes. Writes the human-readable report plus the
machine-readable baseline ``benchmarks/results/BENCH_bufferblock.json``.
"""

from __future__ import annotations

import json
import os

from benchmarks.conftest import RESULTS_DIR, bench_duration
from repro.metrics.stats import mean
from repro.robustness.exhaustion import BUFFERBLOCK_PATHS, measure_bufferblock

BUDGETS = (16_384, 32_768, 65_536, 131_072)
SEEDS = (1,) if os.environ.get("REPRO_FAST") else (1, 2, 3)


def _duration() -> float:
    # Blocking episodes are RTO-scale (~1 s) events; runs shorter than
    # ~40 s are dominated by a handful of them and the comparison turns
    # into seed noise, so this sweep floors the smoke-mode duration.
    return max(bench_duration(), 40.0)


def _measure_all():
    duration = _duration()
    results = {}
    for protocol in ("fmtcp", "mptcp"):
        per_budget = {}
        for budget in BUDGETS:
            runs = [
                measure_bufferblock(
                    protocol, budget, seed=seed, duration_s=duration
                )
                for seed in SEEDS
            ]
            per_budget[str(budget)] = {
                "goodput_mbytes_per_s": round(
                    mean([run["goodput_mbytes_per_s"] for run in runs]), 4
                ),
                "budget_units": runs[0]["budget_units"],
                "peak_occupancy": max(run["peak_occupancy"] for run in runs),
            }
        results[protocol] = per_budget
    return results


def test_bufferblock_sweep(benchmark, report):
    results = benchmark.pedantic(_measure_all, rounds=1, iterations=1)

    lines = [
        "Goodput (MB/s) vs receive-buffer budget, flow control on, "
        f"seeds {list(SEEDS)} (mean):",
        f"paths {BUFFERBLOCK_PATHS}",
        f"{'budget':>8}  " + "  ".join(f"{p:>8}" for p in results),
    ]
    for budget in BUDGETS:
        lines.append(
            f"{budget:>8}  "
            + "  ".join(
                f"{results[p][str(budget)]['goodput_mbytes_per_s']:>8.4f}"
                for p in results
            )
        )
    smallest, largest = str(BUDGETS[0]), str(BUDGETS[-1])
    for protocol, per_budget in results.items():
        retained = (
            per_budget[smallest]["goodput_mbytes_per_s"]
            / max(per_budget[largest]["goodput_mbytes_per_s"], 1e-9)
        )
        lines.append(
            f"{protocol}: retains {retained:.1%} of large-buffer goodput "
            f"at {BUDGETS[0] // 1024} KiB"
        )

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_bufferblock.json").write_text(
        json.dumps(
            {
                "budgets_bytes": list(BUDGETS),
                "seeds": list(SEEDS),
                "duration_s": _duration(),
                "paths": [list(p) for p in BUFFERBLOCK_PATHS],
                "results": results,
            },
            indent=2,
        )
        + "\n"
    )
    report("bufferblock_sweep", lines)

    fmtcp_small = results["fmtcp"][smallest]["goodput_mbytes_per_s"]
    mptcp_small = results["mptcp"][smallest]["goodput_mbytes_per_s"]
    # The paper's claim, at its sharpest point: with the tightest buffer
    # FMTCP must strictly beat MPTCP.
    assert fmtcp_small > mptcp_small, (
        f"FMTCP ({fmtcp_small} MB/s) should beat MPTCP ({mptcp_small} MB/s) "
        f"at the {BUDGETS[0] // 1024} KiB budget"
    )
    # And memory stays within the licensed unit budget for both stacks.
    for protocol, per_budget in results.items():
        for budget in BUDGETS:
            point = per_budget[str(budget)]
            assert point["peak_occupancy"] <= point["budget_units"], (
                f"{protocol} at {budget}B: peak occupancy "
                f"{point['peak_occupancy']} exceeds licence "
                f"{point['budget_units']}"
            )
