"""Goodput vs. per-link corruption rate: the integrity layer's price.

The paper's evaluation only injects *erasures* (packets disappear);
this benchmark sweeps *corruption* — packets arrive damaged and the
integrity layer must discard them, which costs the same as a loss plus
the wasted transmission. FMTCP's rateless coding should degrade more
gracefully than MPTCP's retransmission machinery for the same reason it
wins under loss: a discarded symbol is replaced by any fresh symbol on
any path, whereas MPTCP must re-send the specific chunk.

Writes the human-readable report plus a machine-readable baseline,
``benchmarks/results/BENCH_corruption.json``.
"""

from __future__ import annotations

import json
import os

from benchmarks.conftest import RESULTS_DIR
from repro.faults import measure_corruption_goodput
from repro.metrics.stats import mean

CORRUPTION_RATES = (0.0, 0.01, 0.02, 0.05)
SEEDS = (1,) if os.environ.get("REPRO_FAST") else (1, 2, 3)


def _measure_all():
    results = {}
    for protocol in ("fmtcp", "mptcp"):
        per_rate = {}
        for rate in CORRUPTION_RATES:
            per_rate[f"{rate:g}"] = mean(
                [
                    measure_corruption_goodput(protocol, rate, seed=seed)
                    for seed in SEEDS
                ]
            )
        results[protocol] = per_rate
    return results


def test_corruption_goodput(benchmark, report):
    results = benchmark.pedantic(_measure_all, rounds=1, iterations=1)

    lines = [
        f"Goodput (Mb/s) vs per-link corruption rate, seeds {list(SEEDS)} (mean):",
        f"{'rate':>6}  " + "  ".join(f"{p:>8}" for p in results),
    ]
    for rate in CORRUPTION_RATES:
        lines.append(
            f"{rate:>6.2f}  "
            + "  ".join(f"{results[p][f'{rate:g}']:>8.3f}" for p in results)
        )

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_corruption.json").write_text(
        json.dumps(
            {
                "rates": list(CORRUPTION_RATES),
                "seeds": list(SEEDS),
                "goodput_mbps": results,
            },
            indent=2,
        )
        + "\n"
    )
    report("corruption_goodput", lines)

    for protocol, per_rate in results.items():
        # Corruption costs goodput but never stalls the transfer.
        assert per_rate["0.05"] > 0, f"{protocol}: stalled at 5% corruption"
        # The clean baseline is the best case.
        assert per_rate["0"] >= per_rate["0.05"], (
            f"{protocol}: goodput did not degrade with corruption"
        )
