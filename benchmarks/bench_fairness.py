"""TCP-friendliness on a shared bottleneck (extension; paper §III-A).

The paper asserts FMTCP can adopt any of the surveyed congestion-control
mechanisms and, on its disjoint-path evaluation, never tests contention.
This benchmark closes that gap: one FMTCP flow against N plain TCP flows
in a drop-tail dumbbell must split the bottleneck fairly (Jain index ≈ 1,
FMTCP at or slightly below its fair share — the coding redundancy is paid
out of FMTCP's own goodput, not out of its competitors').
"""

from __future__ import annotations

from benchmarks.conftest import bench_duration
from repro.experiments.fairness import run_fairness


def test_fmtcp_tcp_friendliness(benchmark, report):
    duration = min(bench_duration(), 30.0)

    def run():
        return {
            protocol: run_fairness(
                protocol_under_test=protocol,
                n_competitors=3,
                duration_s=duration,
            )
            for protocol in ("tcp", "fmtcp")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"1 flow under test vs 3 plain TCP flows, 10 Mbit/s bottleneck, {duration:.0f}s"
    ]
    for protocol, result in results.items():
        rates = ", ".join(
            f"{name}={rate:.2f}" for name, rate in sorted(result.rates_mbps.items())
        )
        lines.append(
            f"{protocol:>6}: Jain {result.jain:.3f}, share of fair "
            f"{result.test_flow_share:.2f} ({rates} Mbit/s)"
        )

    control = results["tcp"]
    fmtcp = results["fmtcp"]
    assert control.jain > 0.95  # sanity: TCP vs TCP is fair
    assert fmtcp.jain > 0.95
    # FMTCP must not out-compete TCP; it may fall slightly below fair
    # share because goodput excludes its coding redundancy.
    assert 0.70 < fmtcp.test_flow_share <= 1.10
    report("fairness_shared_bottleneck", lines)
