"""Fault response: goodput retention and recovery time under injected faults.

The paper's evaluation (§V) only varies static path quality; this
benchmark measures what happens when quality changes *mid-transfer* —
links flap, a path dies outright, bandwidth collapses, delay spikes.
FMTCP's rateless coding should retain more goodput through the fault
window than MPTCP's retransmission machinery: lost symbols are replaced
by any fresh symbols on any live path, whereas MPTCP must re-send the
specific missing chunks and stalls its receive window on them.

Runs on moderately lossy paths (5 % Bernoulli both ways on top of the
faults) — the regime the paper targets; on pristine paths the two
protocols are within noise of each other.

Writes both the human-readable report and a machine-readable baseline,
``benchmarks/results/BENCH_faults.json``.
"""

from __future__ import annotations

import json
import os

from benchmarks.conftest import RESULTS_DIR
from repro.faults import (
    MOBILITY_SCENARIOS,
    SCENARIOS,
    FaultScenario,
    measure_churn_response,
    measure_fault_response,
)
from repro.metrics.stats import mean

BASE_LOSS = 0.05
SEEDS = (1,) if os.environ.get("REPRO_FAST") else (1, 2, 3)


def _measure_all():
    results = {}
    for name in sorted(SCENARIOS):
        scenario = FaultScenario.named(name)
        per_protocol = {}
        for protocol in ("fmtcp", "mptcp"):
            runs = [
                measure_fault_response(
                    protocol, scenario, seed=seed, base_loss=BASE_LOSS
                )
                for seed in SEEDS
            ]
            per_protocol[protocol] = {
                "retention": mean([run.retention for run in runs]),
                "pre_mbps": mean([run.pre_mbps for run in runs]),
                "during_mbps": mean([run.during_mbps for run in runs]),
                "post_mbps": mean([run.post_mbps for run in runs]),
                # A run that never recovers scores the full post-heal window.
                "recovery_s": mean(
                    [
                        run.recovery_s
                        if run.recovery_s is not None
                        else run.duration_s - scenario.heal_time
                        for run in runs
                    ]
                ),
            }
        results[name] = per_protocol
    return results


def test_fault_response(benchmark, report):
    results = benchmark.pedantic(_measure_all, rounds=1, iterations=1)

    lines = [
        f"Goodput through a 10 s fault window, {BASE_LOSS:.0%} base loss, "
        f"seeds {list(SEEDS)} (mean):",
        f"{'scenario':>20}  {'FMTCP ret':>9}  {'MPTCP ret':>9}  "
        f"{'FMTCP rec(s)':>12}  {'MPTCP rec(s)':>12}",
    ]
    for name, per_protocol in results.items():
        fmtcp, mptcp = per_protocol["fmtcp"], per_protocol["mptcp"]
        lines.append(
            f"{name:>20}  {fmtcp['retention']:>9.3f}  {mptcp['retention']:>9.3f}  "
            f"{fmtcp['recovery_s']:>12.1f}  {mptcp['recovery_s']:>12.1f}"
        )

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_faults.json").write_text(
        json.dumps(
            {"base_loss": BASE_LOSS, "seeds": list(SEEDS), "scenarios": results},
            indent=2,
        )
        + "\n"
    )
    report("fault_response", lines)

    # The headline robustness claim: through link flaps and outright path
    # death, the fountain-coded transport retains strictly more goodput.
    for name in ("link_flap", "path_death"):
        fmtcp = results[name]["fmtcp"]["retention"]
        mptcp = results[name]["mptcp"]["retention"]
        assert fmtcp > mptcp, (
            f"{name}: FMTCP retention {fmtcp:.3f} <= MPTCP {mptcp:.3f}"
        )
    # Every scenario heals: both protocols recover within the post window.
    for name, per_protocol in results.items():
        for protocol in ("fmtcp", "mptcp"):
            assert per_protocol[protocol]["post_mbps"] > 0, (
                f"{name}/{protocol}: no goodput after heal"
            )


def _measure_churn():
    results = {}
    for name in sorted(MOBILITY_SCENARIOS):
        scenario = FaultScenario.named(name)
        per_protocol = {}
        for protocol in ("fmtcp", "mptcp"):
            runs = [
                measure_churn_response(
                    protocol, scenario, seed=seed, base_loss=BASE_LOSS
                )
                for seed in SEEDS
            ]
            per_protocol[protocol] = {
                "retention": mean([run.retention for run in runs]),
                "pre_mbps": mean([run.pre_mbps for run in runs]),
                "during_mbps": mean([run.during_mbps for run in runs]),
                "post_mbps": mean([run.post_mbps for run in runs]),
                "recovery_s": mean(
                    [
                        run.recovery_s
                        if run.recovery_s is not None
                        else run.duration_s - scenario.settle_time
                        for run in runs
                    ]
                ),
            }
        results[name] = per_protocol
    return results


def test_churn_response(benchmark, report):
    """Subflow lifecycle churn: handover, flap-with-rejoin, permanent loss.

    Unlike the link faults above, these remove and re-add the *subflows*
    themselves, so the cost measured here includes teardown, the join
    handshake and (for MPTCP) chunk reinjection.
    """
    results = benchmark.pedantic(_measure_churn, rounds=1, iterations=1)

    lines = [
        f"Goodput through subflow churn, {BASE_LOSS:.0%} base loss, "
        f"seeds {list(SEEDS)} (mean):",
        f"{'scenario':>24}  {'FMTCP ret':>9}  {'MPTCP ret':>9}  "
        f"{'FMTCP post':>10}  {'MPTCP post':>10}",
    ]
    for name, per_protocol in results.items():
        fmtcp, mptcp = per_protocol["fmtcp"], per_protocol["mptcp"]
        lines.append(
            f"{name:>24}  {fmtcp['retention']:>9.3f}  {mptcp['retention']:>9.3f}  "
            f"{fmtcp['post_mbps']:>10.3f}  {mptcp['post_mbps']:>10.3f}"
        )

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_churn.json").write_text(
        json.dumps(
            {"base_loss": BASE_LOSS, "seeds": list(SEEDS), "scenarios": results},
            indent=2,
        )
        + "\n"
    )
    report("churn_response", lines)

    for name, per_protocol in results.items():
        for protocol in ("fmtcp", "mptcp"):
            # Graceful degradation: whatever was removed, the survivors
            # keep delivering after the churn settles.
            assert per_protocol[protocol]["post_mbps"] > 0, (
                f"{name}/{protocol}: no goodput after the churn settled"
            )
