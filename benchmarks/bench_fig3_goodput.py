"""Figure 3 — total goodput, FMTCP vs IETF-MPTCP across Table I cases.

Shape targets (DESIGN.md §5): FMTCP ≥ MPTCP on the loss-ramp cases with a
gap that widens as subflow-2 loss grows; MPTCP degrades steeply from case
1 to case 4 (the paper reports up to ~60 %) while FMTCP degrades only
slightly. Absolute megabytes differ from the paper (different simulator,
unstated bandwidth) — ratios are the reproduction target.
"""

from __future__ import annotations

from benchmarks.conftest import bench_duration
from repro.experiments.figures import run_figure3
from repro.experiments.paper_data import FIG3_GOODPUT_MB


def test_fig3_goodput_sweep(benchmark, report):
    duration = bench_duration()
    rows = benchmark.pedantic(
        lambda: run_figure3(duration_s=duration), rounds=1, iterations=1
    )

    paper_fmtcp = FIG3_GOODPUT_MB["fmtcp"]
    paper_mptcp = FIG3_GOODPUT_MB["mptcp"]
    lines = [
        f"total goodput over {duration:.0f}s (MB); paper columns are ~digitised from Fig. 3",
        f"{'case':>4} {'FMTCP':>8} {'MPTCP':>8} {'ratio':>6} | {'paper F':>8} {'paper M':>8} {'ratio':>6}",
    ]
    for row in rows:
        index = row["case"] - 1
        paper_ratio = paper_fmtcp[index] / paper_mptcp[index]
        lines.append(
            f"{row['case']:>4} {row['fmtcp_goodput_mb']:>8.2f} "
            f"{row['mptcp_goodput_mb']:>8.2f} {row['ratio']:>6.2f} | "
            f"{paper_fmtcp[index]:>8.0f} {paper_mptcp[index]:>8.0f} {paper_ratio:>6.2f}"
        )

    # Shape assertions on the loss-ramp cases (1-4).
    ramp = rows[:4]
    for row in ramp[1:]:
        assert row["fmtcp_goodput_mb"] > row["mptcp_goodput_mb"], row
    assert ramp[3]["ratio"] > ramp[0]["ratio"], "gap must widen with loss"
    mptcp_drop = 1 - ramp[3]["mptcp_goodput_mb"] / ramp[0]["mptcp_goodput_mb"]
    fmtcp_drop = 1 - ramp[3]["fmtcp_goodput_mb"] / ramp[0]["fmtcp_goodput_mb"]
    lines.append(
        f"case1->4 degradation: MPTCP {mptcp_drop:.0%} (paper ~60%), "
        f"FMTCP {fmtcp_drop:.0%} (paper: slight)"
    )
    # Our baseline recovers losses with go-back-N and min-RTT waterfall
    # scheduling, so its degradation is milder than the paper's (~60 %);
    # the direction and the FMTCP/MPTCP ordering are the reproduced shape.
    assert mptcp_drop > 0.25
    assert fmtcp_drop < 0.20
    assert mptcp_drop > 2 * fmtcp_drop
    report("fig3_goodput", lines)
