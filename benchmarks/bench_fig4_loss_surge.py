"""Figure 4 — goodput-rate time series under an abrupt loss surge.

Subflow 2's loss jumps from 1 % to 25 % (a) or 35 % (b) at t = 50 s and
recovers at t = 200 s. Shape targets: FMTCP's rate degrades gracefully
and stays comparatively stable (paper: roughly halves at 35 %), MPTCP
fluctuates and collapses much further (paper: near zero at 35 %), and
both recover after the surge.
"""

from __future__ import annotations

import os

import pytest

from benchmarks.conftest import surge_duration
from repro.experiments.figures import run_figure4
from repro.experiments.paper_data import FIG4_RATES_MBPS
from repro.metrics.stats import mean, stdev


def phases(duration):
    if os.environ.get("REPRO_FAST"):
        return 15.0, 60.0  # compressed schedule for smoke runs
    return 50.0, 200.0


@pytest.mark.parametrize("surge", [0.25, 0.35])
def test_fig4_loss_surge(benchmark, report, surge):
    duration = surge_duration()
    start, end = phases(duration)

    results = benchmark.pedantic(
        lambda: run_figure4(
            surge,
            duration_s=duration,
            surge_start_s=start,
            surge_end_s=end,
            bin_width_s=5.0,
        ),
        rounds=1,
        iterations=1,
    )

    def phase_mean(protocol, lo, hi):
        return mean(
            [v for t, v in results[protocol].goodput_series if lo <= t < hi]
        )

    def phase_stdev(protocol, lo, hi):
        return stdev(
            [v for t, v in results[protocol].goodput_series if lo <= t < hi]
        )

    paper = FIG4_RATES_MBPS[f"{surge:.0%}"]
    lines = [
        f"loss surge to {surge:.0%} during [{start:.0f}, {end:.0f})s of {duration:.0f}s",
        f"{'phase':<8} {'FMTCP MB/s':>12} {'MPTCP MB/s':>12}",
    ]
    stats = {}
    for label, lo, hi in (
        ("before", 0.0, start),
        ("during", start, end),
        ("after", end, duration),
    ):
        fmtcp_rate = phase_mean("fmtcp", lo, hi)
        mptcp_rate = phase_mean("mptcp", lo, hi)
        stats[label] = (fmtcp_rate, mptcp_rate)
        lines.append(f"{label:<8} {fmtcp_rate:>12.3f} {mptcp_rate:>12.3f}")
    lines.append(
        f"paper (~digitised): before F {paper['fmtcp_before']:.2f} / M "
        f"{paper['mptcp_before']:.2f}; during F {paper['fmtcp_during']:.2f} / M "
        f"{paper['mptcp_during']:.2f}"
    )
    fmtcp_cov = phase_stdev("fmtcp", start, end) / max(stats["during"][0], 1e-9)
    mptcp_cov = phase_stdev("mptcp", start, end) / max(stats["during"][1], 1e-9)
    lines.append(
        f"stability during surge (coeff. of variation): FMTCP {fmtcp_cov:.2f}, "
        f"MPTCP {mptcp_cov:.2f}"
    )

    # Shape assertions.
    assert stats["during"][0] > 1.2 * stats["during"][1], "FMTCP retains more goodput"
    assert stats["during"][0] > 0.3 * stats["before"][0], "FMTCP degrades gracefully"
    assert stats["after"][0] > 0.6 * stats["before"][0], "FMTCP recovers"
    assert stats["after"][1] > 0.6 * stats["before"][1], "MPTCP recovers"
    if surge >= 0.35:
        # The deeper surge widens the gap (paper: MPTCP nearly stops).
        assert stats["during"][0] > 1.4 * stats["during"][1]
    report(f"fig4_surge_{int(surge * 100)}", lines)
