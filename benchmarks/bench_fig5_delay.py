"""Figure 5 — mean block delivery delay across Table I cases.

Shape targets: FMTCP's delay stays low and flat; MPTCP's grows
considerably as subflow-2 quality falls (amplified by head-of-line
blocking). Shares the memoised Table I suite with Figures 3 and 6.
"""

from __future__ import annotations

from benchmarks.conftest import bench_duration
from repro.experiments.figures import run_figure5
from repro.experiments.paper_data import FIG5_DELAY_MS


def test_fig5_block_delay_sweep(benchmark, report):
    duration = bench_duration()
    rows = benchmark.pedantic(
        lambda: run_figure5(duration_s=duration), rounds=1, iterations=1
    )

    lines = [
        "mean block delivery delay (ms); paper columns ~digitised from Fig. 5",
        f"{'case':>4} {'FMTCP':>8} {'MPTCP':>8} | {'paper F':>8} {'paper M':>8}",
    ]
    for row in rows:
        index = row["case"] - 1
        lines.append(
            f"{row['case']:>4} {row['fmtcp_block_delay_ms']:>8.1f} "
            f"{row['mptcp_block_delay_ms']:>8.1f} | "
            f"{FIG5_DELAY_MS['fmtcp'][index]:>8.0f} {FIG5_DELAY_MS['mptcp'][index]:>8.0f}"
        )

    # FMTCP below MPTCP on the loss-ramp cases and most others. Case 5
    # (subflow 2 faster than subflow 1) can tip to the baseline in our
    # substrate because min-RTT scheduling exploits the fast path without
    # FMTCP's coding overhead (see EXPERIMENTS.md, known deviations).
    for row in rows[:4]:
        assert row["fmtcp_block_delay_ms"] < row["mptcp_block_delay_ms"], row
    favourable = sum(
        1 for row in rows
        if row["fmtcp_block_delay_ms"] < row["mptcp_block_delay_ms"]
    )
    assert favourable >= 6, f"FMTCP should win delay on most cases ({favourable}/8)"
    # MPTCP's delay grows along the loss ramp (cases 1 -> 4). Both
    # protocols share a standing-queue delay floor (Reno fills the
    # drop-tail queue), so the head-of-line cost is the *gap* over FMTCP:
    # it must widen sharply along the ramp.
    ramp = [row["mptcp_block_delay_ms"] for row in rows[:4]]
    fmtcp_ramp = [row["fmtcp_block_delay_ms"] for row in rows[:4]]
    assert ramp[3] > 1.3 * ramp[0]
    gap_start = ramp[0] - fmtcp_ramp[0]
    gap_end = ramp[3] - fmtcp_ramp[3]
    assert gap_end > 2.0 * gap_start
    # FMTCP stays comparatively flat on the same ramp.
    assert fmtcp_ramp[3] < 1.3 * fmtcp_ramp[0]
    report("fig5_block_delay", lines)
