"""Figure 6 — mean block jitter across Table I cases.

Shape targets: the jitter difference is even larger than the delay
difference (the paper's observation), especially when one subflow's
quality is very low. Shares the memoised Table I suite with Figs. 3/5.
"""

from __future__ import annotations

from benchmarks.conftest import bench_duration
from repro.experiments.figures import run_figure6
from repro.experiments.paper_data import FIG6_JITTER_MS


def test_fig6_jitter_sweep(benchmark, report):
    duration = bench_duration()
    rows = benchmark.pedantic(
        lambda: run_figure6(duration_s=duration), rounds=1, iterations=1
    )

    lines = [
        "mean block jitter (ms); paper columns ~digitised from Fig. 6",
        f"{'case':>4} {'FMTCP':>8} {'MPTCP':>8} | {'paper F':>8} {'paper M':>8}",
    ]
    for row in rows:
        index = row["case"] - 1
        lines.append(
            f"{row['case']:>4} {row['fmtcp_jitter_ms']:>8.1f} "
            f"{row['mptcp_jitter_ms']:>8.1f} | "
            f"{FIG6_JITTER_MS['fmtcp'][index]:>8.0f} {FIG6_JITTER_MS['mptcp'][index]:>8.0f}"
        )

    # FMTCP's jitter below MPTCP's on the loss-ramp cases 1-4 (the
    # paper's main story). Case 5 can deviate in our substrate: its
    # subflow 2 is *faster* than subflow 1, so FMTCP's allocator mixes
    # two very different per-path delays into the block sequence (see
    # EXPERIMENTS.md, "known deviations").
    for row in rows[:4]:
        assert row["fmtcp_jitter_ms"] < row["mptcp_jitter_ms"], row
    favourable = sum(
        1 for row in rows if row["fmtcp_jitter_ms"] < row["mptcp_jitter_ms"]
    )
    # On the delay-diverse cases (5/6/8) our baseline's min-RTT scheduler
    # quarantines the slow path and can edge out FMTCP on jitter — a
    # stronger baseline than the paper's (see EXPERIMENTS.md).
    assert favourable >= 5, f"FMTCP should win jitter on most cases ({favourable}/8)"
    # MPTCP's jitter grows along the loss ramp.
    ramp = [row["mptcp_jitter_ms"] for row in rows[:4]]
    assert ramp[3] > 1.5 * ramp[0]
    # Paper: the jitter gap at the worst case exceeds the delay gap. The
    # full gap (>2x) needs runs long enough for FMTCP's jitter to settle;
    # short REPRO_FAST runs only check the direction.
    worst = rows[3]
    gap_factor = 2.0 if duration >= 40.0 else 1.2
    assert worst["mptcp_jitter_ms"] > gap_factor * worst["fmtcp_jitter_ms"]
    report("fig6_jitter", lines)
