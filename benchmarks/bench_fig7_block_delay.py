"""Figure 7 — per-block delivery delay vs block sequence, Table I case 4.

Shape targets: MPTCP's series shows frequent large fluctuations (paper:
peaks around five times the mean) while FMTCP's stays flat; measured as
distribution spread (p95/median) plus spike counts over the first 1000
blocks.
"""

from __future__ import annotations

from benchmarks.conftest import bench_duration
from repro.experiments.figures import run_figure7
from repro.experiments.paper_data import FIG7_MPTCP_MAX_OVER_MEAN
from repro.metrics.stats import mean, percentile


def test_fig7_per_block_delay_series(benchmark, report):
    duration = bench_duration()
    series = benchmark.pedantic(
        lambda: run_figure7(duration_s=duration, max_blocks=1000),
        rounds=1,
        iterations=1,
    )

    lines = [f"per-block delivery delay, case 4 (100 ms / 15 %), {duration:.0f}s run"]
    stats = {}
    for protocol in ("fmtcp", "mptcp"):
        delays_ms = [delay * 1e3 for delay in series[protocol]]
        median = percentile(delays_ms, 50)
        p95 = percentile(delays_ms, 95)
        spikes = sum(1 for delay in delays_ms if delay > 2 * median)
        stats[protocol] = {
            "mean": mean(delays_ms),
            "median": median,
            "p95": p95,
            "max": max(delays_ms),
            "spread": p95 / median if median else 0.0,
            "spike_fraction": spikes / len(delays_ms) if delays_ms else 0.0,
        }
        lines.append(
            f"{protocol:>6}: {len(delays_ms)} blocks, mean {stats[protocol]['mean']:.0f}ms, "
            f"median {median:.0f}ms, p95 {p95:.0f}ms, max {stats[protocol]['max']:.0f}ms, "
            f"p95/median {stats[protocol]['spread']:.2f}, "
            f">2x-median spikes {stats[protocol]['spike_fraction']:.1%}"
        )
    lines.append(
        f"paper: MPTCP max ≈ {FIG7_MPTCP_MAX_OVER_MEAN:.0f}x its mean; FMTCP flat "
        f"(ours: MPTCP max/mean {stats['mptcp']['max'] / stats['mptcp']['mean']:.1f}x, "
        f"FMTCP p95/median {stats['fmtcp']['spread']:.2f})"
    )

    assert stats["mptcp"]["spread"] > 1.5 * stats["fmtcp"]["spread"]
    assert stats["mptcp"]["spike_fraction"] > stats["fmtcp"]["spike_fraction"]
    assert stats["fmtcp"]["spread"] < 2.0
    report("fig7_block_delay_series", lines)
