"""Fixed-rate FEC vs fountain coding, protocol-vs-protocol (Section III-B).

The paper argues against fixed-rate erasure codes with Eqs. (3)-(7); this
benchmark stages the same argument between running transports:

* the p̂ misestimation sweep — fixed-rate must pick a code rate from an
  assumed loss rate, and pays redundancy (overestimate) or
  retransmission stalls (underestimate), while FMTCP has no such knob;
* the blackout — fixed-rate repairs are pinned to the path that carried
  the original symbols ("fixed-rate coding constrains the transmission
  for a block over the same path"), so a dead path stalls delivery
  entirely; FMTCP reroutes repairs and keeps delivering.
"""

from __future__ import annotations

from benchmarks.conftest import bench_duration
from repro.experiments.runner import run_transfer
from repro.fixedrate import FixedRateConfig, FixedRateConnection
from repro.metrics.collectors import MetricsSuite
from repro.net.loss import ScheduledLoss
from repro.net.topology import PathConfig, build_two_path_network
from repro.sim.rng import RngStreams
from repro.sim.trace import TraceBus
from repro.workloads.scenarios import TABLE1_CASES, table1_path_configs
from repro.workloads.sources import BulkSource


def run_fixed_rate(configs, duration, config, seed=1):
    trace = TraceBus()
    network, paths = build_two_path_network(configs, rng=RngStreams(seed), trace=trace)
    metrics = MetricsSuite(trace, bin_width_s=1.0)
    connection = FixedRateConnection(
        network.sim, paths, BulkSource(), config=config, trace=trace
    )
    connection.start()
    network.sim.run(until=duration)
    return connection, metrics


def test_fixed_rate_p_hat_sweep(benchmark, report):
    duration = min(bench_duration(), 30.0)
    p_hats = [0.0, 0.05, 0.15, 0.30]

    def run():
        rows = []
        for p_hat in p_hats:
            connection, metrics = run_fixed_rate(
                table1_path_configs(TABLE1_CASES[3]),
                duration,
                FixedRateConfig(estimated_loss=p_hat),
            )
            rows.append(
                (
                    p_hat,
                    metrics.goodput.goodput_mbytes_per_s(duration),
                    connection.redundancy_ratio(),
                    connection.symbols_retransmitted,
                )
            )
        fmtcp = run_transfer(
            "fmtcp", table1_path_configs(TABLE1_CASES[3]), duration_s=duration, seed=1
        )
        return rows, fmtcp

    rows, fmtcp = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "fixed-rate code-rate knob p̂ on case 4 (true loss 15% on subflow 2)",
        f"{'p̂':>6} {'goodput MB/s':>13} {'redundancy':>11} {'retx symbols':>13}",
    ]
    for p_hat, goodput, redundancy, retx in rows:
        lines.append(f"{p_hat:>6.2f} {goodput:>13.3f} {redundancy:>11.3f} {retx:>13}")
    lines.append(
        f" FMTCP {fmtcp.summary['goodput_mbytes_per_s']:>13.3f} "
        f"{fmtcp.extras['redundancy_ratio']:>11.3f}   (no p̂ to tune)"
    )
    # Redundancy rises monotonically with p̂ (Eq. 4's budget), goodput falls.
    redundancies = [row[2] for row in rows]
    goodputs = [row[1] for row in rows]
    assert redundancies == sorted(redundancies)
    assert goodputs[0] > goodputs[-1]
    # FMTCP is at least as good as every misestimated operating point
    # above the first (small tolerance for seed noise).
    for __, goodput, __, __ in rows[1:]:
        assert fmtcp.summary["goodput_mbytes_per_s"] > 0.95 * goodput
    report("fixedrate_p_hat_sweep", lines)


def test_fixed_rate_blackout_stall(benchmark, report):
    duration = 45.0

    def blackout():
        return [
            PathConfig(bandwidth_bps=4e6, delay_s=0.050, loss_rate=0.0),
            PathConfig(
                bandwidth_bps=4e6,
                delay_s=0.050,
                loss_model=ScheduledLoss([(0.0, 0.0), (10.0, 0.99), (20.0, 0.0)]),
            ),
        ]

    def run():
        fixed_conn, fixed_metrics = run_fixed_rate(
            blackout(), duration, FixedRateConfig(), seed=3
        )
        fmtcp = run_transfer(
            "fmtcp", blackout(), duration_s=duration, seed=3, collect_series=True
        )
        return fixed_metrics.goodput.series(duration), fmtcp.goodput_series

    fixed_series, fmtcp_series = benchmark.pedantic(run, rounds=1, iterations=1)

    def window(series, lo, hi):
        return sum(rate for t, rate in series if lo <= t < hi)

    fixed_stall = window(fixed_series, 13.0, 20.0)
    fmtcp_stall = window(fmtcp_series, 13.0, 20.0)
    lines = [
        "total blackout of path 2 during [10, 20)s — goodput inside [13, 20)s",
        f"  fixed-rate: {fixed_stall / 7:.3f} MB/s (repairs pinned to the dead path)",
        f"  FMTCP:      {fmtcp_stall / 7:.3f} MB/s (repairs rerouted to the live path)",
    ]
    assert fixed_stall < 0.05
    assert fmtcp_stall / 7 > 0.2
    report("fixedrate_blackout", lines)
