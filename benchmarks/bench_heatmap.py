"""Loss × buffer advantage heatmap (extension).

Grids the two levers that arm FMTCP's advantage — subflow-2 loss and the
receive-buffer budget — and renders the goodput ratio map. The structure
it exposes: the advantage peaks where the buffer is comparable to the
bandwidth-delay product (head-of-line blocking binds for MPTCP while
FMTCP still has pipeline room) and grows with loss at every buffer size.
"""

from __future__ import annotations

from benchmarks.conftest import bench_duration
from repro.experiments.heatmap import run_heatmap


def test_loss_buffer_heatmap(benchmark, report):
    duration = min(bench_duration(), 30.0)
    result = benchmark.pedantic(
        lambda: run_heatmap(duration_s=duration), rounds=1, iterations=1
    )
    lines = result.render()

    # At the HoL-binding buffer (16 blocks = 128 KB ≈ BDP), the advantage
    # must grow with loss.
    middle = result.pending_blocks[1]
    column = [result.ratios[(loss, middle)] for loss in result.loss_rates]
    assert column[-1] > column[0]
    assert column[-1] > 1.3
    # Low-loss row never shows a dramatic FMTCP win (nothing to repair).
    low_loss_row = [
        result.ratios[(result.loss_rates[0], blocks)]
        for blocks in result.pending_blocks
    ]
    assert max(low_loss_row) < 1.4
    report("heatmap_loss_buffer", lines)
