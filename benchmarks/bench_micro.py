"""Micro-benchmarks — coding throughput and allocation cost.

These are true pytest-benchmark measurements (multiple rounds) of the two
hot paths: the GF(2) codec that bounds FMTCP's CPU cost (Section III-B's
"coding complexity" constraint on k̂) and Algorithm 1's per-packet
allocation cost.
"""

from __future__ import annotations

import math
import random

from repro.core.allocation import allocate_packet
from repro.core.blocks import PendingBlock
from repro.core.estimators import PathEstimate
from repro.fountain.codec import BlockDecoder, BlockEncoder
from repro.fountain.rank_model import RankEvolutionModel

K = 256
PART = 32


def test_encode_throughput(benchmark):
    data = bytes(range(256)) * (K * PART // 256)
    encoder = BlockEncoder(data, k=K, part_size=PART, rng=random.Random(0))

    def encode_packet():
        return [encoder.next_symbol() for __ in range(40)]

    symbols = benchmark(encode_packet)
    assert len(symbols) == 40


def test_decode_throughput_full_block(benchmark):
    data = bytes(range(256)) * (K * PART // 256)
    encoder = BlockEncoder(data, k=K, part_size=PART, rng=random.Random(1))
    symbols = [encoder.next_symbol() for __ in range(K + 30)]

    def decode_block():
        decoder = BlockDecoder(k=K, part_size=PART, data_length=len(data))
        for symbol in symbols:
            decoder.add_symbol(symbol)
            if decoder.is_complete:
                break
        return decoder.decode()

    recovered = benchmark(decode_block)
    assert recovered == data


def test_rank_model_throughput(benchmark):
    def absorb_block():
        model = RankEvolutionModel(K, rng=random.Random(2))
        while not model.is_complete:
            model.add_symbol()
        return model.symbols_received

    received = benchmark(absorb_block)
    assert received >= K


def test_gf2_insert_cost_is_linear_in_k(benchmark):
    """One row insert is O(k) integer XOR work; measure at k=256."""
    rng = random.Random(3)
    from repro.fountain.gf2 import Gf2Eliminator

    def build_full_rank():
        eliminator = Gf2Eliminator(K)
        while not eliminator.is_full_rank:
            eliminator.add_row(rng.getrandbits(K), rng.getrandbits(64))
        return eliminator.rows_seen

    rows = benchmark(build_full_rank)
    assert rows >= K


def test_lt_decode_throughput(benchmark):
    """LT peeling is linear-time; compare against the GE decoder above."""
    from repro.fountain.lt import LtDecoder, LtEncoder

    data = bytes(range(256)) * (K * PART // 256)
    encoder = LtEncoder(data, k=K, part_size=PART, rng=random.Random(4))
    symbols = [encoder.next_symbol() for __ in range(2 * K)]

    def decode_block():
        decoder = LtDecoder(k=K, part_size=PART, data_length=len(data))
        for index, symbol in enumerate(symbols):
            decoder.add_symbol(symbol)
            if index % 32 == 0 and decoder.try_ge_completion():
                break
            if decoder.is_complete:
                break
        return decoder.decode()

    recovered = benchmark(decode_block)
    assert recovered == data


def test_allocation_cost_scales(benchmark):
    margin = math.log2(1000)
    estimates = [
        PathEstimate(subflow_id=0, rtt=0.2, rto=0.4, loss=0.0, window_space=8, tau=0.0),
        PathEstimate(subflow_id=1, rtt=0.3, rto=0.6, loss=0.15, window_space=4, tau=0.1),
    ]
    blocks = []
    for block_id in range(64):
        block = PendingBlock(block_id=block_id, k=256, data_bytes=8192)
        block.k_bar = 100
        blocks.append(block)

    def allocate():
        return allocate_packet(
            pending_subflow_id=1,
            estimates=estimates,
            blocks=blocks,
            loss_rate_of=lambda subflow_id: estimates[subflow_id].loss,
            mss=1400,
            symbol_wire_size=34,
            margin=margin,
        )

    result = benchmark(allocate)
    assert result.iterations >= 1
