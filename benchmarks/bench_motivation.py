"""Section I's motivation, quantified: MPTCP vs conventional TCP.

The paper opens with two claims: (1) "the throughput of MPTCP can be even
worse than an ordinary TCP in some cases, and MPTCP is sensitive to the
path quality"; (2) ideally multipath should aggregate. This benchmark
runs conventional TCP (on the best path), IETF-MPTCP and FMTCP across the
Table I loss ramp and checks both claims plus FMTCP's repair of the first.
"""

from __future__ import annotations

from benchmarks.conftest import bench_duration
from repro.experiments.runner import run_transfer
from repro.workloads.scenarios import TABLE1_CASES, table1_path_configs


def test_motivation_mptcp_vs_single_tcp(benchmark, report):
    duration = min(bench_duration(), 30.0)
    cases = [TABLE1_CASES[0], TABLE1_CASES[2], TABLE1_CASES[3]]

    def run():
        results = {}
        for case in cases:
            results[case.case_id] = {
                protocol: run_transfer(
                    protocol,
                    table1_path_configs(case),
                    duration_s=duration,
                    seed=1,
                )
                for protocol in ("tcp", "mptcp", "fmtcp")
            }
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "goodput (MB/s): conventional TCP (best path) vs MPTCP vs FMTCP",
        f"{'case':>6} {'TCP':>8} {'MPTCP':>8} {'FMTCP':>8}",
    ]
    rates = {}
    for case_id, by_protocol in results.items():
        rates[case_id] = {
            protocol: result.summary["goodput_mbytes_per_s"]
            for protocol, result in by_protocol.items()
        }
        lines.append(
            f"{case_id:>6} {rates[case_id]['tcp']:>8.3f} "
            f"{rates[case_id]['mptcp']:>8.3f} {rates[case_id]['fmtcp']:>8.3f}"
        )

    worst = rates[4]
    # Paper Section I: "the throughput of MPTCP can be even worse than an
    # ordinary TCP in some cases" — case 4 demonstrates it.
    assert worst["mptcp"] < worst["tcp"]
    lines.append(
        f"case 4: MPTCP at {worst['mptcp'] / worst['tcp']:.0%} of single-path "
        f"TCP — the paper's opening pathology"
    )
    # FMTCP repairs it: never materially below the best single path...
    for case_id, case_rates in rates.items():
        assert case_rates["fmtcp"] > 0.85 * case_rates["tcp"], case_id
    # ...and aggregates above it when the second path is usable.
    best = rates[1]
    assert best["fmtcp"] > best["tcp"]
    report("motivation_tcp_vs_multipath", lines)
