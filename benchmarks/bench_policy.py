"""Policy baselines: the decision layer measured against Algorithm 1.

The paper fixes one decision procedure (EAT-ranked allocation); the
``repro.policy`` package makes that layer pluggable. This benchmark runs
every registered baseline over Table I cases 1-4 and writes the
machine-readable baseline ``benchmarks/results/BENCH_policy.json``.

Two claims are asserted:

* ``paper-eat`` routed through the decision hook matches the hookless
  sender on goodput exactly (the hook is free);
* on the paper's hardest case (case 4, 15 % loss on path 2) the ε-greedy
  redundancy bandit beats blind round-robin on mean goodput across the
  whole seed batch — quality-aware allocation is worth having.
"""

from __future__ import annotations

import json
import os

from benchmarks.conftest import RESULTS_DIR, bench_duration
from repro.metrics.stats import mean
from repro.policy import POLICIES, compare_policies

CASES = (1, 2, 3, 4)
SEEDS = tuple(range(1, 4)) if os.environ.get("REPRO_FAST") else tuple(range(1, 11))
EPOCH_S = 0.25


def _measure_all():
    duration = min(bench_duration(), 20.0)
    results = {}
    for case_id in CASES:
        reports = compare_policies(
            sorted(POLICIES),
            seeds=SEEDS,
            case_id=case_id,
            duration_s=duration,
            epoch_s=EPOCH_S,
        )
        results[str(case_id)] = {
            report.policy: report.to_dict() for report in reports
        }
    return results, duration


def test_policy_baselines(benchmark, report):
    results, duration = benchmark.pedantic(_measure_all, rounds=1, iterations=1)

    lines = [
        f"Policy goodput (MB, mean of seeds {list(SEEDS)}), "
        f"{duration:.0f}s runs, epoch {EPOCH_S}s:",
        f"{'case':>4}  " + "  ".join(f"{name:>18}" for name in sorted(POLICIES)),
    ]
    for case_id in CASES:
        row = results[str(case_id)]
        lines.append(
            f"{case_id:>4}  "
            + "  ".join(
                f"{row[name]['goodput_mbytes_mean']:>18.3f}"
                for name in sorted(POLICIES)
            )
        )

    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_policy.json").write_text(
        json.dumps(
            {
                "duration_s": duration,
                "epoch_s": EPOCH_S,
                "seeds": list(SEEDS),
                "cases": results,
            },
            indent=2,
        )
        + "\n"
    )
    report("policy_baselines", lines)

    # Acceptance: the redundancy bandit beats blind round-robin where
    # path quality is most asymmetric (case 4: 15 % loss on path 2).
    case4 = results["4"]
    egreedy = case4["egreedy-redundancy"]["goodput_mbytes_mean"]
    roundrobin = case4["roundrobin"]["goodput_mbytes_mean"]
    assert egreedy >= roundrobin, (
        f"case 4: egreedy-redundancy {egreedy:.3f} MB < roundrobin "
        f"{roundrobin:.3f} MB (mean of {len(SEEDS)} seeds)"
    )
    # Every policy moves data on every case (no deadlocked share caps).
    for case_id in CASES:
        for name in sorted(POLICIES):
            goodput = results[str(case_id)][name]["goodput_mbytes_min"]
            assert goodput > 0, f"case {case_id}/{name}: zero-goodput seed"


def test_hook_is_free(report):
    """paper-eat through the hook == the hookless sender, per seed."""
    from repro.experiments.runner import run_transfer
    from repro.workloads.scenarios import TABLE1_CASES, table1_path_configs

    case = next(c for c in TABLE1_CASES if c.case_id == 4)
    paths = table1_path_configs(case)
    lines = ["paper-eat decision hook vs hookless sender (10 s, case 4):"]
    for seed in SEEDS[:3]:
        plain = run_transfer("fmtcp", paths, duration_s=10.0, seed=seed)
        hooked = run_transfer(
            "fmtcp", paths, duration_s=10.0, seed=seed, policy="paper-eat"
        )
        lines.append(
            f"  seed {seed}: {plain.goodput_mbytes:.6f} MB == "
            f"{hooked.goodput_mbytes:.6f} MB "
            f"({hooked.extras['decisions_delegated']} decisions)"
        )
        assert plain.summary == hooked.summary, f"seed {seed}: hook not free"
        assert hooked.extras["decisions_delegated"] > 0
    report("policy_hook_identity", lines)
