"""Crash-recovery response: goodput retention and recovery latency.

Runs the endpoint-crash presets through :func:`repro.faults.measure_recovery`
— each crashed transfer against its clean same-seed baseline — and
reports goodput retention (clean completion time / crashed completion
time), outage decomposition (half-open detection, reconnect handshake)
and the checkpoint-size asymmetry the paper's ratelessness argument
predicts: an FMTCP sender checkpoints an O(1) frontier while MPTCP
carries its unacked chunk map.

Writes the human-readable report plus the machine-readable row ledger
``benchmarks/results/BENCH_recovery.json``; ``trajectory.py check``
gates on the newest row (FMTCP retention must not regress and must stay
>= MPTCP's under the receiver-crash preset).
"""

from __future__ import annotations

import os

from benchmarks.conftest import RESULTS_DIR, bench_duration
from benchmarks.trajectory import RECOVERY_LEDGER_PATH, append_row
from repro.faults import RECOVERY_SCENARIOS, measure_recovery
from repro.metrics.stats import mean

PRESETS = ("receiver_crash", "sender_crash", "crash_storm")
SEEDS = (1,) if os.environ.get("REPRO_FAST") else (1, 2, 3)


def _duration() -> float:
    # The presets' crash windows span t=6-18 s and the soak transfer
    # needs ~20 s of clean air after the last restart; short smoke runs
    # would truncate recovery itself.
    return max(bench_duration(), 40.0)


def _measure_all():
    duration = _duration()
    results = {}
    for protocol in ("fmtcp", "mptcp"):
        per_preset = {}
        for preset in PRESETS:
            runs = [
                measure_recovery(
                    protocol,
                    RECOVERY_SCENARIOS[preset](),
                    seed=seed,
                    duration_s=duration,
                )
                for seed in SEEDS
            ]
            detects = [
                run["mean_detect_s"] for run in runs if run["mean_detect_s"] is not None
            ]
            per_preset[preset] = {
                "goodput_retention": round(
                    mean([run["goodput_retention"] for run in runs]), 4
                ),
                "max_outage_s": round(max(run["max_outage_s"] for run in runs), 3),
                "mean_detect_s": round(mean(detects), 3) if detects else None,
                "checkpoint_bytes": max(run["checkpoint_bytes"] for run in runs),
                "violations": sum(run["violations"] for run in runs),
            }
        results[protocol] = per_preset
    return results


def test_recovery_response(benchmark, report):
    results = benchmark.pedantic(_measure_all, rounds=1, iterations=1)

    lines = [
        "Goodput retention (clean/crashed completion time) per crash preset, "
        f"seeds {list(SEEDS)} (mean):",
        f"{'preset':>16}  "
        + "  ".join(f"{p + ' retain':>14}" for p in results)
        + f"  {'outage(s)':>10}  {'ckpt fm/mp (B)':>14}",
    ]
    for preset in PRESETS:
        lines.append(
            f"{preset:>16}  "
            + "  ".join(
                f"{results[p][preset]['goodput_retention']:>14.4f}" for p in results
            )
            + f"  {results['fmtcp'][preset]['max_outage_s']:>10.2f}"
            + f"  {results['fmtcp'][preset]['checkpoint_bytes']:>6}/"
            + f"{results['mptcp'][preset]['checkpoint_bytes']}"
        )

    row = {
        "schema": 1,
        "label": os.environ.get("GITHUB_SHA", "local")[:12],
        "seeds": list(SEEDS),
        "duration_s": _duration(),
        "fmtcp_goodput_retention": results["fmtcp"]["receiver_crash"][
            "goodput_retention"
        ],
        "mptcp_goodput_retention": results["mptcp"]["receiver_crash"][
            "goodput_retention"
        ],
        "fmtcp_max_outage_s": results["fmtcp"]["receiver_crash"]["max_outage_s"],
        "mptcp_max_outage_s": results["mptcp"]["receiver_crash"]["max_outage_s"],
        "results": results,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    append_row(row, path=RECOVERY_LEDGER_PATH)
    lines.append(f"ledger row appended to {RECOVERY_LEDGER_PATH.name}")
    report("recovery_response", lines)

    for protocol, per_preset in results.items():
        for preset, point in per_preset.items():
            assert point["violations"] == 0, (
                f"{protocol}/{preset}: {point['violations']} invariant violations"
            )
    # The ratelessness claim at its sharpest: losing the receiver (and
    # with it every partial decode matrix) must cost FMTCP no more
    # relative goodput than it costs chunk-map-replaying MPTCP.
    fmtcp_retain = results["fmtcp"]["receiver_crash"]["goodput_retention"]
    mptcp_retain = results["mptcp"]["receiver_crash"]["goodput_retention"]
    assert fmtcp_retain >= mptcp_retain, (
        f"FMTCP retention {fmtcp_retain} fell below MPTCP {mptcp_retain} "
        f"under receiver_crash"
    )
