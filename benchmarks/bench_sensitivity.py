"""Sensitivity sweeps around the paper's operating points (extension).

Maps FMTCP's advantage over the loss / bandwidth / delay-asymmetry axes
and cross-checks measured goodput against the PFTK closed-form
prediction (:mod:`repro.analysis.throughput`).
"""

from __future__ import annotations

from benchmarks.conftest import bench_duration
from repro.experiments.sensitivity import (
    sweep_bandwidth,
    sweep_delay_asymmetry,
    sweep_loss,
)


def _lines_for(points, title):
    lines = [
        title,
        f"{'point':>14} {'FMTCP MB/s':>11} {'MPTCP MB/s':>11} {'ratio':>6} "
        f"{'PFTK F':>8} {'PFTK M':>8}",
    ]
    for point in points:
        fmtcp = point.results["fmtcp"].summary["goodput_mbytes_per_s"]
        mptcp = point.results["mptcp"].summary["goodput_mbytes_per_s"]
        lines.append(
            f"{point.label:>14} {fmtcp:>11.3f} {mptcp:>11.3f} {point.advantage:>6.2f} "
            f"{point.predicted_bps['fmtcp'] / 8e6:>8.3f} "
            f"{point.predicted_bps['mptcp'] / 8e6:>8.3f}"
        )
    return lines


def test_sensitivity_loss_sweep(benchmark, report):
    duration = min(bench_duration(), 30.0)
    points = benchmark.pedantic(
        lambda: sweep_loss(duration_s=duration), rounds=1, iterations=1
    )
    lines = _lines_for(points, "subflow-2 loss sweep (both paths 100 ms)")
    # FMTCP's advantage must grow with subflow-2 loss.
    advantages = [point.advantage for point in points]
    assert advantages[-1] > advantages[0]
    assert advantages[-1] > 1.2
    # PFTK should land within 2x of measurement for the lossy points
    # (closed-form models are ballpark tools, not oracles).
    for point in points[2:]:
        measured_bps = point.results["fmtcp"].summary["goodput_mbps"] * 1e6
        predicted = point.predicted_bps["fmtcp"]
        assert 0.4 < measured_bps / predicted < 2.5, point.label
    report("sensitivity_loss", lines)


def test_sensitivity_bandwidth_sweep(benchmark, report):
    duration = min(bench_duration(), 30.0)
    points = benchmark.pedantic(
        lambda: sweep_bandwidth(duration_s=duration), rounds=1, iterations=1
    )
    lines = _lines_for(points, "per-path bandwidth sweep (case 4 parameters)")
    # Goodput grows with bandwidth for both protocols.
    fmtcp_rates = [
        point.results["fmtcp"].summary["goodput_mbytes_per_s"] for point in points
    ]
    assert fmtcp_rates == sorted(fmtcp_rates)
    # FMTCP's advantage grows with bandwidth: the higher the BDP relative
    # to the (fixed) receive buffer, the harder head-of-line blocking
    # bites the baseline. At the lowest bandwidth the buffer is ample and
    # MPTCP can edge ahead by FMTCP's coding tax — a real finding, kept
    # visible in the report rather than asserted away.
    assert points[-1].advantage > points[0].advantage
    assert points[-1].advantage > 1.1
    report("sensitivity_bandwidth", lines)


def test_sensitivity_delay_asymmetry_sweep(benchmark, report):
    duration = min(bench_duration(), 30.0)
    points = benchmark.pedantic(
        lambda: sweep_delay_asymmetry(duration_s=duration), rounds=1, iterations=1
    )
    lines = _lines_for(points, "subflow-2 delay sweep (10 % loss on subflow 2)")
    # At large delay asymmetry the lossy path is also slow; FMTCP must not
    # fall behind the baseline anywhere on this axis by more than a shade.
    for point in points:
        assert point.advantage > 0.85, point.label
    report("sensitivity_delay", lines)
