"""Streaming QoE — the paper's closing claim, quantified (extension).

"The simulation results also show that FMTCP is suitable for multimedia
transportation and real-time applications with low delay and jitter."
This benchmark streams a GOP-structured VBR video over the case-4 path
pair with every transport and reports what a player cares about:
end-to-end (codec → screen) latency percentiles and the stall fraction
at realistic playout-buffer depths.
"""

from __future__ import annotations

from benchmarks.conftest import bench_duration
from repro.core.config import FmtcpConfig
from repro.core.connection import FmtcpConnection
from repro.fixedrate.connection import FixedRateConfig, FixedRateConnection
from repro.metrics.latency import AppLatencyCollector
from repro.mptcp.connection import MptcpConfig, MptcpConnection
from repro.net.topology import build_two_path_network
from repro.sim.rng import RngStreams
from repro.sim.trace import TraceBus
from repro.tcp.stream import TcpConfig, TcpConnection
from repro.workloads.scenarios import TABLE1_CASES, table1_path_configs
from repro.workloads.video import VbrVideoSource

VIDEO_RATE_BPS = 2.0e6


def stream_over(protocol, duration, seed=9):
    trace = TraceBus()
    network, paths = build_two_path_network(
        table1_path_configs(TABLE1_CASES[3]), rng=RngStreams(seed), trace=trace
    )
    source = VbrVideoSource(
        network.sim, mean_rate_bps=VIDEO_RATE_BPS, fps=25.0, seed=seed
    )
    collector = AppLatencyCollector(trace, source)
    if protocol == "fmtcp":
        connection = FmtcpConnection(
            network.sim, paths, source, config=FmtcpConfig(), trace=trace,
            rng=RngStreams(seed),
        )
    elif protocol == "mptcp":
        connection = MptcpConnection(
            network.sim, paths, source, config=MptcpConfig(recv_buffer_chunks=93),
            trace=trace,
        )
    elif protocol == "fixedrate":
        connection = FixedRateConnection(
            network.sim, paths, source, config=FixedRateConfig(), trace=trace
        )
    else:
        connection = TcpConnection(
            network.sim, paths[0], source, config=TcpConfig(), trace=trace
        )
    source.attach(connection)
    connection.start()
    network.sim.run(until=duration)
    return collector


def test_streaming_qoe(benchmark, report):
    duration = min(bench_duration(), 40.0)

    def run():
        return {
            protocol: stream_over(protocol, duration)
            for protocol in ("tcp", "mptcp", "fixedrate", "fmtcp")
        }

    collectors = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"{VIDEO_RATE_BPS / 1e6:.1f} Mbit/s VBR video over case 4 paths, "
        f"{duration:.0f}s (codec-to-delivery latency)",
        f"{'transport':>10} {'p50':>8} {'p95':>8} {'p99':>8} "
        f"{'stall@300ms':>12} {'stall@800ms':>12}",
    ]
    stats = {}
    for protocol, collector in collectors.items():
        stats[protocol] = {
            "p50": collector.percentile_latency_s(50),
            "p95": collector.percentile_latency_s(95),
            "stall_300": collector.stall_fraction(0.3),
            "stall_800": collector.stall_fraction(0.8),
        }
        lines.append(
            f"{protocol:>10} {stats[protocol]['p50'] * 1e3:>6.0f}ms "
            f"{stats[protocol]['p95'] * 1e3:>6.0f}ms "
            f"{collector.percentile_latency_s(99) * 1e3:>6.0f}ms "
            f"{stats[protocol]['stall_300']:>11.1%} "
            f"{stats[protocol]['stall_800']:>11.1%}"
        )

    # FMTCP's latency tail beats both multipath alternatives.
    assert stats["fmtcp"]["p95"] < stats["mptcp"]["p95"]
    assert stats["fmtcp"]["stall_800"] <= stats["mptcp"]["stall_800"]
    # And the stream is actually viable over FMTCP with a sub-second
    # buffer (short REPRO_FAST runs weigh the slow-start transient more).
    stall_budget = 0.05 if duration >= 30.0 else 0.10
    assert stats["fmtcp"]["stall_800"] < stall_budget
    report("streaming_qoe", lines)
