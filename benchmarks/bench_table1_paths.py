"""Table I — validate that the simulated paths realise their parameters.

The paper's Table I is an input table (subflow 2's delay and loss per test
case). This benchmark drives raw traffic over each configured path and
checks the *measured* loss rate and one-way delay against the configured
values, which validates the substrate underneath every other experiment.
"""

from __future__ import annotations

from repro.net.packet import Packet
from repro.net.topology import build_two_path_network
from repro.sim.rng import RngStreams
from repro.workloads.scenarios import TABLE1_CASES, table1_path_configs

PROBES = 5000


def measure_path(case, seed=1):
    network, paths = build_two_path_network(
        table1_path_configs(case), rng=RngStreams(seed)
    )
    path = paths[1]  # subflow 2 carries the case parameters
    sim = network.sim
    arrivals = []
    network.nodes["dst"].bind(50, lambda packet: arrivals.append(sim.now - packet.sent_at))

    def send_probe(index):
        packet = Packet(size=100, src="src", dst="dst", src_port=49, dst_port=50)
        packet.sent_at = sim.now
        path.send_forward(packet)
        if index + 1 < PROBES:
            sim.schedule(0.002, send_probe, index + 1)

    send_probe(0)
    sim.run()
    measured_loss = 1.0 - len(arrivals) / PROBES
    mean_delay = sum(arrivals) / len(arrivals)
    return measured_loss, mean_delay


def test_table1_path_fidelity(benchmark, report):
    def run():
        return [(case, *measure_path(case)) for case in TABLE1_CASES]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"{'case':>4} {'cfg delay':>10} {'meas delay':>11} {'cfg loss':>9} {'meas loss':>10}"
    ]
    for case, measured_loss, mean_delay in rows:
        lines.append(
            f"{case.case_id:>4} {case.delay_s * 1e3:>8.0f}ms {mean_delay * 1e3:>9.1f}ms "
            f"{case.loss_rate * 1e2:>8.1f}% {measured_loss * 1e2:>9.1f}%"
        )
        # Serialisation of a 100B probe adds ~0.2 ms on a 4 Mbit/s link.
        assert abs(mean_delay - case.delay_s) < 0.002
        assert abs(measured_loss - case.loss_rate) < 0.02
    report("table1_path_fidelity", lines)
