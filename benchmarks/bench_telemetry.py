"""Micro-benchmarks for the telemetry layer's hot paths.

The acceptance bar for observability is that it costs nothing when off
and little when on: an emit with no subscribers must stay a cheap guard,
a P² observation is a handful of float compares, and the flight
recorder's ring append is O(1). These benchmarks pin those costs so a
regression shows up as a number, not a vibe.
"""

from __future__ import annotations

import random
import time

from repro.sim.trace import TraceBus
from repro.telemetry.flight import FlightRecorder
from repro.telemetry.registry import MetricsRegistry, StreamingHistogram


def test_emit_with_no_subscribers(benchmark):
    """The off path: every hot-path call site checks this guard."""
    trace = TraceBus()

    def emit_batch():
        for index in range(1000):
            if trace.has_subscribers("subflow.send"):
                trace.emit(0.0, "subflow.send", subflow=0, seq=index)
        return trace.has_subscribers("subflow.send")

    assert benchmark(emit_batch) is False


def test_emit_into_flight_recorder(benchmark):
    """The on path: full emit fan-out into the bounded ring."""
    trace = TraceBus()
    flight = FlightRecorder(trace, capacity=512)

    def emit_batch():
        for index in range(1000):
            trace.emit(0.0, "subflow.send", subflow=0, seq=index)
        return len(flight)

    assert benchmark(emit_batch) == 512


def test_histogram_observe(benchmark):
    rng = random.Random(3)
    samples = [rng.expovariate(10.0) for __ in range(1000)]

    def observe_batch():
        histogram = StreamingHistogram("rtt")
        for x in samples:
            histogram.observe(x)
        return histogram.count

    assert benchmark(observe_batch) == 1000


def test_registry_lookup_and_set(benchmark):
    """Sampler inner loop: get-or-create plus a gauge set per metric."""
    registry = MetricsRegistry()

    def sample_batch():
        for __ in range(200):
            registry.gauge("subflow0.cwnd").set(12.0)
            registry.gauge("subflow0.in_flight").set(9.0)
            registry.counter("subflow0.suspect_samples").inc(0)
        return len(registry)

    assert benchmark(sample_batch) == 3


def _make_packet_builder(trace):
    """A thunk that builds FMTCP packets (real GF(2) encoding) against
    the given trace bus — the bench_micro encode/allocation hot path."""
    from repro.core.allocation import AllocationResult
    from repro.core.blocks import BlockManager
    from repro.core.config import FmtcpConfig
    from repro.core.sender import FmtcpSender
    from repro.sim.engine import Simulator
    from repro.workloads.sources import BulkSource

    class _FakeSubflow:
        subflow_id = 0

    config = FmtcpConfig(coding="real")
    blocks = BlockManager(config, BulkSource(), rng=random.Random(1))
    blocks.replenish()
    sender = FmtcpSender(Simulator(), config, blocks, trace=trace)
    subflow = _FakeSubflow()
    block_id = blocks.pending_blocks[0].block_id
    result = AllocationResult(vector=[(block_id, 40)])

    def build(calls: int = 100) -> None:
        for __ in range(calls):
            sender._build_packet(subflow, result)

    return build


def test_span_guard_overhead_disabled_tracing():
    """Satellite guarantee: with tracing fully disabled, the span guards
    on the encode/allocation hot path cost <= 2% versus no trace bus at
    all. The guard is two attribute loads + a dict lookup per packet;
    GF(2) symbol encoding dwarfs it. Reps are interleaved and min-taken
    so CPU frequency drift hits both sides equally."""
    baseline_build = _make_packet_builder(trace=None)
    guarded_build = _make_packet_builder(trace=TraceBus())  # no subscribers
    baseline_build()  # warm both code paths before timing
    guarded_build()
    baseline = guarded = float("inf")
    for __ in range(9):
        start = time.perf_counter()
        baseline_build()
        baseline = min(baseline, time.perf_counter() - start)
        start = time.perf_counter()
        guarded_build()
        guarded = min(guarded, time.perf_counter() - start)
    ratio = guarded / baseline
    assert ratio <= 1.02, (
        f"span guards cost {ratio - 1:.2%} on the packet-build path "
        f"with tracing disabled (budget 2%)"
    )
