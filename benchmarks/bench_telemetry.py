"""Micro-benchmarks for the telemetry layer's hot paths.

The acceptance bar for observability is that it costs nothing when off
and little when on: an emit with no subscribers must stay a cheap guard,
a P² observation is a handful of float compares, and the flight
recorder's ring append is O(1). These benchmarks pin those costs so a
regression shows up as a number, not a vibe.
"""

from __future__ import annotations

import random

from repro.sim.trace import TraceBus
from repro.telemetry.flight import FlightRecorder
from repro.telemetry.registry import MetricsRegistry, StreamingHistogram


def test_emit_with_no_subscribers(benchmark):
    """The off path: every hot-path call site checks this guard."""
    trace = TraceBus()

    def emit_batch():
        for index in range(1000):
            if trace.has_subscribers("subflow.send"):
                trace.emit(0.0, "subflow.send", subflow=0, seq=index)
        return trace.has_subscribers("subflow.send")

    assert benchmark(emit_batch) is False


def test_emit_into_flight_recorder(benchmark):
    """The on path: full emit fan-out into the bounded ring."""
    trace = TraceBus()
    flight = FlightRecorder(trace, capacity=512)

    def emit_batch():
        for index in range(1000):
            trace.emit(0.0, "subflow.send", subflow=0, seq=index)
        return len(flight)

    assert benchmark(emit_batch) == 512


def test_histogram_observe(benchmark):
    rng = random.Random(3)
    samples = [rng.expovariate(10.0) for __ in range(1000)]

    def observe_batch():
        histogram = StreamingHistogram("rtt")
        for x in samples:
            histogram.observe(x)
        return histogram.count

    assert benchmark(observe_batch) == 1000


def test_registry_lookup_and_set(benchmark):
    """Sampler inner loop: get-or-create plus a gauge set per metric."""
    registry = MetricsRegistry()

    def sample_batch():
        for __ in range(200):
            registry.gauge("subflow0.cwnd").set(12.0)
            registry.gauge("subflow0.in_flight").set(9.0)
            registry.counter("subflow0.suspect_samples").inc(0)
        return len(registry)

    assert benchmark(sample_batch) == 3
