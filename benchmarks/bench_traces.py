"""Trace-replay response: FMTCP-vs-MPTCP goodput across channel families.

Sweeps the trace families of :mod:`repro.traces` (GPRS fade trains, LEO
handover, datacenter incast, the bundled cellular/WiFi replay assets,
plus the clean no-trace baseline) with the trace riding path 1 for the
whole run, and reports a protocol x family goodput heatmap with the
FMTCP/MPTCP ratio per family — the paper's ratelessness argument says
the ratio should be largest where loss is bursty and capacity swings
hard (GPRS), because fountain coding is indifferent to *which* packets
a fade kills.

Writes the human-readable heatmap plus the machine-readable row ledger
``benchmarks/results/BENCH_traces.json``; ``trajectory.py check`` gates
on the newest row (the GPRS-family FMTCP/MPTCP ratio must stay >= 1.0
and must not regress).
"""

from __future__ import annotations

import os

from benchmarks.conftest import RESULTS_DIR, bench_duration
from benchmarks.trajectory import TRACES_LEDGER_PATH, append_row
from repro.metrics.stats import mean
from repro.traces import measure_trace_goodput

# None = clean baseline column; the rest resolve via resolve_trace.
FAMILIES = (
    ("baseline", None),
    ("gprs", "gprs:1"),
    ("leo", "leo:1"),
    ("incast", "incast:1"),
    ("cellular", "cellular_drive"),
    ("wifi", "wifi_walk"),
)
SEEDS = (1,) if os.environ.get("REPRO_FAST") else (1, 2, 3)


def _duration() -> float:
    # Long enough for several trace periods (LEO passes are ~5 s,
    # generator traces loop at 16 s) without dominating the bench job.
    return min(bench_duration(), 20.0)


def _measure_all():
    duration = _duration()
    results = {}
    for protocol in ("fmtcp", "mptcp"):
        per_family = {}
        for family, spec in FAMILIES:
            per_family[family] = round(
                mean(
                    [
                        measure_trace_goodput(
                            protocol, spec, seed=seed, duration_s=duration
                        )
                        for seed in SEEDS
                    ]
                ),
                4,
            )
        results[protocol] = per_family
    return results


def test_trace_response(benchmark, report):
    results = benchmark.pedantic(_measure_all, rounds=1, iterations=1)

    ratios = {
        family: (
            round(results["fmtcp"][family] / results["mptcp"][family], 4)
            if results["mptcp"][family]
            else float("inf")
        )
        for family, __ in FAMILIES
    }
    lines = [
        f"Goodput (Mb/s) with the trace riding path 1, seeds {list(SEEDS)} (mean):",
        f"{'family':>10}  {'fmtcp':>8}  {'mptcp':>8}  {'fm/mp':>6}",
    ]
    for family, __ in FAMILIES:
        lines.append(
            f"{family:>10}  {results['fmtcp'][family]:>8.4f}  "
            f"{results['mptcp'][family]:>8.4f}  {ratios[family]:>6.3f}"
        )

    row = {
        "schema": 1,
        "label": os.environ.get("GITHUB_SHA", "local")[:12],
        "seeds": list(SEEDS),
        "duration_s": _duration(),
        "fmtcp_gprs_ratio": ratios["gprs"],
        "fmtcp_gprs_goodput": results["fmtcp"]["gprs"],
        "mptcp_gprs_goodput": results["mptcp"]["gprs"],
        "ratios": ratios,
        "results": results,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    append_row(row, path=TRACES_LEDGER_PATH)
    lines.append(f"ledger row appended to {TRACES_LEDGER_PATH.name}")
    report("trace_response", lines)

    # The fountain-coding claim where the related work says it is
    # sharpest: on a GPRS-like slow bursty link FMTCP must at least
    # match MPTCP, whose retransmissions chase specific lost packets
    # through every fade.
    assert ratios["gprs"] >= 1.0, (
        f"FMTCP/MPTCP goodput ratio {ratios['gprs']} < 1.0 on the "
        f"GPRS-like trace ({results['fmtcp']['gprs']} vs "
        f"{results['mptcp']['gprs']} Mb/s)"
    )
