"""Benchmark-harness plumbing.

Each benchmark regenerates one paper table/figure and registers a
human-readable report. Reports are written to ``benchmarks/results/`` and
echoed in pytest's terminal summary (so they survive output capture).

Durations: paper runs are 300 s; benchmarks default to 60 s per run
(shapes are stable well before that). Override with
``REPRO_BENCH_DURATION`` seconds, or set ``REPRO_FAST=1`` for 15 s smoke
runs.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List

import pytest

RESULTS_DIR = Path(__file__).parent / "results"
_REPORTS: List[str] = []


def bench_duration() -> float:
    if os.environ.get("REPRO_BENCH_DURATION"):
        return float(os.environ["REPRO_BENCH_DURATION"])
    if os.environ.get("REPRO_FAST"):
        return 15.0
    return 60.0


def surge_duration() -> float:
    """Fig. 4 needs its 50 s / 200 s schedule; scale it down in fast mode."""
    if os.environ.get("REPRO_FAST"):
        return 90.0
    return 300.0


@pytest.fixture
def report():
    """Register a report: ``report(name, lines)``."""

    def _record(name: str, lines: List[str]) -> None:
        text = "\n".join(lines)
        _REPORTS.append(f"--- {name} ---\n{text}")
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _record


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    terminalreporter.section("paper reproduction reports")
    for block in _REPORTS:
        terminalreporter.write_line(block)
        terminalreporter.write_line("")
