"""Cross-PR performance-trajectory ledger.

Every ``BENCH_*.json`` baseline in this directory captures one PR's
snapshot; none of them connect across PRs, so a slow events/sec bleed is
invisible until someone diffs old artifacts by hand. This ledger fixes
that: ``record`` appends one schema-versioned row (events/sec, wall
time, goodput, per-stage block-delay medians from the span layer) to
``results/BENCH_trajectory.json``, and ``check`` fails when the newest
row regresses more than a threshold against the previous one. CI's
``perf-smoke`` job runs both on every push (see
``.github/workflows/ci.yml``).

Usage::

    PYTHONPATH=src python benchmarks/trajectory.py record --label my-change
    PYTHONPATH=src python benchmarks/trajectory.py check --threshold 0.25
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

SCHEMA_VERSION = 1
LEDGER_PATH = Path(__file__).parent / "results" / "BENCH_trajectory.json"
# Row ledger appended by benchmarks/bench_recovery.py; `check` gates on
# it when present (crash-recovery goodput retention must not regress).
RECOVERY_LEDGER_PATH = Path(__file__).parent / "results" / "BENCH_recovery.json"
# Row ledger appended by benchmarks/bench_traces.py; `check` gates on it
# when present (FMTCP/MPTCP goodput ratio on the GPRS-like trace must
# stay >= 1.0 and must not regress).
TRACES_LEDGER_PATH = Path(__file__).parent / "results" / "BENCH_traces.json"

# The probe workload: one fixed Table I transfer, profiled + span-traced.
PROBE_PROTOCOL = "fmtcp"
PROBE_CASE = 2
PROBE_DURATION_S = 8.0
PROBE_SEED = 1


def probe(
    duration_s: float = PROBE_DURATION_S,
    seed: int = PROBE_SEED,
    case_id: int = PROBE_CASE,
    protocol: str = PROBE_PROTOCOL,
    label: str = "local",
) -> Dict[str, object]:
    """Run the fixed probe transfer and shape one ledger row."""
    from repro.experiments.runner import run_transfer
    from repro.telemetry import TelemetryConfig
    from repro.workloads.scenarios import TABLE1_CASES, table1_path_configs

    case = next(c for c in TABLE1_CASES if c.case_id == case_id)
    result = run_transfer(
        protocol,
        table1_path_configs(case),
        duration_s=duration_s,
        seed=seed,
        telemetry=TelemetryConfig(profile_sim=True, spans=True),
    )
    profile = result.telemetry.profile
    spans = result.telemetry.spans
    stage_p50_ms: Dict[str, float] = {}
    for stages in spans["stages"].values():
        for stage, snapshot in stages.items():
            stage_p50_ms[stage] = round(snapshot["p50"], 4)
    events = profile["events"]
    events_per_s = profile["events_per_s"]
    return {
        "schema": SCHEMA_VERSION,
        "label": label,
        "protocol": protocol,
        "case": case_id,
        "duration_s": duration_s,
        "seed": seed,
        "events": events,
        "events_per_s": round(events_per_s, 1),
        "wall_s": round(events / events_per_s, 4) if events_per_s else 0.0,
        "blocks": result.summary["blocks"],
        "goodput_mbytes_per_s": round(result.summary["goodput_mbytes_per_s"], 4),
        "spans_finished": spans["finished"],
        "max_conservation_error_s": spans["max_conservation_error_s"],
        "stage_p50_ms": stage_p50_ms,
    }


def load_ledger(path: Path = LEDGER_PATH) -> Dict[str, object]:
    if not path.exists():
        return {"schema": SCHEMA_VERSION, "rows": []}
    with open(path) as handle:
        ledger = json.load(handle)
    if ledger.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"{path} has ledger schema {ledger.get('schema')!r}; "
            f"this tool speaks {SCHEMA_VERSION}"
        )
    return ledger


def append_row(row: Dict[str, object], path: Path = LEDGER_PATH) -> Dict[str, object]:
    ledger = load_ledger(path)
    ledger["rows"].append(row)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(ledger, handle, indent=2)
        handle.write("\n")
    return ledger


def check_regression(
    rows: List[Dict[str, object]],
    metric: str = "events_per_s",
    threshold: float = 0.25,
) -> Optional[str]:
    """Compare the newest row against the previous one.

    Returns an error string when ``metric`` dropped by more than
    ``threshold`` (fraction), ``None`` when fine or with fewer than two
    rows (the first row seeds the trajectory; nothing to compare).
    """
    if len(rows) < 2:
        return None
    previous, latest = rows[-2], rows[-1]
    base = previous.get(metric, 0)
    current = latest.get(metric, 0)
    if not base:
        return None
    drop = (base - current) / base
    if drop > threshold:
        return (
            f"{metric} regressed {drop:.1%} "
            f"({base:g} -> {current:g}, threshold {threshold:.0%}; "
            f"previous row {previous.get('label', '?')!r}, "
            f"latest {latest.get('label', '?')!r})"
        )
    return None


def cmd_record(args: argparse.Namespace) -> int:
    row = probe(label=args.label)
    ledger = append_row(row)
    print(
        f"appended row {len(ledger['rows'])} to {LEDGER_PATH}: "
        f"{row['events_per_s']:g} events/s, wall {row['wall_s']:g}s, "
        f"{row['spans_finished']} spans"
    )
    return 0


def cmd_check(args: argparse.Namespace) -> int:
    ledger = load_ledger()
    rows = ledger["rows"]
    if not rows:
        print(f"error: {LEDGER_PATH} has no rows; run `record` first", file=sys.stderr)
        return 1
    error = check_regression(rows, threshold=args.threshold)
    if error is not None:
        print(f"error: {error}", file=sys.stderr)
        return 1
    latest = rows[-1]
    print(
        f"trajectory ok: {len(rows)} rows, latest "
        f"{latest['events_per_s']:g} events/s "
        f"(threshold {args.threshold:.0%})"
    )
    if RECOVERY_LEDGER_PATH.exists():
        recovery_rows = load_ledger(RECOVERY_LEDGER_PATH)["rows"]
        if recovery_rows:
            error = check_regression(
                recovery_rows,
                metric="fmtcp_goodput_retention",
                threshold=args.threshold,
            )
            if error is not None:
                print(f"error: recovery {error}", file=sys.stderr)
                return 1
            newest = recovery_rows[-1]
            fmtcp = newest.get("fmtcp_goodput_retention", 0)
            mptcp = newest.get("mptcp_goodput_retention", 0)
            if fmtcp < mptcp:
                print(
                    f"error: recovery retention inverted: FMTCP {fmtcp:g} "
                    f"< MPTCP {mptcp:g} under receiver_crash",
                    file=sys.stderr,
                )
                return 1
            print(
                f"recovery ok: {len(recovery_rows)} rows, latest retention "
                f"fmtcp {fmtcp:g} / mptcp {mptcp:g}"
            )
    if TRACES_LEDGER_PATH.exists():
        trace_rows = load_ledger(TRACES_LEDGER_PATH)["rows"]
        if trace_rows:
            error = check_regression(
                trace_rows,
                metric="fmtcp_gprs_ratio",
                threshold=args.threshold,
            )
            if error is not None:
                print(f"error: traces {error}", file=sys.stderr)
                return 1
            newest = trace_rows[-1]
            ratio = newest.get("fmtcp_gprs_ratio", 0)
            if ratio < 1.0:
                print(
                    f"error: trace-replay ratio inverted: FMTCP/MPTCP "
                    f"goodput {ratio:g} < 1.0 on the GPRS-like trace",
                    file=sys.stderr,
                )
                return 1
            print(
                f"traces ok: {len(trace_rows)} rows, latest GPRS "
                f"fmtcp/mptcp ratio {ratio:g}"
            )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="perf-trajectory ledger: record probe rows, gate regressions"
    )
    sub = parser.add_subparsers(dest="command", required=True)
    record = sub.add_parser("record", help="run the probe and append a row")
    record.add_argument("--label", type=str, default="local", help="row provenance")
    record.set_defaults(fn=cmd_record)
    check = sub.add_parser("check", help="fail on events/sec regression")
    check.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="max tolerated fractional drop vs the previous row",
    )
    check.set_defaults(fn=cmd_check)
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
