#!/usr/bin/env python3
"""Is FMTCP TCP-friendly? A shared-bottleneck contention demo.

The paper (Section III-A) argues FMTCP's coding layer sits *above*
ordinary per-subflow congestion control, so it competes like a TCP flow.
This example pits one flow-under-test (plain TCP, then FMTCP) against
three plain TCP flows through a 10 Mbit/s drop-tail bottleneck and prints
the goodput split, Jain's fairness index, and a bar chart.

Run:  python examples/fairness_bottleneck.py
"""

from repro.experiments.fairness import run_fairness
from repro.experiments.reporting import bar_chart

DURATION_S = 30.0
COMPETITORS = 3


def main() -> None:
    print(
        f"1 flow under test vs {COMPETITORS} plain TCP flows, "
        f"10 Mbit/s bottleneck, 20 ms, drop-tail, {DURATION_S:.0f}s\n"
    )
    for protocol in ("tcp", "fmtcp"):
        result = run_fairness(
            protocol_under_test=protocol,
            n_competitors=COMPETITORS,
            duration_s=DURATION_S,
            seed=21,
        )
        title = "control (TCP vs TCPs)" if protocol == "tcp" else "FMTCP vs TCPs"
        print(f"--- {title}")
        rows = [
            (name if name != "under_test" else f"{protocol}*", rate)
            for name, rate in sorted(result.rates_mbps.items())
        ]
        for line in bar_chart(rows, width=36, unit=" Mbit/s"):
            print(f"  {line}")
        print(
            f"  Jain fairness index {result.jain:.3f}; flow under test at "
            f"{result.test_flow_share:.0%} of its fair share\n"
        )
    print(
        "FMTCP lands slightly *below* fair share: the fountain's redundancy\n"
        "(≈5 %) is paid out of its own goodput, never out of its neighbours'."
    )


if __name__ == "__main__":
    main()
