#!/usr/bin/env python3
"""The fountain codec by itself: encode a file, decode through an erasure
channel, and measure the overhead Eq. (7) promises.

Demonstrates both codecs in :mod:`repro.fountain`:

* the random-linear code FMTCP uses (dense coefficients, Gaussian
  elimination, ~1.6 expected extra symbols for any block size), and
* LT codes with the robust Soliton distribution (sparse, linear-time
  peeling decode, a few percent overhead).

Run:  python examples/fountain_codec_demo.py
"""

import random
import time

from repro.fountain import (
    BlockDecoder,
    BlockEncoder,
    LtDecoder,
    LtEncoder,
    expected_overhead_symbols,
)


def transmit_random_linear(data: bytes, k: int, part_size: int, loss: float, rng):
    """Send symbols through a Bernoulli erasure channel until decode."""
    encoder = BlockEncoder(data, k=k, part_size=part_size, rng=rng)
    decoder = BlockDecoder(k=k, part_size=part_size, data_length=len(data))
    sent = 0
    while not decoder.is_complete:
        symbol = encoder.next_symbol()
        sent += 1
        if rng.random() >= loss:
            decoder.add_symbol(symbol)
    return decoder.decode(), sent


def transmit_lt(data: bytes, k: int, part_size: int, loss: float, rng):
    encoder = LtEncoder(data, k=k, part_size=part_size, rng=rng)
    decoder = LtDecoder(k=k, part_size=part_size, data_length=len(data))
    sent = 0
    while not decoder.is_complete:
        symbol = encoder.next_symbol()
        sent += 1
        if rng.random() >= loss:
            decoder.add_symbol(symbol)
        if sent % 64 == 0:
            decoder.try_ge_completion()
    return decoder.decode(), sent


def main() -> None:
    rng = random.Random(42)
    k, part_size = 256, 32
    block = bytes(rng.getrandbits(8) for __ in range(k * part_size))
    print(f"Block: {len(block)} bytes as {k} parts of {part_size} bytes\n")

    print("Random-linear fountain (the paper's Eq. (1) code):")
    for loss in (0.0, 0.1, 0.3):
        t0 = time.perf_counter()
        recovered, sent = transmit_random_linear(block, k, part_size, loss, rng)
        elapsed_ms = (time.perf_counter() - t0) * 1e3
        assert recovered == block, "decode mismatch!"
        ideal = k / (1.0 - loss)
        print(
            f"  loss {loss:>4.0%}: {sent} symbols sent "
            f"(ideal {ideal:.0f}, overhead {sent / ideal - 1:+.1%}), "
            f"decoded correctly in {elapsed_ms:.1f} ms"
        )
    print(
        f"  theory: expected extra symbols at the decoder = "
        f"{expected_overhead_symbols(k):.2f} (≈1.6 for any large k)\n"
    )

    print("LT code with robust Soliton degrees (sparse extension):")
    for loss in (0.0, 0.1):
        recovered, sent = transmit_lt(block, k, part_size, loss, rng)
        assert recovered == block, "decode mismatch!"
        ideal = k / (1.0 - loss)
        print(
            f"  loss {loss:>4.0%}: {sent} symbols sent "
            f"(ideal {ideal:.0f}, overhead {sent / ideal - 1:+.1%})"
        )

    print("\nWhy FMTCP can skip retransmissions: any fresh random symbol is")
    print("as good as the one that was lost — the sender only needs to keep")
    print("the receiver's expected rank above k̂ + log2(1/δ̂).")


if __name__ == "__main__":
    main()
