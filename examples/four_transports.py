#!/usr/bin/env python3
"""All four transports, one scenario: the repository's full cast.

Runs conventional TCP (best single path), IETF-MPTCP, fixed-rate FEC
multipath, and FMTCP over the same heterogeneous path pair — first under
steady loss (Table I case 4), then through a total blackout of the lossy
path — and prints a side-by-side comparison. This is the paper's whole
argument in one screen:

* MPTCP falls below single-path TCP when one path is bad (Section I);
* fixed-rate coding is competitive on stationary loss but pins repairs
  to the original path and stalls when that path dies (Section III-B);
* FMTCP matches the best of both and keeps flowing through the blackout.

Run:  python examples/four_transports.py
"""

from repro import run_transfer, table1_path_configs, TABLE1_CASES
from repro.metrics.stats import mean
from repro.net.loss import ScheduledLoss
from repro.net.topology import PathConfig

PROTOCOL_LABELS = {
    "tcp": "TCP (best path)",
    "mptcp": "IETF-MPTCP",
    "fixedrate": "fixed-rate FEC",
    "fmtcp": "FMTCP",
}


def blackout_paths():
    return [
        PathConfig(bandwidth_bps=4e6, delay_s=0.050, loss_rate=0.0),
        PathConfig(
            bandwidth_bps=4e6,
            delay_s=0.050,
            loss_model=ScheduledLoss([(0.0, 0.0), (10.0, 0.99), (20.0, 0.0)]),
        ),
    ]


def main() -> None:
    case = TABLE1_CASES[3]
    duration = 30.0
    print(f"Scenario A — steady heterogeneity ({case.label()}), {duration:.0f}s:\n")
    print(f"{'transport':<18}{'goodput MB/s':>14}{'block delay ms':>16}{'jitter ms':>11}")
    for protocol in ("tcp", "mptcp", "fixedrate", "fmtcp"):
        result = run_transfer(
            protocol, table1_path_configs(case), duration_s=duration, seed=13
        )
        print(
            f"{PROTOCOL_LABELS[protocol]:<18}"
            f"{result.summary['goodput_mbytes_per_s']:>14.3f}"
            f"{result.mean_block_delay_ms:>16.0f}"
            f"{result.jitter_ms:>11.1f}"
        )

    print("\nScenario B — path 2 blacks out during [10, 20)s of a 40s run.")
    print("Goodput rate (MB/s) inside the blackout window [13, 20)s:\n")
    for protocol in ("tcp", "mptcp", "fixedrate", "fmtcp"):
        result = run_transfer(
            protocol,
            blackout_paths(),
            duration_s=40.0,
            seed=13,
            collect_series=True,
        )
        inside = mean(
            [rate for t, rate in result.goodput_series if 13.0 <= t < 20.0]
        )
        total = result.summary["total_mbytes"]
        bar = "█" * int(inside * 40)
        print(
            f"{PROTOCOL_LABELS[protocol]:<18}{inside:>7.3f}  {bar:<20} "
            f"(total {total:.1f} MB)"
        )

    print(
        "\nFMTCP is the only multipath transport that keeps delivering while a"
        "\npath is dead: fresh fountain symbols ride whichever path is alive."
    )


if __name__ == "__main__":
    main()
