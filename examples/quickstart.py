#!/usr/bin/env python3
"""Quickstart: FMTCP vs IETF-MPTCP over two heterogeneous paths.

Builds the paper's two-disjoint-path topology with one clean path and one
lossy path (Table I test case 4: 100 ms / 15 %), runs a 30-second bulk
transfer under each protocol, and prints the three paper metrics:
goodput, mean block delivery delay, and block jitter.

Run:  python examples/quickstart.py
"""

from repro import TABLE1_CASES, run_transfer, table1_path_configs


def main() -> None:
    case = TABLE1_CASES[3]  # 100 ms one-way delay, 15 % loss on subflow 2
    duration_s = 30.0
    print(f"Scenario: subflow 1 = 100 ms / 0 %, subflow 2 = {case.label()}")
    print(f"Bulk transfer for {duration_s:.0f} s on 4 Mbit/s paths\n")

    results = {}
    for protocol in ("fmtcp", "mptcp"):
        results[protocol] = run_transfer(
            protocol=protocol,
            path_configs=table1_path_configs(case),
            duration_s=duration_s,
            seed=7,
        )

    header = f"{'metric':<28}{'FMTCP':>12}{'IETF-MPTCP':>14}"
    print(header)
    print("-" * len(header))
    rows = [
        ("goodput (MB/s)", "goodput_mbytes_per_s", "{:.3f}"),
        ("total delivered (MB)", "total_mbytes", "{:.2f}"),
        ("mean block delay (ms)", "mean_block_delay_ms", "{:.1f}"),
        ("block jitter (ms)", "jitter_ms", "{:.1f}"),
        ("95th pct delay (ms)", "delay_p95_ms", "{:.1f}"),
    ]
    for label, key, fmt in rows:
        fmtcp_value = fmt.format(results["fmtcp"].summary[key])
        mptcp_value = fmt.format(results["mptcp"].summary[key])
        print(f"{label:<28}{fmtcp_value:>12}{mptcp_value:>14}")

    fmtcp = results["fmtcp"]
    print(
        f"\nFMTCP internals: {fmtcp.extras['symbols_sent']} symbols sent, "
        f"{fmtcp.extras['symbols_lost']} lost in transit, "
        f"redundancy ratio {fmtcp.extras['redundancy_ratio']:.3f}"
    )
    mptcp = results["mptcp"]
    print(
        f"MPTCP internals: {mptcp.extras['chunks_retransmitted']} chunks "
        f"retransmitted, reorder-buffer high watermark "
        f"{mptcp.extras['reorder_high_watermark']} chunks"
    )
    speedup = (
        results["fmtcp"].summary["goodput_mbytes_per_s"]
        / results["mptcp"].summary["goodput_mbytes_per_s"]
    )
    print(f"\nFMTCP goodput advantage on this heterogeneous pair: {speedup:.2f}x")


if __name__ == "__main__":
    main()
