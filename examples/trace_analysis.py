#!/usr/bin/env python3
"""Record a simulation trace to JSONL and analyse it offline.

Every element of the substrate publishes structured events on the trace
bus; :class:`~repro.sim.tracefile.TraceFileWriter` persists them like an
ns-2 trace file. This example records an FMTCP transfer over a lossy
pair, then post-processes the file with nothing but the JSON — computing
goodput, per-subflow loss and the block-delay distribution exactly as an
external analysis pipeline would.

Run:  python examples/trace_analysis.py
"""

import collections
import tempfile
from pathlib import Path

from repro import BulkSource, FmtcpConfig, FmtcpConnection, PathConfig
from repro.metrics.stats import mean, percentile
from repro.net.topology import build_two_path_network
from repro.sim.rng import RngStreams
from repro.sim.trace import TraceBus
from repro.sim.tracefile import TraceFileWriter, read_trace_file

DURATION_S = 20.0


def record(trace_path: str) -> None:
    trace = TraceBus()
    network, paths = build_two_path_network(
        [
            PathConfig(bandwidth_bps=4e6, delay_s=0.040, loss_rate=0.0),
            PathConfig(bandwidth_bps=4e6, delay_s=0.040, loss_rate=0.10),
        ],
        rng=RngStreams(17),
        trace=trace,
    )
    connection = FmtcpConnection(
        network.sim, paths, BulkSource(), config=FmtcpConfig(), trace=trace,
        rng=RngStreams(17),
    )
    kinds = ["conn.delivered", "conn.block_done", "subflow.send", "subflow.loss"]
    with TraceFileWriter(trace, trace_path, kinds=kinds) as writer:
        connection.start()
        network.sim.run(until=DURATION_S)
        print(
            f"Recorded {writer.records_written} events over {DURATION_S:.0f}s "
            f"of simulated time -> {trace_path}"
        )


def analyse(trace_path: str) -> None:
    records = read_trace_file(trace_path)
    by_kind = collections.defaultdict(list)
    for record in records:
        by_kind[record["kind"]].append(record)

    delivered_bytes = sum(record["bytes"] for record in by_kind["conn.delivered"])
    print(f"\nGoodput: {delivered_bytes / DURATION_S / 1e6:.3f} MB/s "
          f"({delivered_bytes / 1e6:.2f} MB total)")

    sends = collections.Counter(r["subflow"] for r in by_kind["subflow.send"])
    losses = collections.Counter(r["subflow"] for r in by_kind["subflow.loss"])
    print("\nPer-subflow accounting (from subflow.send / subflow.loss events):")
    for subflow_id in sorted(sends):
        sent = sends[subflow_id]
        lost = losses.get(subflow_id, 0)
        print(
            f"  subflow {subflow_id}: {sent} packets sent, {lost} declared lost "
            f"({lost / sent:.1%})"
        )

    delays_ms = [record["delay"] * 1e3 for record in by_kind["conn.block_done"]]
    print(
        f"\nBlock delivery delay over {len(delays_ms)} blocks: "
        f"mean {mean(delays_ms):.0f} ms, p50 {percentile(delays_ms, 50):.0f} ms, "
        f"p95 {percentile(delays_ms, 95):.0f} ms, max {max(delays_ms):.0f} ms"
    )

    loss_times = [record["t"] for record in by_kind["subflow.loss"]]
    if loss_times:
        gaps = [b - a for a, b in zip(loss_times, loss_times[1:])]
        print(
            f"\nLoss events: {len(loss_times)}; mean inter-loss gap "
            f"{mean(gaps):.3f} s (allocator keeps traffic off the bad path,"
            f" so losses are rarer than the raw 10% link rate suggests)"
        )


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = str(Path(tmp) / "fmtcp_run.jsonl")
        record(trace_path)
        analyse(trace_path)


if __name__ == "__main__":
    main()
