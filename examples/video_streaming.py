#!/usr/bin/env python3
"""Multimedia streaming over heterogeneous paths (the paper's motivating app).

The paper argues FMTCP's low block delay and jitter make it "suitable for
multimedia transportation and real-time applications". This example
streams a constant-bit-rate source (a ~2.4 Mbit/s video) over a WiFi-like
clean path plus a cellular-like lossy path, and evaluates what a video
player cares about: per-block (frame-group) delivery delay, jitter, and
the stall rate a playout buffer of a given depth would see.

Run:  python examples/video_streaming.py
"""

from repro import CbrSource, PathConfig, run_transfer
from repro.metrics.stats import mean, percentile

VIDEO_RATE_BPS = 2.4e6
DURATION_S = 60.0


def make_paths():
    """Fresh path configs per run (loss models keep per-run RNG state)."""
    return [
        # "WiFi": moderate delay, clean.
        PathConfig(bandwidth_bps=6e6, delay_s=0.030, loss_rate=0.0),
        # "Cellular": higher delay, 8 % loss.
        PathConfig(bandwidth_bps=3e6, delay_s=0.080, loss_rate=0.08),
    ]


class LazyCbrSource:
    """A CBR source created on attach.

    ``run_transfer`` builds its own :class:`~repro.sim.engine.Simulator`,
    and :class:`~repro.workloads.sources.CbrSource` needs that simulator
    for its wakeups — so construction is deferred until the connection
    (which carries the simulator) attaches the source.
    """

    def __init__(self, rate_bps: float):
        self.rate_bps = rate_bps
        self._inner = None

    def attach(self, connection) -> None:
        self._inner = CbrSource(connection.sim, rate_bps=self.rate_bps)
        self._inner.attach(connection)

    def pull(self, max_bytes: int):
        if self._inner is None:
            return 0
        return self._inner.pull(max_bytes)


def playout_late_fraction(block_delays_s, playout_deadline_s: float) -> float:
    """Fraction of blocks a player with this playout delay would stall on."""
    if not block_delays_s:
        return 1.0
    late = sum(1 for delay in block_delays_s if delay > playout_deadline_s)
    return late / len(block_delays_s)


def main() -> None:
    print(
        f"Streaming a {VIDEO_RATE_BPS / 1e6:.1f} Mbit/s CBR video for "
        f"{DURATION_S:.0f}s over WiFi (6 Mbit/s, 30 ms) + cellular "
        f"(3 Mbit/s, 80 ms, 8 % loss)\n"
    )

    results = {
        protocol: run_transfer(
            protocol=protocol,
            path_configs=make_paths(),
            duration_s=DURATION_S,
            seed=11,
            source=LazyCbrSource(VIDEO_RATE_BPS),
        )
        for protocol in ("fmtcp", "mptcp")
    }

    header = f"{'metric':<30}{'FMTCP':>12}{'IETF-MPTCP':>14}"
    print(header)
    print("-" * len(header))
    for label, extract in (
        ("delivered (MB)", lambda r: f"{r.summary['total_mbytes']:.2f}"),
        ("mean block delay (ms)", lambda r: f"{r.mean_block_delay_ms:.1f}"),
        ("jitter (ms)", lambda r: f"{r.jitter_ms:.1f}"),
        ("p99 block delay (ms)", lambda r: f"{percentile(r.block_delays, 99) * 1e3:.1f}"),
    ):
        print(
            f"{label:<30}{extract(results['fmtcp']):>12}{extract(results['mptcp']):>14}"
        )

    print("\nStall probability vs playout buffer depth:")
    print(f"{'playout delay':<16}{'FMTCP':>10}{'MPTCP':>10}")
    for deadline_ms in (200, 300, 500, 800):
        fmtcp_late = playout_late_fraction(results["fmtcp"].block_delays, deadline_ms / 1e3)
        mptcp_late = playout_late_fraction(results["mptcp"].block_delays, deadline_ms / 1e3)
        print(f"{deadline_ms:>10} ms  {fmtcp_late:>9.1%} {mptcp_late:>9.1%}")

    fmtcp_mean = mean(results["fmtcp"].block_delays) * 1e3
    mptcp_mean = mean(results["mptcp"].block_delays) * 1e3
    print(
        f"\nA player over FMTCP can run with a ~{fmtcp_mean:.0f} ms buffer; "
        f"MPTCP needs ~{mptcp_mean:.0f} ms plus headroom for its delay spikes."
    )


if __name__ == "__main__":
    main()
