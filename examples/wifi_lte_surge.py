#!/usr/bin/env python3
"""Abrupt path-quality collapse: the Fig. 4 scenario as a user story.

A laptop is transferring a large file over WiFi + LTE. At t = 50 s the
user walks away from the access point and the WiFi path's loss rate jumps
to 30 %; at t = 200 s they come back. The paper's claim (Section V-A,
Fig. 4) is that IETF-MPTCP's aggregate rate collapses and oscillates
under the surge while FMTCP degrades gracefully and stays stable.

Run:  python examples/wifi_lte_surge.py
"""

from repro import run_transfer, surge_path_configs
from repro.metrics.stats import mean, stdev

SURGE_LOSS = 0.30
DURATION_S = 300.0
SURGE_START_S = 50.0
SURGE_END_S = 200.0


def phase_of(t: float) -> str:
    if t < SURGE_START_S:
        return "before"
    if t < SURGE_END_S:
        return "during"
    return "after"


def sparkline(series, lo: float = 0.0, hi: float = None) -> str:
    """Render a goodput time series as a unicode sparkline."""
    marks = "▁▂▃▄▅▆▇█"
    values = [value for __, value in series]
    hi = hi if hi is not None else (max(values) or 1.0)
    cells = []
    for value in values:
        level = 0 if hi <= lo else int((value - lo) / (hi - lo) * (len(marks) - 1))
        cells.append(marks[min(max(level, 0), len(marks) - 1)])
    return "".join(cells)


def main() -> None:
    print(
        f"File transfer over two 4 Mbit/s paths; path 2's loss surges to "
        f"{SURGE_LOSS:.0%} during t ∈ [{SURGE_START_S:.0f}, {SURGE_END_S:.0f}) s\n"
    )
    results = {}
    for protocol in ("fmtcp", "mptcp"):
        results[protocol] = run_transfer(
            protocol=protocol,
            path_configs=surge_path_configs(
                SURGE_LOSS, surge_start_s=SURGE_START_S, surge_end_s=SURGE_END_S
            ),
            duration_s=DURATION_S,
            seed=3,
            bin_width_s=5.0,
            collect_series=True,
        )

    peak = max(
        value for result in results.values() for __, value in result.goodput_series
    )
    for protocol, result in results.items():
        print(f"{protocol:>6}: {sparkline(result.goodput_series, hi=peak)}")
    print(f"{'':>8}^t=0{'':<24}surge begins{'':<20}surge ends\n")

    print(f"{'phase':<10}{'FMTCP MB/s (±σ)':>20}{'MPTCP MB/s (±σ)':>20}")
    for phase in ("before", "during", "after"):
        cells = []
        for protocol in ("fmtcp", "mptcp"):
            rates = [
                value
                for t, value in results[protocol].goodput_series
                if phase_of(t) == phase
            ]
            cells.append(f"{mean(rates):.3f} ± {stdev(rates):.3f}")
        print(f"{phase:<10}{cells[0]:>20}{cells[1]:>20}")

    fmtcp_during = [
        value
        for t, value in results["fmtcp"].goodput_series
        if phase_of(t) == "during"
    ]
    mptcp_during = [
        value
        for t, value in results["mptcp"].goodput_series
        if phase_of(t) == "during"
    ]
    fmtcp_cov = stdev(fmtcp_during) / mean(fmtcp_during) if mean(fmtcp_during) else 0
    mptcp_cov = stdev(mptcp_during) / mean(mptcp_during) if mean(mptcp_during) else 0
    print(
        f"\nStability during the surge (coefficient of variation): "
        f"FMTCP {fmtcp_cov:.2f} vs MPTCP {mptcp_cov:.2f}"
    )


if __name__ == "__main__":
    main()
