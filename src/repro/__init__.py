"""FMTCP — a Fountain Code-based Multipath TCP (ICDCS 2012), reproduced.

This package contains a complete, self-contained reproduction of the
paper's system and evaluation:

* :mod:`repro.core` — FMTCP itself: fountain-coded blocks, the
  δ-completeness predictor, and the Expected-Arriving-Time data
  allocator (Algorithm 1).
* :mod:`repro.mptcp` — the IETF-MPTCP baseline it is compared against.
* :mod:`repro.fountain` — random-linear and LT fountain codes over GF(2).
* :mod:`repro.tcp`, :mod:`repro.net`, :mod:`repro.sim` — the TCP subflow
  machinery, packet-level network substrate and discrete-event engine
  (the ns-2 stand-in).
* :mod:`repro.analysis` — the paper's closed-form results (Eqs. 3-7,
  10-13, 16-17).
* :mod:`repro.experiments` — runners that regenerate every table and
  figure of Section V; also exposed via ``python -m repro``.

Quick start::

    from repro import run_transfer, table1_path_configs, TABLE1_CASES

    result = run_transfer(
        "fmtcp", table1_path_configs(TABLE1_CASES[3]), duration_s=30.0
    )
    print(result.summary)
"""

from repro.core.config import FmtcpConfig
from repro.core.connection import FmtcpConnection
from repro.experiments.runner import ExperimentResult, run_transfer
from repro.fixedrate.connection import FixedRateConfig, FixedRateConnection
from repro.fountain.codec import BlockDecoder, BlockEncoder, Symbol
from repro.mptcp.connection import MptcpConfig, MptcpConnection
from repro.net.topology import Network, Path, PathConfig, build_two_path_network
from repro.sim.engine import Simulator
from repro.tcp.stream import TcpConfig, TcpConnection
from repro.workloads.scenarios import (
    TABLE1_CASES,
    TestCase,
    surge_path_configs,
    table1_path_configs,
)
from repro.workloads.sources import BulkSource, CbrSource

__version__ = "1.0.0"

__all__ = [
    "BlockDecoder",
    "BlockEncoder",
    "BulkSource",
    "CbrSource",
    "ExperimentResult",
    "FixedRateConfig",
    "FixedRateConnection",
    "FmtcpConfig",
    "FmtcpConnection",
    "MptcpConfig",
    "MptcpConnection",
    "Network",
    "Path",
    "PathConfig",
    "Simulator",
    "Symbol",
    "TcpConfig",
    "TcpConnection",
    "TABLE1_CASES",
    "TestCase",
    "__version__",
    "build_two_path_network",
    "run_transfer",
    "surge_path_configs",
    "table1_path_configs",
]
