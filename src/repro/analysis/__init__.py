"""Closed-form models from the paper's analytical sections.

* :mod:`repro.analysis.coding` — Section III-B: Expected Packets
  Delivered for fixed-rate coding (Eqs. 3-5), the Chernoff bound on
  retransmission-free delivery (Eq. 6), and the fountain symbol-cost
  bound (Eq. 7), each with a Monte-Carlo cross-check.
* :mod:`repro.analysis.allocation` — Section IV-C: SEDT (Eq. 13),
  Theorem 2's quality ordering, Lemma 1's no-migration condition
  (Eq. 16), and Theorem 3's delivery-time ratio bound (Eq. 17).
"""

from repro.analysis.coding import (
    chernoff_no_retransmission_bound,
    expected_packets_delivered,
    fixed_rate_packets_to_send,
    fountain_expected_symbols_bound,
    fountain_expected_symbols_exact,
    simulate_fixed_rate_delivery,
    simulate_fountain_delivery,
)
from repro.analysis.throughput import (
    pftk_throughput_pps,
    predicted_aggregate_goodput_bps,
    subflow_goodput_bps,
)
from repro.analysis.allocation import (
    fmtcp_beats_mptcp_condition,
    lemma1_min_r2,
    mptcp_delivery_ratio,
    theorem3_ratio_bound,
)

__all__ = [
    "chernoff_no_retransmission_bound",
    "expected_packets_delivered",
    "fixed_rate_packets_to_send",
    "fmtcp_beats_mptcp_condition",
    "fountain_expected_symbols_bound",
    "fountain_expected_symbols_exact",
    "lemma1_min_r2",
    "mptcp_delivery_ratio",
    "pftk_throughput_pps",
    "predicted_aggregate_goodput_bps",
    "subflow_goodput_bps",
    "simulate_fixed_rate_delivery",
    "simulate_fountain_delivery",
    "theorem3_ratio_bound",
]
