"""Section IV-C: properties of the EAT allocation scheme.

* Eq. (13): SEDT_f = p_f·R_f/(1 − p_f) + r_f/2 (implemented in
  :func:`repro.core.estimators.sedt`; re-exported here for locality).
* Lemma 1 / Eq. (16): the r₂ threshold beyond which symbols lost on the
  inferior flow are only repaired on the superior one.
* Theorem 3 / Eq. (17): the bound on E(T₂)/E(T₁), versus plain MPTCP's
  ratio of exactly m = SEDT₂/SEDT₁.
"""

from __future__ import annotations

from repro.core.estimators import sedt  # noqa: F401  (re-export)


def lemma1_min_r2(r1: float, p1: float, p2: float) -> float:
    """Eq. (16): minimum r₂ such that flow 2's losses migrate to flow 1.

    r₂ ≥ [ (1+p₁)(1−p₂) / ((1−p₁)(1+p₂)) + 2/(1+p₂) ] · r₁
    """
    _check(r1, p1, p2)
    factor = ((1.0 + p1) * (1.0 - p2)) / ((1.0 - p1) * (1.0 + p2)) + 2.0 / (1.0 + p2)
    return factor * r1


def theorem3_ratio_bound(p1: float, p2: float, m: float) -> float:
    """Eq. (17): E(T₂)/E(T₁) ≤ p₂ + 2(1−p₁)/(1+p₁) + (1−p₂)·m."""
    _check(1.0, p1, p2)
    if m <= 0:
        raise ValueError("m must be positive")
    return p2 + 2.0 * (1.0 - p1) / (1.0 + p1) + (1.0 - p2) * m


def mptcp_delivery_ratio(m: float) -> float:
    """Plain MPTCP retransmits on the same subflow, so the ratio is m."""
    if m <= 0:
        raise ValueError("m must be positive")
    return m


def fmtcp_beats_mptcp_condition(p1: float, p2: float) -> float:
    """Threshold m* = 1 + 2(1−p₁)/(p₂(1+p₁)) above which Eq. (17) < m.

    The paper's closing observation of Section IV-C: once path diversity
    m exceeds this threshold, FMTCP's worst-case delivery-time ratio is
    strictly better than MPTCP's.
    """
    _check(1.0, p1, p2)
    if p2 == 0.0:
        return float("inf")
    return 1.0 + 2.0 * (1.0 - p1) / (p2 * (1.0 + p1))


def _check(r1: float, p1: float, p2: float) -> None:
    if r1 <= 0:
        raise ValueError("round-trip time must be positive")
    for name, value in (("p1", p1), ("p2", p2)):
        if not 0.0 <= value < 1.0:
            raise ValueError(f"{name} must be in [0, 1), got {value}")
