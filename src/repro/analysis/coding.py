"""Section III-B: why fixed-rate coding loses to the fountain.

The paper's quantitative argument, reproduced exactly:

* Eq. (3): the Expected Packets Delivered for a block of A packets on a
  path with loss p₁ is E(X) = A / (1 − p₁).
* Eq. (4): the fixed-rate sender therefore transmits a = A/(1 − p₁)
  packets, betting on its loss estimate p₁.
* Eq. (5): if the true loss is p₂, only E(X_R) = (1 − p₂)·a arrive.
* Eq. (6): by Chernoff, P(X_R ≥ A) ≤ exp(−(p₂ − p₁)²·A /
  (3(1 − p₁)(1 − p₂))) — the chance of needing *no* retransmission decays
  exponentially in the block size once the loss rate is underestimated.
* Eq. (7): the fountain needs only E(Y) ≤ (k̂ + 4)/(1 − p) symbol
  transmissions per block — a constant additive overhead, whatever p does.

Each formula has a Monte-Carlo twin so tests (and the analysis benchmark)
can confirm the closed forms against simulation.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from repro.fountain.rank_model import RankEvolutionModel, expected_overhead_symbols


def expected_packets_delivered(block_packets: int, loss_rate: float) -> float:
    """Eq. (3): E(X) = A / (1 − p₁)."""
    _check_loss(loss_rate)
    if block_packets < 1:
        raise ValueError("block_packets must be >= 1")
    return block_packets / (1.0 - loss_rate)


def fixed_rate_packets_to_send(block_packets: int, estimated_loss: float) -> float:
    """Eq. (4): a = A / (1 − p₁), the fixed-rate sender's budget."""
    return expected_packets_delivered(block_packets, estimated_loss)


def expected_actual_delivered(
    block_packets: int, estimated_loss: float, actual_loss: float
) -> float:
    """Eq. (5): E(X_R) = (1 − p₂)·a = (1 − p₂)/(1 − p₁)·A."""
    _check_loss(actual_loss)
    return (1.0 - actual_loss) * fixed_rate_packets_to_send(
        block_packets, estimated_loss
    )


def chernoff_no_retransmission_bound(
    block_packets: int, estimated_loss: float, actual_loss: float
) -> float:
    """Eq. (6): upper bound on P(no retransmission needed).

    Only meaningful when the loss rate is underestimated (p₂ > p₁); the
    bound is reported as 1.0 otherwise.
    """
    _check_loss(estimated_loss)
    _check_loss(actual_loss)
    if actual_loss <= estimated_loss:
        return 1.0
    exponent = -((actual_loss - estimated_loss) ** 2) * block_packets / (
        3.0 * (1.0 - estimated_loss) * (1.0 - actual_loss)
    )
    return math.exp(exponent)


def fountain_expected_symbols_bound(k: int, loss_rate: float) -> float:
    """Eq. (7): E(Y) ≤ (k̂ + 4)/(1 − p).

    The paper bounds the linear-dependence overhead Σ j·2^{-(j-1)} by 4;
    :func:`fountain_expected_symbols_exact` gives the tight value.
    """
    _check_loss(loss_rate)
    return (k + 4.0) / (1.0 - loss_rate)


def fountain_expected_symbols_exact(k: int, loss_rate: float) -> float:
    """Exact expected symbol transmissions: (k̂ + overhead(k̂))/(1 − p)."""
    _check_loss(loss_rate)
    return (k + expected_overhead_symbols(k)) / (1.0 - loss_rate)


# ----------------------------------------------------------------------
# Monte-Carlo twins.
# ----------------------------------------------------------------------
def simulate_fixed_rate_delivery(
    block_packets: int,
    estimated_loss: float,
    actual_loss: float,
    trials: int = 2000,
    rng: Optional[random.Random] = None,
) -> float:
    """Empirical P(at least A of the a budgeted packets survive loss p₂)."""
    _check_loss(estimated_loss)
    _check_loss(actual_loss)
    rng = rng or random.Random(0)
    budget = int(math.ceil(fixed_rate_packets_to_send(block_packets, estimated_loss)))
    successes = 0
    for __ in range(trials):
        survived = sum(1 for __ in range(budget) if rng.random() >= actual_loss)
        if survived >= block_packets:
            successes += 1
    return successes / trials


def simulate_fountain_delivery(
    k: int,
    loss_rate: float,
    trials: int = 500,
    rng: Optional[random.Random] = None,
) -> float:
    """Empirical mean symbol transmissions until a block decodes.

    Uses the exact rank-evolution model for the coding process and
    Bernoulli erasures for the channel — the quantity Eq. (7) bounds.
    """
    _check_loss(loss_rate)
    rng = rng or random.Random(0)
    total_sent = 0
    for __ in range(trials):
        model = RankEvolutionModel(k, rng=rng)
        sent = 0
        while not model.is_complete:
            sent += 1
            if rng.random() >= loss_rate:
                model.add_symbol()
        total_sent += sent
    return total_sent / trials


def _check_loss(loss_rate: float) -> None:
    if not 0.0 <= loss_rate < 1.0:
        raise ValueError(f"loss rate must be in [0, 1), got {loss_rate}")
