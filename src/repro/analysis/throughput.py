"""Analytical TCP throughput: the PFTK model applied to subflows.

Padhye, Firoiu, Towsley & Kurose's steady-state Reno throughput formula
predicts what each subflow can carry given its RTT, RTO and loss rate.
Combining it with FMTCP's coding redundancy yields a closed-form
*aggregate goodput* prediction that the sensitivity benchmarks check
against simulation — useful both as a sanity cross-check on the substrate
and as a back-of-envelope tool for users sizing deployments.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.net.topology import PathConfig


def pftk_throughput_pps(
    rtt: float,
    rto: float,
    loss: float,
    acked_per_window: int = 1,
) -> float:
    """PFTK full model, packets/second.

    T = 1 / ( rtt·√(2bp/3) + rto·min(1, 3·√(3bp/8))·p·(1+32p²) )

    ``acked_per_window`` is b (1 here: the substrate ACKs every packet).
    Returns ``inf`` for a lossless path — the formula models loss-limited
    steady state; callers cap by link bandwidth.
    """
    if rtt <= 0 or rto <= 0:
        raise ValueError("rtt and rto must be positive")
    if not 0.0 <= loss < 1.0:
        raise ValueError(f"loss must be in [0, 1), got {loss}")
    if loss == 0.0:
        return float("inf")
    b = acked_per_window
    term_fast = rtt * math.sqrt(2.0 * b * loss / 3.0)
    term_timeout = (
        rto * min(1.0, 3.0 * math.sqrt(3.0 * b * loss / 8.0)) * loss * (1.0 + 32.0 * loss**2)
    )
    return 1.0 / (term_fast + term_timeout)


def subflow_goodput_bps(
    config: PathConfig,
    mss: int = 1400,
    min_rto: float = 0.2,
) -> float:
    """Predicted goodput of one Reno subflow on ``config``'s path.

    RTT is twice the one-way delay; RTO is max(min_rto, 2·RTT) as a crude
    stand-in for srtt+4·rttvar on a jittery path; the result is capped at
    the link bandwidth.
    """
    rtt = 2.0 * config.delay_s
    rto = max(min_rto, 2.0 * rtt)
    pps = pftk_throughput_pps(rtt, rto, config.loss_rate)
    bps = pps * mss * 8.0
    return min(bps, config.bandwidth_bps)


def predicted_aggregate_goodput_bps(
    configs: Sequence[PathConfig],
    protocol: str = "fmtcp",
    mss: int = 1400,
    min_rto: float = 0.2,
    redundancy_ratio: float = 1.07,
) -> float:
    """Closed-form aggregate goodput prediction.

    * FMTCP: the sum of per-subflow PFTK rates, discounted by the coding
      redundancy (every transmitted symbol beyond k̂ per block is goodput
      the fountain spends on reliability).
    * MPTCP: the same sum — an *upper* bound, since it ignores the
      receive-buffer head-of-line blocking the simulation (and the paper)
      show. The gap between this bound and measured MPTCP goodput is
      precisely the HoL cost.
    """
    if protocol not in ("fmtcp", "mptcp"):
        raise ValueError("protocol must be 'fmtcp' or 'mptcp'")
    total = sum(subflow_goodput_bps(config, mss=mss, min_rto=min_rto) for config in configs)
    if protocol == "fmtcp":
        return total / redundancy_ratio
    return total
