"""Command-line entry point: regenerate any paper experiment.

Examples::

    python -m repro fig3                 # goodput across Table I cases
    python -m repro fig4 --surge 0.35    # the loss-surge time series
    python -m repro fig7                 # per-block delay, test case 4
    python -m repro analysis             # Section III-B / IV-C numbers
    python -m repro all --fast           # everything, short runs
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import coding as coding_analysis
from repro.analysis import allocation as allocation_analysis
from repro.experiments import figures
from repro.experiments import paper_data
from repro.experiments.fairness import run_fairness
from repro.experiments.replication import run_replicated
from repro.experiments.reporting import (
    bar_chart,
    rows_to_csv,
    series_plot,
    series_to_csv,
    write_csv,
)
from repro.metrics.stats import mean
from repro.workloads.scenarios import (
    DEFAULT_BANDWIDTH_BPS,
    TABLE1_CASES,
    table1_path_configs,
)


def _fmt_row(values: List[str], widths: List[int]) -> str:
    return "  ".join(value.rjust(width) for value, width in zip(values, widths))


def cmd_table1(args: argparse.Namespace) -> None:
    print("Table I — path parameters of subflow 2 (subflow 1: 100 ms, 0 %):")
    widths = [6, 10, 10]
    print(_fmt_row(["case", "delay(ms)", "loss(%)"], widths))
    for case in TABLE1_CASES:
        print(
            _fmt_row(
                [str(case.case_id), f"{case.delay_s * 1e3:.0f}", f"{case.loss_rate * 1e2:.0f}"],
                widths,
            )
        )


def cmd_fig3(args: argparse.Namespace) -> None:
    rows = figures.run_figure3(args.duration, args.bandwidth, args.seed)
    if args.csv:
        write_csv(args.csv, rows_to_csv(rows))
        print(f"wrote {args.csv}")
    print(f"Figure 3 — total goodput over {args.duration or figures.default_duration_s()}s (MB):")
    widths = [6, 10, 8, 12, 12, 7]
    print(_fmt_row(["case", "delay(ms)", "loss(%)", "FMTCP(MB)", "MPTCP(MB)", "ratio"], widths))
    for row in rows:
        print(
            _fmt_row(
                [
                    str(row["case"]),
                    f"{row['delay_ms']:.0f}",
                    f"{row['loss_pct']:.0f}",
                    f"{row['fmtcp_goodput_mb']:.2f}",
                    f"{row['mptcp_goodput_mb']:.2f}",
                    f"{row['ratio']:.2f}",
                ],
                widths,
            )
        )
    chart_rows = []
    for row in rows:
        chart_rows.append((f"case{row['case']} FMTCP", row["fmtcp_goodput_mb"]))
        chart_rows.append((f"case{row['case']} MPTCP", row["mptcp_goodput_mb"]))
    print()
    for line in bar_chart(chart_rows, unit=" MB"):
        print(line)


def cmd_fig4(args: argparse.Namespace) -> None:
    duration = args.duration or 300.0
    results = figures.run_figure4(
        args.surge, duration_s=duration, bandwidth_bps=args.bandwidth, seed=args.seed
    )
    print(
        f"Figure 4 — goodput rate (MB/s), loss surge to {args.surge:.0%} "
        f"at t=50s, back to 1% at t=200s:"
    )
    print(_fmt_row(["t(s)", "FMTCP", "MPTCP"], [8, 8, 8]))
    fmtcp_series = results["fmtcp"].goodput_series
    mptcp_series = results["mptcp"].goodput_series
    for (t, fmtcp_rate), (__, mptcp_rate) in zip(fmtcp_series, mptcp_series):
        print(_fmt_row([f"{t:.0f}", f"{fmtcp_rate:.3f}", f"{mptcp_rate:.3f}"], [8, 8, 8]))
    print()
    for line in series_plot({"fmtcp": fmtcp_series, "mptcp": mptcp_series}):
        print(line)
    if args.csv:
        write_csv(args.csv, series_to_csv({"fmtcp": fmtcp_series, "mptcp": mptcp_series}))
        print(f"wrote {args.csv}")


def cmd_fig5(args: argparse.Namespace) -> None:
    rows = figures.run_figure5(args.duration, args.bandwidth, args.seed)
    print("Figure 5 — mean block delivery delay (ms):")
    widths = [6, 10, 8, 12, 12]
    print(_fmt_row(["case", "delay(ms)", "loss(%)", "FMTCP(ms)", "MPTCP(ms)"], widths))
    for row in rows:
        print(
            _fmt_row(
                [
                    str(row["case"]),
                    f"{row['delay_ms']:.0f}",
                    f"{row['loss_pct']:.0f}",
                    f"{row['fmtcp_block_delay_ms']:.1f}",
                    f"{row['mptcp_block_delay_ms']:.1f}",
                ],
                widths,
            )
        )


def cmd_fig6(args: argparse.Namespace) -> None:
    rows = figures.run_figure6(args.duration, args.bandwidth, args.seed)
    print("Figure 6 — mean block jitter (ms):")
    widths = [6, 10, 8, 12, 12]
    print(_fmt_row(["case", "delay(ms)", "loss(%)", "FMTCP(ms)", "MPTCP(ms)"], widths))
    for row in rows:
        print(
            _fmt_row(
                [
                    str(row["case"]),
                    f"{row['delay_ms']:.0f}",
                    f"{row['loss_pct']:.0f}",
                    f"{row['fmtcp_jitter_ms']:.1f}",
                    f"{row['mptcp_jitter_ms']:.1f}",
                ],
                widths,
            )
        )


def cmd_fig7(args: argparse.Namespace) -> None:
    series = figures.run_figure7(args.duration, args.bandwidth, args.seed)
    print("Figure 7 — per-block delivery delay, Table I case 4 (100 ms / 15 %):")
    for protocol in ("fmtcp", "mptcp"):
        delays_ms = [delay * 1e3 for delay in series[protocol]]
        if not delays_ms:
            print(f"  {protocol}: no blocks completed")
            continue
        print(
            f"  {protocol}: {len(delays_ms)} blocks, mean {mean(delays_ms):.1f} ms, "
            f"max {max(delays_ms):.1f} ms (max/mean "
            f"{max(delays_ms) / mean(delays_ms):.1f}x)"
        )
    print(f"  paper: MPTCP max/mean ≈ {paper_data.FIG7_MPTCP_MAX_OVER_MEAN:.0f}x, FMTCP stable")


def cmd_analysis(args: argparse.Namespace) -> None:
    print("Section III-B — fixed-rate vs fountain (A=100 packets, k̂=256):")
    for p1, p2 in ((0.05, 0.10), (0.05, 0.15), (0.10, 0.20)):
        bound = coding_analysis.chernoff_no_retransmission_bound(100, p1, p2)
        empirical = coding_analysis.simulate_fixed_rate_delivery(100, p1, p2, trials=2000)
        print(
            f"  p1={p1:.2f} p2={p2:.2f}: P(no retx) Chernoff bound {bound:.4f}, "
            f"empirical {empirical:.4f}"
        )
    for p in (0.0, 0.1, 0.2):
        bound = coding_analysis.fountain_expected_symbols_bound(256, p)
        exact = coding_analysis.fountain_expected_symbols_exact(256, p)
        empirical = coding_analysis.simulate_fountain_delivery(256, p, trials=200)
        print(
            f"  fountain p={p:.1f}: E[symbols] bound {bound:.1f}, exact {exact:.1f}, "
            f"empirical {empirical:.1f}"
        )
    print("Section IV-C — allocation scheme (r1=1, p1=0.01):")
    for p2, m in ((0.10, 2.0), (0.15, 3.0), (0.25, 5.0)):
        bound = allocation_analysis.theorem3_ratio_bound(0.01, p2, m)
        threshold = allocation_analysis.fmtcp_beats_mptcp_condition(0.01, p2)
        print(
            f"  p2={p2:.2f} m={m:.1f}: FMTCP ratio bound {bound:.2f} vs MPTCP {m:.2f} "
            f"(FMTCP wins once m > {threshold:.2f})"
        )


def cmd_report(args: argparse.Namespace) -> None:
    from pathlib import Path

    from repro.experiments.report import write_report

    output = write_report(output_path=Path(args.output))
    print(f"wrote {output}")


def cmd_heatmap(args: argparse.Namespace) -> None:
    from repro.experiments.heatmap import run_heatmap

    duration = args.duration or 30.0
    print("FMTCP advantage map: subflow-2 loss x receive-buffer budget")
    result = run_heatmap(duration_s=duration, seed=args.seed)
    for line in result.render():
        print(line)


def cmd_sensitivity(args: argparse.Namespace) -> None:
    from repro.experiments.sensitivity import sweep_bandwidth, sweep_delay_asymmetry, sweep_loss

    duration = args.duration or 30.0
    for title, sweep in (
        ("subflow-2 loss sweep", sweep_loss),
        ("per-path bandwidth sweep", sweep_bandwidth),
        ("subflow-2 delay sweep", sweep_delay_asymmetry),
    ):
        print(title + ":")
        for point in sweep(duration_s=duration, seed=args.seed):
            fmtcp = point.results["fmtcp"].summary["goodput_mbytes_per_s"]
            mptcp = point.results["mptcp"].summary["goodput_mbytes_per_s"]
            print(
                f"  {point.label:>14}: FMTCP {fmtcp:.3f} MB/s, MPTCP {mptcp:.3f} MB/s, "
                f"ratio {point.advantage:.2f}"
            )
        print()


def cmd_fairness(args: argparse.Namespace) -> None:
    duration = args.duration or 30.0
    print(
        f"TCP-friendliness: 1 flow under test vs {args.competitors} plain TCP "
        f"flows on a 10 Mbit/s bottleneck, {duration:.0f}s"
    )
    for protocol in ("tcp", "fmtcp"):
        result = run_fairness(
            protocol_under_test=protocol,
            n_competitors=args.competitors,
            duration_s=duration,
            seed=args.seed,
        )
        rates = ", ".join(
            f"{name}={rate:.2f}" for name, rate in sorted(result.rates_mbps.items())
        )
        print(
            f"  {protocol:>6}: Jain {result.jain:.3f}, share of fair "
            f"{result.test_flow_share:.2f}  ({rates} Mbit/s)"
        )


def cmd_replicate(args: argparse.Namespace) -> None:
    duration = args.duration or 30.0
    case = next(c for c in TABLE1_CASES if c.case_id == args.case)
    seeds = tuple(range(1, args.seeds + 1))
    print(
        f"Replicated comparison on Table I case {case.case_id} "
        f"({case.label()}), seeds {list(seeds)}, {duration:.0f}s runs:"
    )
    for protocol in ("fmtcp", "mptcp"):
        result = run_replicated(
            protocol,
            lambda: table1_path_configs(case, args.bandwidth),
            duration_s=duration,
            seeds=seeds,
        )
        print(
            f"  {protocol:>6}: goodput {result['goodput_mbytes_per_s']} MB/s, "
            f"block delay {result['mean_block_delay_ms']} ms, "
            f"jitter {result['jitter_ms']} ms"
        )


def _print_fault_scenarios() -> None:
    from repro.faults import (
        CORRUPTION_SCENARIOS,
        CRASH_KINDS,
        EXHAUSTION_SCENARIOS,
        MOBILITY_SCENARIOS,
        RECOVERY_SCENARIOS,
        SCENARIOS,
        TRACE_SCENARIOS,
    )

    print("Preset fault scenarios (also accepts random:SEED and trace:FILE.csv):")
    for name in sorted(SCENARIOS):
        scenario = SCENARIOS[name]()
        print(
            f"  {name:>23}: {len(scenario.events)} events, "
            f"faults {scenario.fault_start:.0f}-{scenario.heal_time:.0f}s"
        )
    print("Mobility presets (subflow lifecycle churn):")
    for name in sorted(MOBILITY_SCENARIOS):
        scenario = MOBILITY_SCENARIOS[name]()
        print(
            f"  {name:>23}: {len(scenario.events)} events, "
            f"churn {scenario.fault_start:.0f}-{scenario.settle_time:.1f}s"
        )
    print("Corruption presets (data integrity, byte-verified delivery):")
    for name in sorted(CORRUPTION_SCENARIOS):
        scenario = CORRUPTION_SCENARIOS[name]()
        print(
            f"  {name:>23}: {len(scenario.events)} events, "
            f"corruption {scenario.fault_start:.0f}-{scenario.heal_time:.0f}s"
        )
    print("Exhaustion presets (receiver memory budget, flow control on):")
    for name in sorted(EXHAUSTION_SCENARIOS):
        scenario = EXHAUSTION_SCENARIOS[name]()
        print(
            f"  {name:>23}: {scenario.recv_budget_bytes // 1024} KiB budget — "
            f"{scenario.description}"
        )
    print("Recovery presets (endpoint crash/restart, byte-verified delivery):")
    for name in sorted(RECOVERY_SCENARIOS):
        scenario = RECOVERY_SCENARIOS[name]()
        crashes = sum(1 for e in scenario.events if e.kind in CRASH_KINDS[:2])
        restarts = sum(1 for e in scenario.events if e.kind == "restart")
        window = (
            f"{scenario.events[0].time:.0f}-{scenario.events[-1].time:.0f}s"
            if scenario.events
            else "-"
        )
        print(
            f"  {name:>23}: {crashes} crash(es) / {restarts} restart(s), "
            f"window {window}"
        )
    print("Trace presets (replayed channel dynamics, byte-verified delivery):")
    for name in sorted(TRACE_SCENARIOS):
        scenario = TRACE_SCENARIOS[name]()
        print(
            f"  {name:>23}: {len(scenario.events)} events, "
            f"replay {scenario.fault_start:.0f}-{scenario.heal_time:.0f}s"
        )


def _run_exhaustion_preset(args, scenarios, run_exhaustion) -> Optional[int]:
    scenario = scenarios[args.scenario]()
    protocols = ("fmtcp", "mptcp") if args.protocol == "both" else (args.protocol,)
    print(
        f"Exhaustion scenario {scenario.name}: "
        f"{scenario.recv_budget_bytes // 1024} KiB receive budget, "
        f"{scenario.total_bytes} B transfer, {scenario.duration_s:.0f}s run, "
        f"seed {args.seed}"
    )
    for protocol in protocols:
        report = run_exhaustion(
            protocol,
            scenario,
            seed=args.seed,
            flight_dump_dir=args.flight_dir,
        )
        status = "OK" if report.ok else "VIOLATIONS"
        if report.completion_time_s is not None:
            outcome = f"completed at {report.completion_time_s:.1f}s"
        elif report.watchdog_failed:
            outcome = (
                f"clean failure at escalation {report.watchdog_escalation} "
                f"({report.delivered_bytes}/{report.expected_bytes} B)"
            )
        else:
            outcome = f"incomplete ({report.delivered_bytes}/{report.expected_bytes} B)"
        print(
            f"  {protocol:>6}: {status} — {outcome}, peak occupancy "
            f"{report.peak_occupancy}/{report.budget_units} units, "
            f"{report.flow.get('flow_pauses', 0)} pauses, "
            f"{report.flow.get('window_probes', 0)} window probes"
        )
        for violation in report.violations:
            print(f"          ! {violation}")
        if report.flight_dump_path is not None:
            print(f"          flight recorder dump: {report.flight_dump_path}")
        if report.watchdog_dump_path is not None:
            print(f"          watchdog post-mortem: {report.watchdog_dump_path}")
    return None


def cmd_faults(args: argparse.Namespace) -> Optional[int]:
    from repro.faults import (
        measure_churn_response,
        measure_fault_response,
        resolve_scenario,
        run_chaos,
        run_churn,
        run_corruption,
    )

    if args.scenario == "list":
        _print_fault_scenarios()
        return None
    from repro.faults import EXHAUSTION_SCENARIOS, run_exhaustion

    if args.scenario in EXHAUSTION_SCENARIOS:
        return _run_exhaustion_preset(args, EXHAUSTION_SCENARIOS, run_exhaustion)
    try:
        scenario = resolve_scenario(args.scenario)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        _print_fault_scenarios()
        return 2
    protocols = ("fmtcp", "mptcp") if args.protocol == "both" else (args.protocol,)
    # Always leave room to recover after the last fault heals / settles.
    settle = max(scenario.heal_time, scenario.settle_time)
    duration = max(args.duration or 40.0, settle + 4.0)
    print(
        f"Scenario {scenario.name}: {len(scenario.events)} events, "
        f"faults {scenario.fault_start:.1f}-{settle:.1f}s, "
        f"{duration:.0f}s run, seed {args.seed}"
    )
    for protocol in protocols:
        if scenario.has_endpoint_faults:
            from repro.faults import run_recovery

            report = run_recovery(
                protocol,
                scenario,
                seed=args.seed,
                duration_s=duration,
                flight_dump_dir=args.flight_dir,
            )
            progress = (
                f"{report.crashes} crashes / {report.resumes} resumes / "
                f"{report.attempts} attempts"
            )
            if report.recovery_state == "failed":
                progress += f", clean fail: {report.fail_reason}"
        elif scenario.has_trace:
            from repro.faults import run_traces

            report = run_traces(
                protocol,
                scenario,
                seed=args.seed,
                duration_s=duration,
                flight_dump_dir=args.flight_dir,
            )
            progress = (
                f"{report.trace_ticks} trace ticks, peak occupancy "
                f"{report.peak_occupancy}/{report.budget_units} units"
            )
            if report.watchdog_failed:
                progress += f", clean fail at escalation {report.watchdog_escalation}"
        elif scenario.has_corruption:
            report = run_corruption(
                protocol,
                scenario,
                seed=args.seed,
                duration_s=duration,
                flight_dump_dir=args.flight_dir,
            )
            stats = report.corruption_stats
            discarded = sum(
                count
                for name, count in stats.items()
                if name not in ("symbols_evicted", "blocks_quarantined")
            )
            progress = (
                f"{report.packets_corrupted} packets corrupted, "
                f"{discarded} discarded, "
                f"{stats.get('blocks_quarantined', 0)} blocks quarantined"
            )
        elif scenario.has_churn:
            report = run_churn(
                protocol,
                scenario,
                seed=args.seed,
                duration_s=duration,
                flight_dump_dir=args.flight_dir,
            )
            progress = (
                f"{report.path_downs} downs / {report.path_ups} ups / "
                f"{report.handovers} handovers"
            )
        else:
            report = run_chaos(
                protocol,
                scenario,
                seed=args.seed,
                duration_s=duration,
                flight_dump_dir=args.flight_dir,
            )
            progress = f"{report.bytes_at_heal}/{report.expected_bytes} B by heal"
        status = "OK" if report.ok else "VIOLATIONS"
        completed = (
            f"completed at {report.completion_time_s:.1f}s"
            if report.completion_time_s is not None
            else f"incomplete ({report.delivered_bytes}/{report.expected_bytes} B)"
        )
        print(f"  {protocol:>6}: {status} — {completed}, {progress}")
        for violation in report.violations:
            print(f"          ! {violation}")
        if report.flight_dump_path is not None:
            print(f"          flight recorder dump: {report.flight_dump_path}")
            print(f"          profiler report:      {report.profile_dump_path}")
    if args.bench and scenario.has_endpoint_faults:
        from repro.faults import measure_recovery

        print("Recovery response (crash run vs clean baseline):")
        widths = [8, 10, 10, 8, 10, 10]
        print(
            _fmt_row(
                ["proto", "clean(s)", "crash(s)", "retain", "outage(s)", "ckpt(B)"],
                widths,
            )
        )
        for protocol in protocols:
            row = measure_recovery(protocol, scenario, seed=args.seed)
            print(
                _fmt_row(
                    [
                        protocol,
                        f"{row['baseline_completion_s']:.1f}"
                        if row["baseline_completion_s"]
                        else "never",
                        f"{row['crashed_completion_s']:.1f}"
                        if row["crashed_completion_s"]
                        else "never",
                        f"{row['goodput_retention']:.2f}",
                        f"{row['max_outage_s']:.2f}",
                        str(row["checkpoint_bytes"]),
                    ],
                    widths,
                )
            )
        return None
    if args.bench:
        print("Goodput response (open-ended transfer):")
        widths = [8, 10, 10, 10, 10, 10]
        print(
            _fmt_row(
                ["proto", "pre(MB/s)", "dur(MB/s)", "post(MB/s)", "retain", "recov(s)"],
                widths,
            )
        )
        measure = (
            measure_churn_response if scenario.has_churn else measure_fault_response
        )
        for protocol in protocols:
            bench = measure(protocol, scenario, seed=args.seed, duration_s=duration)
            print(
                _fmt_row(
                    [
                        protocol,
                        f"{bench.pre_mbps:.3f}",
                        f"{bench.during_mbps:.3f}",
                        f"{bench.post_mbps:.3f}",
                        f"{bench.retention:.2f}",
                        "never" if bench.recovery_s is None else f"{bench.recovery_s:.1f}",
                    ],
                    widths,
                )
            )
    return None


def _print_policy_menu() -> None:
    from repro.policy import POLICIES

    print("Policies (repro policy rollout/compare --policy NAME):")
    for name in sorted(POLICIES):
        doc = (POLICIES[name].__doc__ or "").strip().splitlines()[0]
        print(f"  {name:>20}: {doc}")


def cmd_policy_list(args: argparse.Namespace) -> None:
    _print_policy_menu()


def _parse_seeds(args: argparse.Namespace) -> List[int]:
    return list(range(args.seed, args.seed + args.seeds))


def cmd_policy_rollout(args: argparse.Namespace) -> Optional[int]:
    from repro.policy import (
        POLICIES,
        RolloutJob,
        run_rollouts,
        summarize_rollouts,
        write_trajectories,
    )

    if not args.policy:
        args.policy = ["paper-eat"]
    for name in args.policy:
        if name not in POLICIES:
            available = ", ".join(sorted(POLICIES))
            print(
                f"error: unknown policy {name!r} (available: {available})",
                file=sys.stderr,
            )
            _print_policy_menu()
            return 2
    seeds = _parse_seeds(args)
    duration = args.duration or 15.0
    jobs = [
        RolloutJob(
            policy=name,
            seed=seed,
            case_id=args.case,
            duration_s=duration,
            epoch_s=args.epoch,
        )
        for name in args.policy
        for seed in seeds
    ]
    results = run_rollouts(jobs, workers=args.workers)
    if args.out:
        lines = write_trajectories(results, args.out)
        print(f"wrote {lines} trajectory lines to {args.out}")
    per_policy = len(seeds)
    widths = [20, 6, 12, 12, 12, 10]
    print(
        _fmt_row(
            ["policy", "seeds", "good(MB)", "reward", "delay(ms)", "blocks"],
            widths,
        )
    )
    for index, name in enumerate(args.policy):
        report = summarize_rollouts(
            results[index * per_policy : (index + 1) * per_policy]
        )
        print(
            _fmt_row(
                [
                    report.policy,
                    str(len(report.seeds)),
                    f"{report.goodput_mbytes_mean:.3f}",
                    f"{report.total_reward_mean:.3f}",
                    f"{report.mean_block_delay_ms:.1f}",
                    f"{report.blocks_done_mean:.0f}",
                ],
                widths,
            )
        )
    return None


def cmd_policy_compare(args: argparse.Namespace) -> Optional[int]:
    from repro.policy import POLICIES, compare_policies

    names = args.policy or sorted(POLICIES)
    for name in names:
        if name not in POLICIES:
            available = ", ".join(sorted(POLICIES))
            print(
                f"error: unknown policy {name!r} (available: {available})",
                file=sys.stderr,
            )
            _print_policy_menu()
            return 2
    duration = args.duration or 15.0
    reports = compare_policies(
        names,
        seeds=_parse_seeds(args),
        case_id=args.case,
        duration_s=duration,
        epoch_s=args.epoch,
        workers=args.workers,
    )
    print(
        f"Table I case {args.case}, {duration:.0f}s x {args.seeds} seeds "
        f"(epoch {args.epoch}s):"
    )
    widths = [20, 12, 12, 12, 12, 10]
    print(
        _fmt_row(
            ["policy", "good(MB)", "min", "max", "delay(ms)", "blocks"],
            widths,
        )
    )
    for report in sorted(
        reports, key=lambda r: r.goodput_mbytes_mean, reverse=True
    ):
        print(
            _fmt_row(
                [
                    report.policy,
                    f"{report.goodput_mbytes_mean:.3f}",
                    f"{report.goodput_mbytes_min:.3f}",
                    f"{report.goodput_mbytes_max:.3f}",
                    f"{report.mean_block_delay_ms:.1f}",
                    f"{report.blocks_done_mean:.0f}",
                ],
                widths,
            )
        )
    if args.json:
        import json

        with open(args.json, "w") as handle:
            json.dump([report.to_dict() for report in reports], handle, indent=2)
        print(f"wrote {args.json}")
    return None


def cmd_trace_record(args: argparse.Namespace) -> None:
    from repro.experiments.runner import run_transfer
    from repro.telemetry import TelemetryConfig

    case = next(c for c in TABLE1_CASES if c.case_id == args.case)
    duration = args.duration or 30.0
    config = TelemetryConfig(
        sample_period_s=args.sample_period,
        trace_path=args.output,
        profile_sim=args.profile,
        spans=args.spans,
    )
    print(
        f"Recording {args.protocol} on Table I case {case.case_id} "
        f"({case.label()}), {duration:.0f}s, seed {args.seed} -> {args.output}"
    )
    result = run_transfer(
        args.protocol,
        table1_path_configs(case, args.bandwidth),
        duration_s=duration,
        seed=args.seed,
        telemetry=config,
    )
    report = result.telemetry
    print(f"  {report.trace_records_written} records written")
    print(f"  goodput {result.summary['goodput_mbytes_per_s']:.3f} MB/s")
    if args.profile and report.profile is not None:
        profiler_report = report.profile
        print(
            f"  sim profile: {profiler_report['events']} events, "
            f"{profiler_report['events_per_s']:.0f} events/s, "
            f"sim/wall x{profiler_report['sim_wall_ratio']:.0f}"
        )
    if args.spans and report.spans is not None:
        print(
            f"  spans: {report.spans['finished']} finished blocks, "
            f"max conservation error "
            f"{report.spans['max_conservation_error_s']:.2e}s"
        )
    print(f"Inspect with: python -m repro trace summarize {args.output}")


def _print_trace_menu() -> None:
    print("trace subcommands:")
    print("  record         run one Table I transfer with telemetry -> JSONL")
    print("  summarize      totals, kinds, goodput, block-delay histogram")
    print("  subflows       per-subflow cwnd/srtt/eat series")
    print("  timeline       chronological event listing (filterable)")
    print("  export-csv     flatten records to CSV (union-of-keys header)")
    print("  spans          per-stage block-delay decomposition (P50/P95/P99)")
    print("  critical-path  slowest blocks with their dominant stage")
    print("Record a trace first: python -m repro trace record --output trace.jsonl")


def _load_trace(path: str) -> Optional[list]:
    """Read a JSONL trace; on failure print error + menu and return None
    (callers turn that into exit code 2, the repro CLI error convention)."""
    from repro.sim.tracefile import read_trace_file

    try:
        return read_trace_file(path)
    except OSError as exc:
        print(f"error: cannot read trace file: {exc}", file=sys.stderr)
    except ValueError as exc:
        print(f"error: {path} is not a JSONL trace file: {exc}", file=sys.stderr)
    _print_trace_menu()
    return None


def cmd_trace_summarize(args: argparse.Namespace) -> Optional[int]:
    from repro.telemetry import summarize

    records = _load_trace(args.file)
    if records is None:
        return 2
    for line in summarize(records):
        print(line)
    return None


def cmd_trace_subflows(args: argparse.Namespace) -> Optional[int]:
    from repro.telemetry import subflow_report

    records = _load_trace(args.file)
    if records is None:
        return 2
    for line in subflow_report(records):
        print(line)
    return None


def cmd_trace_timeline(args: argparse.Namespace) -> Optional[int]:
    from repro.telemetry import timeline

    records = _load_trace(args.file)
    if records is None:
        return 2
    for line in timeline(
        records,
        kinds=args.kind or None,
        start=args.start,
        end=args.end,
        limit=args.limit,
    ):
        print(line)
    return None


def cmd_trace_export_csv(args: argparse.Namespace) -> Optional[int]:
    from repro.telemetry import export_csv

    records = _load_trace(args.file)
    if records is None:
        return 2
    text = export_csv(records, kind=args.kind)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(text)
        print(f"wrote {args.output}")
    else:
        sys.stdout.write(text)
    return None


def cmd_trace_spans(args: argparse.Namespace) -> Optional[int]:
    from repro.telemetry import spans_report

    records = _load_trace(args.file)
    if records is None:
        return 2
    for line in spans_report(records):
        print(line)
    return None


def cmd_trace_critical_path(args: argparse.Namespace) -> Optional[int]:
    from repro.telemetry import critical_path_report

    records = _load_trace(args.file)
    if records is None:
        return 2
    for line in critical_path_report(records, top=args.top):
        print(line)
    return None


def cmd_all(args: argparse.Namespace) -> None:
    for command in (cmd_table1, cmd_fig3, cmd_fig5, cmd_fig6, cmd_fig7, cmd_analysis):
        command(args)
        print()
    args.surge = 0.25
    cmd_fig4(args)
    print()
    args.surge = 0.35
    cmd_fig4(args)


class _MenuParser(argparse.ArgumentParser):
    """ArgumentParser that prints a subcommand menu on unknown choices.

    Matches the ``repro faults``/``repro policy`` convention: unknown
    subcommands exit 2 after a helpful listing instead of a bare usage
    string. Parsers without a ``menu`` keep stock argparse behaviour.
    """

    menu = None

    def error(self, message: str) -> None:
        if self.menu is not None and "invalid choice" in message:
            print(f"error: {message}", file=sys.stderr)
            self.menu()
            raise SystemExit(2)
        super().error(message)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="FMTCP (ICDCS 2012) reproduction — regenerate paper experiments",
    )
    parser.add_argument("--duration", type=float, default=None, help="run length (s)")
    parser.add_argument(
        "--bandwidth", type=float, default=DEFAULT_BANDWIDTH_BPS, help="per-path bw (bps)"
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--csv", type=str, default=None, help="export rows to CSV")
    sub = parser.add_subparsers(dest="command", required=True, parser_class=_MenuParser)
    sub.add_parser("table1", help="print Table I").set_defaults(fn=cmd_table1)
    sub.add_parser("fig3", help="goodput sweep").set_defaults(fn=cmd_fig3)
    fig4 = sub.add_parser("fig4", help="loss-surge time series")
    fig4.add_argument("--surge", type=float, default=0.25)
    fig4.set_defaults(fn=cmd_fig4)
    sub.add_parser("fig5", help="block delay sweep").set_defaults(fn=cmd_fig5)
    sub.add_parser("fig6", help="block jitter sweep").set_defaults(fn=cmd_fig6)
    sub.add_parser("fig7", help="per-block delay series").set_defaults(fn=cmd_fig7)
    sub.add_parser("analysis", help="closed-form results").set_defaults(fn=cmd_analysis)
    fairness = sub.add_parser("fairness", help="shared-bottleneck TCP-friendliness")
    fairness.add_argument("--competitors", type=int, default=3)
    fairness.set_defaults(fn=cmd_fairness)
    replicate = sub.add_parser("replicate", help="multi-seed mean ± CI comparison")
    replicate.add_argument("--case", type=int, default=4)
    replicate.add_argument("--seeds", type=int, default=3)
    replicate.set_defaults(fn=cmd_replicate)
    sub.add_parser("heatmap", help="loss x buffer advantage map").set_defaults(
        fn=cmd_heatmap
    )
    report = sub.add_parser("report", help="assemble RESULTS.md from saved benches")
    report.add_argument("--output", type=str, default="RESULTS.md")
    report.set_defaults(fn=cmd_report)
    sub.add_parser("sensitivity", help="loss/bandwidth/delay sweeps").set_defaults(
        fn=cmd_sensitivity
    )
    faults = sub.add_parser("faults", help="fault injection: chaos run + recovery")
    faults.add_argument(
        "--scenario",
        type=str,
        default="path_death",
        help="preset name, random:SEED, trace:FILE.csv, or 'list'",
    )
    faults.add_argument(
        "--protocol", choices=("fmtcp", "mptcp", "both"), default="both"
    )
    faults.add_argument(
        "--bench", action="store_true", help="also measure retention/recovery"
    )
    faults.add_argument(
        "--flight-dir",
        type=str,
        default=None,
        help="dump flight-recorder + profiler post-mortems here on violations",
    )
    faults.set_defaults(fn=cmd_faults)
    policy = sub.add_parser(
        "policy", help="pluggable scheduling policies: rollouts + comparisons"
    )
    policy.set_defaults(fn=lambda args: policy.print_help())
    policy_sub = policy.add_subparsers(dest="policy_command")
    policy_list = policy_sub.add_parser("list", help="show registered policies")
    policy_list.set_defaults(fn=cmd_policy_list)

    def _policy_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--case", type=int, default=4, help="Table I case id")
        p.add_argument("--seeds", type=int, default=3, help="number of seeds")
        p.add_argument("--epoch", type=float, default=0.25, help="decision epoch (s)")
        p.add_argument(
            "--workers", type=int, default=None, help="process pool size"
        )

    rollout_p = policy_sub.add_parser(
        "rollout", help="run seeded episodes, optionally dump JSONL trajectories"
    )
    rollout_p.add_argument(
        "--policy",
        action="append",
        default=None,
        help="policy name (repeatable); see 'repro policy list'",
    )
    rollout_p.add_argument(
        "--out", type=str, default=None, help="write (obs, action, reward) JSONL here"
    )
    _policy_common(rollout_p)
    rollout_p.set_defaults(fn=cmd_policy_rollout)
    compare_p = policy_sub.add_parser(
        "compare", help="same-seed goodput/delay comparison across policies"
    )
    compare_p.add_argument(
        "--policy",
        action="append",
        default=None,
        help="policy name (repeatable); default: all registered",
    )
    compare_p.add_argument(
        "--json", type=str, default=None, help="write PolicyReport list here"
    )
    _policy_common(compare_p)
    compare_p.set_defaults(fn=cmd_policy_compare)
    trace = sub.add_parser("trace", help="record and analyse JSONL telemetry traces")
    trace.menu = _print_trace_menu
    trace.set_defaults(fn=lambda args: trace.print_help())
    trace_sub = trace.add_subparsers(dest="trace_command")
    record = trace_sub.add_parser(
        "record", help="run one Table I transfer with telemetry -> JSONL"
    )
    record.add_argument("--case", type=int, default=4, help="Table I case id")
    record.add_argument(
        "--protocol",
        choices=("fmtcp", "mptcp", "tcp", "fixedrate"),
        default="fmtcp",
    )
    record.add_argument("--output", type=str, default="trace.jsonl")
    record.add_argument(
        "--sample-period", type=float, default=0.1, help="sampler period (s)"
    )
    record.add_argument(
        "--profile", action="store_true", help="also profile the sim engine"
    )
    record.add_argument(
        "--spans",
        action="store_true",
        help="also decompose block delay live (summary line at the end)",
    )
    record.set_defaults(fn=cmd_trace_record)
    summarize_p = trace_sub.add_parser("summarize", help="totals, kinds, goodput")
    summarize_p.add_argument("file")
    summarize_p.set_defaults(fn=cmd_trace_summarize)
    subflows_p = trace_sub.add_parser(
        "subflows", help="per-subflow cwnd/srtt/eat series"
    )
    subflows_p.add_argument("file")
    subflows_p.set_defaults(fn=cmd_trace_subflows)
    timeline_p = trace_sub.add_parser("timeline", help="chronological event listing")
    timeline_p.add_argument("file")
    timeline_p.add_argument(
        "--kind", action="append", help="only these kinds (repeatable)"
    )
    timeline_p.add_argument("--start", type=float, default=None, help="window start (s)")
    timeline_p.add_argument("--end", type=float, default=None, help="window end (s)")
    timeline_p.add_argument("--limit", type=int, default=40, help="show last N records")
    timeline_p.set_defaults(fn=cmd_trace_timeline)
    export_p = trace_sub.add_parser("export-csv", help="flatten records to CSV")
    export_p.add_argument("file")
    export_p.add_argument("--kind", type=str, default=None, help="only this kind")
    export_p.add_argument("--output", type=str, default=None, help="write here (default stdout)")
    export_p.set_defaults(fn=cmd_trace_export_csv)
    spans_p = trace_sub.add_parser(
        "spans", help="per-stage block-delay decomposition (P50/P95/P99)"
    )
    spans_p.add_argument("file")
    spans_p.set_defaults(fn=cmd_trace_spans)
    critical_p = trace_sub.add_parser(
        "critical-path", help="slowest blocks with their dominant stage"
    )
    critical_p.add_argument("file")
    critical_p.add_argument(
        "--top", type=int, default=5, help="how many slowest blocks to show"
    )
    critical_p.set_defaults(fn=cmd_trace_critical_path)
    everything = sub.add_parser("all", help="run every experiment")
    everything.add_argument("--surge", type=float, default=0.25)
    everything.set_defaults(fn=cmd_all)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    try:
        args = build_parser().parse_args(argv)
    except SystemExit as exc:
        # Menu-driven exits (unknown subcommand) and --help land here;
        # surface the status as a return code like every other command.
        code = exc.code
        if isinstance(code, int):
            return code
        return 0 if code is None else 2
    return args.fn(args) or 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
