"""FMTCP: the paper's primary contribution.

The sender (:mod:`repro.core.sender`) encodes application blocks with a
rateless fountain code and fills every subflow transmission opportunity
via the Expected-Arriving-Time data-allocation algorithm
(:mod:`repro.core.allocation`, the paper's Algorithm 1), gated by the
δ-completeness predictor (:mod:`repro.core.blocks`, Definitions 2-4 and
Eq. (8)). The receiver (:mod:`repro.core.receiver`) aggregates symbols
across subflows, reports per-block independent-symbol counts k̄ on every
ACK, and delivers decoded blocks in order. No payload is ever
retransmitted: losses merely re-raise a block's expected decoding-failure
probability, and fresh symbols flow to whichever subflow is expected to
deliver them first.

:class:`repro.core.connection.FmtcpConnection` wires the two halves over
a set of network paths.
"""

from repro.core.allocation import AllocationResult, allocate_packet
from repro.core.blocks import BlockManager, PendingBlock
from repro.core.config import FmtcpConfig
from repro.core.connection import FmtcpConnection
from repro.core.estimators import PathEstimate, eat, edt_for_flows, expected_rt, sedt

__all__ = [
    "AllocationResult",
    "BlockManager",
    "FmtcpConfig",
    "FmtcpConnection",
    "PathEstimate",
    "PendingBlock",
    "allocate_packet",
    "eat",
    "edt_for_flows",
    "expected_rt",
    "sedt",
]
