"""The paper's Algorithm 1: EAT-driven packet allocation.

When a subflow f_p gets a transmission opportunity, the sender runs a
*virtual* allocation: it repeatedly picks the subflow with the smallest
Expected Arriving Time, fills a (virtual) packet for it with symbols for
the earliest blocks that are not yet δ̂-complete (rules R1 and R2), and
bumps that subflow's EAT — until the picked subflow is f_p itself, whose
packet description vector V is returned and actually transmitted.

Virtual assignments update the *expected* received-symbol counts k̃_b
(each symbol virtually sent on flow f contributes 1 − p_f expected
symbols, per Eq. (8)) but are never persisted: the next invocation
recomputes everything from live state, which is what lets the allocation
adapt when EATs shift (Section IV-B).

Two implementations are provided:

* :func:`allocate_packet` — the production version with the
  first-incomplete-block pointer optimisation the paper sketches
  (complexity O(m + packets·symbols_per_packet), independent of how many
  leading blocks are already complete);
* :func:`allocate_packet_reference` — a literal transcription of the
  pseudocode that rescans blocks from b₁ every iteration. A property test
  asserts both produce identical vectors.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.blocks import PendingBlock
from repro.core.estimators import PathEstimate, eat, eat_table, edt_for_flows


class AllocationError(RuntimeError):
    """Raised when the virtual allocation fails to terminate (a bug)."""


@dataclass
class AllocationRequest:
    """Everything one allocation decision may consult.

    The sender builds one of these per transmission opportunity. With no
    decision hook installed it runs the configured allocator on it
    directly; with a hook (``repro.policy``) the request is handed to the
    policy, which may run Algorithm 1 verbatim (:class:`PaperEATPolicy`),
    rescale the redundancy margin, reshape the per-path loss assumptions,
    or decline the opportunity outright by returning an empty result.
    """

    pending_subflow_id: int
    estimates: Sequence[PathEstimate]
    blocks: Sequence[PendingBlock]
    loss_rate_of: Callable[[int], float]
    mss: int
    symbol_wire_size: int
    margin: float
    now: float = 0.0

    @property
    def symbols_per_packet(self) -> int:
        """Eq. (9)'s MSS constraint for this request's wire geometry."""
        return max(1, self.mss // self.symbol_wire_size)

    def run(self, allocator: Optional[Callable[..., "AllocationResult"]] = None) -> "AllocationResult":
        """Execute ``allocator`` (default: Algorithm 1) on this request."""
        if allocator is None:
            allocator = allocate_packet
        return allocator(
            pending_subflow_id=self.pending_subflow_id,
            estimates=self.estimates,
            blocks=self.blocks,
            loss_rate_of=self.loss_rate_of,
            mss=self.mss,
            symbol_wire_size=self.symbol_wire_size,
            margin=self.margin,
        )


#: A pluggable allocation decision: request in, description vector out.
DecisionHook = Callable[[AllocationRequest], "AllocationResult"]


@dataclass
class AllocationResult:
    """Outcome of one Algorithm 1 invocation for the pending subflow."""

    # Ordered (block_id, symbol_count) pairs — the description vector V.
    vector: List[Tuple[int, int]] = field(default_factory=list)
    # Diagnostics: virtual loop iterations and per-subflow virtual packets.
    iterations: int = 0
    virtual_packets: Dict[int, int] = field(default_factory=dict)

    @property
    def total_symbols(self) -> int:
        return sum(count for __, count in self.vector)

    def is_empty(self) -> bool:
        return not self.vector


def _fill_packet(
    blocks: Sequence[PendingBlock],
    k_tilde_virtual: List[float],
    start_index: int,
    gain: float,
    margin: float,
    mss: int,
    symbol_wire_size: int,
    advance_pointer: bool,
) -> Tuple[List[Tuple[int, int]], int, int]:
    """Inner double-loop of Algorithm 1 (lines 3-12) for one virtual packet.

    Returns ``(vector, symbols_assigned, new_start_index)``. Completeness
    is judged in the margin form k̃ ≥ k̂ + log₂(1/δ̂), which is exactly
    δ̃ < δ̂ by Eq. (2) and is flow-independent, so the first-incomplete
    pointer stays valid across iterations.
    """
    vector: List[Tuple[int, int]] = []
    space = mss
    index = start_index
    new_start = start_index
    assigned_total = 0
    while index < len(blocks) and space >= symbol_wire_size:
        block = blocks[index]
        threshold = block.k + margin
        assigned = 0
        while k_tilde_virtual[index] < threshold and space >= symbol_wire_size:
            assigned += 1
            space -= symbol_wire_size
            k_tilde_virtual[index] += gain
        if assigned:
            vector.append((block.block_id, assigned))
            assigned_total += assigned
        if k_tilde_virtual[index] >= threshold:
            if advance_pointer and index == new_start:
                new_start = index + 1
            index += 1
        else:
            break  # Packet full while this block still needs symbols.
    return vector, assigned_total, new_start


def _allocate(
    pending_subflow_id: int,
    estimates: Sequence[PathEstimate],
    blocks: Sequence[PendingBlock],
    loss_rate_of: Callable[[int], float],
    mss: int,
    symbol_wire_size: int,
    margin: float,
    optimised: bool,
    max_iterations: Optional[int] = None,
) -> AllocationResult:
    estimate_by_id = {estimate.subflow_id: estimate for estimate in estimates}
    if pending_subflow_id not in estimate_by_id:
        raise ValueError(f"pending subflow {pending_subflow_id} not in estimates")
    if symbol_wire_size > mss:
        raise ValueError("a single symbol must fit within the MSS")

    edts = edt_for_flows(estimates)
    eats = eat_table(estimates)
    virtual_queue: Dict[int, int] = {estimate.subflow_id: 0 for estimate in estimates}

    # Live k̃ per block (Eq. 8), copied into virtual state for this call.
    k_tilde_virtual = [block.k_tilde(loss_rate_of) for block in blocks]
    gains = {
        estimate.subflow_id: max(1.0 - loss_rate_of(estimate.subflow_id), 1e-3)
        for estimate in estimates
    }

    result = AllocationResult()
    start_index = 0
    # Generous safety bound: total residual demand plus one pass per flow.
    if max_iterations is None:
        total_demand = sum(
            max(0, int(block.k + margin - kt) + 1)
            for block, kt in zip(blocks, k_tilde_virtual)
        )
        max_iterations = total_demand + len(estimates) + 16

    while True:
        result.iterations += 1
        if result.iterations > max_iterations:
            raise AllocationError(
                f"virtual allocation did not converge after {max_iterations} "
                f"iterations (pending subflow {pending_subflow_id})"
            )
        chosen_id = min(eats, key=lambda subflow_id: (eats[subflow_id], subflow_id))
        vector, assigned, start_index = _fill_packet(
            blocks=blocks,
            k_tilde_virtual=k_tilde_virtual,
            start_index=start_index if optimised else 0,
            gain=gains[chosen_id],
            margin=margin,
            mss=mss,
            symbol_wire_size=symbol_wire_size,
            advance_pointer=optimised,
        )
        if assigned == 0:
            # No block needs symbols any more (all δ̂-complete virtually):
            # rule R1 says nobody — including the pending flow — sends.
            return result
        if chosen_id == pending_subflow_id:
            result.vector = vector
            return result
        # Virtual packet: bump the chosen flow's EAT and keep going.
        result.virtual_packets[chosen_id] = result.virtual_packets.get(chosen_id, 0) + 1
        virtual_queue[chosen_id] += 1
        eats[chosen_id] = eat(
            estimate_by_id[chosen_id], edts[chosen_id], virtual_queue[chosen_id]
        )


def allocate_packet(
    pending_subflow_id: int,
    estimates: Sequence[PathEstimate],
    blocks: Sequence[PendingBlock],
    loss_rate_of: Callable[[int], float],
    mss: int,
    symbol_wire_size: int,
    margin: float,
) -> AllocationResult:
    """Algorithm 1 with the first-incomplete-block pointer optimisation."""
    return _allocate(
        pending_subflow_id,
        estimates,
        blocks,
        loss_rate_of,
        mss,
        symbol_wire_size,
        margin,
        optimised=True,
    )


def allocate_packet_greedy(
    pending_subflow_id: int,
    estimates: Sequence[PathEstimate],
    blocks: Sequence[PendingBlock],
    loss_rate_of: Callable[[int], float],
    mss: int,
    symbol_wire_size: int,
    margin: float,
) -> AllocationResult:
    """Ablation baseline: no EAT ranking, no virtual allocation.

    The requesting subflow is filled directly from the first pending
    blocks (Section IV-B's "intuitive approach"), so a slow subflow grabs
    symbols of the most urgent block even when a faster subflow would
    deliver them sooner.
    """
    gain = max(1.0 - loss_rate_of(pending_subflow_id), 1e-3)
    k_tilde_virtual = [block.k_tilde(loss_rate_of) for block in blocks]
    vector, assigned, __ = _fill_packet(
        blocks=blocks,
        k_tilde_virtual=k_tilde_virtual,
        start_index=0,
        gain=gain,
        margin=margin,
        mss=mss,
        symbol_wire_size=symbol_wire_size,
        advance_pointer=False,
    )
    result = AllocationResult(iterations=1)
    if assigned:
        result.vector = vector
    return result


def allocate_packet_reference(
    pending_subflow_id: int,
    estimates: Sequence[PathEstimate],
    blocks: Sequence[PendingBlock],
    loss_rate_of: Callable[[int], float],
    mss: int,
    symbol_wire_size: int,
    margin: float,
) -> AllocationResult:
    """Literal Algorithm 1: rescans the block list from b₁ every iteration."""
    return _allocate(
        pending_subflow_id,
        estimates,
        blocks,
        loss_rate_of,
        mss,
        symbol_wire_size,
        margin,
        optimised=False,
    )
