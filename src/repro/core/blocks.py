"""Sender-side block state and the δ-completeness predictor.

Implements Definitions 2-4 and Eq. (8) of the paper: for every pending
block the sender tracks the receiver-confirmed independent symbol count
k̄_b and the per-subflow in-flight symbol counts l_b^f, estimates

    k̃_b = k̄_b + Σ_f l_b^f · (1 − p_f)                     (Eq. 8)

and predicts the expected decoding failure probability δ̃_b = δ_b(k̃_b)
(Eq. 2). A block is δ̂-complete when δ̃_b < δ̂, equivalently when
k̃_b ≥ k̂_b + log₂(1/δ̂) — at which point rule R1 stops feeding it symbols.
"""

from __future__ import annotations

import random
import zlib
from typing import Callable, Dict, List, Optional, Union

from repro.core.config import FmtcpConfig
from repro.fountain.codec import BlockEncoder, SystematicBlockEncoder
from repro.fountain.lt import LtEncoder
from repro.fountain.rank_model import decoding_failure_probability


class PendingBlock:
    """One block between creation and confirmed decode."""

    __slots__ = (
        "block_id",
        "k",
        "data_bytes",
        "payload",
        "encoder",
        "k_bar",
        "in_flight",
        "first_tx_at",
        "decoded",
        "symbols_generated",
        "missed",
        "block_crc",
        "quarantine_epoch",
    )

    def __init__(
        self,
        block_id: int,
        k: int,
        data_bytes: int,
        payload: Optional[bytes] = None,
        encoder: Optional[BlockEncoder] = None,
        block_crc: Optional[int] = None,
    ):
        self.block_id = block_id
        self.k = k
        self.data_bytes = data_bytes
        self.payload = payload
        self.encoder = encoder
        self.block_crc = block_crc
        # Highest receiver quarantine epoch seen in feedback; k̄ reports
        # from older epochs describe an evicted basis and are ignored.
        self.quarantine_epoch = 0
        self.k_bar = 0
        self.in_flight: Dict[int, int] = {}
        self.first_tx_at: Optional[float] = None
        self.decoded = False
        self.symbols_generated = 0
        # Set when the block went quiescent short of k̂ — a δ̂ prediction
        # miss that the adaptive-margin controller counts.
        self.missed = False

    def in_flight_total(self) -> int:
        return sum(self.in_flight.values())

    def k_tilde(self, loss_rate_of: Callable[[int], float]) -> float:
        """Eq. (8): expected symbols the receiver will end up holding."""
        expected = float(self.k_bar)
        for subflow_id, count in self.in_flight.items():
            if count:
                expected += count * (1.0 - loss_rate_of(subflow_id))
        return expected

    def expected_failure(self, loss_rate_of: Callable[[int], float]) -> float:
        """Definition 3: δ̃_b = δ_b(k̃_b)."""
        return decoding_failure_probability(self.k, self.k_tilde(loss_rate_of))

    def is_delta_complete(
        self, loss_rate_of: Callable[[int], float], margin: float
    ) -> bool:
        """Definition 4 via the margin form k̃ ≥ k̂ + log₂(1/δ̂)."""
        return self.k_tilde(loss_rate_of) >= self.k + margin

    def record_sent(self, subflow_id: int, count: int, now: float) -> None:
        self.in_flight[subflow_id] = self.in_flight.get(subflow_id, 0) + count
        self.symbols_generated += count
        if self.first_tx_at is None:
            self.first_tx_at = now

    def record_resolved(self, subflow_id: int, count: int) -> None:
        """Symbols left the congestion window (acknowledged or lost)."""
        current = self.in_flight.get(subflow_id, 0)
        self.in_flight[subflow_id] = max(0, current - count)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PendingBlock {self.block_id} k={self.k} k̄={self.k_bar} "
            f"inflight={self.in_flight_total()} decoded={self.decoded}>"
        )


class BlockManager:
    """Creates blocks from the application stream and tracks their lifecycle.

    Keeps at most ``config.max_pending_blocks`` undecoded blocks alive,
    which doubles as the receive-buffer constraint of Section III-B (the
    receiver never holds symbols for more than that many blocks).
    """

    def __init__(
        self,
        config: FmtcpConfig,
        source,
        rng: Optional[random.Random] = None,
        trace=None,
        clock=None,
        start_block_id: int = 0,
    ):
        if start_block_id < 0:
            raise ValueError("start_block_id must be >= 0")
        self.config = config
        self.source = source
        self._rng = rng or random.Random()
        self._trace = trace
        self._clock = clock
        self._pending: List[PendingBlock] = []
        # Nonzero when restoring from a recovery checkpoint: block ids
        # below the cursor were confirmed delivered in a previous epoch
        # (the source must be rewound to the matching stream offset).
        self._next_block_id = int(start_block_id)
        self.blocks_created = 0
        self.blocks_completed = 0
        self.source_exhausted = False

    @property
    def pending_blocks(self) -> List[PendingBlock]:
        """Undecoded blocks in stream order (the paper's set B)."""
        return self._pending

    def block_by_id(self, block_id: int) -> Optional[PendingBlock]:
        for block in self._pending:
            if block.block_id == block_id:
                return block
        return None

    def replenish(self) -> None:
        """Pull new blocks from the source up to the pending limit."""
        while len(self._pending) < self.config.max_pending_blocks:
            block = self._create_block()
            if block is None:
                return
            self._pending.append(block)

    def _create_block(self) -> Optional[PendingBlock]:
        pulled: Union[int, bytes, None] = self.source.pull(self.config.block_bytes)
        if not pulled:
            self.source_exhausted = True
            return None
        if isinstance(pulled, bytes):
            data_bytes = len(pulled)
            payload: Optional[bytes] = pulled
        else:
            data_bytes = int(pulled)
            payload = None
        k = max(1, -(-data_bytes // self.config.symbol_size))  # ceil division
        k = min(k, self.config.symbols_per_block)
        encoder = None
        block_crc = None
        if self.config.coding == "real":
            if payload is None:
                payload = bytes(data_bytes)
            block_crc = zlib.crc32(payload)
            if self.config.code == "lt":
                encoder = LtEncoder(
                    payload, k=k, part_size=self.config.symbol_size, rng=self._rng
                )
            else:
                encoder_class = (
                    SystematicBlockEncoder if self.config.systematic else BlockEncoder
                )
                encoder = encoder_class(
                    payload,
                    k=k,
                    part_size=self.config.symbol_size,
                    rng=self._rng,
                )
        block = PendingBlock(
            block_id=self._next_block_id,
            k=k,
            data_bytes=data_bytes,
            payload=payload,
            encoder=encoder,
            block_crc=block_crc,
        )
        self._next_block_id += 1
        self.blocks_created += 1
        if self._trace is not None and self._trace.has_subscribers("span.block_open"):
            self._trace.emit(
                self._clock() if self._clock is not None else 0.0,
                "span.block_open",
                block_id=block.block_id,
                k=k,
                bytes=data_bytes,
            )
        return block

    def mark_decoded(self, block_id: int) -> Optional[PendingBlock]:
        """Receiver confirmed decode; retire the block from the pending set."""
        for index, block in enumerate(self._pending):
            if block.block_id == block_id:
                block.decoded = True
                self.blocks_completed += 1
                return self._pending.pop(index)
        return None

    def update_k_bar(self, block_id: int, k_bar: int, epoch: int = 0) -> None:
        """Fold a k̄ report from an ACK into sender state.

        Within one receiver quarantine epoch k̄ only grows, so the update
        is a monotone max (reordered ACKs are harmless). A report from a
        *newer* epoch means the receiver quarantined the block and evicted
        its basis: the stale k̄ is overwritten wholesale, so the EAT
        allocator starts feeding replacement symbols again. Reports from
        older epochs are stale and ignored.
        """
        block = self.block_by_id(block_id)
        if block is None:
            return
        if epoch > block.quarantine_epoch:
            block.quarantine_epoch = epoch
            block.k_bar = k_bar
        elif epoch == block.quarantine_epoch and k_bar > block.k_bar:
            block.k_bar = k_bar

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<BlockManager pending={len(self._pending)} "
            f"created={self.blocks_created} done={self.blocks_completed}>"
        )
