"""FMTCP configuration.

Defaults follow DESIGN.md §3.4: 64 symbols of 128 bytes per block (8 KiB
blocks), 1400-byte MSS (10 symbols per packet with headers), and a
maximum acceptable decoding-failure probability δ̂ = 10⁻³, i.e. a block is
predicted complete once its expected independent-symbol count k̃ reaches
k̂ + log₂(1/δ̂) ≈ k̂ + 10 (Definition 4 and the paper's completeness
condition).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional


@dataclass
class FmtcpConfig:
    """Tunables of the FMTCP sender/receiver pair."""

    # Block geometry (paper Section III-B chooses k̂ to balance coding
    # complexity, MSS fit and buffer size).
    symbols_per_block: int = 256
    symbol_size: int = 32
    # Per-symbol wire overhead. Symbols travel in per-block groups whose
    # header (block id, PRNG seed, base symbol id) is amortised across the
    # group, so the marginal cost per symbol is small.
    symbol_header_bytes: int = 2
    mss: int = 1400

    # δ̂: maximum acceptable decoding failure probability (Definition 4).
    delta_hat: float = 1e-3

    # Sender-side concurrency: number of blocks simultaneously pending.
    # Bounds receiver buffer occupancy to max_pending_blocks blocks
    # (Section III-B's buffer-size constraint on k̂).
    max_pending_blocks: int = 16

    # "statistical" samples exact decoder-rank evolution (fast, default);
    # "real" runs the byte-level GF(2) codec end to end.
    coding: str = "statistical"

    # Systematic encoding (source parts first, coded repair after) — the
    # deployed-fountain flavour; requires the real codec because the
    # statistical rank model assumes uniformly random coefficient rows.
    systematic: bool = False

    # Which fountain code encodes blocks: "rlc" is the paper's dense
    # random-linear code; "lt" swaps in LT coding with the robust Soliton
    # distribution (sparse symbols, linear-time peeling decode, a few
    # percent more overhead). "lt" requires coding="real".
    code: str = "rlc"

    # "eat" runs Algorithm 1 (the paper's allocator); "greedy" is the
    # Section IV-B strawman; "stopwait" mimics HMTP (related work [21]):
    # every subflow keeps sending symbols of the *first* undecoded block
    # until the receiver's decode confirmation arrives — the inefficient
    # stop-and-wait behaviour the paper's prediction mechanism replaces.
    allocation: str = "eat"

    # Subflow machinery.
    congestion: str = "reno"
    initial_cwnd: float = 2.0
    dup_ack_threshold: int = 3
    min_rto: float = 0.2

    # Loss-estimator floor: EDT/RT computations assume some residual loss
    # so a momentarily clean path is not treated as perfectly reliable.
    loss_estimate_floor: float = 0.0

    # Idle-path probing. The EAT allocator stops scheduling symbols on a
    # path it estimates as terrible — but the loss estimate can only
    # improve by *sending*, so a path that died and recovered would stay
    # quarantined forever. A subflow idle longer than this (with window
    # space and nothing outstanding) is given one greedily-filled packet
    # of fresh symbols as a probe. None disables probing.
    probe_interval_s: Optional[float] = 1.0

    # Estimator aging: halve a subflow's loss estimate for every this many
    # seconds without an observed loss. Disabled by default — time-based
    # forgiveness makes the allocator oscillate between trusting and
    # distrusting a persistently lossy path; probe *chains* (below) are
    # the default rehabilitation mechanism instead.
    loss_estimate_half_life_s: Optional[float] = None

    # Adaptive completeness margin (extension, off by default): instead of
    # a fixed log2(1/δ̂), the sender tunes its head-room from observed
    # prediction misses — blocks that went quiescent (nothing in flight)
    # while still short of k̂ and needed a feedback-driven top-up. Miss
    # rates above the target raise the margin; a miss-free window lowers
    # it toward the floor.
    adaptive_margin: bool = False
    adaptive_margin_target_miss: float = 0.02
    adaptive_margin_window: int = 50
    adaptive_margin_floor: float = 3.0
    adaptive_margin_ceiling: float = 30.0

    # Probe chaining: when a probe on a quarantined path (aged loss
    # estimate above this threshold) is acknowledged, the next probe may
    # follow immediately instead of waiting out probe_interval_s — so a
    # healed path re-earns trust in seconds, one EWMA sample per RTT.
    probe_chain_threshold: float = 0.2

    # Dead-path failover: after this many consecutive RTO firings with no
    # intervening ACK, a subflow is declared potentially failed — the EAT
    # allocator stops assigning symbols to it and the subflow drops to
    # one-probe-per-backed-off-RTO until a probe is acknowledged. None
    # disables detection (pre-failover behaviour).
    failover_rto_threshold: Optional[int] = 3

    # End-to-end flow control (repro.robustness extension, off by
    # default): the receiver advertises a block-granular window on every
    # ACK and the sender may only *open* blocks below the licensed limit,
    # so receiver occupancy (active decoders + decoded-waiting + app
    # backlog) never exceeds recv_window_blocks.
    flow_control: bool = False
    recv_window_blocks: int = 32
    # Application drain model: None = the app consumes instantly (the
    # pre-flow-control behaviour); a rate in bytes/s models a slow
    # reader; 0.0 models an app that stopped reading entirely.
    recv_drain_rate_bps: Optional[float] = None
    # Backpressure hysteresis (fractions of recv_window_blocks): pause
    # opening new blocks when the receiver-held backlog crosses high,
    # resume once it falls back to low.
    flow_high_watermark: float = 0.75
    flow_low_watermark: float = 0.5
    # Zero-window probing: initial interval and exponential-backoff cap.
    zero_window_probe_s: float = 0.5
    zero_window_probe_max_s: float = 4.0

    def __post_init__(self) -> None:
        if self.symbols_per_block < 1:
            raise ValueError("symbols_per_block must be >= 1")
        if self.symbol_size < 1:
            raise ValueError("symbol_size must be >= 1")
        if not 0.0 < self.delta_hat < 1.0:
            raise ValueError("delta_hat must be in (0, 1)")
        if self.coding not in ("statistical", "real"):
            raise ValueError(f"unknown coding mode {self.coding!r}")
        if self.allocation not in ("eat", "greedy", "stopwait"):
            raise ValueError(f"unknown allocation mode {self.allocation!r}")
        if self.systematic and self.coding != "real":
            raise ValueError('systematic encoding requires coding="real"')
        if self.code not in ("rlc", "lt"):
            raise ValueError(f"unknown fountain code {self.code!r}")
        if self.code == "lt" and self.coding != "real":
            raise ValueError('LT coding requires coding="real"')
        if self.code == "lt" and self.systematic:
            raise ValueError("systematic mode applies to the RLC code only")
        if self.failover_rto_threshold is not None and self.failover_rto_threshold < 1:
            raise ValueError("failover_rto_threshold must be >= 1 or None")
        if self.recv_window_blocks < 1:
            raise ValueError("recv_window_blocks must be >= 1")
        if self.recv_drain_rate_bps is not None and self.recv_drain_rate_bps < 0:
            raise ValueError("recv_drain_rate_bps must be >= 0 or None")
        if not 0.0 < self.flow_low_watermark <= self.flow_high_watermark <= 1.0:
            raise ValueError(
                "flow watermarks must satisfy 0 < low <= high <= 1"
            )
        if self.zero_window_probe_s <= 0:
            raise ValueError("zero_window_probe_s must be positive")
        if self.zero_window_probe_max_s < self.zero_window_probe_s:
            raise ValueError(
                "zero_window_probe_max_s must be >= zero_window_probe_s"
            )
        if self.symbol_wire_size > self.mss:
            raise ValueError(
                f"one symbol ({self.symbol_wire_size}B on the wire) must fit "
                f"in the MSS ({self.mss}B)"
            )

    @property
    def block_bytes(self) -> int:
        """Application bytes carried by one full block."""
        return self.symbols_per_block * self.symbol_size

    @property
    def symbol_wire_size(self) -> int:
        return self.symbol_size + self.symbol_header_bytes

    @property
    def symbols_per_packet(self) -> int:
        """How many symbols Eq. (9)'s MSS constraint admits per packet."""
        return max(1, self.mss // self.symbol_wire_size)

    @property
    def completeness_margin(self) -> float:
        """log₂(1/δ̂): extra expected symbols needed beyond k̂."""
        return math.log2(1.0 / self.delta_hat)
