"""FMTCP connection facade: wires sender, receiver and subflows together.

Mirrors :class:`repro.mptcp.connection.MptcpConnection` so experiments can
swap protocols behind one interface (``start`` / ``pump`` / ``close`` plus
shared trace vocabulary: ``conn.delivered`` and ``conn.block_done``).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.core.blocks import BlockManager
from repro.core.config import FmtcpConfig
from repro.core.receiver import FmtcpReceiver
from repro.core.sender import FmtcpSender
from repro.net.topology import Path
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.trace import TraceBus
from repro.tcp.congestion import LiaGroup, make_controller
from repro.tcp.rto import RtoEstimator
from repro.tcp.subflow import Subflow, SubflowSink


class FmtcpConnection:
    """One FMTCP transfer across a set of network paths."""

    def __init__(
        self,
        sim: Simulator,
        paths: Sequence[Path],
        source,
        config: Optional[FmtcpConfig] = None,
        trace: Optional[TraceBus] = None,
        rng: Optional[RngStreams] = None,
        sink: Optional[Callable[[int, Optional[bytes]], None]] = None,
        resume=None,
    ):
        if not paths:
            raise ValueError("need at least one path")
        self.sim = sim
        self.config = config or FmtcpConfig()
        self.trace = trace
        rng = rng or RngStreams(0)

        # ``resume`` (duck-typed; see repro.recovery.checkpoint.ResumeState)
        # restores a checkpointed endpoint pair after a crash: the block
        # cursor and sender frontier restart at the sender's last durable
        # checkpoint (the source must already be rewound to the matching
        # stream offset), the receiver at its delivered-block frontier.
        sender_frontier = int(resume.sender_frontier) if resume is not None else 0
        sender_margin = resume.sender_margin if resume is not None else None
        receiver_frontier = int(resume.receiver_frontier) if resume is not None else 0
        receiver_bytes = int(resume.receiver_bytes) if resume is not None else 0

        self.block_manager = BlockManager(
            self.config,
            source,
            rng=rng.get("fmtcp:encoder"),
            trace=trace,
            clock=lambda: sim.now,
            start_block_id=sender_frontier,
        )
        self.sender = FmtcpSender(
            sim,
            self.config,
            self.block_manager,
            trace=trace,
            resume_frontier=sender_frontier,
            resume_margin=sender_margin,
        )
        self.receiver = FmtcpReceiver(
            sim,
            self.config,
            trace=trace,
            rng=rng.get("fmtcp:rank"),
            sink=sink,
            resume_frontier=receiver_frontier,
            resume_bytes=receiver_bytes,
        )

        self.subflows: List[Subflow] = []
        self._sinks: List[SubflowSink] = []
        self._sink_by_id: dict = {}
        self._next_subflow_id = 0
        self._lia_group = LiaGroup() if self.config.congestion == "lia" else None
        for path in paths:
            self._attach(path, join_delay_s=None)
        self.sender.attach_subflows(self.subflows)

    def _attach(self, path: Path, join_delay_s: Optional[float]) -> Subflow:
        """Build one subflow + its receiver sink (no sender re-enumeration)."""
        subflow_id = self._next_subflow_id
        self._next_subflow_id += 1
        controller = make_controller(
            self.config.congestion,
            lia_group=self._lia_group,
            rtt_provider=(lambda: 0.0),  # rebound to the subflow below
            initial_cwnd=self.config.initial_cwnd,
        )
        subflow = Subflow(
            sim=self.sim,
            path=path,
            owner=self.sender,
            subflow_id=subflow_id,
            congestion=controller,
            rto=RtoEstimator(min_rto=self.config.min_rto),
            mss=self.config.mss,
            dup_ack_threshold=self.config.dup_ack_threshold,
            trace=self.trace,
            failed_rto_threshold=self.config.failover_rto_threshold,
            join_delay_s=join_delay_s,
        )
        if hasattr(controller, "rtt_provider"):
            controller.rtt_provider = lambda sf=subflow: sf.srtt
        self.subflows.append(subflow)
        sink = SubflowSink(
            sim=self.sim,
            path=path,
            subflow=subflow,
            on_segment=self.receiver.on_segment,
            feedback_provider=lambda sf_id, segment: self.receiver.feedback(),
            trace=self.trace,
        )
        self._sinks.append(sink)
        self._sink_by_id[subflow_id] = sink
        return subflow

    # ------------------------------------------------------------------
    # Runtime subflow lifecycle.
    # ------------------------------------------------------------------
    def add_subflow(
        self, path: Path, join_delay_s: Optional[float] = None
    ) -> Subflow:
        """Attach a new path mid-transfer (mobility: a path came up).

        The subflow starts in JOINING for ``join_delay_s`` (default: one
        RTT of the path, modelling the MP_JOIN handshake) and enters the
        EAT allocator only once ACTIVE. Returns the new subflow.
        """
        if join_delay_s is None:
            join_delay_s = 2.0 * path.one_way_delay_s
        subflow = self._attach(path, join_delay_s=join_delay_s)
        self.sender.attach_subflows(self.subflows)
        if self.trace is not None and self.trace.has_subscribers("conn.subflow_added"):
            self.trace.emit(
                self.sim.now,
                "conn.subflow_added",
                subflow=subflow.subflow_id,
                path=path.name,
                handshake_s=join_delay_s,
            )
        return subflow

    def remove_subflow(self, subflow_id: int) -> int:
        """Detach a subflow mid-transfer (mobility: its path went away).

        The subflow is shut down cleanly (timers cancelled, port unbound),
        its in-flight symbols are written off — which lowers k̃ for the
        affected blocks and re-opens their demand — and the EAT allocator
        re-enumerates the survivors. Nothing is retransmitted: fresh
        fountain symbols flow to whichever path is expected to arrive
        first. Returns the number of in-flight packets written off.
        """
        subflow = self.sender._subflow_by_id.get(subflow_id)
        if subflow is None or subflow not in self.subflows:
            raise ValueError(f"unknown subflow id {subflow_id}")
        sink = self._sink_by_id.pop(subflow_id)
        infos = subflow.shutdown()
        sink.close()
        if self._lia_group is not None:
            self._lia_group.unregister(subflow.cc)
        self.subflows.remove(subflow)
        self._sinks.remove(sink)
        for info in infos:
            self.sender.release_abandoned(subflow, info)
        self.sender.attach_subflows(self.subflows)
        if self.trace is not None and self.trace.has_subscribers(
            "conn.subflow_removed"
        ):
            self.trace.emit(
                self.sim.now,
                "conn.subflow_removed",
                subflow=subflow_id,
                abandoned=len(infos),
            )
        self.sender.pump_all()
        return len(infos)

    # ------------------------------------------------------------------
    # Lifecycle (same surface as MptcpConnection).
    # ------------------------------------------------------------------
    def start(self) -> None:
        self.pump()

    def pump(self) -> None:
        self.sender.pump_all()

    def close(self) -> None:
        self.sender.close()
        self.receiver.close()
        for subflow in self.subflows:
            subflow.close()
        for sink in self._sinks:
            sink.close()

    def sever_receiver(self) -> int:
        """Kill the receiver endpoint only, leaving the sender running.

        Models a receiver crash: the receiver's timers stop and its ports
        unbind, so data segments are silently dropped by the network node
        and no feedback flows back. The sender keeps transmitting into the
        void until its RTO ladder marks every subflow potentially-failed —
        the half-open window the recovery manager's detector watches for.
        Port unbinding is idempotent, so a later ``close()`` on the whole
        connection is safe. Returns the number of sinks closed.
        """
        self.receiver.close()
        for sink in self._sinks:
            sink.close()
        return len(self._sinks)

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    @property
    def delivered_bytes(self) -> int:
        return self.receiver.delivered_bytes

    @property
    def delivered_blocks(self) -> int:
        return self.receiver.delivered_blocks

    def corruption_stats(self) -> dict:
        """Integrity-layer counters, aggregated for telemetry and soaks."""
        return {
            "packets_discarded_corrupt": sum(
                sink.packets_discarded_corrupt for sink in self._sinks
            ),
            "packets_rejected": sum(sink.packets_rejected for sink in self._sinks),
            "acks_discarded_corrupt": sum(
                sf.acks_discarded_corrupt for sf in self.subflows
            ),
            "blocks_quarantined": self.receiver.blocks_quarantined,
            "symbols_evicted": self.receiver.symbols_evicted,
        }

    def memory_stats(self) -> dict:
        """Live buffer occupancy per category (units: blocks/packets).

        Computed on demand from existing structures — no hot-path
        accounting. ``recv_occupancy`` is the protocol-agnostic key the
        exhaustion harness budgets against; its peak is tracked in
        ``recv_peak_occupancy`` so a between-samples spike cannot hide.
        """
        receiver = self.receiver
        stats = {
            "recv_occupancy": receiver.buffered_blocks,
            "recv_peak_occupancy": receiver.peak_buffered_blocks,
            "recv_active_blocks": receiver.active_blocks,
            "recv_waiting_blocks": receiver.waiting_blocks,
            "recv_app_queue_blocks": receiver.app_queue_blocks,
            "send_pending_blocks": len(self.block_manager.pending_blocks),
            "send_in_flight_packets": sum(sf.in_flight for sf in self.subflows),
        }
        return stats

    def flow_stats(self) -> dict:
        """Flow-control counters (zeros when the knob is off)."""
        gate = self.sender.flow_gate
        window = self.receiver.window
        return {
            "enabled": gate is not None,
            "flow_pauses": gate.pauses if gate is not None else 0,
            "flow_limit": gate.limit if gate is not None else None,
            "flow_paused": gate.paused if gate is not None else False,
            "window_probes": self.sender.window_probes,
            "zero_window_advertises": (
                window.zero_window_advertises if window is not None else 0
            ),
            "window_discards": self.receiver.symbols_window_discarded,
            "drained_units": self.receiver.drained_blocks,
        }

    def redundancy_ratio(self) -> float:
        """Symbols sent per symbol strictly needed (coding + loss overhead)."""
        needed = sum(
            self.config.symbols_per_block for __ in range(self.receiver.blocks_decoded)
        )
        if needed == 0:
            return 0.0
        return self.sender.symbols_sent / needed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FmtcpConnection subflows={len(self.subflows)} "
            f"delivered_blocks={self.delivered_blocks}>"
        )
