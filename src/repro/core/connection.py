"""FMTCP connection facade: wires sender, receiver and subflows together.

Mirrors :class:`repro.mptcp.connection.MptcpConnection` so experiments can
swap protocols behind one interface (``start`` / ``pump`` / ``close`` plus
shared trace vocabulary: ``conn.delivered`` and ``conn.block_done``).
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.core.blocks import BlockManager
from repro.core.config import FmtcpConfig
from repro.core.receiver import FmtcpReceiver
from repro.core.sender import FmtcpSender
from repro.net.topology import Path
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.trace import TraceBus
from repro.tcp.congestion import LiaGroup, make_controller
from repro.tcp.rto import RtoEstimator
from repro.tcp.subflow import Subflow, SubflowSink


class FmtcpConnection:
    """One FMTCP transfer across a set of network paths."""

    def __init__(
        self,
        sim: Simulator,
        paths: Sequence[Path],
        source,
        config: Optional[FmtcpConfig] = None,
        trace: Optional[TraceBus] = None,
        rng: Optional[RngStreams] = None,
        sink: Optional[Callable[[int, Optional[bytes]], None]] = None,
    ):
        if not paths:
            raise ValueError("need at least one path")
        self.sim = sim
        self.config = config or FmtcpConfig()
        rng = rng or RngStreams(0)

        self.block_manager = BlockManager(
            self.config, source, rng=rng.get("fmtcp:encoder")
        )
        self.sender = FmtcpSender(sim, self.config, self.block_manager, trace=trace)
        self.receiver = FmtcpReceiver(
            sim, self.config, trace=trace, rng=rng.get("fmtcp:rank"), sink=sink
        )

        self.subflows: List[Subflow] = []
        self._sinks: List[SubflowSink] = []
        lia_group = LiaGroup() if self.config.congestion == "lia" else None
        for index, path in enumerate(paths):
            controller = make_controller(
                self.config.congestion,
                lia_group=lia_group,
                rtt_provider=(lambda i=index: self.subflows[i].srtt),
                initial_cwnd=self.config.initial_cwnd,
            )
            subflow = Subflow(
                sim=sim,
                path=path,
                owner=self.sender,
                subflow_id=index,
                congestion=controller,
                rto=RtoEstimator(min_rto=self.config.min_rto),
                mss=self.config.mss,
                dup_ack_threshold=self.config.dup_ack_threshold,
                trace=trace,
                failed_rto_threshold=self.config.failover_rto_threshold,
            )
            self.subflows.append(subflow)
            self._sinks.append(
                SubflowSink(
                    sim=sim,
                    path=path,
                    subflow=subflow,
                    on_segment=self.receiver.on_segment,
                    feedback_provider=lambda sf_id, segment: self.receiver.feedback(),
                    trace=trace,
                )
            )
        self.sender.attach_subflows(self.subflows)

    # ------------------------------------------------------------------
    # Lifecycle (same surface as MptcpConnection).
    # ------------------------------------------------------------------
    def start(self) -> None:
        self.pump()

    def pump(self) -> None:
        self.sender.pump_all()

    def close(self) -> None:
        for subflow in self.subflows:
            subflow.close()
        for sink in self._sinks:
            sink.close()

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    @property
    def delivered_bytes(self) -> int:
        return self.receiver.delivered_bytes

    @property
    def delivered_blocks(self) -> int:
        return self.receiver.delivered_blocks

    def redundancy_ratio(self) -> float:
        """Symbols sent per symbol strictly needed (coding + loss overhead)."""
        needed = sum(
            self.config.symbols_per_block for __ in range(self.receiver.blocks_decoded)
        )
        if needed == 0:
            return 0.0
        return self.sender.symbols_sent / needed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FmtcpConnection subflows={len(self.subflows)} "
            f"delivered_blocks={self.delivered_blocks}>"
        )
