"""Path-quality estimators: RT, EDT, SEDT and EAT (Definitions 5-8).

These are the quantities Algorithm 1 ranks subflows by:

* Eq. (10)  RT_f   = (1 − p_f)·RTT_f + p_f·RTO_f
* Eq. (13)  SEDT_f = p_f/(1 − p_f)·R_f + r_f/2
* EDT_f: the expected time to get a packet's content across when lost
  symbols are re-sent on the *best* flow (the recursion used in the proof
  of Lemma 1): the best flow's EDT equals its SEDT; for any other flow
  EDT_f = (1 − p_f)·r_f/2 + p_f·(R_f + EDT_best).
* Eq. (11)  EAT_f  = EDT_f if w_f > 0 else EDT_f + RT_f − τ_f,
  extended with a virtual queue for Algorithm 1's virtual allocations:
  the q-th packet beyond the window waits q response times.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence


@dataclass(frozen=True)
class PathEstimate:
    """A snapshot of one subflow's quality parameters."""

    subflow_id: int
    rtt: float
    rto: float
    loss: float
    window_space: int
    tau: float

    def __post_init__(self) -> None:
        if self.rtt < 0 or self.rto < 0:
            raise ValueError("rtt and rto must be non-negative")
        if not 0.0 <= self.loss < 1.0:
            raise ValueError(f"loss must be in [0, 1), got {self.loss}")


def expected_rt(rtt: float, loss: float, rto: float) -> float:
    """Eq. (10): expected response time of one packet transmission."""
    return (1.0 - loss) * rtt + loss * rto


def sedt(rtt: float, loss: float, rto: float) -> float:
    """Eq. (13): single-path expected delivery time."""
    return loss / (1.0 - loss) * rto + rtt / 2.0


def edt_for_flows(estimates: Sequence[PathEstimate]) -> Dict[int, float]:
    """Expected delivery time per subflow under best-flow repair.

    The best flow (minimum SEDT) repairs its own losses, so its EDT is its
    SEDT; every other flow's losses are repaired on the best flow
    (Theorem 1 guarantees lost symbols never migrate to a *worse* flow).
    """
    if not estimates:
        raise ValueError("need at least one path estimate")
    sedts = {e.subflow_id: sedt(e.rtt, e.loss, e.rto) for e in estimates}
    best_id = min(sedts, key=lambda subflow_id: (sedts[subflow_id], subflow_id))
    best_sedt = sedts[best_id]
    edts: Dict[int, float] = {}
    for estimate in estimates:
        if estimate.subflow_id == best_id:
            edts[estimate.subflow_id] = best_sedt
        else:
            edts[estimate.subflow_id] = (1.0 - estimate.loss) * estimate.rtt / 2.0 + (
                estimate.loss * (estimate.rto + best_sedt)
            )
    return edts


def eat(
    estimate: PathEstimate,
    edt: float,
    virtual_queue: int = 0,
) -> float:
    """Eq. (11) with a virtual queue extension.

    ``virtual_queue`` counts packets Algorithm 1 has already virtually
    assigned to this flow during the current invocation. While window
    space remains, EAT = EDT; once the (virtual) window is full, each
    additional packet waits one more expected response time, minus the
    time τ_f the oldest outstanding packet has already been waiting.
    """
    free_space = estimate.window_space - virtual_queue
    if free_space > 0:
        return edt
    waiting_packets = 1 - free_space  # >= 1 once the window is (virtually) full
    rt = expected_rt(estimate.rtt, estimate.loss, estimate.rto)
    return max(edt + waiting_packets * rt - estimate.tau, 0.0)


def eat_table(estimates: Sequence[PathEstimate]) -> Dict[int, float]:
    """Initial EAT per subflow (no virtual assignments yet)."""
    edts = edt_for_flows(estimates)
    return {
        estimate.subflow_id: eat(estimate, edts[estimate.subflow_id])
        for estimate in estimates
    }


def rank_paths_by_sedt(estimates: Sequence[PathEstimate]) -> List[int]:
    """Subflow ids ordered best-first by SEDT (Theorem 2's quality order)."""
    return sorted(
        (estimate.subflow_id for estimate in estimates),
        key=lambda subflow_id: (
            next(
                sedt(e.rtt, e.loss, e.rto)
                for e in estimates
                if e.subflow_id == subflow_id
            ),
            subflow_id,
        ),
    )
