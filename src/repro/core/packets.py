"""FMTCP wire formats.

A data packet carries groups of encoded symbols, one group per block (the
packet description vector V of Section IV-A: v_j symbols of block b_j).
The ACK feedback object carries the receiver's per-block independent
symbol counts k̄_b plus the decoded frontier, which is all the sender
needs for Eq. (8) and for the block-delivery-delay metric.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.fountain.codec import Symbol


class SymbolGroup:
    """``count`` symbols of one block inside a data packet.

    ``block_k``/``block_bytes`` ride along so the receiver can instantiate
    a decoder for a block it has never heard of (symbols may arrive on any
    subflow in any order). In ``real`` coding mode ``symbols`` holds the
    actual coefficient/data pairs; in statistical mode it is ``None``.
    """

    __slots__ = ("block_id", "count", "block_k", "block_bytes", "symbols")

    def __init__(
        self,
        block_id: int,
        count: int,
        block_k: int,
        block_bytes: int,
        symbols: Optional[List[Symbol]] = None,
    ):
        if count < 1:
            raise ValueError("a symbol group must carry at least one symbol")
        if symbols is not None and len(symbols) != count:
            raise ValueError("symbol list does not match declared count")
        self.block_id = block_id
        self.count = count
        self.block_k = block_k
        self.block_bytes = block_bytes
        self.symbols = symbols

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SymbolGroup block={self.block_id} count={self.count}>"


class FmtcpSegmentPayload:
    """The transport payload of one FMTCP data packet."""

    __slots__ = ("groups",)

    def __init__(self, groups: Sequence[SymbolGroup]):
        if not groups:
            raise ValueError("an FMTCP packet must carry at least one symbol group")
        self.groups: Tuple[SymbolGroup, ...] = tuple(groups)

    def total_symbols(self) -> int:
        return sum(group.count for group in self.groups)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(repr(group) for group in self.groups)
        return f"<FmtcpPayload [{inner}]>"


class FmtcpFeedback:
    """Receiver state piggybacked on every subflow ACK.

    * ``k_bar`` — independent symbols held per still-undecoded block
      (the paper's k̄_b, "carried in an ACK and transmitted to the sender").
    * ``decoded_in_order`` — number of blocks decoded *and* deliverable in
      sequence (the decode frontier).
    * ``decoded_out_of_order`` — ids of decoded blocks beyond the frontier.
    """

    __slots__ = ("k_bar", "decoded_in_order", "decoded_out_of_order")

    def __init__(
        self,
        k_bar: Dict[int, int],
        decoded_in_order: int,
        decoded_out_of_order: Tuple[int, ...] = (),
    ):
        self.k_bar = k_bar
        self.decoded_in_order = decoded_in_order
        self.decoded_out_of_order = decoded_out_of_order

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FmtcpFeedback frontier={self.decoded_in_order} "
            f"k_bar={self.k_bar}>"
        )
