"""FMTCP wire formats.

A data packet carries groups of encoded symbols, one group per block (the
packet description vector V of Section IV-A: v_j symbols of block b_j).
The ACK feedback object carries the receiver's per-block independent
symbol counts k̄_b plus the decoded frontier, which is all the sender
needs for Eq. (8) and for the block-delivery-delay metric.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.fountain.codec import Symbol


class SymbolGroup:
    """``count`` symbols of one block inside a data packet.

    ``block_k``/``block_bytes`` ride along so the receiver can instantiate
    a decoder for a block it has never heard of (symbols may arrive on any
    subflow in any order). In ``real`` coding mode ``symbols`` holds the
    actual coefficient/data pairs; in statistical mode it is ``None``.
    """

    __slots__ = ("block_id", "count", "block_k", "block_bytes", "symbols", "block_crc")

    def __init__(
        self,
        block_id: int,
        count: int,
        block_k: int,
        block_bytes: int,
        symbols: Optional[List[Symbol]] = None,
        block_crc: Optional[int] = None,
    ):
        if count < 1:
            raise ValueError("a symbol group must carry at least one symbol")
        if symbols is not None and len(symbols) != count:
            raise ValueError("symbol list does not match declared count")
        self.block_id = block_id
        self.count = count
        self.block_k = block_k
        self.block_bytes = block_bytes
        self.symbols = symbols
        # CRC32 of the whole source block (real coding mode only): the
        # receiver verifies it after decoding, the backstop against
        # corruption that kept the GF(2) system consistent.
        self.block_crc = block_crc

    def integrity_digest(self) -> bytes:
        parts = [
            f"grp:{self.block_id}:{self.count}:{self.block_k}:"
            f"{self.block_bytes}:{self.block_crc}".encode()
        ]
        if self.symbols is not None:
            parts.extend(symbol.integrity_digest() for symbol in self.symbols)
        return b"|".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SymbolGroup block={self.block_id} count={self.count}>"


class FmtcpSegmentPayload:
    """The transport payload of one FMTCP data packet."""

    __slots__ = ("groups",)

    def __init__(self, groups: Sequence[SymbolGroup]):
        if not groups:
            raise ValueError("an FMTCP packet must carry at least one symbol group")
        self.groups: Tuple[SymbolGroup, ...] = tuple(groups)

    def total_symbols(self) -> int:
        return sum(group.count for group in self.groups)

    def integrity_digest(self) -> bytes:
        return b"fseg[" + b";".join(g.integrity_digest() for g in self.groups) + b"]"

    def integrity_mutate(self, rng) -> Optional["FmtcpSegmentPayload"]:
        """A copy with one symbol's data bit-flipped, or ``None`` when no
        group carries real symbols (statistical mode has nothing to flip).

        Groups and symbol lists are rebuilt, never mutated: the sender
        still holds this payload object in its in-flight bookkeeping.
        """
        candidates = [
            index for index, group in enumerate(self.groups) if group.symbols
        ]
        if not candidates:
            return None
        target = rng.choice(candidates)
        group = self.groups[target]
        symbols = list(group.symbols)
        victim = rng.randrange(len(symbols))
        symbols[victim] = symbols[victim].integrity_mutate(rng)
        mutated_group = SymbolGroup(
            block_id=group.block_id,
            count=group.count,
            block_k=group.block_k,
            block_bytes=group.block_bytes,
            symbols=symbols,
            block_crc=group.block_crc,
        )
        groups = list(self.groups)
        groups[target] = mutated_group
        return FmtcpSegmentPayload(groups)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(repr(group) for group in self.groups)
        return f"<FmtcpPayload [{inner}]>"


class FmtcpFeedback:
    """Receiver state piggybacked on every subflow ACK.

    * ``k_bar`` — independent symbols held per still-undecoded block
      (the paper's k̄_b, "carried in an ACK and transmitted to the sender").
    * ``decoded_in_order`` — number of blocks decoded *and* deliverable in
      sequence (the decode frontier).
    * ``decoded_out_of_order`` — ids of decoded blocks beyond the frontier.
    * ``quarantine`` — per-block quarantine epochs (block_id → how many
      times the receiver evicted that block's poisoned basis). Empty on a
      clean connection; lets the sender reset its monotone-max k̄ view
      when the receiver threw symbols away.
    * ``advertised_window`` — block-granular receive window (flow-control
      extension); ``None`` when flow control is disabled, so the wire
      format (and its integrity digest) is unchanged by default.
    """

    __slots__ = (
        "k_bar",
        "decoded_in_order",
        "decoded_out_of_order",
        "quarantine",
        "advertised_window",
    )

    def __init__(
        self,
        k_bar: Dict[int, int],
        decoded_in_order: int,
        decoded_out_of_order: Tuple[int, ...] = (),
        quarantine: Optional[Dict[int, int]] = None,
        advertised_window: Optional[int] = None,
    ):
        self.k_bar = k_bar
        self.decoded_in_order = decoded_in_order
        self.decoded_out_of_order = decoded_out_of_order
        self.quarantine = quarantine if quarantine is not None else {}
        self.advertised_window = advertised_window

    def integrity_digest(self) -> bytes:
        k_bar = ",".join(f"{b}={v}" for b, v in sorted(self.k_bar.items()))
        quarantine = ",".join(f"{b}={e}" for b, e in sorted(self.quarantine.items()))
        digest = (
            f"ffb:{self.decoded_in_order}:{sorted(self.decoded_out_of_order)}"
            f":{k_bar}:{quarantine}"
        )
        if self.advertised_window is not None:
            digest += f":aw{self.advertised_window}"
        return digest.encode()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FmtcpFeedback frontier={self.decoded_in_order} "
            f"k_bar={self.k_bar}>"
        )
