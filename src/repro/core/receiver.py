"""The FMTCP receiver.

Aggregates encoded symbols arriving on any subflow, tracks per-block
decoder rank (k̄_b), reports it on every ACK, and releases decoded blocks
to the application in stream order. In ``real`` coding mode the decoder
is the byte-level GF(2) codec; in the default ``statistical`` mode it is
the exact rank-evolution model (DESIGN.md §3.2).
"""

from __future__ import annotations

import random
import zlib
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple, Union

from repro.core.config import FmtcpConfig
from repro.core.packets import FmtcpFeedback, FmtcpSegmentPayload
from repro.fountain.codec import BlockDecoder
from repro.fountain.lt import LtDecoder
from repro.fountain.rank_model import RankEvolutionModel
from repro.robustness.flowcontrol import ReceiveWindow
from repro.sim.engine import Simulator
from repro.sim.trace import TraceBus

class LtDecoderAdapter:
    """Adapts :class:`~repro.fountain.lt.LtDecoder` to the receiver's
    decoder interface (``independent_symbols``/``is_complete``/``decode``).

    ``independent_symbols`` reports recovered source parts — a lower bound
    on rank — so the sender's δ̂-completeness gate is conservative under LT
    coding and the feedback loop supplies the tail; the GE fallback is
    tried periodically so dense residuals do not stall peeling.
    """

    GE_ATTEMPT_EVERY = 16

    def __init__(self, k: int, part_size: int, data_length: int):
        self._inner = LtDecoder(k=k, part_size=part_size, data_length=data_length)
        self.k = k
        self.symbols_received = 0

    @property
    def independent_symbols(self) -> int:
        return self._inner.recovered_parts

    @property
    def is_complete(self) -> bool:
        return self._inner.is_complete

    def add_symbol(self, symbol) -> bool:
        before = self._inner.recovered_parts
        self._inner.add_symbol(symbol)
        self.symbols_received += 1
        if (
            not self._inner.is_complete
            and self.symbols_received % self.GE_ATTEMPT_EVERY == 0
        ):
            self._inner.try_ge_completion()
        return self._inner.recovered_parts > before

    def decode(self) -> bytes:
        return self._inner.decode()


Decoder = Union[BlockDecoder, RankEvolutionModel, LtDecoderAdapter]


class _ActiveBlock:
    """Receiver-side state for a block still being decoded."""

    __slots__ = ("decoder", "block_bytes", "first_symbol_at", "block_crc")

    def __init__(
        self,
        decoder: Decoder,
        block_bytes: int,
        first_symbol_at: float,
        block_crc: Optional[int] = None,
    ):
        self.decoder = decoder
        self.block_bytes = block_bytes
        self.first_symbol_at = first_symbol_at
        self.block_crc = block_crc


class FmtcpReceiver:
    """Receiver half of an FMTCP connection."""

    def __init__(
        self,
        sim: Simulator,
        config: FmtcpConfig,
        trace: Optional[TraceBus] = None,
        rng: Optional[random.Random] = None,
        sink: Optional[Callable[[int, Optional[bytes]], None]] = None,
        resume_frontier: int = 0,
        resume_bytes: int = 0,
    ):
        if resume_frontier < 0 or resume_bytes < 0:
            raise ValueError("resume_frontier and resume_bytes must be >= 0")
        self.sim = sim
        self.config = config
        self.trace = trace
        self._rng = rng or random.Random()
        self.sink = sink

        self._active: Dict[int, _ActiveBlock] = {}
        # Decoded but not yet deliverable in order: block_id -> (bytes, data)
        self._decoded_waiting: Dict[int, Tuple[int, Optional[bytes]]] = {}
        # resume_frontier/resume_bytes restore a recovery checkpoint: all
        # blocks below the frontier were handed to the application in a
        # previous epoch. Partial decode matrices are deliberately NOT
        # restored — fountain coding is rateless, so the sender simply
        # streams more symbols for whatever was mid-decode at the crash.
        self._deliver_next = int(resume_frontier)  # next block id owed to the app
        self._decode_frontier = int(resume_frontier)  # all below this decoded

        self.symbols_received = 0
        self.symbols_redundant = 0
        self.blocks_decoded = 0
        self.delivered_bytes = int(resume_bytes)
        self.decode_times: Dict[int, float] = {}
        # Decoder-poisoning quarantine: block_id -> eviction count. An
        # entry means the block's whole symbol basis was thrown away at
        # least once; the epoch rides in feedback() so the sender resets
        # its monotone-max k̄ view and supplies replacement symbols.
        self._quarantine_epochs: Dict[int, int] = {}
        self.blocks_quarantined = 0
        self.symbols_evicted = 0

        # End-to-end flow control (off unless config.flow_control): the
        # window licenses block ids; the app-drain queue models a reader
        # slower than the network (None drain rate = instant, as before).
        self.window: Optional[ReceiveWindow] = (
            ReceiveWindow(config.recv_window_blocks) if config.flow_control else None
        )
        if self.window is not None and resume_frontier:
            # Blocks delivered before the crash were drained by
            # definition (delivery *is* the durable commit), so the
            # licensed limit restarts at frontier + capacity.
            self.window.on_drained(resume_frontier)
        self._drain_rate: Optional[float] = (
            config.recv_drain_rate_bps if config.flow_control else None
        )
        # (block_id, block_bytes, data) decoded in order, awaiting the app.
        self._app_queue: Deque[Tuple[int, int, Optional[bytes]]] = deque()
        self._drain_event = None
        self.drained_blocks = int(resume_frontier)
        self.symbols_window_discarded = 0
        self.peak_buffered_blocks = 0

    # ------------------------------------------------------------------
    # Data path.
    # ------------------------------------------------------------------
    def on_segment(self, subflow_id: int, segment) -> None:
        payload: FmtcpSegmentPayload = segment.payload
        for group in payload.groups:
            self._absorb_group(group, subflow_id)

    def _absorb_group(self, group, subflow_id: int = -1) -> None:
        if self._is_decoded(group.block_id):
            self.symbols_received += group.count
            self.symbols_redundant += group.count
            return
        active = self._active.get(group.block_id)
        if active is None:
            if self.window is not None and not self.window.admits(group.block_id):
                # An unlicensed block id (an honest sender only reaches
                # here with a zero-window probe): the symbols are
                # discarded, but the packet is still ACKed upstream, so
                # the probe elicits a fresh window advertisement.
                self.symbols_window_discarded += group.count
                if self.trace is not None and self.trace.has_subscribers(
                    "recv.window_discard"
                ):
                    self.trace.emit(
                        self.sim.now,
                        "recv.window_discard",
                        block_id=group.block_id,
                        symbols=group.count,
                        limit=self.window.limit,
                    )
                return
            active = _ActiveBlock(
                decoder=self._make_decoder(group),
                block_bytes=group.block_bytes,
                first_symbol_at=self.sim.now,
                block_crc=group.block_crc,
            )
            self._active[group.block_id] = active
            if self.buffered_blocks > self.peak_buffered_blocks:
                self.peak_buffered_blocks = self.buffered_blocks
        if self.trace is not None and self.trace.has_subscribers("span.symbols_rx"):
            self.trace.emit(
                self.sim.now,
                "span.symbols_rx",
                block_id=group.block_id,
                subflow=subflow_id,
                n=group.count,
            )
        decoder = active.decoder
        if group.symbols is not None:
            for symbol in group.symbols:
                if not decoder.add_symbol(symbol):
                    self.symbols_redundant += 1
                self.symbols_received += 1
        else:
            for __ in range(group.count):
                if not decoder.add_symbol():
                    self.symbols_redundant += 1
                self.symbols_received += 1
        if getattr(decoder, "poisoned", False):
            # A contradictory GF(2) row proved a corrupted symbol sits in
            # (or just hit) the basis. The culprit is unidentifiable, so
            # the whole basis is suspect: evict it all.
            self._quarantine(group.block_id, active, reason="gf2_inconsistent")
            return
        if decoder.is_complete:
            self._finish_block(group.block_id, active)

    def _make_decoder(self, group) -> Decoder:
        if self.config.coding == "real":
            if self.config.code == "lt":
                return LtDecoderAdapter(
                    k=group.block_k,
                    part_size=self.config.symbol_size,
                    data_length=group.block_bytes,
                )
            return BlockDecoder(
                k=group.block_k,
                part_size=self.config.symbol_size,
                data_length=group.block_bytes,
            )
        return RankEvolutionModel(group.block_k, rng=self._rng)

    def _quarantine(self, block_id: int, active: _ActiveBlock, reason: str) -> None:
        """Evict a poisoned block's entire decoder state.

        The next arriving symbol group recreates a fresh decoder; the
        bumped epoch (reported in every subsequent feedback) tells the
        sender to reset its k̄ view of this block and keep allocating
        until the rebuilt basis completes — with a verified CRC.
        """
        del self._active[block_id]
        evicted = int(active.decoder.independent_symbols)
        self.blocks_quarantined += 1
        self.symbols_evicted += evicted
        self._quarantine_epochs[block_id] = (
            self._quarantine_epochs.get(block_id, 0) + 1
        )
        if self.trace is not None and self.trace.has_subscribers(
            "fmtcp.block_quarantined"
        ):
            self.trace.emit(
                self.sim.now,
                "fmtcp.block_quarantined",
                block_id=block_id,
                reason=reason,
                evicted=evicted,
                epoch=self._quarantine_epochs[block_id],
            )

    def _finish_block(self, block_id: int, active: _ActiveBlock) -> None:
        data = None
        if isinstance(active.decoder, (BlockDecoder, LtDecoderAdapter)):
            data = active.decoder.decode()
            if active.block_crc is not None and zlib.crc32(data) != active.block_crc:
                # The GF(2) system stayed consistent but decoded to the
                # wrong bytes: corrupted symbols entered the basis without
                # ever producing a contradictory row. The block CRC is the
                # backstop that keeps them away from the application.
                self._quarantine(block_id, active, reason="block_crc")
                return
        del self._active[block_id]
        self._quarantine_epochs.pop(block_id, None)
        self.blocks_decoded += 1
        self.decode_times[block_id] = self.sim.now
        if self.trace is not None and self.trace.has_subscribers("fmtcp.block_decoded"):
            decoder = active.decoder
            received = getattr(decoder, "symbols_received", None)
            k = getattr(decoder, "k", None)
            self.trace.emit(
                self.sim.now,
                "fmtcp.block_decoded",
                block_id=block_id,
                wait=self.sim.now - active.first_symbol_at,
                k=k,
                received=received,
                overhead=(
                    received - k if received is not None and k is not None else None
                ),
            )
        self._decoded_waiting[block_id] = (active.block_bytes, data)
        while self._decode_frontier in self._decoded_waiting or (
            self._decode_frontier < self._deliver_next
        ):
            self._decode_frontier += 1
        self._deliver_in_order()

    def _deliver_in_order(self) -> None:
        while self._deliver_next in self._decoded_waiting:
            block_bytes, data = self._decoded_waiting.pop(self._deliver_next)
            if self._drain_rate is not None:
                # A modelled application reads at a finite rate: the
                # block stays in the app queue (still occupying the
                # receive window) until the drain timer consumes it.
                self._app_queue.append((self._deliver_next, block_bytes, data))
            else:
                self._deliver_to_app(self._deliver_next, block_bytes, data)
            self._deliver_next += 1
        if self._decode_frontier < self._deliver_next:
            self._decode_frontier = self._deliver_next
        if self._drain_rate is not None:
            self._schedule_drain()

    def _deliver_to_app(
        self, block_id: int, block_bytes: int, data: Optional[bytes]
    ) -> None:
        """Hand one in-order block to the application (= drain it)."""
        self.delivered_bytes += block_bytes
        self.drained_blocks += 1
        if self.window is not None:
            self.window.on_drained(1)
        if self.sink is not None:
            self.sink(block_id, data)
        if self.trace is not None and self.trace.has_subscribers("conn.delivered"):
            self.trace.emit(
                self.sim.now,
                "conn.delivered",
                bytes=block_bytes,
                block_id=block_id,
            )

    def _schedule_drain(self) -> None:
        """Arm the app-drain timer for the queue head (rate 0 = never)."""
        if self._drain_event is not None or not self._app_queue or not self._drain_rate:
            return
        __, block_bytes, __ = self._app_queue[0]
        self._drain_event = self.sim.schedule(
            block_bytes / self._drain_rate, self._drain_tick
        )

    def _drain_tick(self) -> None:
        self._drain_event = None
        if not self._app_queue:
            return
        block_id, block_bytes, data = self._app_queue.popleft()
        self._deliver_to_app(block_id, block_bytes, data)
        self._schedule_drain()

    def _is_decoded(self, block_id: int) -> bool:
        return block_id < self._deliver_next or block_id in self._decoded_waiting

    # ------------------------------------------------------------------
    # Feedback for ACK piggybacking (Eq. 8's k̄ channel).
    # ------------------------------------------------------------------
    def feedback(self) -> FmtcpFeedback:
        k_bar = {
            block_id: active.decoder.independent_symbols
            for block_id, active in self._active.items()
        }
        decoded_out_of_order = tuple(
            block_id
            for block_id in self._decoded_waiting
            if block_id >= self._decode_frontier
        )
        advertised_window = None
        if self.window is not None:
            advertised_window = self.window.advertise(
                self._decode_frontier, self.buffered_blocks
            )
        return FmtcpFeedback(
            k_bar=k_bar,
            decoded_in_order=self._decode_frontier,
            decoded_out_of_order=decoded_out_of_order,
            # Entries are popped on successful decode, so this is exactly
            # the set of still-undecoded blocks with evicted bases (empty
            # on a clean connection — zero feedback overhead).
            quarantine=dict(self._quarantine_epochs),
            advertised_window=advertised_window,
        )

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    def decoder_stats(self) -> List[Dict[str, float]]:
        """Per-active-block decoder progress for the telemetry sampler.

        One entry per undecoded block holding symbols: rank (k̄), rank
        deficit (k − k̄), symbols received, overhead beyond rank, and the
        block's age since its first symbol arrived.
        """
        stats = []
        for block_id in sorted(self._active):
            active = self._active[block_id]
            decoder = active.decoder
            k = int(getattr(decoder, "k", 0))
            rank = int(decoder.independent_symbols)
            received = int(getattr(decoder, "symbols_received", 0))
            stats.append(
                {
                    "block_id": block_id,
                    "k": k,
                    "rank": rank,
                    "deficit": max(0, k - rank),
                    "received": received,
                    "overhead": max(0, received - rank),
                    "age_s": self.sim.now - active.first_symbol_at,
                }
            )
        return stats

    @property
    def buffered_blocks(self) -> int:
        """Blocks currently occupying the receive buffer (all stages:
        active decoders, decoded-out-of-order, and the app-drain queue)."""
        return len(self._active) + len(self._decoded_waiting) + len(self._app_queue)

    @property
    def active_blocks(self) -> int:
        return len(self._active)

    @property
    def waiting_blocks(self) -> int:
        return len(self._decoded_waiting)

    @property
    def app_queue_blocks(self) -> int:
        return len(self._app_queue)

    @property
    def delivered_blocks(self) -> int:
        return self._deliver_next

    def close(self) -> None:
        """Cancel the app-drain timer (event-queue drain invariant)."""
        if self._drain_event is not None:
            self._drain_event.cancel()
            self._drain_event = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FmtcpReceiver delivered={self._deliver_next} "
            f"active={len(self._active)} waiting={len(self._decoded_waiting)}>"
        )
