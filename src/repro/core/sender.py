"""The FMTCP sender.

Owns the TCP subflows (it is their :class:`~repro.tcp.subflow.SubflowOwner`)
and turns every transmission opportunity into a packet of freshly encoded
symbols chosen by Algorithm 1. Loss handling is the paper's headline
behaviour: a lost packet's symbols are simply subtracted from the
in-flight counts l_b^f, which lowers k̃_b, re-raises the block's expected
decoding-failure probability, and lets the allocator route *new* symbols
over whichever subflow is expected to arrive first — no retransmission,
no inter-path coordination.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.core.allocation import (
    AllocationRequest,
    AllocationResult,
    DecisionHook,
    allocate_packet,
    allocate_packet_greedy,
)
from repro.core.blocks import BlockManager
from repro.core.config import FmtcpConfig
from repro.core.estimators import PathEstimate
from repro.core.packets import FmtcpFeedback, FmtcpSegmentPayload, SymbolGroup
from repro.robustness.flowcontrol import WindowGate, ZeroWindowProber
from repro.sim.engine import Simulator
from repro.sim.trace import TraceBus
from repro.tcp.subflow import Subflow, SubflowOwner, SubflowPacketInfo

# Estimated loss rates are clamped below 1 so expected-gain and EDT/RT
# formulas stay finite even while an estimator transiently reads ~100 %.
_MAX_LOSS = 0.95


class FmtcpSender(SubflowOwner):
    """Sender half of an FMTCP connection."""

    def __init__(
        self,
        sim: Simulator,
        config: FmtcpConfig,
        block_manager: BlockManager,
        trace: Optional[TraceBus] = None,
        resume_frontier: int = 0,
        resume_margin: Optional[float] = None,
    ):
        if resume_frontier < 0:
            raise ValueError("resume_frontier must be >= 0")
        self.sim = sim
        self.config = config
        self.blocks = block_manager
        self.trace = trace
        self.subflows: List[Subflow] = []
        self._subflow_by_id: dict = {}
        # resume_frontier restores a (possibly stale) sender checkpoint:
        # blocks below it were confirmed decoded in a previous epoch. If
        # the receiver got further than the checkpoint, its first
        # feedback fast-forwards this cursor and the dedup path absorbs
        # any blocks re-sent in between.
        self._decoded_frontier_seen = int(resume_frontier)
        self._decoded_out_of_order_seen: set = set()
        # Adaptive completeness margin state (extension; see FmtcpConfig).
        # A checkpointed margin carries the adapted scheduler state
        # across a restart instead of re-learning it from scratch.
        self.margin = (
            resume_margin if resume_margin is not None else config.completeness_margin
        )
        self._miss_count = 0
        self._window_completed = 0
        # Pluggable decision layer (repro.policy): when set, every regular
        # transmission opportunity is delegated to the hook instead of the
        # configured allocator. Probe and stop-and-wait paths are not
        # delegated — they bypass the allocator today and keep doing so.
        self.decision_hook: Optional[DecisionHook] = None
        # End-to-end flow control (off unless config.flow_control): the
        # gate licenses which block ids may be *opened*; the prober keeps
        # a closed window from deadlocking the transfer.
        self.flow_gate: Optional[WindowGate] = None
        self._zw_prober: Optional[ZeroWindowProber] = None
        if config.flow_control:
            self.flow_gate = WindowGate(
                config.recv_window_blocks,
                high_watermark=config.flow_high_watermark,
                low_watermark=config.flow_low_watermark,
            )
            self._zw_prober = ZeroWindowProber(
                sim,
                self._zero_window_probe,
                initial_s=config.zero_window_probe_s,
                max_s=config.zero_window_probe_max_s,
            )
            if resume_frontier:
                # Seed the licence at the restored frontier so the gate
                # admits the blocks being re-opened; the first real ACK's
                # advertisement only ever raises it (monotone max).
                self.flow_gate.advertise(resume_frontier, config.recv_window_blocks)
        self._window_probe_due = False
        self.window_probes = 0
        # Statistics.
        self.packets_built = 0
        self.symbols_sent = 0
        self.symbols_lost = 0
        self.allocation_iterations = 0
        self.decisions_delegated = 0
        self.probes_sent = 0
        self.failover_probes_sent = 0
        self.suspect_events = 0

    def attach_subflows(self, subflows: Sequence[Subflow]) -> None:
        """Register the subflows this sender drives (done by the connection).

        Re-invoked on every ``add_subflow`` / ``remove_subflow`` so the EAT
        allocator re-enumerates the live path set; subflow ids are stable
        identities, not list indices.
        """
        self.subflows = list(subflows)
        self._subflow_by_id = {subflow.subflow_id: subflow for subflow in subflows}

    def set_decision_hook(self, hook: Optional[DecisionHook]) -> None:
        """Install (``None``: remove) a pluggable allocation decision."""
        self.decision_hook = hook

    # ------------------------------------------------------------------
    # Path-quality snapshots for the allocator.
    # ------------------------------------------------------------------
    def loss_rate_of(self, subflow_id: int) -> float:
        subflow = self._subflow_by_id.get(subflow_id)
        if subflow is None:
            # A removed subflow's id can linger in per-block accounting for
            # one allocation round; treat it as maximally lossy.
            return _MAX_LOSS
        aged = subflow.aged_loss_estimate(self.config.loss_estimate_half_life_s)
        estimate = max(aged, self.config.loss_estimate_floor)
        return min(estimate, _MAX_LOSS)

    def path_estimates(self, include_suspect: bool = False) -> List[PathEstimate]:
        """Snapshots for the allocator.

        Potentially-failed subflows are excluded by default: until one of
        their probes is acknowledged, Algorithm 1 must not count on them
        to deliver symbols (their stale RTT would otherwise keep winning
        EAT comparisons while everything they carry evaporates).
        """
        return [
            PathEstimate(
                subflow_id=subflow.subflow_id,
                rtt=subflow.srtt,
                rto=subflow.rto_value,
                loss=self.loss_rate_of(subflow.subflow_id),
                window_space=subflow.window_space,
                tau=subflow.tau,
            )
            for subflow in self.subflows
            if not subflow.is_joining
            and (include_suspect or not subflow.potentially_failed)
        ]

    # ------------------------------------------------------------------
    # SubflowOwner: supply packets.
    # ------------------------------------------------------------------
    def _should_probe(self, subflow: Subflow) -> bool:
        """Idle-path probing (see FmtcpConfig.probe_interval_s).

        Two triggers: the periodic one (idle for probe_interval_s), and
        the chain — a just-acknowledged probe on a still-distrusted path
        licenses the next probe immediately, so a healed path re-earns
        trust at one EWMA sample per RTT rather than per interval.
        """
        interval = self.config.probe_interval_s
        if interval is None or subflow.in_flight > 0:
            return False
        if self.sim.now - subflow.last_transmit_at >= interval:
            return True
        return (
            subflow.last_ack_at is not None
            and self.sim.now - subflow.last_ack_at < 1e-3
            and self.loss_rate_of(subflow.subflow_id)
            > self.config.probe_chain_threshold
        )

    def _flow_admissible(self, pending) -> list:
        """Blocks the flow-control gate licenses for this opportunity.

        Already-opened blocks keep receiving symbols below the hard limit
        even while paused — they occupy receiver state, and completing
        them is what frees it. Unopened blocks additionally respect the
        watermark pause: backpressure stops *new* state being created.
        """
        gate = self.flow_gate
        return [
            block
            for block in pending
            if (
                block.block_id < gate.limit
                if block.symbols_generated > 0
                else gate.admits(block.block_id)
            )
        ]

    def _flow_blocked(self) -> bool:
        """True when data is pending but the gate licenses none of it."""
        if self.flow_gate is None:
            return False
        pending = self.blocks.pending_blocks
        return bool(pending) and not self._flow_admissible(pending)

    def _zero_window_probe(self) -> bool:
        """Prober callback: one symbol to elicit a fresh window ACK."""
        if not self._flow_blocked():
            return False
        self._window_probe_due = True
        self.pump_all()
        self._window_probe_due = False
        return self._flow_blocked()

    def next_payload(self, subflow: Subflow) -> Optional[Tuple[Any, int]]:
        self.blocks.replenish()
        pending = self.blocks.pending_blocks
        if not pending:
            return None
        if self._window_probe_due:
            # Zero-window probe: one symbol of the oldest pending block.
            # If the receiver's window is truly closed the symbol may be
            # discarded, but the packet is ACKed either way — and that
            # ACK carries the fresh advertisement that reopens the gate.
            self._window_probe_due = False
            self.window_probes += 1
            self.probes_sent += 1
            probe = AllocationResult(vector=[(pending[0].block_id, 1)])
            return self._build_packet(subflow, probe)
        if self.flow_gate is not None:
            pending = self._flow_admissible(pending)
            if not pending:
                return None
        if subflow.potentially_failed:
            # Dead-path probe: one greedily-filled packet of the *last*
            # pending block per backed-off RTO (the subflow's pump gating
            # caps it at one in flight). Useful symbols if the path turns
            # out alive, no urgent block held hostage if it does not.
            probe = AllocationResult(
                vector=[(pending[-1].block_id, self.config.symbols_per_packet)]
            )
            self.probes_sent += 1
            self.failover_probes_sent += 1
            return self._build_packet(subflow, probe)
        if self.config.allocation == "eat" and self._should_probe(subflow):
            # Bypass the EAT ranking for one packet so the quarantined
            # path's quality estimate gets new evidence (an RTT sample or
            # a loss observation). The probe carries symbols of the *last*
            # pending block: useful if they arrive, but never puts the
            # most urgent block's delay at the mercy of a suspect path.
            probe = AllocationResult(
                vector=[(pending[-1].block_id, self.config.symbols_per_packet)]
            )
            self.probes_sent += 1
            return self._build_packet(subflow, probe)
        if self.config.allocation == "stopwait":
            # HMTP-style: hammer the first undecoded block on every
            # subflow until the receiver says it decoded (no prediction,
            # no EAT) — kept as the related-work baseline.
            result = AllocationResult(
                vector=[(pending[0].block_id, self.config.symbols_per_packet)]
            )
            return self._build_packet(subflow, result)
        request = AllocationRequest(
            pending_subflow_id=subflow.subflow_id,
            estimates=self.path_estimates(),
            blocks=pending,
            loss_rate_of=self.loss_rate_of,
            mss=self.config.mss,
            symbol_wire_size=self.config.symbol_wire_size,
            margin=self.margin,
            now=self.sim.now,
        )
        if self.decision_hook is not None:
            self.decisions_delegated += 1
            result: AllocationResult = self.decision_hook(request)
        else:
            result = request.run(
                allocate_packet
                if self.config.allocation == "eat"
                else allocate_packet_greedy
            )
        self.allocation_iterations += result.iterations
        if result.is_empty():
            return None
        return self._build_packet(subflow, result)

    def _build_packet(
        self, subflow: Subflow, result: AllocationResult
    ) -> Tuple[FmtcpSegmentPayload, int]:
        groups = []
        size = 0
        span_live = self.trace is not None and self.trace.has_subscribers(
            "span.symbols_tx"
        )
        for block_id, count in result.vector:
            block = self.blocks.block_by_id(block_id)
            if block is None:  # Decoded since allocation ran; skip quietly.
                continue
            symbols = None
            if block.encoder is not None:
                symbols = [block.encoder.next_symbol() for __ in range(count)]
            groups.append(
                SymbolGroup(
                    block_id=block_id,
                    count=count,
                    block_k=block.k,
                    block_bytes=block.data_bytes,
                    symbols=symbols,
                    block_crc=block.block_crc,
                )
            )
            if span_live:
                self.trace.emit(
                    self.sim.now,
                    "span.symbols_tx",
                    block_id=block_id,
                    subflow=subflow.subflow_id,
                    n=count,
                    first=block.first_tx_at is None,
                )
            block.record_sent(subflow.subflow_id, count, self.sim.now)
            size += count * self.config.symbol_wire_size
            self.symbols_sent += count
        if not groups:
            return None  # type: ignore[return-value]
        self.packets_built += 1
        return FmtcpSegmentPayload(groups), size

    # ------------------------------------------------------------------
    # SubflowOwner: packet outcome bookkeeping (updates l_b^f of Eq. 8).
    # ------------------------------------------------------------------
    def _resolve_groups(self, subflow: Subflow, payload: FmtcpSegmentPayload) -> None:
        for group in payload.groups:
            block = self.blocks.block_by_id(group.block_id)
            if block is not None:
                block.record_resolved(subflow.subflow_id, group.count)

    def on_payload_delivered(self, subflow: Subflow, info: SubflowPacketInfo) -> None:
        self._resolve_groups(subflow, info.payload)

    def on_payload_lost(
        self, subflow: Subflow, info: SubflowPacketInfo, reason: str
    ) -> None:
        payload: FmtcpSegmentPayload = info.payload
        self._resolve_groups(subflow, payload)
        self.symbols_lost += payload.total_symbols()
        if self.trace is not None and self.trace.has_subscribers("span.symbols_lost"):
            for group in payload.groups:
                self.trace.emit(
                    self.sim.now,
                    "span.symbols_lost",
                    block_id=group.block_id,
                    subflow=subflow.subflow_id,
                    n=group.count,
                    reason=reason,
                )
        # Losing symbols re-opens demand; give every subflow a chance to
        # carry the replacements (the allocator decides which one wins).
        self.pump_all()

    def release_abandoned(self, subflow: Subflow, info: SubflowPacketInfo) -> None:
        """Write off an in-flight packet of a subflow removed at runtime.

        Same accounting as a loss — the symbols' l_b^f contribution is
        subtracted, which lowers k̃ and re-opens demand on the surviving
        paths — but without the per-packet ``pump_all`` storm: the caller
        (``FmtcpConnection.remove_subflow``) drains the whole window first
        and pumps once. No retransmission happens by construction; the
        allocator simply routes fresh symbols elsewhere (Section III:
        rateless coding *is* the failover).
        """
        payload: FmtcpSegmentPayload = info.payload
        self._resolve_groups(subflow, payload)
        self.symbols_lost += payload.total_symbols()
        if self.trace is not None and self.trace.has_subscribers("span.symbols_lost"):
            for group in payload.groups:
                self.trace.emit(
                    self.sim.now,
                    "span.symbols_lost",
                    block_id=group.block_id,
                    subflow=subflow.subflow_id,
                    n=group.count,
                    reason="abandoned",
                )

    # ------------------------------------------------------------------
    # SubflowOwner: dead-path failover.
    # ------------------------------------------------------------------
    def on_subflow_suspect(self, subflow: Subflow) -> None:
        # The suspect path's in-flight symbols were already written off by
        # on_payload_lost; all that remains is to re-offer the reopened
        # demand to the live subflows (path_estimates now excludes the
        # suspect one, so the allocator routes around it).
        self.suspect_events += 1
        self.pump_all()

    def on_subflow_recovered(self, subflow: Subflow) -> None:
        # An acknowledged probe readmits the path to the allocator; its
        # loss estimate still carries the quarantine pessimism, which the
        # probe-chaining mechanism pays down one EWMA sample per RTT.
        self.pump_all()

    def on_subflow_ready(self, subflow: Subflow) -> None:
        # A joined subflow enters path_estimates from this instant; pump
        # everything so the allocator can start handing it symbols.
        self.pump_all()

    # ------------------------------------------------------------------
    # SubflowOwner: receiver feedback (k̄ reports + decode confirmations).
    # ------------------------------------------------------------------
    def on_ack_feedback(self, subflow: Subflow, feedback: FmtcpFeedback) -> None:
        if self.flow_gate is not None and feedback.advertised_window is not None:
            self.flow_gate.advertise(
                feedback.decoded_in_order, feedback.advertised_window
            )
        quarantine = feedback.quarantine
        for block_id, k_bar in feedback.k_bar.items():
            self.blocks.update_k_bar(block_id, k_bar, quarantine.get(block_id, 0))
        # A quarantined block with no re-received symbols yet reports no
        # k̄ entry at all — push its epoch (with k̄=0) so the stale rank is
        # reset and the EAT allocator starts feeding replacements.
        for block_id, epoch in quarantine.items():
            if block_id not in feedback.k_bar:
                self.blocks.update_k_bar(block_id, 0, epoch)
        if self.config.adaptive_margin:
            self._observe_prediction_misses()
        while self._decoded_frontier_seen < feedback.decoded_in_order:
            self._confirm_decoded(self._decoded_frontier_seen)
            self._decoded_frontier_seen += 1
        for block_id in feedback.decoded_out_of_order:
            if block_id not in self._decoded_out_of_order_seen:
                self._decoded_out_of_order_seen.add(block_id)
                self._confirm_decoded(block_id)
        if self._decoded_out_of_order_seen:
            self._decoded_out_of_order_seen = {
                block_id
                for block_id in self._decoded_out_of_order_seen
                if block_id >= self._decoded_frontier_seen
            }
        if self._zw_prober is not None:
            # Arm (or reset) probing from feedback state: while blocked,
            # probes are the only traffic that can reopen the window.
            if self._flow_blocked():
                self._zw_prober.arm()
            else:
                self._zw_prober.disarm()
        self.pump_all()

    def _observe_prediction_misses(self) -> None:
        """Count blocks that went quiescent while still short of k̂."""
        for block in self.blocks.pending_blocks:
            if (
                not block.missed
                and block.in_flight_total() == 0
                and block.symbols_generated >= block.k
                and block.k_bar < block.k
            ):
                block.missed = True
                self._miss_count += 1

    def _adapt_margin(self, block) -> None:
        """Per-window controller: raise head-room when misses exceed the
        target rate, relax it after a miss-free window."""
        self._window_completed += 1
        if self._window_completed < self.config.adaptive_margin_window:
            return
        miss_rate = self._miss_count / self._window_completed
        if miss_rate > self.config.adaptive_margin_target_miss:
            self.margin = min(self.margin + 1.0, self.config.adaptive_margin_ceiling)
        elif self._miss_count == 0:
            self.margin = max(self.margin - 0.5, self.config.adaptive_margin_floor)
        self._miss_count = 0
        self._window_completed = 0

    def _confirm_decoded(self, block_id: int) -> None:
        block = self.blocks.mark_decoded(block_id)
        if block is None:
            return
        if self.config.adaptive_margin:
            self._adapt_margin(block)
        if (
            self.trace is not None
            and block.first_tx_at is not None
            and self.trace.has_subscribers("conn.block_done")
        ):
            self.trace.emit(
                self.sim.now,
                "conn.block_done",
                block_id=block_id,
                delay=self.sim.now - block.first_tx_at,
            )

    def pump_all(self) -> None:
        for subflow in self.subflows:
            subflow.pump()

    def close(self) -> None:
        """Stop the zero-window prober (event-queue drain invariant)."""
        if self._zw_prober is not None:
            self._zw_prober.disarm()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FmtcpSender pending={len(self.blocks.pending_blocks)} "
            f"symbols_sent={self.symbols_sent} lost={self.symbols_lost}>"
        )
