"""Experiment harness: one runner per paper table/figure, plus ablations."""

from repro.experiments.runner import ExperimentResult, run_transfer
from repro.experiments.figures import (
    run_figure3,
    run_figure4,
    run_figure5,
    run_figure6,
    run_figure7,
    run_table1_suite,
)

__all__ = [
    "ExperimentResult",
    "run_figure3",
    "run_figure4",
    "run_figure5",
    "run_figure6",
    "run_figure7",
    "run_table1_suite",
    "run_transfer",
]
