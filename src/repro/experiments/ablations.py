"""Ablation experiments for the design choices DESIGN.md calls out.

These go beyond the paper's evaluation: each ablation switches off or
re-parameterises one FMTCP (or baseline) design decision and reruns a
Table I scenario so the contribution of that piece is measurable.

* EAT allocation (Algorithm 1) vs the greedy strawman of Section IV-B.
* δ̂ sweep: redundancy/goodput/delay trade-off of the completeness margin.
* Block-size (k̂) sweep: Section III-B's coding-complexity constraint.
* Coupled (LIA) vs uncoupled congestion control (Section III-A's claim
  that the choice does not matter on disjoint paths).
* MPTCP scheduler (min-RTT vs round-robin) and rescue reinjection.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.config import FmtcpConfig
from repro.experiments.runner import ExperimentResult, run_transfer
from repro.mptcp.connection import MptcpConfig
from repro.workloads.scenarios import (
    DEFAULT_BANDWIDTH_BPS,
    TABLE1_CASES,
    TestCase,
    table1_path_configs,
)


def _case(case_id: int) -> TestCase:
    for case in TABLE1_CASES:
        if case.case_id == case_id:
            return case
    raise KeyError(f"no Table I case {case_id}")


def ablate_allocation(
    case_id: int = 4,
    duration_s: float = 30.0,
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
    seed: int = 1,
) -> Dict[str, ExperimentResult]:
    """EAT allocator vs greedy (Section IV-B) vs HMTP-like stop-and-wait
    (related work [21] — the mechanism the paper's prediction replaces)."""
    case = _case(case_id)
    results = {}
    for mode in ("eat", "greedy", "stopwait"):
        results[mode] = run_transfer(
            "fmtcp",
            table1_path_configs(case, bandwidth_bps),
            duration_s=duration_s,
            seed=seed,
            fmtcp_config=FmtcpConfig(allocation=mode),
        )
    return results


def ablate_delta_hat(
    deltas: Optional[List[float]] = None,
    case_id: int = 4,
    duration_s: float = 30.0,
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
    seed: int = 1,
) -> Dict[float, ExperimentResult]:
    """Sweep the maximum acceptable decoding-failure probability δ̂."""
    case = _case(case_id)
    deltas = deltas or [1e-1, 1e-2, 1e-3, 1e-5]
    return {
        delta: run_transfer(
            "fmtcp",
            table1_path_configs(case, bandwidth_bps),
            duration_s=duration_s,
            seed=seed,
            fmtcp_config=FmtcpConfig(delta_hat=delta),
        )
        for delta in deltas
    }


def ablate_block_size(
    ks: Optional[List[int]] = None,
    case_id: int = 4,
    duration_s: float = 30.0,
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
    seed: int = 1,
) -> Dict[int, ExperimentResult]:
    """Sweep symbols-per-block k̂ at a fixed 8 KiB block size."""
    case = _case(case_id)
    ks = ks or [64, 128, 256, 512]
    results = {}
    for k in ks:
        symbol_size = max(1, 8192 // k)
        config = FmtcpConfig(symbols_per_block=k, symbol_size=symbol_size)
        results[k] = run_transfer(
            "fmtcp",
            table1_path_configs(case, bandwidth_bps),
            duration_s=duration_s,
            seed=seed,
            fmtcp_config=config,
        )
    return results


def ablate_congestion_coupling(
    case_id: int = 4,
    duration_s: float = 30.0,
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
    seed: int = 1,
) -> Dict[str, ExperimentResult]:
    """Uncoupled Reno vs LIA-coupled windows for FMTCP (disjoint paths)."""
    case = _case(case_id)
    return {
        kind: run_transfer(
            "fmtcp",
            table1_path_configs(case, bandwidth_bps),
            duration_s=duration_s,
            seed=seed,
            fmtcp_config=FmtcpConfig(congestion=kind),
        )
        for kind in ("reno", "lia")
    }


def ablate_buffer_size(
    pending_blocks: Optional[List[int]] = None,
    surge_loss_rate: float = 0.35,
    duration_s: float = 120.0,
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
    seed: int = 1,
) -> Dict[int, Dict[str, ExperimentResult]]:
    """Receive-buffer sensitivity under the Fig. 4 loss surge.

    Receive-buffer head-of-line blocking — the paper's collapse mechanism
    for MPTCP — only binds when the buffer is scarce relative to the BDP.
    This ablation sweeps the (matched) buffer budget for both protocols.
    """
    from repro.experiments.figures import run_figure4

    pending_blocks = pending_blocks or [4, 6, 12, 24]
    results: Dict[int, Dict[str, ExperimentResult]] = {}
    for blocks in pending_blocks:
        results[blocks] = run_figure4(
            surge_loss_rate,
            duration_s=duration_s,
            surge_start_s=duration_s / 4,
            surge_end_s=3 * duration_s / 4,
            bandwidth_bps=bandwidth_bps,
            seed=seed,
            max_pending_blocks=blocks,
        )
    return results


def ablate_mptcp_scheduler(
    case_id: int = 4,
    duration_s: float = 30.0,
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
    seed: int = 1,
) -> Dict[str, ExperimentResult]:
    """MPTCP baseline: min-RTT vs round-robin vs rescue reinjection."""
    case = _case(case_id)
    fmtcp_defaults = FmtcpConfig()
    buffer_chunks = max(
        16, fmtcp_defaults.block_bytes * fmtcp_defaults.max_pending_blocks // 1400
    )
    variants = {
        "minrtt": MptcpConfig(recv_buffer_chunks=buffer_chunks, scheduler="minrtt"),
        "roundrobin": MptcpConfig(
            recv_buffer_chunks=buffer_chunks, scheduler="roundrobin"
        ),
        "minrtt+reinject": MptcpConfig(
            recv_buffer_chunks=buffer_chunks,
            scheduler="minrtt",
            reinject_after_timeouts=1,
        ),
        "minrtt+orp": MptcpConfig(
            recv_buffer_chunks=buffer_chunks,
            scheduler="minrtt",
            opportunistic_retransmission=True,
        ),
    }
    return {
        name: run_transfer(
            "mptcp",
            table1_path_configs(case, bandwidth_bps),
            duration_s=duration_s,
            seed=seed,
            mptcp_config=config,
        )
        for name, config in variants.items()
    }
