"""Paired protocol comparison with simple significance testing.

"FMTCP beat MPTCP on this seed" is weak evidence; the sound procedure is
paired runs across seeds (same topology, same seeds, therefore the same
loss realisations wherever loss models are seed-driven) plus a
distribution-free test. This module provides exactly that: per-seed
deltas, the sign test's exact p-value, and a compact verdict — used by
tests and available to users comparing their own configurations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence

from repro.experiments.runner import run_transfer


def binomial_tail(n: int, k: int) -> float:
    """P(X >= k) for X ~ Binomial(n, 1/2) — the one-sided sign test."""
    if k <= 0:
        return 1.0
    if k > n:
        return 0.0
    total = 0
    for i in range(k, n + 1):
        total += math.comb(n, i)
    return total / 2.0**n


@dataclass
class PairedComparison:
    """Result of a paired sweep between two protocols."""

    protocol_a: str
    protocol_b: str
    metric: str
    higher_is_better: bool
    values_a: List[float] = field(default_factory=list)
    values_b: List[float] = field(default_factory=list)
    seeds: List[int] = field(default_factory=list)

    @property
    def deltas(self) -> List[float]:
        return [a - b for a, b in zip(self.values_a, self.values_b)]

    @property
    def wins(self) -> int:
        """Seeds where protocol A beat protocol B on the metric."""
        if self.higher_is_better:
            return sum(1 for delta in self.deltas if delta > 0)
        return sum(1 for delta in self.deltas if delta < 0)

    @property
    def p_value(self) -> float:
        """One-sided sign-test p-value for 'A beats B'."""
        decisive = [delta for delta in self.deltas if delta != 0]
        if not decisive:
            return 1.0
        favourable = (
            sum(1 for d in decisive if d > 0)
            if self.higher_is_better
            else sum(1 for d in decisive if d < 0)
        )
        return binomial_tail(len(decisive), favourable)

    @property
    def mean_delta(self) -> float:
        if not self.deltas:
            return 0.0
        return sum(self.deltas) / len(self.deltas)

    def verdict(self, alpha: float = 0.05) -> str:
        if self.p_value <= alpha:
            return f"{self.protocol_a} beats {self.protocol_b} (p={self.p_value:.4f})"
        return (
            f"no significant difference at alpha={alpha} "
            f"(p={self.p_value:.4f}, wins {self.wins}/{len(self.seeds)})"
        )


def compare_protocols(
    protocol_a: str,
    protocol_b: str,
    config_factory: Callable[[], list],
    duration_s: float,
    seeds: Sequence[int] = tuple(range(1, 8)),
    metric: str = "goodput_mbytes_per_s",
    higher_is_better: bool = True,
    **run_kwargs,
) -> PairedComparison:
    """Paired runs of two protocols over a seed set."""
    if not seeds:
        raise ValueError("need at least one seed")
    result = PairedComparison(
        protocol_a=protocol_a,
        protocol_b=protocol_b,
        metric=metric,
        higher_is_better=higher_is_better,
        seeds=list(seeds),
    )
    for seed in seeds:
        a = run_transfer(
            protocol_a, config_factory(), duration_s=duration_s, seed=seed, **run_kwargs
        )
        b = run_transfer(
            protocol_b, config_factory(), duration_s=duration_s, seed=seed, **run_kwargs
        )
        result.values_a.append(a.summary[metric])
        result.values_b.append(b.summary[metric])
    return result
