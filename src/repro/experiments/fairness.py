"""TCP-friendliness on a shared bottleneck (paper Section III-A).

The paper argues FMTCP inherits whatever fairness its per-subflow
congestion control provides, because coding changes *what* is sent, not
*how fast*. This experiment puts one FMTCP subflow (or one MPTCP
single-subflow connection, i.e. plain TCP) in a drop-tail dumbbell
against N plain TCP flows and measures per-flow goodput shares and
Jain's fairness index.

Plain TCP is :class:`~repro.tcp.stream.TcpConnection` — a reliable,
Reno-controlled single-path stream.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.core.config import FmtcpConfig
from repro.core.connection import FmtcpConnection
from repro.tcp.stream import TcpConfig, TcpConnection
from repro.net.topology import build_shared_bottleneck_network
from repro.sim.rng import RngStreams
from repro.sim.trace import TraceBus
from repro.workloads.sources import BulkSource


def jain_index(rates: Sequence[float]) -> float:
    """Jain's fairness index: (Σx)² / (n·Σx²); 1.0 = perfectly fair."""
    if not rates:
        raise ValueError("need at least one rate")
    total = sum(rates)
    squares = sum(rate * rate for rate in rates)
    if squares == 0.0:
        return 1.0
    return total * total / (len(rates) * squares)


@dataclass
class FairnessResult:
    """Outcome of one shared-bottleneck contention run."""

    protocol_under_test: str
    n_competitors: int
    duration_s: float
    rates_mbps: Dict[str, float] = field(default_factory=dict)

    @property
    def all_rates(self) -> List[float]:
        return list(self.rates_mbps.values())

    @property
    def jain(self) -> float:
        return jain_index(self.all_rates)

    @property
    def test_flow_share(self) -> float:
        """Flow-under-test's goodput relative to the fair share."""
        fair = sum(self.all_rates) / len(self.all_rates)
        if fair == 0.0:
            return 0.0
        return self.rates_mbps["under_test"] / fair


def run_fairness(
    protocol_under_test: str = "fmtcp",
    n_competitors: int = 3,
    duration_s: float = 30.0,
    bottleneck_bps: float = 10e6,
    bottleneck_delay_s: float = 0.020,
    seed: int = 1,
) -> FairnessResult:
    """One FMTCP (or plain-TCP) flow vs ``n_competitors`` plain TCP flows."""
    if protocol_under_test not in ("fmtcp", "tcp"):
        raise ValueError("protocol_under_test must be 'fmtcp' or 'tcp'")
    network, paths = build_shared_bottleneck_network(
        n_endpoints=n_competitors + 1,
        bottleneck_bps=bottleneck_bps,
        bottleneck_delay_s=bottleneck_delay_s,
        rng=RngStreams(seed),
        trace=TraceBus(),  # per-connection accounting below, not trace-based
    )

    connections = {}
    if protocol_under_test == "fmtcp":
        connections["under_test"] = FmtcpConnection(
            network.sim,
            [paths[0]],
            BulkSource(),
            config=FmtcpConfig(),
            rng=RngStreams(seed).fork("fmtcp"),
        )
    else:
        connections["under_test"] = TcpConnection(
            network.sim, paths[0], BulkSource(), config=TcpConfig()
        )
    for index in range(n_competitors):
        connections[f"tcp{index}"] = TcpConnection(
            network.sim, paths[index + 1], BulkSource(), config=TcpConfig()
        )

    for connection in connections.values():
        connection.start()
    network.sim.run(until=duration_s)

    result = FairnessResult(
        protocol_under_test=protocol_under_test,
        n_competitors=n_competitors,
        duration_s=duration_s,
    )
    for name, connection in connections.items():
        result.rates_mbps[name] = connection.delivered_bytes * 8.0 / duration_s / 1e6
        connection.close()
    return result
