"""Per-figure experiment runners (the paper's Section V).

Figures 3, 5 and 6 all read off the same eight Table I runs, so
:func:`run_table1_suite` performs (and memoises) the sweep once per
parameter set and the three figure runners extract their own columns.
Durations default to shorter runs than the paper's for wall-clock sanity;
pass ``duration_s=300`` for paper-scale runs. Absolute goodput scales
with the configured bandwidth — shape, not magnitude, is the
reproduction target (DESIGN.md §5).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.runner import ExperimentResult, run_transfer
from repro.workloads.scenarios import (
    DEFAULT_BANDWIDTH_BPS,
    TABLE1_CASES,
    TestCase,
    surge_path_configs,
    table1_path_configs,
)


def default_duration_s() -> float:
    """Default run length; honours REPRO_FAST=1 for quick smoke runs."""
    if os.environ.get("REPRO_FAST"):
        return 20.0
    return 60.0


@dataclass(frozen=True)
class SuiteKey:
    duration_s: float
    bandwidth_bps: float
    seed: int
    case_ids: Tuple[int, ...]


@dataclass
class Table1Suite:
    """Results of both protocols across the Table I sweep."""

    duration_s: float
    bandwidth_bps: float
    seed: int
    cases: List[TestCase]
    results: Dict[str, List[ExperimentResult]] = field(default_factory=dict)

    def case_result(self, protocol: str, case_id: int) -> ExperimentResult:
        for case, result in zip(self.cases, self.results[protocol]):
            if case.case_id == case_id:
                return result
        raise KeyError(f"no result for {protocol} case {case_id}")


_SUITE_CACHE: Dict[SuiteKey, Table1Suite] = {}


def run_table1_suite(
    duration_s: Optional[float] = None,
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
    seed: int = 1,
    cases: Sequence[TestCase] = TABLE1_CASES,
    use_cache: bool = True,
) -> Table1Suite:
    """Run FMTCP and MPTCP across the Table I cases (memoised)."""
    duration_s = duration_s if duration_s is not None else default_duration_s()
    key = SuiteKey(
        duration_s=duration_s,
        bandwidth_bps=bandwidth_bps,
        seed=seed,
        case_ids=tuple(case.case_id for case in cases),
    )
    if use_cache and key in _SUITE_CACHE:
        return _SUITE_CACHE[key]
    suite = Table1Suite(
        duration_s=duration_s,
        bandwidth_bps=bandwidth_bps,
        seed=seed,
        cases=list(cases),
    )
    # The sweep is embarrassingly parallel; REPRO_WORKERS > 1 fans the 16
    # runs over a process pool with bit-identical results.
    from repro.experiments.parallel import TransferJob, run_jobs

    protocols = ("fmtcp", "mptcp")
    jobs = [
        TransferJob(
            protocol=protocol,
            path_configs=table1_path_configs(case, bandwidth_bps),
            duration_s=duration_s,
            seed=seed,
        )
        for protocol in protocols
        for case in cases
    ]
    results = run_jobs(jobs)
    for index, protocol in enumerate(protocols):
        suite.results[protocol] = results[index * len(cases) : (index + 1) * len(cases)]
    if use_cache:
        _SUITE_CACHE[key] = suite
    return suite


# ----------------------------------------------------------------------
# Figure runners. Each returns rows ready for printing/plotting.
# ----------------------------------------------------------------------
def run_figure3(
    duration_s: Optional[float] = None,
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
    seed: int = 1,
) -> List[Dict[str, float]]:
    """Fig. 3: total goodput per Table I case, both protocols."""
    suite = run_table1_suite(duration_s, bandwidth_bps, seed)
    rows = []
    for index, case in enumerate(suite.cases):
        fmtcp = suite.results["fmtcp"][index]
        mptcp = suite.results["mptcp"][index]
        rows.append(
            {
                "case": case.case_id,
                "delay_ms": case.delay_s * 1e3,
                "loss_pct": case.loss_rate * 1e2,
                "fmtcp_goodput_mb": fmtcp.goodput_mbytes,
                "mptcp_goodput_mb": mptcp.goodput_mbytes,
                "ratio": (
                    fmtcp.goodput_mbytes / mptcp.goodput_mbytes
                    if mptcp.goodput_mbytes > 0
                    else float("inf")
                ),
            }
        )
    return rows


def run_figure4(
    surge_loss_rate: float,
    duration_s: float = 300.0,
    surge_start_s: float = 50.0,
    surge_end_s: float = 200.0,
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
    seed: int = 1,
    bin_width_s: float = 5.0,
    max_pending_blocks: int = 6,
) -> Dict[str, ExperimentResult]:
    """Fig. 4: goodput-rate time series under a loss surge on subflow 2.

    This experiment uses a tighter receive buffer than the Table I sweep
    (``max_pending_blocks`` blocks ≈ half a path BDP at the defaults):
    receive-buffer head-of-line blocking is the collapse mechanism the
    paper's Fig. 4 displays, and it only binds when the buffer is scarce.
    The buffer-size ablation benchmark quantifies this sensitivity; the
    paper does not state its buffer sizes (DESIGN.md §3).
    """
    from repro.core.config import FmtcpConfig
    from repro.mptcp.connection import MptcpConfig

    fmtcp_config = FmtcpConfig(max_pending_blocks=max_pending_blocks)
    buffer_chunks = max(
        16, fmtcp_config.block_bytes * max_pending_blocks // fmtcp_config.mss
    )
    mptcp_config = MptcpConfig(
        block_bytes=fmtcp_config.block_bytes, recv_buffer_chunks=buffer_chunks
    )
    results = {}
    for protocol in ("fmtcp", "mptcp"):
        # Loss schedules keep internal state; rebuild configs per run.
        results[protocol] = run_transfer(
            protocol=protocol,
            path_configs=surge_path_configs(
                surge_loss_rate,
                surge_start_s=surge_start_s,
                surge_end_s=surge_end_s,
                bandwidth_bps=bandwidth_bps,
            ),
            duration_s=duration_s,
            seed=seed,
            bin_width_s=bin_width_s,
            collect_series=True,
            fmtcp_config=fmtcp_config,
            mptcp_config=mptcp_config,
        )
    return results


def run_figure5(
    duration_s: Optional[float] = None,
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
    seed: int = 1,
) -> List[Dict[str, float]]:
    """Fig. 5: mean block delivery delay per Table I case."""
    suite = run_table1_suite(duration_s, bandwidth_bps, seed)
    rows = []
    for index, case in enumerate(suite.cases):
        fmtcp = suite.results["fmtcp"][index]
        mptcp = suite.results["mptcp"][index]
        rows.append(
            {
                "case": case.case_id,
                "delay_ms": case.delay_s * 1e3,
                "loss_pct": case.loss_rate * 1e2,
                "fmtcp_block_delay_ms": fmtcp.mean_block_delay_ms,
                "mptcp_block_delay_ms": mptcp.mean_block_delay_ms,
            }
        )
    return rows


def run_figure6(
    duration_s: Optional[float] = None,
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
    seed: int = 1,
) -> List[Dict[str, float]]:
    """Fig. 6: mean block jitter per Table I case."""
    suite = run_table1_suite(duration_s, bandwidth_bps, seed)
    rows = []
    for index, case in enumerate(suite.cases):
        fmtcp = suite.results["fmtcp"][index]
        mptcp = suite.results["mptcp"][index]
        rows.append(
            {
                "case": case.case_id,
                "delay_ms": case.delay_s * 1e3,
                "loss_pct": case.loss_rate * 1e2,
                "fmtcp_jitter_ms": fmtcp.jitter_ms,
                "mptcp_jitter_ms": mptcp.jitter_ms,
            }
        )
    return rows


def run_figure7(
    duration_s: Optional[float] = None,
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
    seed: int = 1,
    max_blocks: int = 1000,
) -> Dict[str, List[float]]:
    """Fig. 7: per-block delivery delay series for Table I case 4."""
    case4 = TABLE1_CASES[3]
    duration_s = duration_s if duration_s is not None else default_duration_s()
    series = {}
    for protocol in ("fmtcp", "mptcp"):
        result = run_transfer(
            protocol=protocol,
            path_configs=table1_path_configs(case4, bandwidth_bps),
            duration_s=duration_s,
            seed=seed,
        )
        series[protocol] = result.block_delays[:max_blocks]
    return series
