"""Golden-value regression anchors.

The shape tests assert inequalities; this module pins a handful of scalar
measurements at fixed (scenario, seed, duration) points so that future
refactors that *silently shift* behaviour — a changed RNG consumption
order, an off-by-one in the window accounting — are caught even when the
qualitative shapes still hold. Values live in ``golden.json`` next to
this module; regenerate deliberately with::

    python -m repro.experiments.golden   # rewrites golden.json
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict

from repro.experiments.runner import run_transfer
from repro.workloads.scenarios import TABLE1_CASES, table1_path_configs

GOLDEN_PATH = Path(__file__).parent / "golden.json"

#: Relative tolerance for comparisons. Golden values are exact for a given
#: code version; the tolerance only absorbs float-formatting round-trips.
RELATIVE_TOLERANCE = 1e-9

ANCHORS = [
    ("fmtcp", 1, 10.0, 1),
    ("fmtcp", 4, 10.0, 1),
    ("mptcp", 1, 10.0, 1),
    ("mptcp", 4, 10.0, 1),
    ("fixedrate", 4, 10.0, 1),
    ("tcp", 4, 10.0, 1),
]


def _case(case_id: int):
    return next(case for case in TABLE1_CASES if case.case_id == case_id)


def measure_anchor(protocol: str, case_id: int, duration_s: float, seed: int) -> Dict[str, float]:
    result = run_transfer(
        protocol,
        table1_path_configs(_case(case_id)),
        duration_s=duration_s,
        seed=seed,
    )
    return {
        "total_mbytes": result.summary["total_mbytes"],
        "blocks": result.summary["blocks"],
        "mean_block_delay_ms": result.summary["mean_block_delay_ms"],
    }


def measure_all() -> Dict[str, Dict[str, float]]:
    return {
        f"{protocol}/case{case_id}/{duration_s:g}s/seed{seed}": measure_anchor(
            protocol, case_id, duration_s, seed
        )
        for protocol, case_id, duration_s, seed in ANCHORS
    }


def load_golden() -> Dict[str, Dict[str, float]]:
    if not GOLDEN_PATH.exists():
        return {}
    return json.loads(GOLDEN_PATH.read_text())


def write_golden() -> Dict[str, Dict[str, float]]:
    values = measure_all()
    GOLDEN_PATH.write_text(json.dumps(values, indent=2, sort_keys=True) + "\n")
    return values


if __name__ == "__main__":  # pragma: no cover - regeneration entry point
    values = write_golden()
    print(f"wrote {len(values)} anchors to {GOLDEN_PATH}")
