"""Two-dimensional advantage map: loss × buffer.

Where exactly does FMTCP pay? The two levers the single-axis sweeps
identified are subflow-2 loss (creates repair traffic) and the receive
buffer (arms head-of-line blocking). This experiment grids both and
renders the FMTCP/MPTCP goodput ratio as an ASCII heatmap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import FmtcpConfig
from repro.experiments.runner import run_transfer
from repro.mptcp.connection import MptcpConfig
from repro.net.topology import PathConfig
from repro.workloads.scenarios import DEFAULT_BANDWIDTH_BPS

# Ratio bucket glyphs, from "MPTCP clearly ahead" to "FMTCP ≥ 2x".
_GLYPHS = [
    (0.90, "--"),
    (1.00, "- "),
    (1.10, "≈ "),
    (1.40, "+ "),
    (2.00, "++"),
    (float("inf"), "##"),
]


@dataclass
class HeatmapResult:
    """Grid of FMTCP/MPTCP goodput ratios."""

    loss_rates: List[float]
    pending_blocks: List[int]
    ratios: Dict[Tuple[float, int], float] = field(default_factory=dict)

    def glyph(self, ratio: float) -> str:
        for bound, glyph in _GLYPHS:
            if ratio < bound:
                return glyph
        return "##"

    def render(self) -> List[str]:
        lines = [
            "FMTCP/MPTCP goodput ratio  (-- <0.9, - <1.0, ≈ <1.1, + <1.4, ++ <2.0, ## ≥2.0)",
            "          " + " ".join(f"{int(b * 8):>4}KB" for b in self.pending_blocks),
        ]
        for loss in self.loss_rates:
            cells = []
            for blocks in self.pending_blocks:
                ratio = self.ratios[(loss, blocks)]
                cells.append(f"{ratio:4.2f}{self.glyph(ratio)}")
            lines.append(f"loss {loss:4.0%}  " + " ".join(cells))
        return lines


def run_heatmap(
    loss_rates: Optional[Sequence[float]] = None,
    pending_blocks: Optional[Sequence[int]] = None,
    duration_s: float = 30.0,
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
    seed: int = 1,
) -> HeatmapResult:
    """Grid subflow-2 loss against the (matched) receive-buffer budget."""
    loss_rates = list(loss_rates or (0.02, 0.10, 0.20))
    pending_blocks = list(pending_blocks or (6, 16, 32))
    result = HeatmapResult(loss_rates=loss_rates, pending_blocks=pending_blocks)
    for loss in loss_rates:
        for blocks in pending_blocks:
            fmtcp_config = FmtcpConfig(max_pending_blocks=blocks)
            mptcp_config = MptcpConfig(
                block_bytes=fmtcp_config.block_bytes,
                recv_buffer_chunks=max(
                    16, fmtcp_config.block_bytes * blocks // fmtcp_config.mss
                ),
            )

            def configs():
                return [
                    PathConfig(
                        bandwidth_bps=bandwidth_bps, delay_s=0.100, loss_rate=0.0
                    ),
                    PathConfig(
                        bandwidth_bps=bandwidth_bps, delay_s=0.100, loss_rate=loss
                    ),
                ]

            fmtcp = run_transfer(
                "fmtcp", configs(), duration_s=duration_s, seed=seed,
                fmtcp_config=fmtcp_config,
            )
            mptcp = run_transfer(
                "mptcp", configs(), duration_s=duration_s, seed=seed,
                fmtcp_config=fmtcp_config, mptcp_config=mptcp_config,
            )
            denominator = mptcp.summary["goodput_mbytes_per_s"] or 1e-9
            result.ratios[(loss, blocks)] = (
                fmtcp.summary["goodput_mbytes_per_s"] / denominator
            )
    return result
