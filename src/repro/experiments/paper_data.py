"""Approximate values read off the paper's figures.

The paper publishes no tables of numbers; these series were digitised by
eye from Figures 3-6 and are *approximate*. They exist so the benchmark
harness and EXPERIMENTS.md can print paper-vs-measured rows and so tests
can assert the qualitative shape (who wins, degradation trends) — never
absolute equality, since our substrate is a different simulator with a
different (unstated in the paper) link bandwidth.
"""

from __future__ import annotations

from typing import Dict, List

#: Fig. 3 — total goodput (MB) per Table I test case, 1-indexed by case.
FIG3_GOODPUT_MB: Dict[str, List[float]] = {
    "mptcp": [1450.0, 1100.0, 780.0, 580.0, 1000.0, 950.0, 780.0, 700.0],
    "fmtcp": [1620.0, 1580.0, 1520.0, 1470.0, 1600.0, 1570.0, 1520.0, 1450.0],
}

#: Fig. 5 — mean block delivery delay (ms) per test case.
FIG5_DELAY_MS: Dict[str, List[float]] = {
    "mptcp": [130.0, 190.0, 310.0, 430.0, 260.0, 280.0, 310.0, 340.0],
    "fmtcp": [100.0, 110.0, 130.0, 150.0, 110.0, 120.0, 130.0, 150.0],
}

#: Fig. 6 — mean block jitter (ms) per test case.
FIG6_JITTER_MS: Dict[str, List[float]] = {
    "mptcp": [35.0, 65.0, 125.0, 200.0, 95.0, 105.0, 125.0, 145.0],
    "fmtcp": [15.0, 20.0, 30.0, 45.0, 25.0, 28.0, 30.0, 38.0],
}

#: Fig. 4 — steady-state goodput rate (MB/s) before/during the surge.
FIG4_RATES_MBPS: Dict[str, Dict[str, float]] = {
    "25%": {"mptcp_before": 0.80, "mptcp_during": 0.45, "fmtcp_before": 0.85, "fmtcp_during": 0.60},
    "35%": {"mptcp_before": 0.80, "mptcp_during": 0.05, "fmtcp_before": 0.85, "fmtcp_during": 0.45},
}

#: Fig. 7 — qualitative: MPTCP's max block delay is ~5x its mean; FMTCP stable.
FIG7_MPTCP_MAX_OVER_MEAN: float = 5.0
