"""Parallel experiment execution.

Every run is an isolated, deterministic simulation, so parameter sweeps
are embarrassingly parallel. This module fans ``run_transfer`` jobs out
over a process pool; results come back in submission order, bit-identical
to serial execution (each worker runs the same seeded simulation).

Workers default to ``REPRO_WORKERS`` from the environment (1 = serial,
0 = one worker per CPU core).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.experiments.runner import ExperimentResult, run_transfer


@dataclass
class TransferJob:
    """One run_transfer invocation, described declaratively."""

    protocol: str
    path_configs: Any  # Sequence[PathConfig]; kept loose for pickling ease
    duration_s: float
    seed: int = 1
    kwargs: Dict[str, Any] = field(default_factory=dict)


def default_workers() -> int:
    """Worker count from ``REPRO_WORKERS``.

    Unset (or unparseable) stays serial — importing environments without
    working multiprocessing must keep working. ``0`` is the explicit
    opt-in for "use every core": it resolves to ``os.cpu_count()`` rather
    than silently running serial. Negative values clamp to 1.
    """
    value = os.environ.get("REPRO_WORKERS", "1")
    try:
        workers = int(value)
    except ValueError:
        return 1
    if workers == 0:
        return os.cpu_count() or 1
    return max(1, workers)


def _execute(job: TransferJob) -> ExperimentResult:
    return run_transfer(
        job.protocol,
        job.path_configs,
        duration_s=job.duration_s,
        seed=job.seed,
        **job.kwargs,
    )


def run_jobs(
    jobs: Sequence[TransferJob],
    workers: Optional[int] = None,
) -> List[ExperimentResult]:
    """Run all jobs, in parallel when ``workers`` > 1.

    Results are returned in job order regardless of completion order.
    Serial execution is the default (and the fallback for a single job),
    so importing environments without working multiprocessing still work.
    """
    workers = workers if workers is not None else default_workers()
    if workers <= 1 or len(jobs) <= 1:
        return [_execute(job) for job in jobs]
    with ProcessPoolExecutor(max_workers=min(workers, len(jobs))) as pool:
        return list(pool.map(_execute, jobs))
