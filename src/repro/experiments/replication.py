"""Multi-seed replication: mean and spread across independent runs.

The paper reports single ns-2 runs; sound methodology replicates each
configuration over several seeds and reports mean ± confidence interval.
This module wraps :func:`repro.experiments.runner.run_transfer`
accordingly; the CLI exposes it via ``--seeds N``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.experiments.runner import ExperimentResult, run_transfer
from repro.net.topology import PathConfig

# Two-sided t-distribution 97.5 % quantiles for n-1 degrees of freedom,
# n = 2..10 (enough for typical replication counts; beyond that use 1.96).
_T_QUANTILES = {
    2: 12.706, 3: 4.303, 4: 3.182, 5: 2.776, 6: 2.571,
    7: 2.447, 8: 2.365, 9: 2.306, 10: 2.262,
}


def t_quantile(n_samples: int) -> float:
    """97.5 % two-sided t quantile for a mean over ``n_samples`` runs."""
    if n_samples < 2:
        raise ValueError("confidence intervals need at least two samples")
    return _T_QUANTILES.get(n_samples, 1.96)


@dataclass(frozen=True)
class MetricSummary:
    """Mean, standard deviation and 95 % CI half-width of one metric."""

    mean: float
    stdev: float
    ci95: float
    n: int

    def __str__(self) -> str:  # pragma: no cover - formatting aid
        return f"{self.mean:.3f} ± {self.ci95:.3f} (n={self.n})"


@dataclass
class ReplicatedResult:
    """Aggregated measurements across seeds for one configuration."""

    protocol: str
    seeds: List[int]
    metrics: Dict[str, MetricSummary] = field(default_factory=dict)
    runs: List[ExperimentResult] = field(default_factory=list)

    def __getitem__(self, key: str) -> MetricSummary:
        return self.metrics[key]


def summarise(values: Sequence[float]) -> MetricSummary:
    """Sample mean, sample stdev and a t-based 95 % CI half-width."""
    n = len(values)
    if n == 0:
        raise ValueError("no values to summarise")
    mean = sum(values) / n
    if n == 1:
        return MetricSummary(mean=mean, stdev=0.0, ci95=0.0, n=1)
    variance = sum((value - mean) ** 2 for value in values) / (n - 1)
    stdev = math.sqrt(variance)
    ci95 = t_quantile(n) * stdev / math.sqrt(n)
    return MetricSummary(mean=mean, stdev=stdev, ci95=ci95, n=n)


def run_replicated(
    protocol: str,
    path_config_factory,
    duration_s: float,
    seeds: Sequence[int] = (1, 2, 3),
    **run_kwargs,
) -> ReplicatedResult:
    """Run one configuration across several seeds and aggregate.

    ``path_config_factory`` is a zero-argument callable returning fresh
    :class:`PathConfig` objects per run (loss models are stateful, so
    configs must not be shared between runs).
    """
    if not seeds:
        raise ValueError("need at least one seed")
    result = ReplicatedResult(protocol=protocol, seeds=list(seeds))
    for seed in seeds:
        configs = path_config_factory()
        if not all(isinstance(config, PathConfig) for config in configs):
            raise TypeError("path_config_factory must return PathConfig objects")
        result.runs.append(
            run_transfer(
                protocol, configs, duration_s=duration_s, seed=seed, **run_kwargs
            )
        )
    metric_keys = result.runs[0].summary.keys()
    for key in metric_keys:
        result.metrics[key] = summarise([run.summary[key] for run in result.runs])
    return result


def compare_replicated(
    path_config_factory,
    duration_s: float,
    seeds: Sequence[int] = (1, 2, 3),
    metric: str = "goodput_mbytes_per_s",
) -> Dict[str, ReplicatedResult]:
    """Both protocols on the same configuration and seed set."""
    return {
        protocol: run_replicated(
            protocol, path_config_factory, duration_s, seeds=seeds
        )
        for protocol in ("fmtcp", "mptcp")
    }
