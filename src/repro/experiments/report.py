"""Assemble a markdown report from saved benchmark results.

The benchmark harness writes one plain-text block per experiment into
``benchmarks/results/``; this module stitches them into a single
``RESULTS.md`` with a stable section order and a generation header —
the file a user attaches to a reproduction write-up. Exposed as
``python -m repro report``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional

#: Section ordering and human titles; anything not listed is appended
#: alphabetically under "Other results".
SECTION_ORDER = [
    ("table1_path_fidelity", "Table I — path fidelity"),
    ("motivation_tcp_vs_multipath", "Section I motivation — TCP vs multipath"),
    ("fig3_goodput", "Figure 3 — total goodput"),
    ("fig4_surge_25", "Figure 4(a) — 25 % loss surge"),
    ("fig4_surge_35", "Figure 4(b) — 35 % loss surge"),
    ("fig5_block_delay", "Figure 5 — block delivery delay"),
    ("fig6_jitter", "Figure 6 — block jitter"),
    ("fig7_block_delay_series", "Figure 7 — per-block delay series"),
    ("analysis_fixed_rate", "Section III-B — fixed-rate analysis"),
    ("analysis_fountain_overhead", "Section III-B — fountain overhead"),
    ("analysis_sedt", "Section IV-C — SEDT"),
    ("analysis_theorem2", "Section IV-C — Theorem 2"),
    ("analysis_theorem3", "Section IV-C — Theorem 3"),
    ("fairness_shared_bottleneck", "Extension — TCP-friendliness"),
    ("fixedrate_p_hat_sweep", "Extension — fixed-rate p̂ sweep"),
    ("fixedrate_blackout", "Extension — fixed-rate blackout stall"),
    ("heatmap_loss_buffer", "Extension — loss × buffer heatmap"),
    ("sensitivity_loss", "Extension — loss sensitivity"),
    ("sensitivity_bandwidth", "Extension — bandwidth sensitivity"),
    ("sensitivity_delay", "Extension — delay-asymmetry sensitivity"),
    ("ablation_allocation", "Ablation — allocation policies"),
    ("ablation_delta_hat", "Ablation — δ̂ margin"),
    ("ablation_block_size", "Ablation — block geometry"),
    ("ablation_buffer_size", "Ablation — receive buffer"),
    ("ablation_congestion", "Ablation — congestion coupling"),
    ("ablation_mptcp_scheduler", "Ablation — MPTCP scheduler"),
]


def collect_results(results_dir: Path) -> Dict[str, str]:
    """Read every ``<name>.txt`` saved by the benchmark harness."""
    results = {}
    if not results_dir.is_dir():
        return results
    for path in sorted(results_dir.glob("*.txt")):
        results[path.stem] = path.read_text().rstrip()
    return results


def build_report(results: Dict[str, str], header: Optional[str] = None) -> str:
    """Render the results into one markdown document."""
    lines: List[str] = ["# Reproduction results", ""]
    if header:
        lines += [header, ""]
    lines += [
        "Generated from `benchmarks/results/` (written by "
        "`pytest benchmarks/ --benchmark-only`). Paper-vs-measured context "
        "and known deviations are documented in EXPERIMENTS.md.",
        "",
    ]
    seen = set()
    for name, title in SECTION_ORDER:
        if name not in results:
            continue
        seen.add(name)
        lines += [f"## {title}", "", "```", results[name], "```", ""]
    leftovers = sorted(set(results) - seen)
    if leftovers:
        lines += ["## Other results", ""]
        for name in leftovers:
            lines += [f"### {name}", "", "```", results[name], "```", ""]
    return "\n".join(lines).rstrip() + "\n"


def write_report(
    results_dir: Optional[Path] = None,
    output_path: Optional[Path] = None,
) -> Path:
    """Generate RESULTS.md next to the results directory; returns its path."""
    results_dir = results_dir or Path("benchmarks/results")
    output_path = output_path or Path("RESULTS.md")
    results = collect_results(results_dir)
    if not results:
        raise FileNotFoundError(
            f"no saved results in {results_dir}; run "
            "`pytest benchmarks/ --benchmark-only` first"
        )
    output_path.write_text(build_report(results))
    return output_path
