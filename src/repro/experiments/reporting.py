"""Result rendering and export: ASCII charts and CSV files.

Terminal-friendly presentation for the CLI and the examples — a
reproduction you can *look at* without matplotlib — plus CSV export so
results can be re-plotted elsewhere.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, List, Optional, Sequence, Tuple

_SPARK_MARKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], lo: float = 0.0, hi: Optional[float] = None) -> str:
    """Render a series as a one-line unicode sparkline."""
    if not values:
        return ""
    top = hi if hi is not None else max(values)
    if top <= lo:
        return _SPARK_MARKS[0] * len(values)
    cells = []
    for value in values:
        level = int((value - lo) / (top - lo) * (len(_SPARK_MARKS) - 1))
        cells.append(_SPARK_MARKS[min(max(level, 0), len(_SPARK_MARKS) - 1)])
    return "".join(cells)


def bar_chart(
    rows: Sequence[Tuple[str, float]],
    width: int = 40,
    unit: str = "",
) -> List[str]:
    """Horizontal ASCII bar chart; one output line per (label, value)."""
    if not rows:
        return []
    peak = max(value for __, value in rows)
    label_width = max(len(label) for label, __ in rows)
    lines = []
    for label, value in rows:
        filled = 0 if peak <= 0 else int(round(value / peak * width))
        bar = "█" * filled
        lines.append(f"{label:>{label_width}} │{bar:<{width}} {value:.3f}{unit}")
    return lines


def series_plot(
    series: Dict[str, Sequence[Tuple[float, float]]],
    height: int = 10,
    width: int = 72,
) -> List[str]:
    """Plot (t, value) series as ASCII scatter lines, one glyph per series."""
    glyphs = "ox+*#@"
    points = [
        (t, value) for values in series.values() for t, value in values
    ]
    if not points:
        return []
    t_low = min(t for t, __ in points)
    t_high = max(t for t, __ in points)
    v_high = max(value for __, value in points) or 1.0
    t_span = (t_high - t_low) or 1.0
    grid = [[" "] * width for __ in range(height)]
    for index, (name, values) in enumerate(series.items()):
        glyph = glyphs[index % len(glyphs)]
        for t, value in values:
            column = int((t - t_low) / t_span * (width - 1))
            row = height - 1 - int(min(value / v_high, 1.0) * (height - 1))
            grid[row][column] = glyph
    lines = [f"{v_high:8.3f} ┤" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append(" " * 8 + " │" + "".join(row))
    lines.append(f"{0.0:8.3f} ┤" + "".join(grid[-1]))
    lines.append(" " * 10 + f"t={t_low:.0f}s" + " " * (width - 16) + f"t={t_high:.0f}s")
    legend = "   ".join(
        f"{glyphs[index % len(glyphs)]}={name}" for index, name in enumerate(series)
    )
    lines.append(" " * 10 + legend)
    return lines


def rows_to_csv(rows: Sequence[Dict[str, object]]) -> str:
    """Serialise a list of uniform dict rows to CSV text."""
    if not rows:
        return ""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(rows[0].keys()))
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def series_to_csv(series: Dict[str, Sequence[Tuple[float, float]]]) -> str:
    """Serialise named (t, value) series to long-format CSV."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["series", "time_s", "value"])
    for name, values in series.items():
        for t, value in values:
            writer.writerow([name, t, value])
    return buffer.getvalue()


def write_csv(path: str, text: str) -> None:
    """Write CSV text to ``path`` (tiny helper to keep call sites terse)."""
    with open(path, "w", newline="") as handle:
        handle.write(text)
