"""Run one protocol transfer over a configured topology and measure it.

This is the equivalent of one ns-2 run of the paper: assemble the
two-path network, attach a backlogged (or caller-supplied) source to
either FMTCP or the IETF-MPTCP baseline, simulate for a fixed duration,
and return the three paper metrics plus protocol-internal statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.config import FmtcpConfig
from repro.core.connection import FmtcpConnection
from repro.fixedrate.connection import FixedRateConfig, FixedRateConnection
from repro.metrics.collectors import MetricsSuite
from repro.mptcp.connection import MptcpConfig, MptcpConnection
from repro.net.topology import PathConfig, build_two_path_network
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.trace import TraceBus
from repro.tcp.stream import TcpConfig, TcpConnection
from repro.telemetry.session import TelemetryConfig, TelemetryReport, TelemetrySession
from repro.workloads.sources import BulkSource

PROTOCOLS = ("fmtcp", "mptcp", "tcp", "fixedrate")


@dataclass
class ExperimentResult:
    """Everything measured in one run."""

    protocol: str
    duration_s: float
    seed: int
    path_configs: List[PathConfig]
    summary: Dict[str, float]
    goodput_series: List[Tuple[float, float]] = field(default_factory=list)
    block_delays: List[float] = field(default_factory=list)
    subflow_stats: List[Dict[str, float]] = field(default_factory=list)
    extras: Dict[str, Any] = field(default_factory=dict)
    telemetry: Optional[TelemetryReport] = None

    @property
    def goodput_mbytes(self) -> float:
        return self.summary["total_mbytes"]

    @property
    def mean_block_delay_ms(self) -> float:
        return self.summary["mean_block_delay_ms"]

    @property
    def jitter_ms(self) -> float:
        return self.summary["jitter_ms"]


def default_fmtcp_config() -> FmtcpConfig:
    return FmtcpConfig()


def default_mptcp_config(fmtcp: FmtcpConfig) -> MptcpConfig:
    """Baseline config matched to FMTCP's for a fair comparison.

    Section V: "we partition the data streams transmitted by IETF-MPTCP
    into blocks of the same length as that of FMTCP and measure the delay
    and jitter accordingly". The receive buffer is sized to the same byte
    budget FMTCP's pending-block limit implies.
    """
    buffer_bytes = fmtcp.block_bytes * fmtcp.max_pending_blocks
    return MptcpConfig(
        mss=fmtcp.mss,
        block_bytes=fmtcp.block_bytes,
        recv_buffer_chunks=max(16, buffer_bytes // fmtcp.mss),
    )


def run_transfer(
    protocol: str,
    path_configs: Sequence[PathConfig],
    duration_s: float,
    seed: int = 1,
    fmtcp_config: Optional[FmtcpConfig] = None,
    mptcp_config: Optional[MptcpConfig] = None,
    source=None,
    bin_width_s: float = 1.0,
    collect_series: bool = False,
    telemetry: Optional[TelemetryConfig] = None,
    policy=None,
) -> ExperimentResult:
    """Simulate one transfer and return its measurements.

    Passing a :class:`~repro.telemetry.session.TelemetryConfig` attaches
    the full telemetry stack (periodic samplers, optional JSONL trace
    file, sim profiler) for the duration of the run; the resulting
    :class:`~repro.telemetry.session.TelemetryReport` lands on
    ``result.telemetry``. Without it nothing is instrumented.

    ``policy`` (FMTCP only) routes every allocation decision through a
    :class:`repro.policy.Policy` — an instance or a registered name — via
    the sender's decision hook. ``PaperEATPolicy`` reproduces the default
    behaviour byte-identically; see ``docs/policies.md``.
    """
    if protocol not in PROTOCOLS:
        raise ValueError(f"protocol must be one of {PROTOCOLS}, got {protocol!r}")
    if policy is not None and protocol != "fmtcp":
        raise ValueError(
            f"policy= applies to the fmtcp decision layer, not {protocol!r} "
            "(for mptcp, pass a SubflowScheduler via MptcpConfig.scheduler)"
        )
    sim = Simulator()
    rng = RngStreams(seed)
    trace = TraceBus()
    network, paths = build_two_path_network(
        list(path_configs), sim=sim, rng=rng, trace=trace
    )
    metrics = MetricsSuite(trace, bin_width_s=bin_width_s)
    session = TelemetrySession(sim, trace, config=telemetry) if telemetry else None
    if source is None:
        source = BulkSource()

    if protocol == "fmtcp":
        config = fmtcp_config or default_fmtcp_config()
        connection = FmtcpConnection(
            sim=sim, paths=paths, source=source, config=config, trace=trace, rng=rng
        )
        if policy is not None:
            if isinstance(policy, str):
                from repro.policy.policies import make_policy

                policy = make_policy(policy)
            policy.reset(seed)
            connection.sender.set_decision_hook(policy.decide)
    elif protocol == "fixedrate":
        fmtcp_defaults = fmtcp_config or default_fmtcp_config()
        connection = FixedRateConnection(
            sim=sim,
            paths=paths,
            source=source,
            config=FixedRateConfig(
                symbols_per_block=fmtcp_defaults.symbols_per_block,
                symbol_size=fmtcp_defaults.symbol_size,
                symbol_header_bytes=fmtcp_defaults.symbol_header_bytes,
                mss=fmtcp_defaults.mss,
                max_pending_blocks=fmtcp_defaults.max_pending_blocks,
            ),
            trace=trace,
        )
    elif protocol == "tcp":
        # Conventional single-path TCP on the *best* path (lowest loss,
        # then lowest delay) — the paper's Section I comparator.
        fmtcp_defaults = fmtcp_config or default_fmtcp_config()
        best = min(
            range(len(paths)),
            key=lambda i: (
                path_configs[i].loss_rate,
                path_configs[i].delay_s,
            ),
        )
        connection = TcpConnection(
            sim=sim,
            path=paths[best],
            source=source,
            config=TcpConfig(
                mss=fmtcp_defaults.mss,
                block_bytes=fmtcp_defaults.block_bytes,
                recv_buffer_chunks=max(
                    16,
                    fmtcp_defaults.block_bytes
                    * fmtcp_defaults.max_pending_blocks
                    // fmtcp_defaults.mss,
                ),
            ),
            trace=trace,
        )
    else:
        config = mptcp_config or default_mptcp_config(
            fmtcp_config or default_fmtcp_config()
        )
        connection = MptcpConnection(
            sim=sim, paths=paths, source=source, config=config, trace=trace
        )

    if hasattr(source, "attach"):
        source.attach(connection)
    if session is not None:
        session.attach(connection)
    connection.start()
    sim.run(until=duration_s)

    result = ExperimentResult(
        protocol=protocol,
        duration_s=duration_s,
        seed=seed,
        path_configs=list(path_configs),
        summary=metrics.summary(duration_s),
        block_delays=metrics.block_delay.delays_in_sequence(),
        subflow_stats=[
            _subflow_stats(subflow)
            for subflow in (
                connection.subflows
                if hasattr(connection, "subflows")
                else [connection.subflow]
            )
        ],
    )
    if collect_series:
        result.goodput_series = metrics.goodput.series(duration_s)
    if protocol == "tcp":
        result.extras = {
            "chunks_retransmitted": connection.chunks_retransmitted,
        }
    elif protocol == "fixedrate":
        result.extras = {
            "symbols_sent": connection.symbols_sent,
            "symbols_retransmitted": connection.symbols_retransmitted,
            "blocks_decoded": connection.blocks_decoded,
            "redundancy_ratio": connection.redundancy_ratio(),
        }
    elif protocol == "fmtcp":
        result.extras = {
            "symbols_sent": connection.sender.symbols_sent,
            "symbols_lost": connection.sender.symbols_lost,
            "symbols_redundant": connection.receiver.symbols_redundant,
            "blocks_decoded": connection.receiver.blocks_decoded,
            "redundancy_ratio": connection.redundancy_ratio(),
            "decisions_delegated": connection.sender.decisions_delegated,
        }
    else:
        result.extras = {
            "chunks_retransmitted": connection.chunks_retransmitted,
            "chunks_reinjected": connection.chunks_reinjected,
            "reorder_high_watermark": connection.reorder_buffer.high_watermark,
        }
    connection.close()
    if session is not None:
        result.telemetry = session.finish()
    return result


def _subflow_stats(subflow) -> Dict[str, float]:
    return {
        "packets_sent": float(subflow.packets_sent),
        "packets_acked": float(subflow.packets_acked),
        "lost_dupack": float(subflow.packets_lost_dupack),
        "lost_timeout": float(subflow.packets_lost_timeout),
        "loss_estimate": subflow.loss_rate_estimate,
        "srtt_ms": subflow.srtt * 1e3,
        "cwnd": subflow.cc.cwnd,
    }
