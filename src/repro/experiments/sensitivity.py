"""Sensitivity sweeps: where does FMTCP's advantage live?

The paper evaluates eight (delay, loss) points at one unstated bandwidth.
These sweeps map the surrounding parameter space — loss rate, bandwidth
and path-delay asymmetry — and cross-check each operating point against
the PFTK closed-form prediction, so a user can tell at a glance which
regimes reward deploying FMTCP.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.analysis.throughput import predicted_aggregate_goodput_bps
from repro.experiments.runner import ExperimentResult, run_transfer
from repro.net.topology import PathConfig
from repro.workloads.scenarios import DEFAULT_BANDWIDTH_BPS


@dataclass
class SweepPoint:
    """One operating point of a sweep: parameters + both protocols' results."""

    label: str
    configs_description: str
    results: Dict[str, ExperimentResult] = field(default_factory=dict)
    predicted_bps: Dict[str, float] = field(default_factory=dict)

    @property
    def advantage(self) -> float:
        """FMTCP/MPTCP goodput ratio at this point."""
        mptcp = self.results["mptcp"].summary["goodput_mbytes_per_s"]
        fmtcp = self.results["fmtcp"].summary["goodput_mbytes_per_s"]
        return fmtcp / mptcp if mptcp > 0 else float("inf")


def _run_point(
    label: str,
    config_factory,
    duration_s: float,
    seed: int,
) -> SweepPoint:
    configs = config_factory()
    point = SweepPoint(
        label=label,
        configs_description=", ".join(
            f"{config.bandwidth_bps / 1e6:.0f}Mbps/{config.delay_s * 1e3:.0f}ms/"
            f"{config.loss_rate:.0%}"
            for config in configs
        ),
    )
    for protocol in ("fmtcp", "mptcp"):
        point.results[protocol] = run_transfer(
            protocol, config_factory(), duration_s=duration_s, seed=seed
        )
        point.predicted_bps[protocol] = predicted_aggregate_goodput_bps(
            configs, protocol=protocol
        )
    return point


def sweep_loss(
    loss_rates: Optional[Sequence[float]] = None,
    duration_s: float = 30.0,
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
    seed: int = 1,
) -> List[SweepPoint]:
    """Subflow-2 loss sweep at fixed 100 ms delays (extends Fig. 3's ramp)."""
    loss_rates = list(loss_rates or (0.0, 0.02, 0.05, 0.10, 0.20, 0.30))
    points = []
    for loss in loss_rates:
        def factory(loss=loss):
            return [
                PathConfig(bandwidth_bps=bandwidth_bps, delay_s=0.100, loss_rate=0.0),
                PathConfig(bandwidth_bps=bandwidth_bps, delay_s=0.100, loss_rate=loss),
            ]

        points.append(_run_point(f"loss={loss:.0%}", factory, duration_s, seed))
    return points


def sweep_bandwidth(
    bandwidths_bps: Optional[Sequence[float]] = None,
    duration_s: float = 30.0,
    seed: int = 1,
) -> List[SweepPoint]:
    """Per-path bandwidth sweep at Table I case 4 parameters."""
    bandwidths_bps = list(bandwidths_bps or (1e6, 2e6, 4e6, 8e6))
    points = []
    for bandwidth in bandwidths_bps:
        def factory(bandwidth=bandwidth):
            return [
                PathConfig(bandwidth_bps=bandwidth, delay_s=0.100, loss_rate=0.0),
                PathConfig(bandwidth_bps=bandwidth, delay_s=0.100, loss_rate=0.15),
            ]

        points.append(
            _run_point(f"bw={bandwidth / 1e6:.0f}Mbps", factory, duration_s, seed)
        )
    return points


def sweep_delay_asymmetry(
    delays_s: Optional[Sequence[float]] = None,
    duration_s: float = 30.0,
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
    seed: int = 1,
) -> List[SweepPoint]:
    """Subflow-2 delay sweep at fixed 10 % loss (extends cases 5-8)."""
    delays_s = list(delays_s or (0.010, 0.025, 0.050, 0.100, 0.200, 0.400))
    points = []
    for delay in delays_s:
        def factory(delay=delay):
            return [
                PathConfig(bandwidth_bps=bandwidth_bps, delay_s=0.100, loss_rate=0.0),
                PathConfig(bandwidth_bps=bandwidth_bps, delay_s=delay, loss_rate=0.10),
            ]

        points.append(
            _run_point(f"delay2={delay * 1e3:.0f}ms", factory, duration_s, seed)
        )
    return points
