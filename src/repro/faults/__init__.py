"""Fault injection and chaos-soak testing for running simulations.

``repro.faults`` turns the static topologies of the experiment harness
into hostile ones: scriptable, deterministic fault timelines
(:class:`FaultScenario`) that flap links, collapse bandwidth, spike
delay, burst loss, reorder packets and saturate queues mid-run — plus
the chaos harness (:func:`run_chaos`) that drives a full transfer
through a scenario and checks the invariants a robust transport must
keep, and the benchmark probe (:func:`measure_fault_response`) that
quantifies goodput retention and recovery time.

Data *corruption* scenarios (``corrupt``/``corrupt_ge`` events) get
their own harness, :func:`run_corruption`, which sends real random
payloads and additionally verifies the delivered stream byte-for-byte
against the source transcript.
"""

from repro.faults.chaos import (
    PROTOCOLS,
    ChaosReport,
    FaultBenchResult,
    measure_fault_response,
    run_chaos,
)
from repro.faults.churn import (
    ChurnReport,
    PathChurnController,
    measure_churn_response,
    run_churn,
)
from repro.faults.corruption import (
    CorruptionReport,
    measure_corruption_goodput,
    run_corruption,
)
from repro.robustness.exhaustion import (
    EXHAUSTION_SCENARIOS,
    ExhaustionReport,
    ExhaustionScenario,
    measure_bufferblock,
    run_exhaustion,
)
from repro.faults.scenario import (
    CHURN_KINDS,
    CORRUPTION_KINDS,
    CORRUPTION_SCENARIOS,
    CRASH_KINDS,
    FAULT_KINDS,
    MOBILITY_SCENARIOS,
    RECOVERY_SCENARIOS,
    SCENARIOS,
    FaultEvent,
    FaultInjector,
    FaultScenario,
    resolve_scenario,
)

# Endpoint crash/recovery rides the same scenario registry, but its
# harness imports repro.faults.chaos/churn — an eager import here would
# be circular whenever `repro.recovery` is imported first. Re-export
# lazily (PEP 562) so either package can load in either order.
_RECOVERY_EXPORTS = ("RecoveryReport", "measure_recovery", "run_recovery")


def __getattr__(name):
    if name in _RECOVERY_EXPORTS:
        from repro.recovery import harness

        return getattr(harness, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "CHURN_KINDS",
    "CORRUPTION_KINDS",
    "CORRUPTION_SCENARIOS",
    "CRASH_KINDS",
    "EXHAUSTION_SCENARIOS",
    "FAULT_KINDS",
    "MOBILITY_SCENARIOS",
    "RECOVERY_SCENARIOS",
    "SCENARIOS",
    "PROTOCOLS",
    "ChaosReport",
    "ChurnReport",
    "CorruptionReport",
    "ExhaustionReport",
    "ExhaustionScenario",
    "FaultBenchResult",
    "FaultEvent",
    "FaultInjector",
    "FaultScenario",
    "PathChurnController",
    "RecoveryReport",
    "measure_bufferblock",
    "measure_churn_response",
    "measure_corruption_goodput",
    "measure_fault_response",
    "measure_recovery",
    "resolve_scenario",
    "run_chaos",
    "run_churn",
    "run_corruption",
    "run_exhaustion",
    "run_recovery",
]
