"""Fault injection and chaos-soak testing for running simulations.

``repro.faults`` turns the static topologies of the experiment harness
into hostile ones: scriptable, deterministic fault timelines
(:class:`FaultScenario`) that flap links, collapse bandwidth, spike
delay, burst loss, reorder packets and saturate queues mid-run — plus
the chaos harness (:func:`run_chaos`) that drives a full transfer
through a scenario and checks the invariants a robust transport must
keep, and the benchmark probe (:func:`measure_fault_response`) that
quantifies goodput retention and recovery time.

Data *corruption* scenarios (``corrupt``/``corrupt_ge`` events) get
their own harness, :func:`run_corruption`, which sends real random
payloads and additionally verifies the delivered stream byte-for-byte
against the source transcript. Channel *trace* scenarios (``trace``
events replaying recorded/generated time series, see
:mod:`repro.traces`) route to :func:`run_traces`, which adds bounded-
memory and watchdog-interplay checks on top of byte verification.
"""

from repro.faults.chaos import (
    PROTOCOLS,
    ChaosReport,
    FaultBenchResult,
    measure_fault_response,
    run_chaos,
)
from repro.faults.churn import (
    ChurnReport,
    PathChurnController,
    measure_churn_response,
    run_churn,
)
from repro.faults.corruption import (
    CorruptionReport,
    measure_corruption_goodput,
    run_corruption,
)
from repro.robustness.exhaustion import (
    EXHAUSTION_SCENARIOS,
    ExhaustionReport,
    ExhaustionScenario,
    measure_bufferblock,
    run_exhaustion,
)
from repro.faults.scenario import (
    CHURN_KINDS,
    CORRUPTION_KINDS,
    CORRUPTION_SCENARIOS,
    CRASH_KINDS,
    FAULT_KINDS,
    MOBILITY_SCENARIOS,
    RECOVERY_SCENARIOS,
    SCENARIOS,
    TRACE_KINDS,
    TRACE_SCENARIOS,
    FaultEvent,
    FaultInjector,
    FaultScenario,
    resolve_scenario,
    trace_replay_scenario,
)

# Endpoint crash/recovery and trace replay ride the same scenario
# registry, but their harnesses import repro.faults.chaos — an eager
# import here would be circular whenever `repro.recovery` (or
# `repro.traces`) is imported first. Re-export lazily (PEP 562) so the
# packages can load in any order.
_RECOVERY_EXPORTS = ("RecoveryReport", "measure_recovery", "run_recovery")
_TRACE_EXPORTS = ("TraceReport", "measure_trace_goodput", "run_traces")


def __getattr__(name):
    if name in _RECOVERY_EXPORTS:
        from repro.recovery import harness

        return getattr(harness, name)
    if name in _TRACE_EXPORTS:
        from repro.traces import harness

        return getattr(harness, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "CHURN_KINDS",
    "CORRUPTION_KINDS",
    "CORRUPTION_SCENARIOS",
    "CRASH_KINDS",
    "EXHAUSTION_SCENARIOS",
    "FAULT_KINDS",
    "MOBILITY_SCENARIOS",
    "RECOVERY_SCENARIOS",
    "SCENARIOS",
    "TRACE_KINDS",
    "TRACE_SCENARIOS",
    "PROTOCOLS",
    "ChaosReport",
    "ChurnReport",
    "CorruptionReport",
    "ExhaustionReport",
    "ExhaustionScenario",
    "FaultBenchResult",
    "FaultEvent",
    "FaultInjector",
    "FaultScenario",
    "PathChurnController",
    "RecoveryReport",
    "TraceReport",
    "measure_bufferblock",
    "measure_churn_response",
    "measure_corruption_goodput",
    "measure_fault_response",
    "measure_recovery",
    "measure_trace_goodput",
    "resolve_scenario",
    "run_chaos",
    "run_churn",
    "run_corruption",
    "run_exhaustion",
    "run_recovery",
    "run_traces",
    "trace_replay_scenario",
]
