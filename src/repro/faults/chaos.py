"""Chaos-soak harness: run a protocol through a fault timeline and check
invariants that must hold no matter what the network did.

Two entry points:

* :func:`run_chaos` — a *finite* transfer under a fault scenario, with
  the four robustness invariants checked afterwards:

  1. **exactly-once, in-order delivery** — the application-facing sink
     saw every unit exactly once, in sequence, and the byte totals match;
  2. **no wedged RTO timers** — any subflow with packets outstanding has
     a pending retransmission timer (checked at heal time and at the
     end), so nothing can stall forever;
  3. **event-queue drain** — once the transfer completes and the
     connection is closed, the simulator's heap compacts to empty: no
     leaked timers keep the simulation alive;
  4. **post-fault goodput recovery** — delivery makes progress after the
     last fault heals (and the transfer finishes despite everything).

* :func:`measure_fault_response` — an *open-ended* transfer for the
  benchmark: per-phase goodput (before / during / after the faults),
  goodput retention, and time-to-recover after the last fault heals.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.config import FmtcpConfig
from repro.core.connection import FmtcpConnection
from repro.faults.scenario import FaultScenario
from repro.metrics.collectors import MetricsSuite
from repro.metrics.stats import mean
from repro.mptcp.connection import MptcpConfig, MptcpConnection
from repro.net.topology import PathConfig, build_two_path_network
from repro.sim.rng import RngStreams
from repro.sim.trace import TraceBus
from repro.telemetry.flight import FlightRecorder
from repro.telemetry.profiler import SimProfiler
from repro.workloads.sources import BulkSource

PROTOCOLS = ("fmtcp", "mptcp")


@dataclass
class ChaosReport:
    """Outcome of one :func:`run_chaos` run."""

    protocol: str
    scenario_name: str
    seed: int
    duration_s: float
    expected_bytes: int
    delivered_bytes: int = 0
    delivered_units: int = 0
    bytes_at_heal: int = 0
    completed: bool = False
    completion_time_s: Optional[float] = None
    violations: List[str] = field(default_factory=list)
    flight_dump_path: Optional[str] = None
    profile_dump_path: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.violations


def _build_connection(protocol, sim, paths, source, seed, trace, sink):
    if protocol == "fmtcp":
        return FmtcpConnection(
            sim, paths, source, config=FmtcpConfig(),
            trace=trace, rng=RngStreams(seed), sink=sink,
        )
    if protocol == "mptcp":
        return MptcpConnection(
            sim, paths, source, config=MptcpConfig(), trace=trace, sink=sink
        )
    raise ValueError(f"unknown protocol {protocol!r}")


def _check_timers(connection, label: str, violations: List[str]) -> None:
    """Invariant 2: outstanding data without a pending RTO timer = wedged."""
    for subflow in connection.subflows:
        if subflow.in_flight > 0 and not subflow.timer_armed:
            violations.append(
                f"wedged timer {label}: subflow {subflow.subflow_id} has "
                f"{subflow.in_flight} packets in flight and no RTO pending"
            )


def run_chaos(
    protocol: str,
    scenario: FaultScenario,
    seed: int = 1,
    duration_s: float = 40.0,
    bandwidth_bps: float = 6e5,
    delay_s: float = 0.03,
    base_loss: float = 0.0,
    total_bytes: int = 2_000_000,
    flight_dump_dir: Optional[str] = None,
    flight_capacity: int = 4096,
) -> ChaosReport:
    """Run one finite transfer through ``scenario`` and check invariants.

    The default sizing is deliberate: at 2 x 0.6 Mb/s a 2 MB transfer
    needs ~13 s clean, so it is still mid-flight throughout the preset
    fault window ([8, 18) s) and must *survive* the faults — yet finishes
    with ample slack before ``duration_s`` once the network heals.

    With ``flight_dump_dir`` set, a flight recorder (and the sim
    profiler) rides along and — only if an invariant is violated — the
    last ``flight_capacity`` trace records plus a profiler report are
    written there for post-mortem analysis with ``repro trace``.
    """
    if scenario.has_churn:
        raise ValueError(
            f"scenario {scenario.name!r} has subflow-lifecycle events; "
            "use repro.faults.churn.run_churn"
        )
    if scenario.has_corruption:
        raise ValueError(
            f"scenario {scenario.name!r} has corruption events; use "
            "repro.faults.corruption.run_corruption (it verifies delivered "
            "bytes, which this harness cannot)"
        )
    if scenario.has_trace:
        raise ValueError(
            f"scenario {scenario.name!r} replays channel traces; use "
            "repro.traces.harness.run_traces (it verifies delivered bytes "
            "and bounded memory, which this harness cannot)"
        )
    trace = TraceBus()
    configs = [
        PathConfig(bandwidth_bps=bandwidth_bps, delay_s=delay_s, loss_rate=base_loss)
        for __ in range(scenario.n_paths)
    ]
    network, paths = build_two_path_network(configs, rng=RngStreams(seed), trace=trace)
    sim = network.sim

    flight: Optional[FlightRecorder] = None
    profiler: Optional[SimProfiler] = None
    if flight_dump_dir is not None:
        flight = FlightRecorder(trace, capacity=flight_capacity)
        profiler = SimProfiler()
        sim.set_profiler(profiler)

    delivered_ids: List[int] = []
    if protocol == "fmtcp":
        # Round to whole blocks so completion accounting is exact.
        block_bytes = FmtcpConfig().block_bytes
        expected_units = max(1, total_bytes // block_bytes)
        expected_bytes = expected_units * block_bytes
        sink = lambda block_id, data: delivered_ids.append(block_id)  # noqa: E731
    else:
        mss = MptcpConfig().mss
        expected_units = total_bytes // mss + (1 if total_bytes % mss else 0)
        expected_bytes = total_bytes
        sink = lambda chunk: delivered_ids.append(chunk.dsn)  # noqa: E731

    source = BulkSource(total_bytes=expected_bytes)
    connection = _build_connection(protocol, sim, paths, source, seed, trace, sink)
    scenario.apply(sim, paths, trace=trace)

    report = ChaosReport(
        protocol=protocol,
        scenario_name=scenario.name,
        seed=seed,
        duration_s=duration_s,
        expected_bytes=expected_bytes,
    )

    def _at_heal() -> None:
        report.bytes_at_heal = connection.delivered_bytes
        _check_timers(connection, "at heal", report.violations)

    if scenario.events:
        # Scheduled after the injector's own heal event (same time, later
        # insertion sequence), so it sees the healed network.
        sim.schedule_at(scenario.heal_time, _at_heal)

    def _watch_completion() -> None:
        if connection.delivered_bytes >= expected_bytes:
            if report.completion_time_s is None:
                report.completion_time_s = sim.now
            return
        sim.schedule(0.25, _watch_completion)

    sim.schedule(0.25, _watch_completion)
    connection.start()
    sim.run(until=duration_s)

    report.delivered_bytes = connection.delivered_bytes
    report.delivered_units = len(delivered_ids)
    report.completed = report.delivered_bytes >= expected_bytes

    # Invariant 1: exactly-once, in-order delivery.
    if delivered_ids != list(range(len(delivered_ids))):
        report.violations.append(
            f"delivery not exactly-once/in-order: got {len(delivered_ids)} units, "
            f"first disorder near index "
            f"{next((i for i, v in enumerate(delivered_ids) if v != i), -1)}"
        )
    if report.completed and report.delivered_units != expected_units:
        report.violations.append(
            f"unit count mismatch: delivered {report.delivered_units}, "
            f"expected {expected_units}"
        )

    # Invariant 2 again, at the very end.
    _check_timers(connection, "at end", report.violations)

    # Invariant 4: progress after the last fault healed.
    if not report.completed:
        report.violations.append(
            f"transfer incomplete: {report.delivered_bytes}/{expected_bytes} "
            f"bytes after {duration_s:.0f}s"
        )
        if report.delivered_bytes <= report.bytes_at_heal:
            report.violations.append(
                "no goodput recovery: nothing delivered after the last fault "
                f"healed at t={scenario.heal_time:.1f}s"
            )

    # Invariant 3: the event queue drains once the transfer is done.
    connection.close()
    sim.drain_cancelled()
    if report.completed and sim.pending_events != 0:
        report.violations.append(
            f"event queue did not drain: {sim.pending_events} live events "
            "after completion and close"
        )

    if flight is not None:
        if report.violations:
            os.makedirs(flight_dump_dir, exist_ok=True)
            slug = scenario.name.replace(":", "-").replace("/", "-")
            stem = f"flight_{protocol}_{slug}_seed{seed}"
            dump_path = os.path.join(flight_dump_dir, stem + ".jsonl")
            flight.dump(
                dump_path,
                meta={
                    "protocol": protocol,
                    "scenario": scenario.name,
                    "seed": seed,
                    "violations": report.violations,
                },
            )
            report.flight_dump_path = dump_path
            if profiler is not None:
                profile_path = os.path.join(flight_dump_dir, stem + ".profile.json")
                with open(profile_path, "w") as handle:
                    json.dump(profiler.report(), handle, indent=2)
                report.profile_dump_path = profile_path
        flight.close()
        sim.set_profiler(None)
    return report


@dataclass
class FaultBenchResult:
    """Per-phase goodput response of one protocol to one scenario."""

    protocol: str
    scenario_name: str
    duration_s: float
    pre_mbps: float
    during_mbps: float
    post_mbps: float
    retention: float  # during / pre
    recovery_s: Optional[float]  # None = never reached 80 % of pre

    def to_dict(self) -> dict:
        return {
            "protocol": self.protocol,
            "scenario": self.scenario_name,
            "duration_s": self.duration_s,
            "pre_mbps": round(self.pre_mbps, 4),
            "during_mbps": round(self.during_mbps, 4),
            "post_mbps": round(self.post_mbps, 4),
            "retention": round(self.retention, 4),
            "recovery_s": None if self.recovery_s is None else round(self.recovery_s, 2),
        }


def measure_fault_response(
    protocol: str,
    scenario: FaultScenario,
    seed: int = 1,
    duration_s: float = 40.0,
    bandwidth_bps: float = 4e6,
    delay_s: float = 0.03,
    base_loss: float = 0.01,
    recovery_fraction: float = 0.8,
) -> FaultBenchResult:
    """Goodput retention and recovery time for an open-ended transfer."""
    if duration_s <= scenario.heal_time:
        raise ValueError(
            f"duration {duration_s}s leaves no recovery window after "
            f"heal at {scenario.heal_time}s"
        )
    trace = TraceBus()
    configs = [
        PathConfig(bandwidth_bps=bandwidth_bps, delay_s=delay_s, loss_rate=base_loss)
        for __ in range(scenario.n_paths)
    ]
    network, paths = build_two_path_network(configs, rng=RngStreams(seed), trace=trace)
    metrics = MetricsSuite(trace, bin_width_s=1.0)
    connection = _build_connection(
        protocol, network.sim, paths, BulkSource(), seed, trace, sink=None
    )
    scenario.apply(network.sim, paths, trace=trace)
    connection.start()
    network.sim.run(until=duration_s)

    series = metrics.goodput.series(duration_s)  # (midpoint, MB/s) per 1 s bin
    fault_start = scenario.fault_start
    heal = scenario.heal_time

    def phase_mean(lo: float, hi: float) -> float:
        rates = [rate for t, rate in series if lo <= t < hi]
        return mean(rates) if rates else 0.0

    # Skip the first second of slow-start when judging the baseline.
    pre = phase_mean(1.0, fault_start)
    during = phase_mean(fault_start, heal)
    post = phase_mean(heal, duration_s)
    recovery: Optional[float] = None
    threshold = recovery_fraction * pre
    for t, rate in series:
        if t >= heal and rate >= threshold:
            recovery = t - heal
            break
    connection.close()
    return FaultBenchResult(
        protocol=protocol,
        scenario_name=scenario.name,
        duration_s=duration_s,
        pre_mbps=pre,
        during_mbps=during,
        post_mbps=post,
        retention=during / pre if pre > 0 else 0.0,
        recovery_s=recovery,
    )
