"""Subflow churn: runtime path lifecycle under mobility scenarios.

PR 1 gave both transports a dead-path *detector* (suspect state + probe
backoff); this module is the *recovery* path: subflows are actually torn
down when their path disappears and new ones are attached — with a join
handshake — when a path comes up, as on a WiFi→LTE handover.

Three pieces:

* :class:`PathChurnController` — the lifecycle handler a
  :class:`~repro.faults.scenario.FaultInjector` delegates ``path_down`` /
  ``path_up`` / ``handover`` events to. It drives both layers in sync:
  the links (via :meth:`Network.detach_path` / re-raising them) and the
  transport (``Connection.remove_subflow`` / ``add_subflow``).
* :func:`run_churn` — the chaos-soak harness for mobility scenarios,
  with churn-specific invariants: no data loss or reordering across a
  removal, completion on the surviving path after a permanent
  ``path_down``, and goodput back within a bounded window of a
  ``path_up``.
* :func:`measure_churn_response` — the benchmark probe (open-ended
  transfer, per-phase goodput) mirroring
  :func:`~repro.faults.chaos.measure_fault_response`.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.config import FmtcpConfig
from repro.faults.chaos import FaultBenchResult, _build_connection, _check_timers
from repro.faults.scenario import FaultScenario
from repro.metrics.collectors import MetricsSuite
from repro.metrics.stats import mean
from repro.mptcp.connection import MptcpConfig
from repro.net.topology import Network, Path, PathConfig, build_two_path_network
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.trace import TraceBus
from repro.telemetry.flight import FlightRecorder
from repro.telemetry.profiler import SimProfiler
from repro.workloads.sources import BulkSource


class PathChurnController:
    """Applies subflow-lifecycle events to a live connection + topology.

    Tracks which connection subflow currently rides which path index, so
    a ``path_down`` knows what to remove and a later ``path_up`` of the
    same index attaches a *new* subflow (new id, fresh congestion state —
    a re-associated path does not inherit the old path's estimators).
    """

    def __init__(
        self,
        sim: Simulator,
        paths: Sequence[Path],
        connection,
        network: Optional[Network] = None,
        active_paths: Optional[Sequence[int]] = None,
        trace: Optional[TraceBus] = None,
        join_handshake_s: Optional[float] = None,
    ):
        self.sim = sim
        self.paths = list(paths)
        self.connection = connection
        self.network = network
        self.trace = trace
        # None = derive from the path RTT (Connection.add_subflow default).
        self.join_handshake_s = join_handshake_s
        active = (
            tuple(active_paths) if active_paths is not None else range(len(self.paths))
        )
        self._subflow_of_path: Dict[int, int] = {
            path_index: connection.subflows[position].subflow_id
            for position, path_index in enumerate(active)
        }
        self.path_downs = 0
        self.path_ups = 0
        self.handovers = 0

    def subflow_on(self, path_index: int) -> Optional[int]:
        """Id of the subflow currently riding ``path_index`` (or None)."""
        return self._subflow_of_path.get(path_index)

    def rebind(self, connection, active_paths: Sequence[int]) -> None:
        """Point the controller at a rebuilt connection (crash recovery).

        The recovery manager's epoch model replaces the whole connection
        object after a crash; the fault timeline, however, keeps driving
        *this* controller. Rebinding refreshes the connection reference
        and the path→subflow map so later churn events land on the new
        epoch's subflows (which enumerate the same active path set, in
        order).
        """
        self.connection = connection
        self._subflow_of_path = {
            path_index: connection.subflows[position].subflow_id
            for position, path_index in enumerate(active_paths)
        }

    def path_down(self, path_index: int) -> None:
        """The path disappeared: kill its links, remove its subflow."""
        path = self.paths[path_index]
        if self.network is not None:
            self.network.detach_path(path)
        else:
            for link in (*path.forward_links, *path.reverse_links):
                if not link.is_down:
                    link.set_down(True)
        subflow_id = self._subflow_of_path.pop(path_index, None)
        reallocated = 0
        if subflow_id is not None:
            reallocated = self.connection.remove_subflow(subflow_id)
        self.path_downs += 1
        if self.trace is not None and self.trace.has_subscribers("churn.path_down"):
            self.trace.emit(
                self.sim.now,
                "churn.path_down",
                path=path_index,
                subflow=subflow_id,
                reallocated=reallocated,
            )

    def path_up(self, path_index: int) -> None:
        """The path (re)appeared: raise its links, join a new subflow."""
        if path_index in self._subflow_of_path:
            return  # Already attached; a duplicate path_up is a no-op.
        path = self.paths[path_index]
        for link in (*path.forward_links, *path.reverse_links):
            if link.is_down:
                link.set_down(False)
            if self.network is not None and link not in self.network.links:
                self.network.links.append(link)
        subflow = self.connection.add_subflow(
            path, join_delay_s=self.join_handshake_s
        )
        self._subflow_of_path[path_index] = subflow.subflow_id
        self.path_ups += 1
        if self.trace is not None and self.trace.has_subscribers("churn.path_up"):
            self.trace.emit(
                self.sim.now,
                "churn.path_up",
                path=path_index,
                subflow=subflow.subflow_id,
            )

    def handover(self, from_path: int, to_path: int, break_s: float) -> None:
        """Leave ``from_path`` now; ``to_path`` comes up ``break_s`` later.

        With ``break_s = 0`` this is make-before-break (the new subflow
        starts its join handshake the instant the old path dies); a
        positive gap models the connectivity blackout of a hard handover.
        """
        self.handovers += 1
        if self.trace is not None and self.trace.has_subscribers("churn.handover"):
            self.trace.emit(
                self.sim.now,
                "churn.handover",
                path=from_path,
                to_path=to_path,
                break_s=break_s,
            )
        self.path_down(from_path)
        if break_s <= 0:
            self.path_up(to_path)
        else:
            self.sim.schedule(break_s, self.path_up, to_path)


@dataclass
class ChurnReport:
    """Outcome of one :func:`run_churn` run."""

    protocol: str
    scenario_name: str
    seed: int
    duration_s: float
    expected_bytes: int
    delivered_bytes: int = 0
    delivered_units: int = 0
    completed: bool = False
    completion_time_s: Optional[float] = None
    pre_churn_mbps: float = 0.0
    recovered_at_s: Optional[float] = None
    path_downs: int = 0
    path_ups: int = 0
    handovers: int = 0
    violations: List[str] = field(default_factory=list)
    flight_dump_path: Optional[str] = None
    profile_dump_path: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.violations


def run_churn(
    protocol: str,
    scenario: FaultScenario,
    seed: int = 1,
    duration_s: float = 40.0,
    bandwidth_bps: float = 6e5,
    delay_s: float = 0.03,
    base_loss: float = 0.0,
    total_bytes: int = 2_000_000,
    flight_dump_dir: Optional[str] = None,
    flight_capacity: int = 4096,
    recovery_window_s: float = 5.0,
    recovery_fraction: float = 0.8,
) -> ChurnReport:
    """One finite transfer through a mobility scenario, invariants checked.

    Same sizing rationale as :func:`~repro.faults.chaos.run_chaos` (the
    transfer is mid-flight through the whole churn window), plus the
    churn invariants:

    1. **exactly-once, in-order delivery** — removing the subflow that
       carried data must not corrupt or duplicate the decoded stream;
    2. **no wedged RTO timers** on the surviving subflows at the end;
    3. **completion on the surviving paths** — a permanent ``path_down``
       degrades capacity, never correctness;
    4. **bounded re-add recovery** — within ``recovery_window_s`` of the
       last ``path_up`` (or handover settle), goodput is back to
       ``recovery_fraction`` of the pre-churn steady state, unless the
       transfer already finished;
    5. **event-queue drain** after completion and close (a removed
       subflow must not leak timers).
    """
    if not scenario.has_churn:
        raise ValueError(
            f"scenario {scenario.name!r} has no lifecycle events; "
            "use repro.faults.chaos.run_chaos for plain link faults"
        )
    trace = TraceBus()
    configs = [
        PathConfig(bandwidth_bps=bandwidth_bps, delay_s=delay_s, loss_rate=base_loss)
        for __ in range(scenario.n_paths)
    ]
    network, paths = build_two_path_network(configs, rng=RngStreams(seed), trace=trace)
    sim = network.sim
    metrics = MetricsSuite(trace, bin_width_s=1.0)

    flight: Optional[FlightRecorder] = None
    profiler: Optional[SimProfiler] = None
    if flight_dump_dir is not None:
        flight = FlightRecorder(trace, capacity=flight_capacity)
        profiler = SimProfiler()
        sim.set_profiler(profiler)

    delivered_ids: List[int] = []
    if protocol == "fmtcp":
        block_bytes = FmtcpConfig().block_bytes
        expected_units = max(1, total_bytes // block_bytes)
        expected_bytes = expected_units * block_bytes
        sink = lambda block_id, data: delivered_ids.append(block_id)  # noqa: E731
    else:
        mss = MptcpConfig().mss
        expected_units = total_bytes // mss + (1 if total_bytes % mss else 0)
        expected_bytes = total_bytes
        sink = lambda chunk: delivered_ids.append(chunk.dsn)  # noqa: E731

    source = BulkSource(total_bytes=expected_bytes)
    active_paths = [paths[index] for index in scenario.active_paths]
    connection = _build_connection(
        protocol, sim, active_paths, source, seed, trace, sink
    )
    # Paths the transfer does not start on are administratively down until
    # a path_up / handover brings them online.
    for index, path in enumerate(paths):
        if index not in scenario.active_paths:
            network.detach_path(path)
    controller = PathChurnController(
        sim,
        paths,
        connection,
        network=network,
        active_paths=scenario.active_paths,
        trace=trace,
    )
    scenario.apply(sim, paths, trace=trace, lifecycle=controller)

    report = ChurnReport(
        protocol=protocol,
        scenario_name=scenario.name,
        seed=seed,
        duration_s=duration_s,
        expected_bytes=expected_bytes,
    )

    def _watch_completion() -> None:
        if connection.delivered_bytes >= expected_bytes:
            if report.completion_time_s is None:
                report.completion_time_s = sim.now
            return
        sim.schedule(0.25, _watch_completion)

    sim.schedule(0.25, _watch_completion)
    connection.start()
    sim.run(until=duration_s)

    report.delivered_bytes = connection.delivered_bytes
    report.delivered_units = len(delivered_ids)
    report.completed = report.delivered_bytes >= expected_bytes
    report.path_downs = controller.path_downs
    report.path_ups = controller.path_ups
    report.handovers = controller.handovers

    # Invariant 1: exactly-once, in-order delivery across every removal.
    if delivered_ids != list(range(len(delivered_ids))):
        report.violations.append(
            f"delivery not exactly-once/in-order: got {len(delivered_ids)} units, "
            f"first disorder near index "
            f"{next((i for i, v in enumerate(delivered_ids) if v != i), -1)}"
        )
    if report.completed and report.delivered_units != expected_units:
        report.violations.append(
            f"unit count mismatch: delivered {report.delivered_units}, "
            f"expected {expected_units}"
        )

    # Invariant 2: no wedged timers on the survivors.
    _check_timers(connection, "at end", report.violations)

    # Invariant 3: completion despite permanent path loss.
    if not report.completed:
        report.violations.append(
            f"transfer incomplete on surviving paths: "
            f"{report.delivered_bytes}/{expected_bytes} bytes "
            f"after {duration_s:.0f}s"
        )

    # Invariant 4: goodput recovers within the window of the last re-add.
    has_readd = any(e.kind in ("path_up", "handover") for e in scenario.events)
    if has_readd:
        settle = scenario.settle_time
        series = metrics.goodput.series(duration_s)
        pre = mean(
            [rate for t, rate in series if 1.0 <= t < scenario.fault_start] or [0.0]
        )
        report.pre_churn_mbps = pre
        threshold = recovery_fraction * pre
        for t, rate in series:
            if t >= settle and rate >= threshold:
                report.recovered_at_s = t
                break
        finished_inside_window = (
            report.completion_time_s is not None
            and report.completion_time_s <= settle + recovery_window_s
        )
        recovered_inside_window = (
            report.recovered_at_s is not None
            and report.recovered_at_s <= settle + recovery_window_s
        )
        if not (finished_inside_window or recovered_inside_window):
            report.violations.append(
                f"no goodput recovery within {recovery_window_s:.0f}s of the "
                f"last path_up (settle t={settle:.1f}s): pre-churn "
                f"{pre:.3f} MB/s, threshold {threshold:.3f} MB/s"
            )

    # Invariant 5: the event queue drains once the transfer is done.
    connection.close()
    sim.drain_cancelled()
    if report.completed and sim.pending_events != 0:
        report.violations.append(
            f"event queue did not drain: {sim.pending_events} live events "
            "after completion and close"
        )

    if flight is not None:
        if report.violations:
            os.makedirs(flight_dump_dir, exist_ok=True)
            slug = scenario.name.replace(":", "-").replace("/", "-")
            stem = f"flight_{protocol}_{slug}_seed{seed}"
            dump_path = os.path.join(flight_dump_dir, stem + ".jsonl")
            flight.dump(
                dump_path,
                meta={
                    "protocol": protocol,
                    "scenario": scenario.name,
                    "seed": seed,
                    "violations": report.violations,
                },
            )
            report.flight_dump_path = dump_path
            if profiler is not None:
                profile_path = os.path.join(flight_dump_dir, stem + ".profile.json")
                with open(profile_path, "w") as handle:
                    json.dump(profiler.report(), handle, indent=2)
                report.profile_dump_path = profile_path
        flight.close()
        sim.set_profiler(None)
    return report


def measure_churn_response(
    protocol: str,
    scenario: FaultScenario,
    seed: int = 1,
    duration_s: float = 40.0,
    bandwidth_bps: float = 4e6,
    delay_s: float = 0.03,
    base_loss: float = 0.01,
    recovery_fraction: float = 0.8,
) -> FaultBenchResult:
    """Per-phase goodput of an open-ended transfer through churn.

    Phases: *pre* is [1 s, first event), *during* is [first event, settle)
    — the churn window including handover blackouts — and *post* runs
    from settle to the end. For a permanent removal (no re-add) the
    during window is empty and retention reads 0 by convention; *post*
    then shows the surviving-path capacity, and ``recovery_s`` stays
    ``None`` whenever the survivors cannot reach ``recovery_fraction`` of
    the multi-path baseline — a real capacity loss, not a bug.
    """
    if not scenario.has_churn:
        raise ValueError(
            f"scenario {scenario.name!r} has no lifecycle events; "
            "use measure_fault_response for plain link faults"
        )
    if duration_s <= scenario.settle_time:
        raise ValueError(
            f"duration {duration_s}s leaves no window after the last "
            f"lifecycle event settles at {scenario.settle_time}s"
        )
    trace = TraceBus()
    configs = [
        PathConfig(bandwidth_bps=bandwidth_bps, delay_s=delay_s, loss_rate=base_loss)
        for __ in range(scenario.n_paths)
    ]
    network, paths = build_two_path_network(configs, rng=RngStreams(seed), trace=trace)
    sim = network.sim
    metrics = MetricsSuite(trace, bin_width_s=1.0)
    active_paths = [paths[index] for index in scenario.active_paths]
    connection = _build_connection(
        protocol, sim, active_paths, BulkSource(), seed, trace, sink=None
    )
    for index, path in enumerate(paths):
        if index not in scenario.active_paths:
            network.detach_path(path)
    controller = PathChurnController(
        sim,
        paths,
        connection,
        network=network,
        active_paths=scenario.active_paths,
        trace=trace,
    )
    scenario.apply(sim, paths, trace=trace, lifecycle=controller)
    connection.start()
    sim.run(until=duration_s)

    series = metrics.goodput.series(duration_s)
    fault_start = scenario.fault_start
    settle = scenario.settle_time

    def phase_mean(lo: float, hi: float) -> float:
        rates = [rate for t, rate in series if lo <= t < hi]
        return mean(rates) if rates else 0.0

    pre = phase_mean(1.0, fault_start)
    during = phase_mean(fault_start, settle)
    post = phase_mean(settle, duration_s)
    recovery: Optional[float] = None
    threshold = recovery_fraction * pre
    for t, rate in series:
        if t >= settle and rate >= threshold:
            recovery = t - settle
            break
    connection.close()
    return FaultBenchResult(
        protocol=protocol,
        scenario_name=scenario.name,
        duration_s=duration_s,
        pre_mbps=pre,
        during_mbps=during,
        post_mbps=post,
        retention=during / pre if pre > 0 else 0.0,
        recovery_s=recovery,
    )
