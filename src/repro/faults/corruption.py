"""Corruption-soak harness: finite transfers through data-damaging
scenarios, with *byte-level* delivery verification.

:func:`run_chaos` can prove a transfer completed; it cannot prove the
delivered bytes are the *sent* bytes, because its workload is synthetic.
This harness drives real random payloads end-to-end
(:class:`~repro.workloads.sources.RandomPayloadSource` keeps a
transcript; FMTCP runs with ``coding="real"`` so actual block bytes are
fountain-coded, mutated on the wire and decoded) and checks, on top of
the chaos invariants:

5. **zero corrupted bytes delivered** — the receiver's reassembled
   stream is byte-identical to the source transcript, even when
   mutations evade the link CRC and must be caught by the DSS checksum,
   the block CRC or GF(2) inconsistency;
6. **the integrity layer actually fired** — when links corrupted
   packets, at least one defense (discard / checksum reject /
   quarantine) accounts for them, so a run can't pass vacuously.

:func:`measure_corruption_goodput` is the benchmark probe: steady-state
goodput of an open-ended transfer at a fixed per-link corruption rate.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import FmtcpConfig
from repro.faults.chaos import _check_timers
from repro.faults.scenario import FaultScenario
from repro.mptcp.connection import MptcpConfig, MptcpConnection
from repro.net.corruption import BernoulliCorruption
from repro.net.topology import PathConfig, build_two_path_network
from repro.sim.rng import RngStreams
from repro.sim.trace import TraceBus
from repro.telemetry.flight import FlightRecorder
from repro.telemetry.profiler import SimProfiler
from repro.workloads.sources import BulkSource, RandomPayloadSource


@dataclass
class CorruptionReport:
    """Outcome of one :func:`run_corruption` run."""

    protocol: str
    scenario_name: str
    seed: int
    duration_s: float
    expected_bytes: int
    delivered_bytes: int = 0
    delivered_units: int = 0
    bytes_at_heal: int = 0
    completed: bool = False
    completion_time_s: Optional[float] = None
    packets_corrupted: int = 0
    corruption_stats: Dict[str, int] = field(default_factory=dict)
    violations: List[str] = field(default_factory=list)
    flight_dump_path: Optional[str] = None
    profile_dump_path: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.violations


def _make_connection(protocol, config, sim, paths, source, seed, trace, sink):
    """Like chaos's builder, but with an explicit (real-coding) config."""
    if protocol == "fmtcp":
        from repro.core.connection import FmtcpConnection

        return FmtcpConnection(
            sim, paths, source, config=config or FmtcpConfig(),
            trace=trace, rng=RngStreams(seed), sink=sink,
        )
    if protocol == "mptcp":
        return MptcpConnection(
            sim, paths, source, config=config or MptcpConfig(),
            trace=trace, sink=sink,
        )
    raise ValueError(f"unknown protocol {protocol!r}")


def _links_corrupted(paths) -> int:
    return sum(
        link.packets_corrupted
        for path in paths
        for link in (*path.forward_links, *path.reverse_links)
    )


def run_corruption(
    protocol: str,
    scenario: FaultScenario,
    seed: int = 1,
    duration_s: float = 40.0,
    bandwidth_bps: float = 1e5,
    delay_s: float = 0.03,
    base_loss: float = 0.0,
    total_bytes: int = 327_680,
    flight_dump_dir: Optional[str] = None,
    flight_capacity: int = 4096,
) -> CorruptionReport:
    """Run one finite *real-payload* transfer through ``scenario``.

    Sizing mirrors :func:`run_chaos` but smaller: real fountain coding
    pays for GF(2) elimination per block, and the soak runs this 30
    seeds x 2 protocols x presets. At 2 x 0.1 Mb/s the 320 KiB transfer
    needs ~13 s clean, so it is mid-flight throughout the preset
    corruption window ([8, 18) s) and must survive it, yet finishes
    well before ``duration_s`` once the links heal.
    """
    if not scenario.has_corruption:
        raise ValueError(
            f"scenario {scenario.name!r} has no corruption events; use "
            "repro.faults.chaos.run_chaos (or run_churn for lifecycle "
            "scenarios) instead"
        )
    if scenario.has_churn:
        raise ValueError(
            f"scenario {scenario.name!r} mixes corruption with subflow-"
            "lifecycle events; split it across run_corruption/run_churn"
        )
    if scenario.has_trace:
        raise ValueError(
            f"scenario {scenario.name!r} mixes corruption with trace "
            "replay; split it across run_corruption/run_traces"
        )
    trace = TraceBus()
    configs = [
        PathConfig(bandwidth_bps=bandwidth_bps, delay_s=delay_s, loss_rate=base_loss)
        for __ in range(scenario.n_paths)
    ]
    network, paths = build_two_path_network(configs, rng=RngStreams(seed), trace=trace)
    sim = network.sim

    flight: Optional[FlightRecorder] = None
    profiler: Optional[SimProfiler] = None
    if flight_dump_dir is not None:
        flight = FlightRecorder(trace, capacity=flight_capacity)
        profiler = SimProfiler()
        sim.set_profiler(profiler)

    delivered_ids: List[int] = []
    delivered_data: List[bytes] = []
    if protocol == "fmtcp":
        # Real coding so actual bytes flow; round to whole blocks so the
        # transcript and the reassembled stream cover the same span.
        config = FmtcpConfig(coding="real")
        block_bytes = config.block_bytes
        expected_units = max(1, total_bytes // block_bytes)
        expected_bytes = expected_units * block_bytes

        def sink(block_id: int, data: Optional[bytes]) -> None:
            delivered_ids.append(block_id)
            delivered_data.append(data or b"")

    elif protocol == "mptcp":
        config = MptcpConfig()
        mss = config.mss
        expected_units = total_bytes // mss + (1 if total_bytes % mss else 0)
        expected_bytes = total_bytes

        def sink(chunk) -> None:
            delivered_ids.append(chunk.dsn)
            delivered_data.append(chunk.payload_bytes or b"")

    else:
        raise ValueError(f"unknown protocol {protocol!r}")

    source = RandomPayloadSource(expected_bytes, rng=random.Random(seed))
    connection = _make_connection(
        protocol, config, sim, paths, source, seed, trace, sink
    )
    scenario.apply(sim, paths, trace=trace)

    report = CorruptionReport(
        protocol=protocol,
        scenario_name=scenario.name,
        seed=seed,
        duration_s=duration_s,
        expected_bytes=expected_bytes,
    )

    def _at_heal() -> None:
        report.bytes_at_heal = connection.delivered_bytes
        _check_timers(connection, "at heal", report.violations)

    if scenario.events:
        sim.schedule_at(scenario.heal_time, _at_heal)

    def _watch_completion() -> None:
        if connection.delivered_bytes >= expected_bytes:
            if report.completion_time_s is None:
                report.completion_time_s = sim.now
            return
        sim.schedule(0.25, _watch_completion)

    sim.schedule(0.25, _watch_completion)
    connection.start()
    sim.run(until=duration_s)

    report.delivered_bytes = connection.delivered_bytes
    report.delivered_units = len(delivered_ids)
    report.completed = report.delivered_bytes >= expected_bytes
    report.packets_corrupted = _links_corrupted(paths)
    report.corruption_stats = connection.corruption_stats()

    # Invariant 1: exactly-once, in-order delivery.
    if delivered_ids != list(range(len(delivered_ids))):
        report.violations.append(
            f"delivery not exactly-once/in-order: got {len(delivered_ids)} units, "
            f"first disorder near index "
            f"{next((i for i, v in enumerate(delivered_ids) if v != i), -1)}"
        )
    if report.completed and report.delivered_units != expected_units:
        report.violations.append(
            f"unit count mismatch: delivered {report.delivered_units}, "
            f"expected {expected_units}"
        )

    # Invariant 5: zero corrupted bytes delivered. Compare the prefix
    # actually delivered even on incomplete runs — a wrong byte is a
    # violation whether or not the transfer finished.
    reassembled = b"".join(delivered_data)
    transcript = bytes(source.transcript)
    if reassembled != transcript[: len(reassembled)]:
        first_bad = next(
            (
                i
                for i, (got, want) in enumerate(zip(reassembled, transcript))
                if got != want
            ),
            min(len(reassembled), len(transcript)),
        )
        report.violations.append(
            f"corrupted bytes delivered: reassembled stream diverges from "
            f"the source transcript at offset {first_bad}"
        )

    # Invariant 2 again, at the very end.
    _check_timers(connection, "at end", report.violations)

    # Invariant 4: progress after the links healed.
    if not report.completed:
        report.violations.append(
            f"transfer incomplete: {report.delivered_bytes}/{expected_bytes} "
            f"bytes after {duration_s:.0f}s"
        )
        if report.delivered_bytes <= report.bytes_at_heal:
            report.violations.append(
                "no goodput recovery: nothing delivered after corruption "
                f"healed at t={scenario.heal_time:.1f}s"
            )

    # Invariant 6: corrupted packets must be accounted for by a defense.
    if report.packets_corrupted > 0 and not any(report.corruption_stats.values()):
        report.violations.append(
            f"{report.packets_corrupted} packets corrupted on the wire but "
            "no integrity defense fired (discard/reject/quarantine all zero)"
        )

    # Invariant 3: the event queue drains once the transfer is done.
    connection.close()
    sim.drain_cancelled()
    if report.completed and sim.pending_events != 0:
        report.violations.append(
            f"event queue did not drain: {sim.pending_events} live events "
            "after completion and close"
        )

    if flight is not None:
        if report.violations:
            os.makedirs(flight_dump_dir, exist_ok=True)
            slug = scenario.name.replace(":", "-").replace("/", "-")
            stem = f"flight_{protocol}_{slug}_seed{seed}"
            dump_path = os.path.join(flight_dump_dir, stem + ".jsonl")
            flight.dump(
                dump_path,
                meta={
                    "protocol": protocol,
                    "scenario": scenario.name,
                    "seed": seed,
                    "violations": report.violations,
                    "corruption_stats": report.corruption_stats,
                },
            )
            report.flight_dump_path = dump_path
            if profiler is not None:
                profile_path = os.path.join(flight_dump_dir, stem + ".profile.json")
                with open(profile_path, "w") as handle:
                    json.dump(profiler.report(), handle, indent=2)
                report.profile_dump_path = profile_path
        flight.close()
        sim.set_profiler(None)
    return report


def measure_corruption_goodput(
    protocol: str,
    rate: float,
    seed: int = 1,
    duration_s: float = 20.0,
    bandwidth_bps: float = 4e6,
    delay_s: float = 0.03,
    effect: str = "bitflip",
    evade_crc: float = 0.0,
) -> float:
    """Steady-state goodput (Mb/s) with every forward link corrupting at
    ``rate`` for the whole run. ``rate=0`` leaves the links pristine (no
    model installed, so the clean baseline draws no extra randomness)."""
    trace = TraceBus()
    configs = [
        PathConfig(bandwidth_bps=bandwidth_bps, delay_s=delay_s, loss_rate=0.0)
        for __ in range(2)
    ]
    network, paths = build_two_path_network(configs, rng=RngStreams(seed), trace=trace)
    connection = _make_connection(
        protocol, None, network.sim, paths, BulkSource(), seed, trace, sink=None
    )
    if rate > 0.0:
        for path in paths:
            for link in path.forward_links:
                # Fresh model per link: realisations stay independent.
                link.set_corruption_model(
                    BernoulliCorruption(rate, effect=effect, evade_crc=evade_crc)
                )
    connection.start()
    network.sim.run(until=duration_s)
    goodput = connection.delivered_bytes * 8.0 / duration_s / 1e6
    connection.close()
    return goodput
