"""Scriptable fault timelines for running simulations.

A :class:`FaultScenario` is a deterministic, sorted list of
:class:`FaultEvent` records — "at t=8 s path 1 dies, at t=18 s it
revives" — that an injector replays against a live topology through the
mutation APIs on :class:`~repro.net.link.Link`. The taxonomy covers the
failure modes multipath transports actually meet:

========  ==========================================================
kind      value / effect
========  ==========================================================
down      ``None`` — the path's links drop everything
up        ``None`` — revive the links
bandwidth ``factor`` — set bandwidth to ``baseline * factor`` (1.0
          restores)
delay     ``factor`` — set propagation delay to ``baseline * factor``
loss      drop rate in ``[0, 1)`` (a :class:`BernoulliLoss`), or
          ``None`` to restore the baseline loss model
reorder   ``(probability, max_extra_s)`` installing a
          :class:`UniformReordering`, or ``None`` to restore
queue     waiting-packet capacity (an ``int``), or ``None`` to
          restore the baseline capacity
========  ==========================================================

Every scenario heals: by construction the latest event of each fault
restores its baseline, so :attr:`FaultScenario.heal_time` marks the
moment after which the network is clean again — the anchor for the
chaos-soak recovery invariants and the benchmark's recovery-time metric.

Randomised scenarios (:meth:`FaultScenario.random`) draw from a named
stream of :class:`~repro.sim.rng.RngStreams`, so a seed fully determines
the timeline across runs and platforms.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.net.corruption import (
    CORRUPTION_EFFECTS,
    BernoulliCorruption,
    GilbertElliottCorruption,
)
from repro.net.loss import BernoulliLoss
from repro.net.reorder import UniformReordering
from repro.net.topology import Path
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.trace import TraceBus

#: Subflow-lifecycle event kinds (mobility): unlike link faults, which the
#: transport merely *suffers*, these are visible path management — the
#: endpoint tears the subflow down / builds a new one. They need a
#: lifecycle handler (see :class:`FaultInjector`), typically
#: :class:`repro.faults.churn.PathChurnController`.
CHURN_KINDS = ("path_down", "path_up", "handover")

#: Data-corruption event kinds: install a
#: :class:`~repro.net.corruption.CorruptionModel` on the path's links.
#: ``corrupt`` takes ``rate`` or ``(rate[, effect[, evade_crc]])``
#: (a :class:`BernoulliCorruption`); ``corrupt_ge`` takes
#: ``(p_gb, p_bg, corrupt_bad[, effect[, evade_crc]])`` (a bursty
#: :class:`GilbertElliottCorruption`). ``None`` restores the baseline.
CORRUPTION_KINDS = ("corrupt", "corrupt_ge")

#: Endpoint crash/recovery event kinds: unlike every other kind, these
#: mutate an *endpoint*, not the network. ``crash_sender`` and
#: ``crash_receiver`` kill the respective endpoint (losing all volatile
#: state — only its last durable checkpoint survives); ``restart`` brings
#: a crashed endpoint back up (value ``None`` = whichever is down, or
#: ``"sender"`` / ``"receiver"``). They need an endpoints handler (see
#: :class:`repro.recovery.manager.RecoveryManager`); the ``path`` field is
#: ignored (conventionally 0).
CRASH_KINDS = ("crash_sender", "crash_receiver", "restart")

#: Trace-replay event kinds: arm a :class:`~repro.traces.player.TracePlayer`
#: replaying a recorded/generated channel time series onto the path's
#: links. The value is a trace spec — a
#: :class:`~repro.traces.model.LinkTrace`, a bundled asset name, a
#: ``"family:seed"`` generator spec or a CSV path (see
#: :func:`repro.traces.resolve_trace`) — or ``None`` to stop playback and
#: restore the baseline.
TRACE_KINDS = ("trace",)

FAULT_KINDS = (
    "down",
    "up",
    "bandwidth",
    "delay",
    "loss",
    "reorder",
    "queue",
) + CHURN_KINDS + CORRUPTION_KINDS + CRASH_KINDS + TRACE_KINDS


def _make_bernoulli_corruption(value: Any) -> BernoulliCorruption:
    """Build the ``corrupt`` event's model; raises ValueError on junk."""
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return BernoulliCorruption(float(value))
    try:
        rate, *rest = value
    except (TypeError, ValueError):
        raise ValueError(
            f"corrupt value must be rate or (rate[, effect[, evade_crc]]), "
            f"got {value!r}"
        ) from None
    effect = rest[0] if len(rest) >= 1 else "bitflip"
    evade_crc = float(rest[1]) if len(rest) >= 2 else 0.0
    if len(rest) > 2 or effect not in CORRUPTION_EFFECTS:
        raise ValueError(f"bad corrupt value {value!r}")
    return BernoulliCorruption(float(rate), effect=effect, evade_crc=evade_crc)


def _make_ge_corruption(value: Any) -> GilbertElliottCorruption:
    """Build the ``corrupt_ge`` event's model; raises ValueError on junk."""
    try:
        p_gb, p_bg, corrupt_bad, *rest = value
    except (TypeError, ValueError):
        raise ValueError(
            f"corrupt_ge value must be (p_gb, p_bg, corrupt_bad"
            f"[, effect[, evade_crc]]), got {value!r}"
        ) from None
    effect = rest[0] if len(rest) >= 1 else "bitflip"
    evade_crc = float(rest[1]) if len(rest) >= 2 else 0.0
    if len(rest) > 2 or effect not in CORRUPTION_EFFECTS:
        raise ValueError(f"bad corrupt_ge value {value!r}")
    return GilbertElliottCorruption(
        float(p_gb),
        float(p_bg),
        corrupt_bad=float(corrupt_bad),
        effect=effect,
        evade_crc=evade_crc,
    )


@dataclass(frozen=True)
class FaultEvent:
    """One timeline entry: mutate ``path`` at simulated ``time``."""

    time: float
    kind: str
    path: int
    value: Any = None
    direction: str = "both"  # "forward", "reverse" or "both"

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"event time must be non-negative, got {self.time}")
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.path < 0:
            raise ValueError(f"path index must be non-negative, got {self.path}")
        if self.direction not in ("forward", "reverse", "both"):
            raise ValueError(f"unknown direction {self.direction!r}")
        if self.kind == "handover":
            try:
                to_path, break_s = self.value
            except (TypeError, ValueError):
                raise ValueError(
                    "handover value must be a (to_path, break_s) pair, "
                    f"got {self.value!r}"
                ) from None
            if int(to_path) < 0 or float(break_s) < 0:
                raise ValueError(
                    f"handover needs to_path >= 0 and break_s >= 0, got {self.value!r}"
                )
        elif self.kind in ("path_down", "path_up") and self.value is not None:
            raise ValueError(f"{self.kind} takes no value, got {self.value!r}")
        elif self.kind in ("crash_sender", "crash_receiver") and self.value is not None:
            raise ValueError(f"{self.kind} takes no value, got {self.value!r}")
        elif self.kind == "restart" and self.value not in (None, "sender", "receiver"):
            raise ValueError(
                f"restart value must be None, 'sender' or 'receiver', "
                f"got {self.value!r}"
            )
        elif self.kind == "corrupt" and self.value is not None:
            _make_bernoulli_corruption(self.value)  # validates, result unused
        elif self.kind == "corrupt_ge" and self.value is not None:
            _make_ge_corruption(self.value)  # validates, result unused
        elif self.kind == "trace" and self.value is not None:
            from repro.traces.generators import resolve_trace

            resolve_trace(self.value)  # validates (and surfaces CSV errors early)
        elif self.kind == "bandwidth":
            # Caught here, at scenario-build time, instead of deep inside
            # the event loop where a bad factor would either explode or
            # silently produce nonsense serialisation times (NaN/inf).
            factor = float(self.value)
            if not math.isfinite(factor) or factor <= 0:
                raise ValueError(
                    f"bandwidth factor must be finite and positive, "
                    f"got {self.value!r}"
                )
        elif self.kind == "delay":
            factor = float(self.value)
            if not math.isfinite(factor) or factor < 0:
                raise ValueError(
                    f"delay factor must be finite and non-negative, "
                    f"got {self.value!r}"
                )
        elif self.kind == "loss" and self.value is not None:
            rate = float(self.value)
            if not 0.0 <= rate < 1.0:
                raise ValueError(f"loss rate must be in [0, 1), got {self.value!r}")
        elif self.kind == "queue" and self.value is not None:
            if int(self.value) < 1:
                raise ValueError(
                    f"queue capacity must be >= 1, got {self.value!r}"
                )


class FaultScenario:
    """A named, sorted fault timeline over an ``n_paths``-path topology."""

    def __init__(
        self,
        name: str,
        events: Sequence[FaultEvent],
        n_paths: int = 2,
        active_paths: Optional[Sequence[int]] = None,
    ):
        if n_paths < 1:
            raise ValueError("n_paths must be >= 1")
        for event in events:
            if event.path >= n_paths:
                raise ValueError(
                    f"event targets path {event.path} but scenario has "
                    f"{n_paths} paths"
                )
            if event.kind == "handover" and int(event.value[0]) >= n_paths:
                raise ValueError(
                    f"handover targets path {event.value[0]} but scenario "
                    f"has {n_paths} paths"
                )
        if active_paths is None:
            self.active_paths: Tuple[int, ...] = tuple(range(n_paths))
        else:
            self.active_paths = tuple(sorted(set(active_paths)))
            if not self.active_paths or any(
                p < 0 or p >= n_paths for p in self.active_paths
            ):
                raise ValueError(
                    f"active_paths must be a non-empty subset of "
                    f"0..{n_paths - 1}, got {active_paths!r}"
                )
        self.name = name
        self.n_paths = n_paths
        # Stable sort: simultaneous events apply in listed order.
        self.events: Tuple[FaultEvent, ...] = tuple(
            sorted(events, key=lambda event: event.time)
        )

    @property
    def fault_start(self) -> float:
        """When the first fault hits (∞ for an empty scenario)."""
        return self.events[0].time if self.events else float("inf")

    @property
    def heal_time(self) -> float:
        """When the last event has applied and the network is clean again."""
        return self.events[-1].time if self.events else 0.0

    @property
    def has_churn(self) -> bool:
        """Whether any event manages subflow lifecycle (needs a handler)."""
        return any(event.kind in CHURN_KINDS for event in self.events)

    @property
    def has_corruption(self) -> bool:
        """Whether any event installs a corruption model (routes the
        scenario to :func:`repro.faults.corruption.run_corruption`)."""
        return any(event.kind in CORRUPTION_KINDS for event in self.events)

    @property
    def has_endpoint_faults(self) -> bool:
        """Whether any event crashes/restarts an endpoint (needs an
        endpoints handler; routes the scenario to
        :func:`repro.recovery.harness.run_recovery`)."""
        return any(event.kind in CRASH_KINDS for event in self.events)

    @property
    def has_trace(self) -> bool:
        """Whether any event replays a channel trace (routes the scenario
        to :func:`repro.traces.harness.run_traces`, whose invariants cover
        byte-identity and bounded memory under bandwidth collapse)."""
        return any(event.kind in TRACE_KINDS for event in self.events)

    @property
    def settle_time(self) -> float:
        """When the last lifecycle change has landed.

        Same as :attr:`heal_time` except that a ``handover`` only settles
        once its blackout gap has elapsed and the target path is up.
        """
        settle = 0.0
        for event in self.events:
            end = event.time
            if event.kind == "handover":
                end += float(event.value[1])
            settle = max(settle, end)
        return settle

    def apply(
        self,
        sim: Simulator,
        paths: Sequence[Path],
        trace: Optional[TraceBus] = None,
        lifecycle=None,
        endpoints=None,
    ) -> "FaultInjector":
        """Arm the timeline against a topology; returns the injector."""
        return FaultInjector(
            sim, paths, self, trace=trace, lifecycle=lifecycle, endpoints=endpoints
        )

    # ------------------------------------------------------------------
    # Constructors.
    # ------------------------------------------------------------------
    @classmethod
    def named(cls, name: str) -> "FaultScenario":
        """Build one of the preset scenarios (:data:`SCENARIOS` link
        faults, :data:`MOBILITY_SCENARIOS` subflow churn,
        :data:`CORRUPTION_SCENARIOS` data corruption,
        :data:`RECOVERY_SCENARIOS` endpoint crashes or
        :data:`TRACE_SCENARIOS` replayed channel dynamics)."""
        factory = (
            SCENARIOS.get(name)
            or MOBILITY_SCENARIOS.get(name)
            or CORRUPTION_SCENARIOS.get(name)
            or RECOVERY_SCENARIOS.get(name)
            or TRACE_SCENARIOS.get(name)
        )
        if factory is None:
            known = ", ".join(
                sorted(
                    {
                        **SCENARIOS,
                        **MOBILITY_SCENARIOS,
                        **CORRUPTION_SCENARIOS,
                        **RECOVERY_SCENARIOS,
                        **TRACE_SCENARIOS,
                    }
                )
            )
            raise ValueError(f"unknown scenario {name!r} (known: {known})") from None
        return factory()

    @classmethod
    def random(
        cls,
        seed: int,
        n_paths: int = 2,
        fault_window: Tuple[float, float] = (3.0, 14.0),
        heal_time: float = 18.0,
        min_faults: int = 3,
        max_faults: int = 6,
    ) -> "FaultScenario":
        """A seeded random fault sequence, fully healed by ``heal_time``.

        Faults start inside ``fault_window`` and each clears no later than
        ``heal_time``; overlapping faults of the same kind are legal (the
        injector's last write wins) and the final state is always the
        baseline, because every fault's restore event is its latest event.
        """
        if not fault_window[0] < fault_window[1] <= heal_time:
            raise ValueError("require fault_window[0] < fault_window[1] <= heal_time")
        rng = RngStreams(seed).get("faults:timeline")
        events: List[FaultEvent] = []
        for __ in range(rng.randint(min_faults, max_faults)):
            kind = rng.choice(
                ("down", "bandwidth", "delay", "loss", "reorder", "queue")
            )
            path = rng.randrange(n_paths)
            start = rng.uniform(*fault_window)
            end = min(start + rng.uniform(0.5, 4.0), heal_time)
            if kind == "down":
                events.append(FaultEvent(start, "down", path))
                events.append(FaultEvent(end, "up", path))
            elif kind == "bandwidth":
                events.append(
                    FaultEvent(start, "bandwidth", path, rng.uniform(0.02, 0.3))
                )
                events.append(FaultEvent(end, "bandwidth", path, 1.0))
            elif kind == "delay":
                events.append(FaultEvent(start, "delay", path, rng.uniform(3.0, 10.0)))
                events.append(FaultEvent(end, "delay", path, 1.0))
            elif kind == "loss":
                events.append(FaultEvent(start, "loss", path, rng.uniform(0.2, 0.9)))
                events.append(FaultEvent(end, "loss", path, None))
            elif kind == "reorder":
                events.append(
                    FaultEvent(
                        start,
                        "reorder",
                        path,
                        (rng.uniform(0.1, 0.4), rng.uniform(0.05, 0.2)),
                    )
                )
                events.append(FaultEvent(end, "reorder", path, None))
            else:  # queue
                events.append(FaultEvent(start, "queue", path, rng.randint(1, 3)))
                events.append(FaultEvent(end, "queue", path, None))
        return cls(f"random:{seed}", events, n_paths=n_paths)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FaultScenario {self.name!r} events={len(self.events)} "
            f"heal={self.heal_time:.1f}s>"
        )


@dataclass
class _LinkBaseline:
    """Pre-fault settings of one link, for restore events."""

    bandwidth_bps: float
    delay_s: float
    loss_model: Any
    reordering_model: Any
    queue_capacity: int
    corruption_model: Any


class FaultInjector:
    """Replays a :class:`FaultScenario` against live :class:`Path` objects.

    Baselines are captured at arm time, so restore events (``factor=1.0``,
    ``value=None``) return each link to exactly its pre-fault settings no
    matter how many faults stacked on it in between.

    Lifecycle events (:data:`CHURN_KINDS`) are not link mutations — they
    are delegated to ``lifecycle``, an object with ``path_down(index)``,
    ``path_up(index)`` and ``handover(from_path, to_path, break_s)``
    methods (see :class:`repro.faults.churn.PathChurnController`). Arming
    a churn scenario without one is an error. Likewise endpoint events
    (:data:`CRASH_KINDS`) delegate to ``endpoints``, an object with
    ``crash_sender()``, ``crash_receiver()`` and ``restart(which)``
    methods (see :class:`repro.recovery.manager.RecoveryManager`).

    Overlap diagnosis: two non-restoring faults of the same kind on the
    same link apply last-writer-wins by design — legal, but a frequent
    scenario-authoring mistake. The injector records each such pair in
    :attr:`overlaps` and emits a ``fault.overlap`` trace record so the
    timeline shows where a fault silently clobbered an earlier one.
    """

    def __init__(
        self,
        sim: Simulator,
        paths: Sequence[Path],
        scenario: FaultScenario,
        trace: Optional[TraceBus] = None,
        lifecycle=None,
        endpoints=None,
    ):
        if len(paths) < scenario.n_paths:
            raise ValueError(
                f"scenario {scenario.name!r} needs {scenario.n_paths} paths, "
                f"got {len(paths)}"
            )
        if scenario.has_churn and lifecycle is None:
            raise ValueError(
                f"scenario {scenario.name!r} contains subflow-lifecycle "
                "events; arm it with a lifecycle handler "
                "(repro.faults.churn.PathChurnController)"
            )
        if scenario.has_endpoint_faults and endpoints is None:
            raise ValueError(
                f"scenario {scenario.name!r} contains endpoint crash/restart "
                "events; arm it with an endpoints handler "
                "(repro.recovery.manager.RecoveryManager)"
            )
        self.sim = sim
        self.paths = list(paths)
        self.scenario = scenario
        self.trace = trace
        self.lifecycle = lifecycle
        self.endpoints = endpoints
        self.applied: List[FaultEvent] = []
        self.overlaps: List[Tuple[FaultEvent, FaultEvent]] = []
        self._active_faults: Dict[Tuple[int, str], FaultEvent] = {}
        # Live trace players keyed by (path, direction); a second trace
        # event on the same key stops the old replay first.
        self._players: Dict[Tuple[int, str], Any] = {}
        self._baselines: Dict[int, _LinkBaseline] = {}
        for path in self.paths:
            for link in (*path.forward_links, *path.reverse_links):
                self._baselines[id(link)] = _LinkBaseline(
                    bandwidth_bps=link.bandwidth_bps,
                    delay_s=link.delay_s,
                    loss_model=link.loss_model,
                    reordering_model=link.reordering_model,
                    queue_capacity=link.queue.capacity,
                    corruption_model=link.corruption_model,
                )
        for event in scenario.events:
            sim.schedule_at(event.time, self._apply, event)

    def _links_of(self, event: FaultEvent):
        path = self.paths[event.path]
        if event.direction == "forward":
            return path.forward_links
        if event.direction == "reverse":
            return path.reverse_links
        return (*path.forward_links, *path.reverse_links)

    @staticmethod
    def _is_restore(event: FaultEvent) -> bool:
        """Whether the event returns its link setting to baseline."""
        if event.kind == "up":
            return True
        if event.kind in ("bandwidth", "delay"):
            return float(event.value) == 1.0
        if event.kind in ("loss", "reorder", "queue", "corrupt", "corrupt_ge", "trace"):
            return event.value is None
        return False  # "down" always degrades

    def _note_overlap(self, event: FaultEvent) -> None:
        """Record last-writer-wins collisions of same-kind link faults."""
        if event.kind in ("down", "up"):
            base_kind = "down"
        elif event.kind in CORRUPTION_KINDS:
            # Both kinds write the same link slot (corruption_model), so
            # cross-kind clobbering is still an overlap worth diagnosing.
            base_kind = "corrupt"
        else:
            base_kind = event.kind
        restoring = self._is_restore(event)
        clobbered: List[FaultEvent] = []
        for link in self._links_of(event):
            key = (id(link), base_kind)
            if restoring:
                self._active_faults.pop(key, None)
                continue
            previous = self._active_faults.get(key)
            if previous is not None and previous is not event:
                if previous not in clobbered:
                    clobbered.append(previous)
            self._active_faults[key] = event
        for previous in clobbered:
            self.overlaps.append((previous, event))
            if self.trace is not None:
                self.trace.emit(
                    self.sim.now,
                    "fault.overlap",
                    fault=event.kind,
                    path=event.path,
                    value=event.value,
                    clobbered_time=previous.time,
                    clobbered_value=previous.value,
                )

    def stop_players(self, restore: bool = True) -> None:
        """Stop any live trace replays (harness cleanup for open-ended
        runs whose scenario carries no explicit restore event)."""
        for player in self._players.values():
            player.stop(restore=restore)
        self._players.clear()

    def _apply_trace(self, event: FaultEvent) -> None:
        self._note_overlap(event)
        key = (event.path, event.direction)
        existing = self._players.pop(key, None)
        if existing is not None:
            existing.stop(restore=True)
        if event.value is not None:
            from repro.traces.generators import resolve_trace
            from repro.traces.player import TracePlayer

            player = TracePlayer(
                self.sim,
                self._links_of(event),
                resolve_trace(event.value),
                bus=self.trace,
            )
            player.start()
            self._players[key] = player
        self.applied.append(event)
        if self.trace is not None:
            self.trace.emit(
                self.sim.now,
                "fault.apply",
                fault=event.kind,
                path=event.path,
                value=getattr(event.value, "name", event.value),
            )

    def _apply(self, event: FaultEvent) -> None:
        if event.kind in TRACE_KINDS:
            self._apply_trace(event)
            return
        if event.kind in CRASH_KINDS:
            if event.kind == "crash_sender":
                self.endpoints.crash_sender()
            elif event.kind == "crash_receiver":
                self.endpoints.crash_receiver()
            else:
                self.endpoints.restart(event.value)
            self.applied.append(event)
            if self.trace is not None:
                self.trace.emit(
                    self.sim.now,
                    "fault.apply",
                    fault=event.kind,
                    path=event.path,
                    value=event.value,
                )
            return
        if event.kind in CHURN_KINDS:
            if event.kind == "path_down":
                self.lifecycle.path_down(event.path)
            elif event.kind == "path_up":
                self.lifecycle.path_up(event.path)
            else:
                to_path, break_s = event.value
                self.lifecycle.handover(event.path, int(to_path), float(break_s))
            self.applied.append(event)
            if self.trace is not None:
                self.trace.emit(
                    self.sim.now,
                    "fault.apply",
                    fault=event.kind,
                    path=event.path,
                    value=event.value,
                )
            return
        self._note_overlap(event)
        for link in self._links_of(event):
            baseline = self._baselines[id(link)]
            if event.kind == "down":
                link.set_down(True)
            elif event.kind == "up":
                link.set_down(False)
            elif event.kind == "bandwidth":
                link.set_bandwidth(baseline.bandwidth_bps * float(event.value))
            elif event.kind == "delay":
                link.set_delay(baseline.delay_s * float(event.value))
            elif event.kind == "loss":
                if event.value is None:
                    link.set_loss_model(baseline.loss_model)
                else:
                    link.set_loss_model(BernoulliLoss(float(event.value)))
            elif event.kind == "reorder":
                if event.value is None:
                    link.set_reordering_model(baseline.reordering_model)
                else:
                    probability, max_extra_s = event.value
                    link.set_reordering_model(
                        UniformReordering(probability, max_extra_s=max_extra_s)
                    )
            elif event.kind == "corrupt":
                if event.value is None:
                    link.set_corruption_model(baseline.corruption_model)
                else:
                    # Fresh model per link: each link's realisation draws
                    # from its own rng stream.
                    link.set_corruption_model(
                        _make_bernoulli_corruption(event.value)
                    )
            elif event.kind == "corrupt_ge":
                if event.value is None:
                    link.set_corruption_model(baseline.corruption_model)
                else:
                    # Per-link instance: the GE chain is stateful.
                    link.set_corruption_model(_make_ge_corruption(event.value))
            else:  # queue
                capacity = (
                    baseline.queue_capacity if event.value is None else int(event.value)
                )
                link.queue.capacity = capacity
        self.applied.append(event)
        if self.trace is not None:
            self.trace.emit(
                self.sim.now,
                "fault.apply",
                fault=event.kind,
                path=event.path,
                value=event.value,
            )


# ----------------------------------------------------------------------
# Preset scenarios. Faults hit path 1 during [8, 18) s (path 0 stays
# clean), leaving [0, 8) as the pre-fault baseline window and everything
# after 18 s for recovery measurement.
# ----------------------------------------------------------------------
def _link_flap() -> FaultScenario:
    events = []
    for start, end in ((8.0, 10.0), (12.0, 14.0), (16.0, 18.0)):
        events.append(FaultEvent(start, "down", 1))
        events.append(FaultEvent(end, "up", 1))
    return FaultScenario("link_flap", events)


def _path_death() -> FaultScenario:
    return FaultScenario(
        "path_death",
        [FaultEvent(8.0, "down", 1), FaultEvent(18.0, "up", 1)],
    )


def _bandwidth_collapse() -> FaultScenario:
    return FaultScenario(
        "bandwidth_collapse",
        [FaultEvent(8.0, "bandwidth", 1, 0.05), FaultEvent(18.0, "bandwidth", 1, 1.0)],
    )


def _delay_spike() -> FaultScenario:
    return FaultScenario(
        "delay_spike",
        [FaultEvent(8.0, "delay", 1, 8.0), FaultEvent(18.0, "delay", 1, 1.0)],
    )


def _loss_burst() -> FaultScenario:
    return FaultScenario(
        "loss_burst",
        [FaultEvent(8.0, "loss", 1, 0.5), FaultEvent(18.0, "loss", 1, None)],
    )


def _reorder_storm() -> FaultScenario:
    return FaultScenario(
        "reorder_storm",
        [
            FaultEvent(8.0, "reorder", 1, (0.3, 0.15)),
            FaultEvent(18.0, "reorder", 1, None),
        ],
    )


def _queue_saturation() -> FaultScenario:
    return FaultScenario(
        "queue_saturation",
        [FaultEvent(8.0, "queue", 1, 2), FaultEvent(18.0, "queue", 1, None)],
    )


SCENARIOS: Dict[str, Callable[[], FaultScenario]] = {
    "link_flap": _link_flap,
    "path_death": _path_death,
    "bandwidth_collapse": _bandwidth_collapse,
    "delay_spike": _delay_spike,
    "loss_burst": _loss_burst,
    "reorder_storm": _reorder_storm,
    "queue_saturation": _queue_saturation,
}


# ----------------------------------------------------------------------
# Mobility presets: subflow-lifecycle timelines. Kept in their own
# registry because they cannot run through the plain link-fault harness
# (run_chaos) — they need a lifecycle handler and the churn invariants of
# repro.faults.churn.run_churn.
# ----------------------------------------------------------------------
def _wifi_to_lte_handover() -> FaultScenario:
    # Path 0 is the "WiFi" association the transfer starts on; path 1
    # ("LTE") exists but is unused until the handover at t=8 s, which
    # breaks connectivity for 300 ms while the new attachment comes up.
    return FaultScenario(
        "wifi_to_lte_handover",
        [FaultEvent(8.0, "handover", 0, (1, 0.3))],
        n_paths=2,
        active_paths=(0,),
    )


def _flaky_path_churn() -> FaultScenario:
    # Path 1 flaps at the subflow level: repeatedly torn down and re-added
    # (each re-add pays a fresh join handshake), path 0 stays clean.
    events = []
    for down, up in ((8.0, 10.0), (12.0, 14.0), (16.0, 18.0)):
        events.append(FaultEvent(down, "path_down", 1))
        events.append(FaultEvent(up, "path_up", 1))
    return FaultScenario("flaky_path_churn", events)


def _single_path_degradation() -> FaultScenario:
    # Path 1 is removed permanently at t=8 s; the transfer must finish on
    # the surviving path alone.
    return FaultScenario(
        "single_path_degradation", [FaultEvent(8.0, "path_down", 1)]
    )


MOBILITY_SCENARIOS: Dict[str, Callable[[], FaultScenario]] = {
    "wifi_to_lte_handover": _wifi_to_lte_handover,
    "flaky_path_churn": _flaky_path_churn,
    "single_path_degradation": _single_path_degradation,
}


# ----------------------------------------------------------------------
# Corruption presets: data-integrity timelines, same shape as the link
# presets (path 1 corrupts during [8, 18) s, path 0 stays clean). Their
# own registry because the plain harness has no byte-level delivery
# verification — they route to repro.faults.corruption.run_corruption.
# ----------------------------------------------------------------------
def _bit_rot() -> FaultScenario:
    # Steady 5 % bit-flip corruption; one flip in five re-seals the link
    # CRC (a collision), exercising the end-to-end DSS / block-CRC /
    # GF(2)-inconsistency defenses, not just verify-and-discard.
    return FaultScenario(
        "bit_rot",
        [
            FaultEvent(8.0, "corrupt", 1, (0.05, "bitflip", 0.2)),
            FaultEvent(18.0, "corrupt", 1, None),
        ],
    )


def _corruption_burst() -> FaultScenario:
    # Gilbert–Elliott-gated bursts: ~4-packet bad states corrupting half
    # of what they touch, the middlebox-goes-insane failure mode.
    return FaultScenario(
        "corruption_burst",
        [
            FaultEvent(8.0, "corrupt_ge", 1, (0.02, 0.25, 0.5, "bitflip", 0.2)),
            FaultEvent(18.0, "corrupt_ge", 1, None),
        ],
    )


def _truncation_storm() -> FaultScenario:
    # 10 % of packets lose their tail — always CRC-detectable, so this
    # stresses the pure corruption-as-loss path at a higher rate.
    return FaultScenario(
        "truncation_storm",
        [
            FaultEvent(8.0, "corrupt", 1, (0.1, "truncate")),
            FaultEvent(18.0, "corrupt", 1, None),
        ],
    )


def _duplicate_mutation() -> FaultScenario:
    # Duplication-with-mutation: the clean packet still arrives, plus a
    # mutated twin — exactly-once delivery must hold against both.
    return FaultScenario(
        "duplicate_mutation",
        [
            FaultEvent(8.0, "corrupt", 1, (0.05, "duplicate", 0.2)),
            FaultEvent(18.0, "corrupt", 1, None),
        ],
    )


CORRUPTION_SCENARIOS: Dict[str, Callable[[], FaultScenario]] = {
    "bit_rot": _bit_rot,
    "corruption_burst": _corruption_burst,
    "truncation_storm": _truncation_storm,
    "duplicate_mutation": _duplicate_mutation,
}


# ----------------------------------------------------------------------
# Recovery presets: endpoint crash/restart timelines, same anchor shape
# as the link presets (first crash at t=8 s, leaving [0, 8) as a clean
# baseline window). Their own registry because they need an endpoints
# handler and the checkpoint/reconnect machinery of
# repro.recovery.harness.run_recovery.
# ----------------------------------------------------------------------
def _receiver_crash() -> FaultScenario:
    # The receiver dies at t=8 s and its host comes back at t=11 s. The
    # sender must notice the half-open connection (RTOs into the void),
    # then reconnect and resume — FMTCP from the delivered-block frontier
    # alone, MPTCP from its snapshotted chunk map.
    return FaultScenario(
        "receiver_crash",
        [FaultEvent(8.0, "crash_receiver", 0), FaultEvent(11.0, "restart", 0)],
    )


def _sender_crash() -> FaultScenario:
    # The sender dies at t=8 s (everything in flight and all pending
    # blocks are lost; only the periodic checkpoint survives) and comes
    # back at t=11 s. Stream bytes between the checkpoint and the
    # receiver's frontier are re-sent and deduplicated at the receiver.
    return FaultScenario(
        "sender_crash",
        [FaultEvent(8.0, "crash_sender", 0), FaultEvent(11.0, "restart", 0)],
    )


def _crash_storm() -> FaultScenario:
    # Alternating endpoint crashes: three outages back to back, each a
    # fresh recovery epoch with its own reconnect handshake and RNG
    # streams. Exercises repeated checkpoint/restore cycling on both
    # sides of the connection.
    events = []
    for crash, restart, kind in (
        (6.0, 8.0, "crash_receiver"),
        (11.0, 13.0, "crash_sender"),
        (16.0, 18.0, "crash_receiver"),
    ):
        events.append(FaultEvent(crash, kind, 0))
        events.append(FaultEvent(restart, "restart", 0))
    return FaultScenario("crash_storm", events)


def _crash_during_handover() -> FaultScenario:
    # A WiFi→LTE handover at t=8 s (300 ms blackout) immediately followed
    # by a receiver crash at t=8.5 s — the crash lands just after the new
    # attachment comes up, so recovery must rebuild on the post-handover
    # path set, not the one the transfer started with.
    return FaultScenario(
        "crash_during_handover",
        [
            FaultEvent(8.0, "handover", 0, (1, 0.3)),
            FaultEvent(8.5, "crash_receiver", 0),
            FaultEvent(10.5, "restart", 0),
        ],
        n_paths=2,
        active_paths=(0,),
    )


def _reconnect_exhaustion() -> FaultScenario:
    # The receiver crashes and never comes back: every reconnection
    # attempt fails until the retry budget runs out and the recovery
    # manager escalates through the watchdog's clean-fail rung. The
    # harness asserts the *failure* is clean — diagnosis, no deadlock,
    # drained event queue.
    return FaultScenario(
        "reconnect_exhaustion", [FaultEvent(8.0, "crash_receiver", 0)]
    )


RECOVERY_SCENARIOS: Dict[str, Callable[[], FaultScenario]] = {
    "receiver_crash": _receiver_crash,
    "sender_crash": _sender_crash,
    "crash_storm": _crash_storm,
    "crash_during_handover": _crash_during_handover,
    "reconnect_exhaustion": _reconnect_exhaustion,
}


# ----------------------------------------------------------------------
# Trace presets: replayed channel dynamics. The trace rides path 1
# during [2, 18) s (path 0 stays clean) — traces carry *absolute*
# bandwidth/delay/loss regimes, not multiplicative factors, so the
# window starts early to leave the 16 s generator defaults room before
# the explicit restore at t=18 s. Their own registry because traces need
# byte-level delivery verification plus the flow-control/watchdog
# interplay checks of repro.traces.harness.run_traces.
# ----------------------------------------------------------------------
def trace_replay_scenario(
    spec,
    name: Optional[str] = None,
    path: int = 1,
    start: float = 2.0,
    stop: float = 18.0,
) -> FaultScenario:
    """Wrap any trace spec (see :func:`repro.traces.generators.resolve_trace`)
    in the canonical one-path replay window used by the presets."""
    if name is None:
        name = f"trace:{getattr(spec, 'name', spec)}"
    return FaultScenario(
        name,
        [FaultEvent(start, "trace", path, spec), FaultEvent(stop, "trace", path, None)],
    )


def _gprs_bursty() -> FaultScenario:
    # GPRS-like slow bursty link: two-state fades between ~170 kb/s and
    # ~30 kb/s with bursty loss — the setting where fountain coding's
    # insensitivity to *which* packets die is sharpest.
    return trace_replay_scenario("gprs:1", name="gprs_bursty")


def _leo_handover() -> FaultScenario:
    # LEO-satellite pass: one-way delay sawtooths upward then snaps back
    # through a ~500 ms outage window at each handover.
    return trace_replay_scenario("leo:1", name="leo_handover")


def _dc_incast() -> FaultScenario:
    # Datacenter incast: periodic synchronized bursts crush the path's
    # bandwidth and spike loss for a few hundred ms at a time.
    return trace_replay_scenario("incast:1", name="dc_incast")


def _cellular_replay() -> FaultScenario:
    # Replays the bundled cellular drive-test CSV asset, exercising the
    # package-data parse path end to end.
    return trace_replay_scenario("cellular_drive", name="cellular_replay")


def _wifi_replay() -> FaultScenario:
    # Replays the bundled WiFi walk-test CSV asset (MCS rate ladder).
    return trace_replay_scenario("wifi_walk", name="wifi_replay")


TRACE_SCENARIOS: Dict[str, Callable[[], FaultScenario]] = {
    "gprs_bursty": _gprs_bursty,
    "leo_handover": _leo_handover,
    "dc_incast": _dc_incast,
    "cellular_replay": _cellular_replay,
    "wifi_replay": _wifi_replay,
}


def resolve_scenario(spec: str) -> FaultScenario:
    """Turn a CLI spec — a preset name, ``random:SEED`` or ``trace:PATH``
    (a trace CSV file replayed in the canonical window) — into a scenario."""
    if spec.startswith("random:"):
        return FaultScenario.random(int(spec.split(":", 1)[1]))
    if spec.startswith("trace:"):
        return trace_replay_scenario(spec.split(":", 1)[1])
    return FaultScenario.named(spec)
