"""Fixed-rate FEC multipath transport (the Section III-B strawman).

The paper's quantitative argument for rateless coding (Eqs. 3-7) is made
against *fixed-rate* erasure coding: encode each block into a
predetermined number of symbols n = ⌈k̂/(1−p̂)⌉ using an estimated loss
rate p̂, and retransmit specific lost symbols — on the same path — when
the estimate proves optimistic. MPLOT (related work [16]) is the
archetype. This package implements that transport over the same subflow
machinery so the comparison is protocol-vs-protocol, not just
formula-vs-formula.
"""

from repro.fixedrate.connection import FixedRateConfig, FixedRateConnection

__all__ = ["FixedRateConfig", "FixedRateConnection"]
