"""Fixed-rate FEC multipath connection.

Each block of k̂ symbols is encoded *up front* into exactly
n = ⌈k̂/(1−p̂)⌉ distinct coded symbols (an MDS-style code: any k̂ of the n
recover the block — Reed-Solomon semantics, which flatter fixed-rate
coding relative to the binary fountain). Symbols are striped over
subflows on demand; a lost symbol is retransmitted *on the subflow that
first carried it* (the same-path constraint the paper describes for
fixed-rate schemes); and when all n symbols are exhausted before the
block decodes — the Eq. (6) event of an underestimated loss rate — the
sender must fall back to retransmitting, paying the stall the Chernoff
bound predicts.

Emits the shared trace vocabulary (``conn.delivered`` /
``conn.block_done``) so the metric stack and harness apply unchanged.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.net.topology import Path
from repro.sim.engine import Simulator
from repro.sim.trace import TraceBus
from repro.tcp.congestion import RenoController
from repro.tcp.rto import RtoEstimator
from repro.tcp.subflow import Subflow, SubflowOwner, SubflowPacketInfo, SubflowSink


@dataclass
class FixedRateConfig:
    """Tunables; geometry defaults match FMTCP's for fair comparison."""

    symbols_per_block: int = 256
    symbol_size: int = 32
    symbol_header_bytes: int = 2
    mss: int = 1400
    # p̂: the loss estimate baked into the code rate (Eq. 4's p1).
    estimated_loss: float = 0.05
    # "gbn": a loss retransmits the lost symbols AND re-sends everything
    # outstanding behind them on that subflow (the Go-Back-N waste the
    # paper's Eq. (6) argument assumes). "selective": retransmit only the
    # lost symbols (the selective-repeat variant the paper notes is
    # "rarely used by practical systems").
    repair: str = "gbn"
    max_pending_blocks: int = 16
    initial_cwnd: float = 2.0
    dup_ack_threshold: int = 3
    min_rto: float = 0.2

    def __post_init__(self) -> None:
        if not 0.0 <= self.estimated_loss < 1.0:
            raise ValueError("estimated_loss must be in [0, 1)")
        if self.symbols_per_block < 1 or self.symbol_size < 1:
            raise ValueError("block geometry must be positive")
        if self.repair not in ("gbn", "selective"):
            raise ValueError(f"unknown repair mode {self.repair!r}")

    @property
    def block_bytes(self) -> int:
        return self.symbols_per_block * self.symbol_size

    @property
    def symbol_wire_size(self) -> int:
        return self.symbol_size + self.symbol_header_bytes

    @property
    def symbols_per_packet(self) -> int:
        return max(1, self.mss // self.symbol_wire_size)

    @property
    def code_symbols(self) -> int:
        """n = ⌈k̂/(1−p̂)⌉: the fixed number of coded symbols per block."""
        return int(math.ceil(self.symbols_per_block / (1.0 - self.estimated_loss)))


class _FixedBlock:
    """Sender-side state of one fixed-rate block."""

    __slots__ = (
        "block_id", "k", "n", "data_bytes", "unsent", "owner_of",
        "first_tx_at", "decoded",
    )

    def __init__(self, block_id: int, k: int, n: int, data_bytes: int):
        self.block_id = block_id
        self.k = k
        self.n = n
        self.data_bytes = data_bytes
        self.unsent: Deque[int] = deque(range(n))  # symbol ids never sent
        self.owner_of: Dict[int, int] = {}  # symbol id -> subflow that carries it
        self.first_tx_at: Optional[float] = None
        self.decoded = False


class _FixedGroup:
    """Wire unit: specific symbol ids of one block."""

    __slots__ = ("block_id", "symbol_ids", "block_k", "block_bytes")

    def __init__(self, block_id: int, symbol_ids: Tuple[int, ...], block_k: int,
                 block_bytes: int):
        self.block_id = block_id
        self.symbol_ids = symbol_ids
        self.block_k = block_k
        self.block_bytes = block_bytes


class _FixedFeedback:
    __slots__ = ("received_counts", "decoded_in_order", "decoded_out_of_order")

    def __init__(self, received_counts, decoded_in_order, decoded_out_of_order):
        self.received_counts = received_counts
        self.decoded_in_order = decoded_in_order
        self.decoded_out_of_order = decoded_out_of_order


class FixedRateConnection(SubflowOwner):
    """Sender + receiver pair of the fixed-rate FEC transport."""

    def __init__(
        self,
        sim: Simulator,
        paths: Sequence[Path],
        source,
        config: Optional[FixedRateConfig] = None,
        trace: Optional[TraceBus] = None,
        sink: Optional[Callable[[int], None]] = None,
    ):
        if not paths:
            raise ValueError("need at least one path")
        self.sim = sim
        self.config = config or FixedRateConfig()
        self.source = source
        self.trace = trace
        self.sink = sink

        self.subflows: List[Subflow] = []
        self._sinks: List[SubflowSink] = []
        for index, path in enumerate(paths):
            subflow = Subflow(
                sim=sim,
                path=path,
                owner=self,
                subflow_id=index,
                congestion=RenoController(initial_cwnd=self.config.initial_cwnd),
                rto=RtoEstimator(min_rto=self.config.min_rto),
                mss=self.config.mss,
                dup_ack_threshold=self.config.dup_ack_threshold,
                trace=trace,
            )
            self.subflows.append(subflow)
            self._sinks.append(
                SubflowSink(
                    sim=sim,
                    path=path,
                    subflow=subflow,
                    on_segment=self._receiver_on_segment,
                    feedback_provider=self._receiver_feedback,
                    trace=trace,
                )
            )

        # ---- sender state ----
        self._pending: List[_FixedBlock] = []
        self._next_block_id = 0
        self._retx_queues: Dict[int, Deque[Tuple[int, int]]] = {
            subflow.subflow_id: deque() for subflow in self.subflows
        }
        self._decoded_frontier_seen = 0
        self._decoded_out_of_order_seen: Set[int] = set()
        self.symbols_sent = 0
        self.symbols_retransmitted = 0
        self.retransmission_rounds = 0
        self.gbn_duplicates = 0

        # ---- receiver state ----
        self._received_ids: Dict[int, Set[int]] = {}
        self._block_meta: Dict[int, Tuple[int, int]] = {}  # id -> (k, bytes)
        self._decoded_waiting: Dict[int, int] = {}  # id -> bytes
        self._deliver_next = 0
        self._decode_frontier = 0
        self.delivered_bytes = 0
        self.blocks_decoded = 0

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def start(self) -> None:
        self.pump()

    def pump(self) -> None:
        for subflow in self.subflows:
            subflow.pump()

    def close(self) -> None:
        for subflow in self.subflows:
            subflow.close()
        for sink in self._sinks:
            sink.close()

    # ------------------------------------------------------------------
    # Sender side.
    # ------------------------------------------------------------------
    def _replenish(self) -> None:
        while len(self._pending) < self.config.max_pending_blocks:
            pulled: Union[int, bytes, None] = self.source.pull(self.config.block_bytes)
            if not pulled:
                return
            data_bytes = len(pulled) if isinstance(pulled, bytes) else int(pulled)
            k = max(1, min(
                -(-data_bytes // self.config.symbol_size),
                self.config.symbols_per_block,
            ))
            n = int(math.ceil(k / (1.0 - self.config.estimated_loss)))
            self._pending.append(
                _FixedBlock(self._next_block_id, k, n, data_bytes)
            )
            self._next_block_id += 1

    def _block_by_id(self, block_id: int) -> Optional[_FixedBlock]:
        for block in self._pending:
            if block.block_id == block_id:
                return block
        return None

    def next_payload(self, subflow: Subflow) -> Optional[Tuple[Any, int]]:
        budget = self.config.symbols_per_packet
        retx_queue = self._retx_queues[subflow.subflow_id]
        groups: Dict[int, List[int]] = {}
        taken = 0
        # Retransmissions first (same-subflow binding).
        while retx_queue and taken < budget:
            block_id, symbol_id = retx_queue.popleft()
            block = self._block_by_id(block_id)
            if block is None:
                continue  # decoded meanwhile
            groups.setdefault(block_id, []).append(symbol_id)
            self.symbols_retransmitted += 1
            taken += 1
        # Then fresh symbols from the earliest blocks with unsent budget.
        if taken < budget:
            self._replenish()
            for block in self._pending:
                while block.unsent and taken < budget:
                    symbol_id = block.unsent.popleft()
                    block.owner_of[symbol_id] = subflow.subflow_id
                    groups.setdefault(block.block_id, []).append(symbol_id)
                    taken += 1
                if taken >= budget:
                    break
        if not groups:
            return None
        wire_groups = []
        for block_id, symbol_ids in groups.items():
            block = self._block_by_id(block_id)
            if block is None:
                continue
            if block.first_tx_at is None:
                block.first_tx_at = self.sim.now
            wire_groups.append(
                _FixedGroup(block_id, tuple(symbol_ids), block.k, block.data_bytes)
            )
        self.symbols_sent += taken
        return wire_groups, taken * self.config.symbol_wire_size

    def on_payload_lost(self, subflow: Subflow, info: SubflowPacketInfo, reason: str) -> None:
        queue = self._retx_queues[subflow.subflow_id]
        self.retransmission_rounds += 1
        for group in info.payload:
            if self._block_by_id(group.block_id) is None:
                continue
            for symbol_id in group.symbol_ids:
                queue.append((group.block_id, symbol_id))
        if self.config.repair != "gbn":
            return
        # Go-Back-N: everything sent after the lost packet on this subflow
        # is re-sent too, even though most of it will arrive anyway — the
        # bandwidth waste Section III-B's analysis charges fixed-rate
        # coding with.
        for seq, payload in subflow.outstanding_payloads():
            if seq <= info.seq:
                continue
            for group in payload:
                if self._block_by_id(group.block_id) is None:
                    continue
                for symbol_id in group.symbol_ids:
                    queue.append((group.block_id, symbol_id))
                    self.gbn_duplicates += 1

    def on_ack_feedback(self, subflow: Subflow, feedback: _FixedFeedback) -> None:
        while self._decoded_frontier_seen < feedback.decoded_in_order:
            self._confirm_decoded(self._decoded_frontier_seen)
            self._decoded_frontier_seen += 1
        for block_id in feedback.decoded_out_of_order:
            if block_id not in self._decoded_out_of_order_seen:
                self._decoded_out_of_order_seen.add(block_id)
                self._confirm_decoded(block_id)
        self._decoded_out_of_order_seen = {
            block_id
            for block_id in self._decoded_out_of_order_seen
            if block_id >= self._decoded_frontier_seen
        }
        self.pump()

    def _confirm_decoded(self, block_id: int) -> None:
        block = self._block_by_id(block_id)
        if block is None:
            return
        block.decoded = True
        self._pending.remove(block)
        # Drop now-useless queued retransmissions of this block.
        for queue in self._retx_queues.values():
            remaining = [(b, s) for b, s in queue if b != block_id]
            queue.clear()
            queue.extend(remaining)
        if (
            self.trace is not None
            and block.first_tx_at is not None
            and self.trace.has_subscribers("conn.block_done")
        ):
            self.trace.emit(
                self.sim.now,
                "conn.block_done",
                block_id=block_id,
                delay=self.sim.now - block.first_tx_at,
            )

    # ------------------------------------------------------------------
    # Receiver side: MDS semantics — any k distinct ids decode the block.
    # ------------------------------------------------------------------
    def _receiver_on_segment(self, subflow_id: int, segment) -> None:
        for group in segment.payload:
            if self._is_decoded(group.block_id):
                continue
            ids = self._received_ids.setdefault(group.block_id, set())
            self._block_meta[group.block_id] = (group.block_k, group.block_bytes)
            ids.update(group.symbol_ids)
            if len(ids) >= group.block_k:
                self._finish_block(group.block_id)

    def _is_decoded(self, block_id: int) -> bool:
        return block_id < self._deliver_next or block_id in self._decoded_waiting

    def _finish_block(self, block_id: int) -> None:
        __, block_bytes = self._block_meta.pop(block_id)
        self._received_ids.pop(block_id, None)
        self._decoded_waiting[block_id] = block_bytes
        self.blocks_decoded += 1
        while self._decode_frontier in self._decoded_waiting or (
            self._decode_frontier < self._deliver_next
        ):
            self._decode_frontier += 1
        while self._deliver_next in self._decoded_waiting:
            delivered_bytes = self._decoded_waiting.pop(self._deliver_next)
            self.delivered_bytes += delivered_bytes
            if self.sink is not None:
                self.sink(self._deliver_next)
            if self.trace is not None and self.trace.has_subscribers("conn.delivered"):
                self.trace.emit(
                    self.sim.now,
                    "conn.delivered",
                    bytes=delivered_bytes,
                    block_id=self._deliver_next,
                )
            self._deliver_next += 1
        if self._decode_frontier < self._deliver_next:
            self._decode_frontier = self._deliver_next

    def _receiver_feedback(self, subflow_id: int, segment) -> _FixedFeedback:
        return _FixedFeedback(
            received_counts={
                block_id: len(ids) for block_id, ids in self._received_ids.items()
            },
            decoded_in_order=self._decode_frontier,
            decoded_out_of_order=tuple(
                block_id
                for block_id in self._decoded_waiting
                if block_id >= self._decode_frontier
            ),
        )

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    @property
    def delivered_blocks(self) -> int:
        return self._deliver_next

    def redundancy_ratio(self) -> float:
        needed = self.blocks_decoded * self.config.symbols_per_block
        if needed == 0:
            return 0.0
        return self.symbols_sent / needed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FixedRateConnection pending={len(self._pending)} "
            f"delivered={self._deliver_next} retx={self.symbols_retransmitted}>"
        )
