"""Fountain coding: the paper's Eq. (1)-(2) code, made concrete.

* :mod:`repro.fountain.gf2` — incremental Gaussian elimination over GF(2)
  with bitmask-integer rows.
* :mod:`repro.fountain.codec` — the random-linear fountain encoder and
  decoder operating on real bytes (used by examples, tests, and the
  ``coding="real"`` simulation mode).
* :mod:`repro.fountain.rank_model` — an exact O(1)-per-symbol statistical
  model of decoder rank evolution (the default, fast simulation mode; see
  DESIGN.md §3.2).
* :mod:`repro.fountain.soliton` / :mod:`repro.fountain.lt` — LT codes with
  ideal/robust Soliton degree distributions (extension beyond the paper's
  dense random-linear code).
"""

from repro.fountain.codec import (
    BlockDecoder,
    BlockEncoder,
    Symbol,
    SystematicBlockEncoder,
)
from repro.fountain.gf2 import Gf2Eliminator
from repro.fountain.lt import LtDecoder, LtEncoder, LtSymbol
from repro.fountain.rank_model import (
    RankEvolutionModel,
    decoding_failure_probability,
    expected_overhead_symbols,
)
from repro.fountain.soliton import ideal_soliton, robust_soliton

__all__ = [
    "BlockDecoder",
    "BlockEncoder",
    "Gf2Eliminator",
    "LtDecoder",
    "LtEncoder",
    "LtSymbol",
    "RankEvolutionModel",
    "Symbol",
    "SystematicBlockEncoder",
    "decoding_failure_probability",
    "expected_overhead_symbols",
    "ideal_soliton",
    "robust_soliton",
]
