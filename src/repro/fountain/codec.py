"""The random-linear fountain codec (paper Section III-B, Eq. (1)).

A block of application bytes is split into ``k`` equal parts; every
encoded symbol is the XOR of a uniformly random non-empty subset of the
parts, identified by a k-bit coefficient vector. The receiver decodes with
incremental Gaussian elimination (:mod:`repro.fountain.gf2`) once it holds
``k`` linearly independent symbols — Eq. (2) gives the failure probability
``2^(k - n)`` after ``n ≥ k`` received symbols.

Parts are manipulated as big integers so that XOR-combining a symbol is a
single operation regardless of symbol size.
"""

from __future__ import annotations

import random
from typing import List, Optional


class Symbol:
    """One encoded symbol: coefficient bit-vector plus combined data."""

    __slots__ = ("coeff", "data")

    def __init__(self, coeff: int, data: int):
        if coeff <= 0:
            raise ValueError("a symbol must combine at least one source part")
        self.coeff = coeff
        self.data = data

    def degree(self) -> int:
        """Number of source parts XOR-ed into this symbol."""
        return bin(self.coeff).count("1")

    def integrity_digest(self) -> bytes:
        return f"sym:{self.coeff:x}:{self.data:x}".encode()

    def integrity_mutate(self, rng) -> "Symbol":
        """A copy with one data bit flipped (a silently corrupted symbol).

        The flipped bit stays within ``data.bit_length()`` (bit 0 when the
        data is zero), so the mutated value never outgrows the block's
        part size and a poisoned decode cannot overflow ``join_parts``.
        """
        span = max(1, self.data.bit_length())
        return Symbol(self.coeff, self.data ^ (1 << rng.randrange(span)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Symbol coeff={self.coeff:#x} degree={self.degree()}>"


def split_into_parts(data: bytes, k: int, part_size: int) -> List[int]:
    """Split ``data`` into ``k`` zero-padded parts of ``part_size`` bytes."""
    if len(data) > k * part_size:
        raise ValueError(
            f"data of {len(data)} bytes exceeds block capacity {k * part_size}"
        )
    parts = []
    for index in range(k):
        chunk = data[index * part_size : (index + 1) * part_size]
        parts.append(int.from_bytes(chunk.ljust(part_size, b"\0"), "big"))
    return parts


def join_parts(parts: List[int], part_size: int, length: Optional[int] = None) -> bytes:
    """Inverse of :func:`split_into_parts`; trims to ``length`` if given."""
    data = b"".join(part.to_bytes(part_size, "big") for part in parts)
    if length is not None:
        data = data[:length]
    return data


class BlockEncoder:
    """Produces an endless stream of symbols for one block of bytes."""

    def __init__(
        self,
        data: bytes,
        k: int,
        part_size: int,
        rng: Optional[random.Random] = None,
    ):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if part_size < 1:
            raise ValueError(f"part_size must be >= 1, got {part_size}")
        self.k = k
        self.part_size = part_size
        self.data_length = len(data)
        self._parts = split_into_parts(data, k, part_size)
        self._rng = rng or random.Random()
        self.symbols_emitted = 0

    def _combine(self, coeff: int) -> int:
        data = 0
        remaining = coeff
        while remaining:
            bit = remaining.bit_length() - 1
            data ^= self._parts[bit]
            remaining &= ~(1 << bit)
        return data

    def next_symbol(self) -> Symbol:
        """Draw a uniformly random non-zero coefficient row and emit a symbol."""
        coeff = 0
        while coeff == 0:
            coeff = self._rng.getrandbits(self.k)
        self.symbols_emitted += 1
        return Symbol(coeff, self._combine(coeff))

    def symbol_for_coeff(self, coeff: int) -> Symbol:
        """Encode a caller-chosen coefficient row (used for systematic tests)."""
        if not 0 < coeff < (1 << self.k):
            raise ValueError("coefficient row out of range")
        return Symbol(coeff, self._combine(coeff))

    def systematic_symbols(self) -> List[Symbol]:
        """The k unit-coefficient symbols (the source parts themselves)."""
        return [Symbol(1 << index, self._parts[index]) for index in range(self.k)]


class SystematicBlockEncoder(BlockEncoder):
    """Systematic variant: emit the k source parts first, then random repair.

    Deployed fountain systems (e.g. Raptor codes in 3GPP) are systematic:
    on a clean channel the receiver decodes with *zero* elimination work,
    and only losses cost coded repair symbols. The decoder is unchanged —
    unit-coefficient symbols are just very convenient rows.
    """

    def next_symbol(self) -> Symbol:
        if self.symbols_emitted < self.k:
            index = self.symbols_emitted
            self.symbols_emitted += 1
            return Symbol(1 << index, self._parts[index])
        return super().next_symbol()


class BlockDecoder:
    """Recovers one block from a stream of symbols."""

    def __init__(self, k: int, part_size: int, data_length: Optional[int] = None):
        from repro.fountain.gf2 import Gf2Eliminator

        self.k = k
        self.part_size = part_size
        self.data_length = data_length if data_length is not None else k * part_size
        self._eliminator = Gf2Eliminator(k)
        self.symbols_received = 0
        self.symbols_redundant = 0

    @property
    def independent_symbols(self) -> int:
        """The paper's k̄: linearly independent symbols held so far."""
        return self._eliminator.rank

    @property
    def is_complete(self) -> bool:
        return self._eliminator.is_full_rank

    @property
    def poisoned(self) -> bool:
        """True once the GF(2) system proved itself inconsistent — some
        absorbed symbol was corrupted and the basis cannot be trusted."""
        return self._eliminator.inconsistent

    def add_symbol(self, symbol: Symbol) -> bool:
        """Absorb a symbol; True iff it increased the decoder's rank.

        Redundant (linearly dependent) symbols are dropped, mirroring the
        receiver behaviour described in Section III-B.
        """
        self.symbols_received += 1
        independent = self._eliminator.add_row(symbol.coeff, symbol.data)
        if not independent:
            self.symbols_redundant += 1
        return independent

    def decode(self) -> bytes:
        """Return the original block bytes (requires :attr:`is_complete`)."""
        from repro.fountain.codec import join_parts

        parts = self._eliminator.solve()
        return join_parts(parts, self.part_size, self.data_length)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<BlockDecoder k={self.k} rank={self.independent_symbols} "
            f"received={self.symbols_received}>"
        )
