"""Incremental Gaussian elimination over GF(2).

Rows are Python integers used as bit vectors: bit ``i`` of a coefficient
row is the coefficient of source part ``ρ_{i+1}`` in the paper's Eq. (1).
Attached to every coefficient row is a payload integer (the XOR-combined
symbol data), which the elimination carries along so that once the matrix
reaches full rank the original parts fall out of back-substitution.

Python's arbitrary-precision integers make XOR of k-bit rows a single
machine-loop operation, which is what lets the *real* codec decode
multi-kilobyte blocks in microseconds.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class Gf2Eliminator:
    """Maintains a row-echelon basis of received coefficient rows.

    ``add_row`` is O(rank) integer-XOR operations; ``solve`` performs
    back-substitution once rank equals ``k``.
    """

    def __init__(self, k: int):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        # pivot bit index -> (coefficient row, payload)
        self._pivots: Dict[int, Tuple[int, int]] = {}
        self.rows_seen = 0
        self.dependent_rows = 0
        # Dependent rows whose payload did NOT reduce to zero: proof that
        # some row in the basis (or this one) was corrupted — in a clean
        # linear code a dependent coefficient row always carries the XOR
        # of the rows it depends on, so its payload residual must be 0.
        self.inconsistent_rows = 0

    @property
    def rank(self) -> int:
        return len(self._pivots)

    @property
    def is_full_rank(self) -> bool:
        return len(self._pivots) == self.k

    @property
    def inconsistent(self) -> bool:
        """True once a contradictory row proved the system is poisoned."""
        return self.inconsistent_rows > 0

    def add_row(self, coeff: int, payload: int = 0) -> bool:
        """Insert a row; returns True iff it was linearly independent."""
        if coeff < 0 or coeff.bit_length() > self.k:
            raise ValueError(f"coefficient row out of range for k={self.k}")
        self.rows_seen += 1
        while coeff:
            pivot_bit = coeff.bit_length() - 1
            existing = self._pivots.get(pivot_bit)
            if existing is None:
                self._pivots[pivot_bit] = (coeff, payload)
                return True
            coeff ^= existing[0]
            payload ^= existing[1]
        self.dependent_rows += 1
        if payload != 0:
            self.inconsistent_rows += 1
        return False

    def would_be_independent(self, coeff: int) -> bool:
        """Check independence without inserting (no payload work)."""
        while coeff:
            pivot_bit = coeff.bit_length() - 1
            existing = self._pivots.get(pivot_bit)
            if existing is None:
                return True
            coeff ^= existing[0]
        return False

    def solve(self) -> List[int]:
        """Back-substitute; returns the ``k`` source payloads in order.

        Raises :class:`ValueError` if the matrix is not yet full rank.
        """
        if not self.is_full_rank:
            raise ValueError(
                f"cannot solve: rank {self.rank} < k {self.k} "
                f"({self.k - self.rank} more independent symbols needed)"
            )
        # Reduce pivots in ascending bit order: each row's sub-pivot bits
        # reference rows that are already unit vectors.
        unit_payloads: Dict[int, int] = {}
        for bit in range(self.k):
            coeff, payload = self._pivots[bit]
            remaining = coeff & ~(1 << bit)
            while remaining:
                low_bit = remaining.bit_length() - 1
                # All other set bits are below the pivot, hence already solved.
                payload ^= unit_payloads[low_bit]
                remaining &= ~(1 << low_bit)
            unit_payloads[bit] = payload
        return [unit_payloads[bit] for bit in range(self.k)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gf2Eliminator k={self.k} rank={self.rank}>"
