"""LT codes: sparse fountain coding with peeling decode.

An LT symbol XORs a small random subset of source parts whose size (the
degree) is drawn from a Soliton distribution. Decoding is the classic
belief-propagation "peeling" process: degree-1 symbols reveal a part,
which is subtracted from every symbol covering it, possibly creating new
degree-1 symbols. Peeling is linear-time but needs a few percent more
symbols than Gaussian elimination; :class:`LtDecoder` optionally falls
back to GE on the residual system when peeling stalls.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Set

from repro.fountain.codec import join_parts, split_into_parts
from repro.fountain.gf2 import Gf2Eliminator
from repro.fountain.soliton import DegreeSampler, robust_soliton


class LtSymbol:
    """One LT-encoded symbol: the set of covered part indices + data."""

    __slots__ = ("neighbours", "data")

    def __init__(self, neighbours: frozenset, data: int):
        if not neighbours:
            raise ValueError("an LT symbol must cover at least one part")
        self.neighbours = neighbours
        self.data = data

    def degree(self) -> int:
        return len(self.neighbours)

    def integrity_digest(self) -> bytes:
        return f"lts:{sorted(self.neighbours)}:{self.data:x}".encode()

    def integrity_mutate(self, rng) -> "LtSymbol":
        """A copy with one data bit flipped (bounded by the current data
        width so a corrupted part can never outgrow the part size)."""
        span = max(1, self.data.bit_length())
        return LtSymbol(self.neighbours, self.data ^ (1 << rng.randrange(span)))


class LtEncoder:
    """Emits LT symbols for one block of bytes."""

    def __init__(
        self,
        data: bytes,
        k: int,
        part_size: int,
        rng: Optional[random.Random] = None,
        c: float = 0.03,
        delta: float = 0.5,
    ):
        self.k = k
        self.part_size = part_size
        self.data_length = len(data)
        self._parts = split_into_parts(data, k, part_size)
        self._rng = rng or random.Random()
        self._sampler = DegreeSampler(robust_soliton(k, c=c, delta=delta), self._rng)
        self.symbols_emitted = 0

    def next_symbol(self) -> LtSymbol:
        degree = min(self._sampler.sample(), self.k)
        neighbours = frozenset(self._rng.sample(range(self.k), degree))
        data = 0
        for index in neighbours:
            data ^= self._parts[index]
        self.symbols_emitted += 1
        return LtSymbol(neighbours, data)


class LtDecoder:
    """Peeling decoder with optional Gaussian-elimination fallback."""

    def __init__(
        self,
        k: int,
        part_size: int,
        data_length: Optional[int] = None,
        ge_fallback: bool = True,
    ):
        self.k = k
        self.part_size = part_size
        self.data_length = data_length if data_length is not None else k * part_size
        self.ge_fallback = ge_fallback
        self._recovered: Dict[int, int] = {}
        # Unresolved symbols: residual neighbour sets and data.
        self._pending: List[Optional[LtSymbol]] = []
        # part index -> indices into _pending that still cover it
        self._coverage: Dict[int, Set[int]] = {}
        self.symbols_received = 0

    @property
    def recovered_parts(self) -> int:
        return len(self._recovered)

    @property
    def is_complete(self) -> bool:
        return len(self._recovered) == self.k

    def add_symbol(self, symbol: LtSymbol) -> None:
        """Absorb one symbol and run the peeling cascade."""
        self.symbols_received += 1
        if self.is_complete:
            return
        residual_neighbours = set(symbol.neighbours)
        data = symbol.data
        for index in symbol.neighbours:
            if index in self._recovered:
                residual_neighbours.discard(index)
                data ^= self._recovered[index]
        self._enqueue_residual(residual_neighbours, data)
        self._peel()

    def _enqueue_residual(self, neighbours: Set[int], data: int) -> None:
        if not neighbours:
            return
        slot = len(self._pending)
        self._pending.append(LtSymbol(frozenset(neighbours), data))
        for index in neighbours:
            self._coverage.setdefault(index, set()).add(slot)

    def _peel(self) -> None:
        ripple = [
            slot
            for slot, entry in enumerate(self._pending)
            if entry is not None and entry.degree() == 1
        ]
        while ripple:
            slot = ripple.pop()
            entry = self._pending[slot]
            if entry is None or entry.degree() != 1:
                continue
            (part_index,) = entry.neighbours
            if part_index in self._recovered:
                self._pending[slot] = None
                continue
            self._recovered[part_index] = entry.data
            self._pending[slot] = None
            for other_slot in self._coverage.pop(part_index, set()):
                other = self._pending[other_slot]
                if other is None:
                    continue
                remaining = set(other.neighbours)
                if part_index not in remaining:
                    continue
                remaining.discard(part_index)
                new_data = other.data ^ entry.data
                if remaining:
                    self._pending[other_slot] = LtSymbol(frozenset(remaining), new_data)
                    if len(remaining) == 1:
                        ripple.append(other_slot)
                else:
                    self._pending[other_slot] = None

    def try_ge_completion(self) -> bool:
        """Solve the residual system by Gaussian elimination if possible."""
        if self.is_complete or not self.ge_fallback:
            return self.is_complete
        missing = sorted(set(range(self.k)) - set(self._recovered))
        position = {part: bit for bit, part in enumerate(missing)}
        eliminator = Gf2Eliminator(len(missing))
        for entry in self._pending:
            if entry is None:
                continue
            coeff = 0
            for index in entry.neighbours:
                coeff |= 1 << position[index]
            eliminator.add_row(coeff, entry.data)
            if eliminator.is_full_rank:
                break
        if not eliminator.is_full_rank:
            return False
        for part_index, payload in zip(missing, eliminator.solve()):
            self._recovered[part_index] = payload
        self._pending = []
        self._coverage = {}
        return True

    def decode(self) -> bytes:
        if not self.is_complete and not self.try_ge_completion():
            raise ValueError(
                f"cannot decode: {self.k - self.recovered_parts} parts missing"
            )
        parts = [self._recovered[index] for index in range(self.k)]
        return join_parts(parts, self.part_size, self.data_length)
