"""Exact statistical model of random-linear decoder rank evolution.

For a uniformly random non-zero k-bit coefficient row, the probability of
being linearly dependent on an r-dimensional received subspace is the
fraction of non-zero vectors inside that subspace:

    P(dependent | rank r) = (2^r - 1) / (2^k - 1)  ≈  2^(r - k)

The simulator's default ("statistical") coding mode samples this Bernoulli
process per received symbol instead of performing the elimination, which
is O(1) per symbol and *distribution-exact* — a property test checks it
against the real codec. The paper's own machinery (Eq. (2)'s failure
probability, the δ-completeness predictor) works at this same
symbol-counting level, so no fidelity is lost.
"""

from __future__ import annotations

import random
from typing import Optional


def decoding_failure_probability(k: int, received: float) -> float:
    """Paper Eq. (2): δ_b(k_b) = 1 if k_b < k̂_b else 2^(k̂_b - k_b).

    ``received`` may be fractional because the sender works with the
    *expected* number of received symbols k̃_b (Eq. (8)).
    """
    if received < k:
        return 1.0
    return 2.0 ** (k - received)


def expected_overhead_symbols(k: int) -> float:
    """Expected extra symbols beyond k for full rank (≈ 1.606 for large k).

    Receiving proceeds through ranks r = 0..k-1; at rank r each fresh
    symbol is independent with probability p_r = 1 - (2^r - 1)/(2^k - 1),
    so the wait at rank r is geometric with mean 1/p_r.
    """
    total = 0.0
    denominator = float(2**k - 1)
    for rank in range(k):
        p_independent = 1.0 - (2.0**rank - 1.0) / denominator
        total += 1.0 / p_independent
    return total - k


class RankEvolutionModel:
    """Samples the exact rank process; drop-in for :class:`BlockDecoder`.

    Exposes the same counters the FMTCP receiver needs (``independent_symbols``
    a.k.a. k̄, redundancy counts, completeness) without touching data bytes.
    """

    def __init__(self, k: int, rng: Optional[random.Random] = None):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.k = k
        self._rng = rng or random.Random()
        self._rank = 0
        self.symbols_received = 0
        self.symbols_redundant = 0
        # Cache the dependence probability denominator once.
        self._denominator = float(2**k - 1)

    @property
    def independent_symbols(self) -> int:
        return self._rank

    @property
    def is_complete(self) -> bool:
        return self._rank >= self.k

    def add_symbol(self, symbol=None) -> bool:
        """Sample whether a fresh random symbol increases the rank."""
        self.symbols_received += 1
        if self._rank >= self.k:
            self.symbols_redundant += 1
            return False
        p_dependent = (2.0**self._rank - 1.0) / self._denominator
        if p_dependent > 0.0 and self._rng.random() < p_dependent:
            self.symbols_redundant += 1
            return False
        self._rank += 1
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RankEvolutionModel k={self.k} rank={self._rank}>"
