"""Soliton degree distributions for LT codes.

The paper's FMTCP uses the dense random-linear fountain; LT codes with the
robust Soliton distribution are the classic sparse alternative (MacKay's
"Fountain codes" survey, the paper's reference [17]) and are provided as
an extension so users can trade decoding cost against overhead.
"""

from __future__ import annotations

import math
import random
from bisect import bisect_left
from itertools import accumulate
from typing import List, Optional, Sequence


def ideal_soliton(k: int) -> List[float]:
    """Ideal Soliton distribution ρ(d) for d = 1..k (returned 0-indexed).

    ρ(1) = 1/k, ρ(d) = 1 / (d (d-1)) for d = 2..k.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    distribution = [0.0] * k
    distribution[0] = 1.0 / k
    for degree in range(2, k + 1):
        distribution[degree - 1] = 1.0 / (degree * (degree - 1))
    return distribution


def robust_soliton(k: int, c: float = 0.03, delta: float = 0.5) -> List[float]:
    """Robust Soliton distribution μ(d) for d = 1..k (returned 0-indexed).

    Adds the τ spike at d = k/R (R = c·ln(k/δ)·√k) to the ideal Soliton
    and renormalises; guarantees decode with probability ≥ 1 - δ from
    k + O(√k ln²(k/δ)) symbols.
    """
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    if c <= 0.0:
        raise ValueError(f"c must be positive, got {c}")
    rho = ideal_soliton(k)
    big_r = c * math.log(k / delta) * math.sqrt(k)
    big_r = max(big_r, 1.0)
    spike = max(1, min(k, int(round(k / big_r))))
    tau = [0.0] * k
    for degree in range(1, spike):
        tau[degree - 1] = big_r / (degree * k)
    tau[spike - 1] = big_r * math.log(big_r / delta) / k
    total = sum(rho) + sum(tau)
    return [(r + t) / total for r, t in zip(rho, tau)]


class DegreeSampler:
    """Samples degrees from a (cumulative-table) distribution."""

    def __init__(self, distribution: Sequence[float], rng: Optional[random.Random] = None):
        if not distribution:
            raise ValueError("empty distribution")
        total = sum(distribution)
        if not math.isclose(total, 1.0, rel_tol=1e-6):
            raise ValueError(f"distribution sums to {total}, expected 1")
        self._cumulative = list(accumulate(distribution))
        self._cumulative[-1] = 1.0
        self._rng = rng or random.Random()

    def sample(self) -> int:
        """Draw a degree in 1..len(distribution)."""
        return bisect_left(self._cumulative, self._rng.random()) + 1
