"""Metric collection for the paper's three evaluation measures:

goodput (total and windowed time series), per-block delivery delay, and
block jitter. Collectors subscribe to the protocol-agnostic trace
vocabulary (``conn.delivered``, ``conn.block_done``) so the same code
measures FMTCP and the MPTCP baseline.
"""

from repro.metrics.collectors import (
    BlockDelayCollector,
    GoodputMeter,
    MetricsSuite,
)
from repro.metrics.latency import AppLatencyCollector, TimestampedSource
from repro.metrics.stats import mean, mean_absolute_difference, percentile, stdev

__all__ = [
    "AppLatencyCollector",
    "BlockDelayCollector",
    "GoodputMeter",
    "MetricsSuite",
    "TimestampedSource",
    "mean",
    "mean_absolute_difference",
    "percentile",
    "stdev",
]
