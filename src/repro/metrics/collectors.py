"""Trace-bus metric collectors."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.metrics.stats import mean, mean_absolute_difference, percentile, stdev
from repro.sim.engine import Simulator
from repro.sim.trace import TraceBus, TraceRecord


class GoodputMeter:
    """Total and windowed goodput from ``conn.delivered`` records.

    Goodput is measured at the point the paper measures it: in-order bytes
    handed to the receiving application.
    """

    def __init__(self, trace: TraceBus, bin_width_s: float = 1.0):
        if bin_width_s <= 0:
            raise ValueError("bin_width_s must be positive")
        self.bin_width_s = bin_width_s
        self.total_bytes = 0
        self._bins: Dict[int, int] = {}
        self.first_delivery: float = float("inf")
        self.last_delivery: float = 0.0
        trace.subscribe("conn.delivered", self._on_delivered)

    def _on_delivered(self, record: TraceRecord) -> None:
        size = record["bytes"]
        self.total_bytes += size
        self._bins[int(record.time / self.bin_width_s)] = (
            self._bins.get(int(record.time / self.bin_width_s), 0) + size
        )
        self.first_delivery = min(self.first_delivery, record.time)
        self.last_delivery = max(self.last_delivery, record.time)

    def goodput_bps(self, duration_s: float) -> float:
        """Average goodput in bits/s over an experiment of ``duration_s``."""
        if duration_s <= 0:
            return 0.0
        return self.total_bytes * 8.0 / duration_s

    def goodput_mbytes_per_s(self, duration_s: float) -> float:
        if duration_s <= 0:
            return 0.0
        return self.total_bytes / duration_s / 1e6

    def series(self, duration_s: float) -> List[Tuple[float, float]]:
        """(bin midpoint seconds, MB/s) time series covering the run."""
        bins_total = max(1, int(round(duration_s / self.bin_width_s)))
        series = []
        for index in range(bins_total):
            midpoint = (index + 0.5) * self.bin_width_s
            rate = self._bins.get(index, 0) / self.bin_width_s / 1e6
            series.append((midpoint, rate))
        return series


class BlockDelayCollector:
    """Per-block delivery delay and jitter from ``conn.block_done`` records.

    Delay is defined as the paper does: from the transmission of a block's
    first symbol to the sender's reception of the ACK confirming decode
    (for MPTCP, the data-ACK covering the block).
    """

    def __init__(self, trace: TraceBus):
        self._by_block: Dict[int, float] = {}
        trace.subscribe("conn.block_done", self._on_block_done)

    def _on_block_done(self, record: TraceRecord) -> None:
        self._by_block[record["block_id"]] = record["delay"]

    @property
    def count(self) -> int:
        return len(self._by_block)

    def delays_in_sequence(self) -> List[float]:
        """Delays ordered by block id (the Fig. 7 series)."""
        return [self._by_block[block_id] for block_id in sorted(self._by_block)]

    def mean_delay_s(self) -> float:
        return mean(self.delays_in_sequence())

    def jitter_s(self) -> float:
        """Mean absolute consecutive-delay difference (Fig. 6 metric)."""
        return mean_absolute_difference(self.delays_in_sequence())

    def delay_stdev_s(self) -> float:
        return stdev(self.delays_in_sequence())

    def delay_percentile_s(self, q: float) -> float:
        return percentile(self.delays_in_sequence(), q)


class MetricsSuite:
    """One-stop bundle of the paper's three metrics for a run."""

    def __init__(self, trace: TraceBus, bin_width_s: float = 1.0):
        self.goodput = GoodputMeter(trace, bin_width_s=bin_width_s)
        self.block_delay = BlockDelayCollector(trace)

    def summary(self, duration_s: float) -> Dict[str, float]:
        return {
            "goodput_mbps": self.goodput.goodput_bps(duration_s) / 1e6,
            "goodput_mbytes_per_s": self.goodput.goodput_mbytes_per_s(duration_s),
            "total_mbytes": self.goodput.total_bytes / 1e6,
            "blocks": float(self.block_delay.count),
            "mean_block_delay_ms": self.block_delay.mean_delay_s() * 1e3,
            "jitter_ms": self.block_delay.jitter_s() * 1e3,
            "delay_p95_ms": self.block_delay.delay_percentile_s(95.0) * 1e3,
            "delay_max_ms": self.block_delay.delay_percentile_s(100.0) * 1e3,
        }
