"""Application-level time-in-system latency.

Block delivery delay (the paper's metric) clocks from *first
transmission*; a streaming application also cares about the time data
spends queued at the sender before the transport picks it up. This
module measures the full path: byte creation at the source → in-order
delivery at the receiver.

Wrap any pull-source with :class:`TimestampedSource` and attach an
:class:`AppLatencyCollector` to the trace bus; the collector correlates
cumulative byte offsets between the two.
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Tuple

from repro.metrics.stats import mean, percentile
from repro.sim.engine import Simulator
from repro.sim.trace import TraceBus, TraceRecord


class TimestampedSource:
    """Wraps a source, recording when each byte offset became available.

    The inner source's ``pull``/``attach``/``exhausted`` surface is
    preserved; creation timestamps are taken when the *inner source
    grants* the bytes (for CBR/VBR sources that is when the data exists,
    since they only grant accrued bytes).
    """

    def __init__(self, inner, sim: Simulator):
        self._inner = inner
        self._sim = sim
        # Parallel arrays: cumulative byte offset -> creation time.
        self.offsets: List[int] = []
        self.times: List[float] = []
        self.granted_bytes = 0

    def attach(self, connection) -> None:
        if hasattr(self._inner, "attach"):
            self._inner.attach(connection)

    @property
    def exhausted(self) -> bool:
        return getattr(self._inner, "exhausted", False)

    def pull(self, max_bytes: int):
        granted = self._inner.pull(max_bytes)
        if not granted:
            return granted
        size = len(granted) if isinstance(granted, bytes) else int(granted)
        self.granted_bytes += size
        self.offsets.append(self.granted_bytes)
        self.times.append(self._sim.now)
        return granted

    def creation_time_of(self, offset: int) -> Optional[float]:
        """When the byte at stream ``offset`` was handed to the transport."""
        index = bisect.bisect_right(self.offsets, offset)
        if index >= len(self.offsets):
            return None
        return self.times[index]


class AppLatencyCollector:
    """Correlates ``conn.delivered`` events with source timestamps.

    ``source`` is anything exposing ``creation_time_of(offset)`` — the
    CBR/VBR sources compute it analytically; arbitrary sources can be
    wrapped in :class:`TimestampedSource` (which stamps at grant time, a
    lower bound on true time-in-system for backlogged sources).
    """

    def __init__(self, trace: TraceBus, source):
        self._source = source
        self._delivered_bytes = 0
        self.samples: List[Tuple[float, float]] = []  # (time, latency)
        trace.subscribe("conn.delivered", self._on_delivered)

    def _on_delivered(self, record: TraceRecord) -> None:
        self._delivered_bytes += record["bytes"]
        created = self._source.creation_time_of(self._delivered_bytes - 1)
        if created is None:
            return
        self.samples.append((record.time, record.time - created))

    def latencies(self) -> List[float]:
        return [latency for __, latency in self.samples]

    def mean_latency_s(self) -> float:
        return mean(self.latencies())

    def percentile_latency_s(self, q: float) -> float:
        return percentile(self.latencies(), q)

    def stall_fraction(self, deadline_s: float) -> float:
        """Fraction of deliveries later than ``deadline_s`` end to end."""
        values = self.latencies()
        if not values:
            return 1.0
        return sum(1 for latency in values if latency > deadline_s) / len(values)
