"""Small summary-statistics helpers (no numpy needed on hot paths)."""

from __future__ import annotations

import math
from typing import Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    if not values:
        return 0.0
    return sum(values) / len(values)


def stdev(values: Sequence[float]) -> float:
    """Population standard deviation; 0.0 for fewer than two samples."""
    if len(values) < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((value - mu) ** 2 for value in values) / len(values))


def mean_absolute_difference(values: Sequence[float]) -> float:
    """Mean |x_{i+1} - x_i| of consecutive samples — the classic jitter
    statistic, applied per block as the paper specifies (Fig. 6)."""
    if len(values) < 2:
        return 0.0
    total = sum(abs(b - a) for a, b in zip(values, values[1:]))
    return total / (len(values) - 1)


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile, q in [0, 100]; 0.0 when empty."""
    if not values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (len(ordered) - 1) * q / 100.0
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction
