"""IETF-MPTCP baseline (the paper's comparison protocol).

A connection stripes connection-sequenced chunks over TCP subflows.
Reliability is retransmission-based and subflow-local (a chunk lost on a
subflow is retransmitted on that same subflow), and in-order delivery is
enforced by a bounded connection-level reorder buffer whose advertised
window throttles the sender — reproducing the receive-buffer head-of-line
blocking that makes a bad path the bottleneck of the whole connection
(the phenomenon FMTCP is designed to remove).
"""

from repro.mptcp.connection import MptcpConfig, MptcpConnection
from repro.mptcp.recv_buffer import ReorderBuffer
from repro.mptcp.scheduler import (
    MinRttScheduler,
    RoundRobinScheduler,
    SubflowScheduler,
    make_scheduler,
)

__all__ = [
    "MinRttScheduler",
    "MptcpConfig",
    "MptcpConnection",
    "ReorderBuffer",
    "RoundRobinScheduler",
    "SubflowScheduler",
    "make_scheduler",
]
