"""The IETF-MPTCP baseline connection.

One sender, one receiver, N TCP subflows. Connection-level chunks (one
per packet, ``mss`` payload bytes) are sequenced by data sequence number
(DSN), striped over subflows, retransmitted on the *same* subflow when
lost (TCP semantics), and reassembled in DSN order through a bounded
:class:`~repro.mptcp.recv_buffer.ReorderBuffer` whose capacity throttles
the sender (flow control).

Emitted trace records (shared vocabulary with FMTCP so metrics are
protocol-agnostic):

* ``conn.delivered`` — in-order bytes handed to the application.
* ``conn.block_done`` — a block's worth of stream fully acknowledged at
  the sender (field ``delay`` is the paper's block delivery delay).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence, Tuple, Union

import zlib

from repro.net.integrity import payload_digest
from repro.net.topology import Path
from repro.robustness.flowcontrol import ReceiveWindow, WindowGate, ZeroWindowProber
from repro.sim.engine import Simulator
from repro.sim.trace import TraceBus
from repro.tcp.congestion import LiaGroup, make_controller
from repro.tcp.rto import RtoEstimator
from repro.tcp.subflow import Subflow, SubflowOwner, SubflowPacketInfo, SubflowSink
from repro.mptcp.recv_buffer import ReorderBuffer
from repro.mptcp.scheduler import make_scheduler


@dataclass
class MptcpConfig:
    """Tunables of the baseline (defaults follow DESIGN.md §3)."""

    mss: int = 1400
    recv_buffer_chunks: int = 64
    block_bytes: int = 8192
    congestion: str = "reno"
    # "minrtt", "roundrobin", or a ready SubflowScheduler instance (the
    # repro.policy decision layer threads WeightedScheduler through here).
    scheduler: Any = "minrtt"
    initial_cwnd: float = 2.0
    dup_ack_threshold: int = 3
    min_rto: float = 0.2
    # After this many timeouts of one chunk, reinject it on the currently
    # best other subflow (production-MPTCP rescue behaviour; off by default
    # to match the paper's baseline).
    reinject_after_timeouts: Optional[int] = None
    # Dead-path failover: after this many consecutive RTO firings with no
    # intervening ACK, the subflow is declared potentially failed — its
    # unacked chunks are reinjected onto live subflows, it stops pulling
    # fresh data, and it probes with duplicates of the head-of-line chunk
    # at the backed-off RTO pace until an ACK arrives. None disables.
    failover_rto_threshold: Optional[int] = 3
    # Opportunistic retransmission and penalisation (Raiciu et al.,
    # NSDI'12): when the connection is receive-window limited, reinject
    # the head-of-line chunk on the best other subflow and halve the
    # blocking subflow's window. Off by default (the paper's baseline
    # predates it); the scheduler ablation measures how much of FMTCP's
    # advantage survives this stronger baseline.
    opportunistic_retransmission: bool = False
    # End-to-end flow control (repro.robustness extension, off by
    # default): advertise a monotone chunk-granular window reflecting the
    # *application's* drain progress (not just reorder-buffer slack) and
    # gate fresh-chunk creation on the licensed limit. With an instantly
    # draining application the licensed limit equals the local credit
    # rule above, so behaviour is unchanged until a drain model is set.
    flow_control: bool = False
    # Application drain model: None = instant consumption (the
    # pre-flow-control behaviour); bytes/s models a slow reader; 0.0
    # models an application that stopped reading entirely.
    recv_drain_rate_bps: Optional[float] = None
    # Backpressure hysteresis (fractions of recv_buffer_chunks).
    flow_high_watermark: float = 0.75
    flow_low_watermark: float = 0.5
    # Zero-window probing: initial interval and exponential-backoff cap.
    zero_window_probe_s: float = 0.5
    zero_window_probe_max_s: float = 4.0

    def __post_init__(self) -> None:
        if self.failover_rto_threshold is not None and self.failover_rto_threshold < 1:
            raise ValueError(
                f"failover_rto_threshold must be >= 1 or None, "
                f"got {self.failover_rto_threshold}"
            )
        if self.recv_buffer_chunks < 1:
            raise ValueError("recv_buffer_chunks must be >= 1")
        if self.recv_drain_rate_bps is not None and self.recv_drain_rate_bps < 0:
            raise ValueError("recv_drain_rate_bps must be >= 0 or None")
        if not 0.0 < self.flow_low_watermark <= self.flow_high_watermark <= 1.0:
            raise ValueError("flow watermarks must satisfy 0 < low <= high <= 1")
        if self.zero_window_probe_s <= 0:
            raise ValueError("zero_window_probe_s must be positive")
        if self.zero_window_probe_max_s < self.zero_window_probe_s:
            raise ValueError(
                "zero_window_probe_max_s must be >= zero_window_probe_s"
            )


def _dss_checksum(dsn: int, size: int, payload_bytes: Optional[bytes]) -> int:
    """The DSS-option checksum of one chunk (RFC 8684 §3.3 analogue)."""
    header = f"dss:{dsn}:{size}:".encode()
    return zlib.crc32(payload_digest(payload_bytes), zlib.crc32(header))


class Chunk:
    """One connection-level data unit (rides in exactly one packet).

    ``dss_checksum`` is stamped at creation, covering the data-sequence
    header and payload — MPTCP's connection-level integrity check. It
    travels with the chunk, so a payload mutated in flight (even one that
    re-seals the link CRC) no longer matches and is discarded by
    :meth:`MptcpConnection._receiver_on_segment`.
    """

    __slots__ = (
        "dsn",
        "size",
        "payload_bytes",
        "first_sent_at",
        "timeouts",
        "dss_checksum",
    )

    def __init__(self, dsn: int, size: int, payload_bytes: Optional[bytes], sent_at: float):
        self.dsn = dsn
        self.size = size
        self.payload_bytes = payload_bytes
        self.first_sent_at = sent_at
        self.timeouts = 0
        self.dss_checksum = _dss_checksum(dsn, size, payload_bytes)

    def integrity_digest(self) -> bytes:
        # Only immutable wire fields: first_sent_at/timeouts are sender
        # bookkeeping that mutates while copies of the chunk are in flight.
        return (
            f"chunk:{self.dsn}:{self.size}:".encode()
            + payload_digest(self.payload_bytes)
        )

    def integrity_mutate(self, rng) -> Optional["Chunk"]:
        """A bit-flipped copy carrying the original's (now stale) DSS
        checksum, or ``None`` when the payload is synthetic (int mode)."""
        if not self.payload_bytes:
            return None
        data = bytearray(self.payload_bytes)
        index = rng.randrange(len(data))
        data[index] ^= 1 << rng.randrange(8)
        mutated = Chunk(self.dsn, self.size, bytes(data), self.first_sent_at)
        mutated.dss_checksum = self.dss_checksum
        return mutated


class MptcpFeedback:
    """Receiver state piggybacked on every subflow ACK."""

    __slots__ = ("data_ack", "advertised_window")

    def __init__(self, data_ack: int, advertised_window: int):
        self.data_ack = data_ack
        self.advertised_window = advertised_window

    def integrity_digest(self) -> bytes:
        return f"mpfb:{self.data_ack}:{self.advertised_window}".encode()


PullResult = Union[int, bytes, None]


class MptcpConnection(SubflowOwner):
    """Sender + receiver pair of the baseline protocol."""

    def __init__(
        self,
        sim: Simulator,
        paths: Sequence[Path],
        source,
        config: Optional[MptcpConfig] = None,
        trace: Optional[TraceBus] = None,
        sink: Optional[Callable[[Chunk], None]] = None,
        resume=None,
    ):
        if not paths:
            raise ValueError("need at least one path")
        self.sim = sim
        self.config = config or MptcpConfig()
        self.source = source
        self.trace = trace
        self.sink = sink
        self.scheduler = make_scheduler(self.config.scheduler)

        self.subflows: List[Subflow] = []
        self._sinks: List[SubflowSink] = []
        self._subflow_by_id: Dict[int, Subflow] = {}
        self._sink_by_id: Dict[int, SubflowSink] = {}
        self._next_subflow_id = 0
        self._retx_queues: Dict[int, Deque[Chunk]] = {}
        self._lia_group = LiaGroup() if self.config.congestion == "lia" else None
        for path in paths:
            self._attach(path, join_delay_s=None)

        # ---- sender state ----
        self._next_dsn = 0
        self._data_acked = 0
        self._chunk_sizes: Dict[int, int] = {}
        # Chunks owed when a subflow is removed with no live survivor to
        # take them; drained (ahead of fresh data) by whichever subflow
        # next has a transmission opportunity.
        self._orphan_chunks: Deque[Chunk] = deque()
        self._block_first_tx: Dict[int, float] = {}
        self._pulled_stream_bytes = 0
        self._completed_blocks = 0
        self._acked_bytes = 0
        self.chunks_retransmitted = 0
        self.chunks_reinjected = 0
        self.chunks_probe_duplicates = 0
        self.failover_events = 0
        self.orp_reinjections = 0
        self.orp_penalties = 0
        self._orp_last_dsn = -1
        self._chunk_registry: Dict[int, Tuple[int, Chunk]] = {}

        # ---- receiver state ----
        self._reorder = ReorderBuffer(
            self.config.recv_buffer_chunks,
            trace=trace,
            clock=lambda: self.sim.now,
        )
        self.delivered_bytes = 0
        self.delivered_chunks = 0
        self.chunks_discarded_checksum = 0

        # ---- end-to-end flow control (off unless config.flow_control) ----
        flow = self.config.flow_control
        self.recv_window: Optional[ReceiveWindow] = (
            ReceiveWindow(self.config.recv_buffer_chunks) if flow else None
        )
        self.flow_gate: Optional[WindowGate] = None
        self._zw_prober: Optional[ZeroWindowProber] = None
        if flow:
            self.flow_gate = WindowGate(
                self.config.recv_buffer_chunks,
                high_watermark=self.config.flow_high_watermark,
                low_watermark=self.config.flow_low_watermark,
            )
            self._zw_prober = ZeroWindowProber(
                sim,
                self._zero_window_probe,
                initial_s=self.config.zero_window_probe_s,
                max_s=self.config.zero_window_probe_max_s,
            )
        self._drain_rate: Optional[float] = (
            self.config.recv_drain_rate_bps if flow else None
        )
        self._app_queue: Deque[Chunk] = deque()
        self._drain_event = None
        self._last_chunk: Optional[Chunk] = None
        self._window_probe_due = False
        self.drained_chunks = 0
        self.chunks_window_discarded = 0
        self.window_probes = 0

        if resume is not None:
            self._apply_resume(resume)

    def _apply_resume(self, resume) -> None:
        """Restore checkpointed endpoint state after a crash-recovery epoch.

        Unlike FMTCP — whose ratelessness lets a restarted endpoint simply
        resume at a block frontier and stream fresh symbols — MPTCP must
        reconstruct exact chunk-level sequencing: the DSN cursor, the
        acked-byte count, and the reorder buffer's in-order frontier all
        restart from the checkpoint (the chunk map of unacked sizes is
        dropped with the epoch; those chunks are re-pulled from the rewound
        source). ``resume`` is duck-typed; see
        :class:`repro.recovery.checkpoint.ResumeState`.
        """
        sender_frontier = int(resume.sender_frontier)
        sender_bytes = int(resume.sender_byte_offset)
        receiver_frontier = int(resume.receiver_frontier)
        if sender_frontier < 0 or sender_bytes < 0 or receiver_frontier < 0:
            raise ValueError("resume frontiers must be >= 0")
        self._next_dsn = sender_frontier
        self._data_acked = sender_frontier
        self._acked_bytes = sender_bytes
        self._pulled_stream_bytes = sender_bytes
        self._completed_blocks = sender_bytes // self.config.block_bytes
        self._reorder = ReorderBuffer(
            self.config.recv_buffer_chunks,
            trace=self.trace,
            clock=lambda: self.sim.now,
            start_seq=receiver_frontier,
        )
        self.delivered_chunks = receiver_frontier
        self.drained_chunks = receiver_frontier
        self.delivered_bytes = int(resume.receiver_bytes)
        if self.recv_window is not None and receiver_frontier:
            self.recv_window.on_drained(receiver_frontier)
        if self.flow_gate is not None and sender_frontier:
            self.flow_gate.advertise(sender_frontier, self.config.recv_buffer_chunks)

    def _attach(self, path: Path, join_delay_s: Optional[float]) -> Subflow:
        """Build one subflow + its receiver sink and register both."""
        subflow_id = self._next_subflow_id
        self._next_subflow_id += 1
        controller = make_controller(
            self.config.congestion,
            lia_group=self._lia_group,
            rtt_provider=(lambda: 0.0),  # rebound to the subflow below
            initial_cwnd=self.config.initial_cwnd,
        )
        subflow = Subflow(
            sim=self.sim,
            path=path,
            owner=self,
            subflow_id=subflow_id,
            congestion=controller,
            rto=RtoEstimator(min_rto=self.config.min_rto),
            mss=self.config.mss,
            dup_ack_threshold=self.config.dup_ack_threshold,
            trace=self.trace,
            failed_rto_threshold=self.config.failover_rto_threshold,
            join_delay_s=join_delay_s,
        )
        if hasattr(controller, "rtt_provider"):
            controller.rtt_provider = lambda sf=subflow: sf.srtt
        self.subflows.append(subflow)
        self._subflow_by_id[subflow_id] = subflow
        self._retx_queues[subflow_id] = deque()
        sink = SubflowSink(
            sim=self.sim,
            path=path,
            subflow=subflow,
            on_segment=self._receiver_on_segment,
            feedback_provider=self._receiver_feedback,
            trace=self.trace,
        )
        self._sinks.append(sink)
        self._sink_by_id[subflow_id] = sink
        return subflow

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin transmitting (call once the simulation is assembled)."""
        self.pump()

    def pump(self) -> None:
        """Offer transmission opportunities to every subflow."""
        for subflow in self.subflows:
            subflow.pump()

    def close(self) -> None:
        if self._zw_prober is not None:
            self._zw_prober.disarm()
        if self._drain_event is not None:
            self._drain_event.cancel()
            self._drain_event = None
        for subflow in self.subflows:
            subflow.close()
        for sink in self._sinks:
            sink.close()

    def sever_receiver(self) -> int:
        """Kill the receiver endpoint only, leaving the sender running.

        Models a receiver crash: the drain timer stops and the receiver's
        ports unbind, so data segments drop silently and no data ACKs flow
        back. The sender retransmits into the void until its RTO ladder
        marks every subflow potentially-failed — the half-open window the
        recovery manager's detector watches for. Port unbinding is
        idempotent, so a later full ``close()`` remains safe. Returns the
        number of sinks closed.
        """
        if self._drain_event is not None:
            self._drain_event.cancel()
            self._drain_event = None
        for sink in self._sinks:
            sink.close()
        return len(self._sinks)

    # ------------------------------------------------------------------
    # Runtime subflow lifecycle.
    # ------------------------------------------------------------------
    def add_subflow(
        self, path: Path, join_delay_s: Optional[float] = None
    ) -> Subflow:
        """Attach a new path mid-transfer (MP_JOIN).

        The subflow spends ``join_delay_s`` (default: one RTT of the path)
        in JOINING — it pulls no data and reserves no waterfall credit —
        then goes ACTIVE and enters the scheduler's preference order.
        """
        if join_delay_s is None:
            join_delay_s = 2.0 * path.one_way_delay_s
        subflow = self._attach(path, join_delay_s=join_delay_s)
        if self.trace is not None and self.trace.has_subscribers("conn.subflow_added"):
            self.trace.emit(
                self.sim.now,
                "conn.subflow_added",
                subflow=subflow.subflow_id,
                path=path.name,
                handshake_s=join_delay_s,
            )
        return subflow

    def remove_subflow(self, subflow_id: int) -> int:
        """Detach a subflow mid-transfer and reinject everything it owed.

        Unlike FMTCP — where abandoned symbols are simply written off and
        fresh ones generated — MPTCP owes the receiver these exact bytes:
        every unacked chunk the subflow had in flight or queued for
        retransmission is moved to the best live subflow (updating the
        chunk registry so ORP and probes keep pointing at a live carrier),
        or parked in the orphan queue if no live subflow remains. The
        scheduler's preference order and the waterfall credit reservations
        rebalance automatically because both iterate the live subflow
        list. Returns the number of chunks reinjected/orphaned.
        """
        subflow = self._subflow_by_id.pop(subflow_id, None)
        if subflow is None:
            raise ValueError(f"unknown subflow id {subflow_id}")
        sink = self._sink_by_id.pop(subflow_id)
        infos = subflow.shutdown()
        sink.close()
        if self._lia_group is not None:
            self._lia_group.unregister(subflow.cc)
        self.subflows.remove(subflow)
        self._sinks.remove(sink)
        queue = self._retx_queues.pop(subflow_id)

        # Collect unacked chunks, deduplicating (a chunk declared lost sits
        # in the retx queue while a later copy may also be in flight).
        owed: Dict[int, Chunk] = {}
        for info in infos:
            chunk: Chunk = info.payload
            if chunk.dsn >= self._data_acked:
                owed.setdefault(chunk.dsn, chunk)
        for chunk in queue:
            if chunk.dsn >= self._data_acked:
                owed.setdefault(chunk.dsn, chunk)

        live = [s for s in self.subflows if s.usable]
        target = min(live, key=lambda s: (s.srtt, s.subflow_id)) if live else None
        for chunk in owed.values():
            if target is not None:
                self._retx_queues[target.subflow_id].append(chunk)
                self._chunk_registry[chunk.dsn] = (target.subflow_id, chunk)
            else:
                self._orphan_chunks.append(chunk)
        if owed:
            self.chunks_reinjected += len(owed)
        if self.trace is not None and self.trace.has_subscribers(
            "conn.subflow_removed"
        ):
            self.trace.emit(
                self.sim.now,
                "conn.subflow_removed",
                subflow=subflow_id,
                reinjected=len(owed),
            )
        self.pump()
        return len(owed)

    # ------------------------------------------------------------------
    # Sender side: SubflowOwner interface.
    # ------------------------------------------------------------------
    def next_payload(self, subflow: Subflow) -> Optional[Tuple[Any, int]]:
        retx_queue = self._retx_queues[subflow.subflow_id]
        while retx_queue:
            chunk = retx_queue.popleft()
            if chunk.dsn < self._data_acked:
                continue  # Delivered meanwhile via another copy.
            self.chunks_retransmitted += 1
            self._chunk_registry[chunk.dsn] = (subflow.subflow_id, chunk)
            if self.trace is not None and self.trace.has_subscribers(
                "span.chunk_retx"
            ):
                self.trace.emit(
                    self.sim.now,
                    "span.chunk_retx",
                    dsn=chunk.dsn,
                    subflow=subflow.subflow_id,
                )
            return chunk, chunk.size

        if subflow.potentially_failed:
            # A suspect path never pulls fresh data (it would strand it
            # behind the next blackout). Probe with a *duplicate* of the
            # head-of-line chunk instead: if the path is alive the ACK
            # readmits it, and a duplicate arrival is absorbed by the
            # reorder buffer either way.
            entry = self._chunk_registry.get(self._data_acked)
            if entry is None:
                return None
            __, chunk = entry
            self.chunks_probe_duplicates += 1
            return chunk, chunk.size

        # Chunks orphaned by a subflow removed during total blackout are
        # owed before any fresh data (the reorder buffer is blocked on
        # exactly these DSNs).
        while self._orphan_chunks:
            chunk = self._orphan_chunks.popleft()
            if chunk.dsn < self._data_acked:
                continue
            self.chunks_retransmitted += 1
            self._chunk_registry[chunk.dsn] = (subflow.subflow_id, chunk)
            if self.trace is not None and self.trace.has_subscribers(
                "span.chunk_retx"
            ):
                self.trace.emit(
                    self.sim.now,
                    "span.chunk_retx",
                    dsn=chunk.dsn,
                    subflow=subflow.subflow_id,
                )
            return chunk, chunk.size

        if self._window_probe_due:
            # Zero-window probe: a *duplicate* chunk the receiver absorbs
            # (and ACKs) even with a closed window; the ACK's feedback
            # carries the fresh advertisement that reopens the gate.
            self._window_probe_due = False
            probe = self._probe_chunk()
            if probe is not None:
                self.window_probes += 1
                self.chunks_probe_duplicates += 1
                return probe, probe.size

        credit = self.config.recv_buffer_chunks - (self._next_dsn - self._data_acked)
        if self.flow_gate is not None:
            # The licensed limit generalises the local credit rule above
            # to application-drain awareness; take the stricter of the two.
            credit = min(credit, self.flow_gate.credit(self._next_dsn))
        if credit <= 0:
            if self.config.opportunistic_retransmission:
                reinjection = self._opportunistic_retransmit(subflow)
                if reinjection is not None:
                    return reinjection
            return None
        # Waterfall arbitration: more-preferred subflows (per the scheduler,
        # lowest SRTT by default) get first claim on scarce send credit; this
        # subflow may only take a chunk from what they cannot use. Suspect
        # subflows reserve nothing — their (stale) window space must not
        # starve the paths that still deliver.
        reserved = 0
        for candidate in self.scheduler.preference_order(self.subflows):
            if candidate is subflow:
                break
            if candidate.usable:
                reserved += candidate.window_space
        if credit <= reserved:
            return None

        pulled: PullResult = self.source.pull(self.config.mss)
        if not pulled:
            return None
        if isinstance(pulled, bytes):
            size = len(pulled)
            payload_bytes: Optional[bytes] = pulled
        else:
            size = int(pulled)
            payload_bytes = None
        chunk = Chunk(self._next_dsn, size, payload_bytes, self.sim.now)
        self._chunk_registry[chunk.dsn] = (subflow.subflow_id, chunk)
        self._last_chunk = chunk
        self._next_dsn += 1
        self._chunk_sizes[chunk.dsn] = size
        block_id = self._block_of_offset(self._pulled_stream_bytes)
        self._pulled_stream_bytes += size
        self._block_first_tx.setdefault(block_id, self.sim.now)
        if self.trace is not None and self.trace.has_subscribers("span.chunk_tx"):
            self.trace.emit(
                self.sim.now,
                "span.chunk_tx",
                dsn=chunk.dsn,
                block=block_id,
                subflow=subflow.subflow_id,
                size=size,
            )
        return chunk, size

    def on_payload_lost(self, subflow: Subflow, info: SubflowPacketInfo, reason: str) -> None:
        chunk: Chunk = info.payload
        if chunk.dsn < self._data_acked:
            return  # Already delivered; nothing to repair.
        if self.trace is not None and self.trace.has_subscribers("span.chunk_lost"):
            self.trace.emit(
                self.sim.now,
                "span.chunk_lost",
                dsn=chunk.dsn,
                subflow=subflow.subflow_id,
                reason=reason,
            )
        if reason == "timeout":
            chunk.timeouts += 1
            limit = self.config.reinject_after_timeouts
            if limit is not None and chunk.timeouts >= limit and len(self.subflows) > 1:
                target = self._best_other_subflow(subflow)
                self._retx_queues[target.subflow_id].append(chunk)
                self.chunks_reinjected += 1
                target.pump()
                return
        self._retx_queues[subflow.subflow_id].append(chunk)

    def on_ack_feedback(self, subflow: Subflow, feedback: MptcpFeedback) -> None:
        if self.flow_gate is not None:
            # Fold the advertisement in even on duplicate data ACKs —
            # zero-window probe responses are exactly that.
            was_blocked = self._flow_blocked()
            self.flow_gate.advertise(feedback.data_ack, feedback.advertised_window)
            if self._flow_blocked():
                self._zw_prober.arm()
            else:
                self._zw_prober.disarm()
                if was_blocked:
                    self.pump()
        if feedback.data_ack <= self._data_acked:
            return
        for dsn in range(self._data_acked, feedback.data_ack):
            self._acked_bytes += self._chunk_sizes.pop(dsn, self.config.mss)
            self._chunk_registry.pop(dsn, None)
        self._data_acked = feedback.data_ack
        self._emit_completed_blocks()
        # Credit may have opened for every subflow, not just the ACKed one.
        self.pump()

    def _opportunistic_retransmit(self, subflow: Subflow):
        """NSDI'12 ORP: when rwnd-limited, re-send the head-of-line chunk
        on this (non-blocking) subflow and penalise the blocker."""
        hol_dsn = self._data_acked
        entry = self._chunk_registry.get(hol_dsn)
        if entry is None:
            return None
        blocker_id, chunk = entry
        if blocker_id == subflow.subflow_id:
            return None  # we ARE the blocking subflow
        if hol_dsn == self._orp_last_dsn:
            return None  # already reinjected this head-of-line chunk
        self._orp_last_dsn = hol_dsn
        blocker = self._subflow_by_id.get(blocker_id)
        if blocker is not None:
            blocker.cc.on_fast_loss()  # the penalisation half of ORP
            self.orp_penalties += 1
        self.orp_reinjections += 1
        self._chunk_registry[hol_dsn] = (subflow.subflow_id, chunk)
        return chunk, chunk.size

    # ------------------------------------------------------------------
    # Dead-path failover (SubflowOwner hooks).
    # ------------------------------------------------------------------
    def on_subflow_suspect(self, subflow: Subflow) -> None:
        """Reinject the declared-dead subflow's repair queue on live paths.

        By the time the consecutive-RTO threshold fires, everything the
        subflow had in flight has been declared lost into its retx queue;
        moving that queue to the best live subflow is what un-wedges the
        connection (the reorder buffer is blocked on exactly these DSNs).
        """
        self.failover_events += 1
        live = [s for s in self.subflows if s is not subflow and s.usable]
        if not live:
            return  # Total blackout: every path probes for itself.
        target = min(live, key=lambda s: (s.srtt, s.subflow_id))
        queue = self._retx_queues[subflow.subflow_id]
        moved = 0
        while queue:
            chunk = queue.popleft()
            if chunk.dsn < self._data_acked:
                continue
            self._retx_queues[target.subflow_id].append(chunk)
            self._chunk_registry[chunk.dsn] = (target.subflow_id, chunk)
            moved += 1
        if moved:
            self.chunks_reinjected += moved
            target.pump()

    def on_subflow_recovered(self, subflow: Subflow) -> None:
        # The path answered a probe; it may pull fresh data again, and the
        # other subflows' waterfall reservations change too.
        self.pump()

    def on_subflow_ready(self, subflow: Subflow) -> None:
        # MP_JOIN completed: the subflow now counts in the waterfall and
        # may pull orphaned or fresh chunks.
        self.pump()

    def _best_other_subflow(self, excluded: Subflow) -> Subflow:
        candidates = [s for s in self.subflows if s is not excluded]
        live = [s for s in candidates if s.usable]
        return min(live or candidates, key=lambda s: (s.srtt, s.subflow_id))

    # ------------------------------------------------------------------
    # Block accounting (paper Section V: stream partitioned into blocks
    # of the same length as FMTCP's, delay measured per block).
    # ------------------------------------------------------------------
    def _block_of_offset(self, offset: int) -> int:
        return offset // self.config.block_bytes

    def _emit_completed_blocks(self) -> None:
        while self._acked_bytes >= (self._completed_blocks + 1) * self.config.block_bytes:
            block_id = self._completed_blocks
            started = self._block_first_tx.pop(block_id, None)
            if (
                started is not None
                and self.trace is not None
                and self.trace.has_subscribers("conn.block_done")
            ):
                self.trace.emit(
                    self.sim.now,
                    "conn.block_done",
                    block_id=block_id,
                    delay=self.sim.now - started,
                )
            self._completed_blocks += 1

    # ------------------------------------------------------------------
    # Receiver side.
    # ------------------------------------------------------------------
    def _receiver_on_segment(self, subflow_id: int, segment):
        chunk: Chunk = segment.payload
        if chunk.dss_checksum != _dss_checksum(chunk.dsn, chunk.size, chunk.payload_bytes):
            # Connection-level integrity failure (the corruption evaded the
            # link CRC). Returning False withholds the subflow ACK, so the
            # sender retransmits the chunk through the normal loss path.
            self.chunks_discarded_checksum += 1
            if self.trace is not None and self.trace.has_subscribers(
                "conn.discard_checksum"
            ):
                self.trace.emit(
                    self.sim.now,
                    "conn.discard_checksum",
                    subflow=subflow_id,
                    dsn=chunk.dsn,
                )
            return False
        if (
            self.recv_window is not None
            and chunk.dsn >= self._reorder.next_expected
            and not self.recv_window.admits(chunk.dsn)
        ):
            # An unlicensed fresh chunk (an honest sender never produces
            # one; duplicates used as probes fall below next_expected and
            # are absorbed above this check). Withholding the ACK makes
            # the sender retransmit once the window reopens.
            self.chunks_window_discarded += 1
            if self.trace is not None and self.trace.has_subscribers(
                "recv.window_discard"
            ):
                self.trace.emit(
                    self.sim.now,
                    "recv.window_discard",
                    dsn=chunk.dsn,
                    limit=self.recv_window.limit,
                )
            return False
        if self.trace is not None and self.trace.has_subscribers("span.chunk_rx"):
            self.trace.emit(
                self.sim.now,
                "span.chunk_rx",
                dsn=chunk.dsn,
                subflow=subflow_id,
            )
        for __, delivered in self._reorder.insert(chunk.dsn, chunk):
            if self._drain_rate is not None:
                # A modelled application reads at a finite rate: the
                # chunk keeps occupying the receive window until the
                # drain timer consumes it.
                self._app_queue.append(delivered)
            else:
                self._deliver_chunk(delivered)
        if self._drain_rate is not None:
            self._schedule_drain()

    def _deliver_chunk(self, delivered: Chunk) -> None:
        """Hand one in-order chunk to the application (= drain it)."""
        self.delivered_bytes += delivered.size
        self.delivered_chunks += 1
        self.drained_chunks += 1
        if self.recv_window is not None:
            self.recv_window.on_drained(1)
        if self.sink is not None:
            self.sink(delivered)
        if self.trace is not None and self.trace.has_subscribers("conn.delivered"):
            self.trace.emit(
                self.sim.now,
                "conn.delivered",
                bytes=delivered.size,
                dsn=delivered.dsn,
            )

    def _schedule_drain(self) -> None:
        """Arm the app-drain timer for the queue head (rate 0 = never)."""
        if self._drain_event is not None or not self._app_queue or not self._drain_rate:
            return
        self._drain_event = self.sim.schedule(
            self._app_queue[0].size / self._drain_rate, self._drain_tick
        )

    def _drain_tick(self) -> None:
        self._drain_event = None
        if not self._app_queue:
            return
        self._deliver_chunk(self._app_queue.popleft())
        self._schedule_drain()

    def _receiver_feedback(self, subflow_id: int, segment) -> MptcpFeedback:
        if self.recv_window is not None:
            occupancy = self._reorder.occupancy + len(self._app_queue)
            return MptcpFeedback(
                data_ack=self._reorder.next_expected,
                advertised_window=self.recv_window.advertise(
                    self._reorder.next_expected, occupancy
                ),
            )
        return MptcpFeedback(
            data_ack=self._reorder.next_expected,
            advertised_window=self._reorder.advertised_window,
        )

    # ------------------------------------------------------------------
    # Zero-window probing (flow-control extension).
    # ------------------------------------------------------------------
    def _flow_blocked(self) -> bool:
        """True when the licensed window admits no fresh chunk."""
        return self.flow_gate is not None and self.flow_gate.blocked(self._next_dsn)

    def _probe_chunk(self) -> Optional[Chunk]:
        """A duplicate chunk the receiver will absorb and ACK regardless."""
        entry = self._chunk_registry.get(self._data_acked)
        if entry is not None:
            return entry[1]
        return self._last_chunk

    def _zero_window_probe(self) -> bool:
        """Prober callback: one duplicate to elicit a fresh window ACK."""
        if not self._flow_blocked():
            return False
        self._window_probe_due = True
        self.pump()
        self._window_probe_due = False
        return self._flow_blocked()

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    @property
    def data_acked(self) -> int:
        return self._data_acked

    def memory_stats(self) -> Dict[str, int]:
        """Live buffer occupancy per category (units: chunks/packets).

        Computed on demand from existing structures — no hot-path
        accounting. ``recv_occupancy`` is the protocol-agnostic key the
        exhaustion harness budgets against; ``recv_peak_occupancy``
        tracks its high-water mark so spikes between samples cannot hide.
        """
        occupancy = self._reorder.occupancy + len(self._app_queue)
        if self.recv_window is not None:
            self.recv_window.observe_occupancy(occupancy)
            peak = self.recv_window.peak_occupancy
        else:
            peak = self._reorder.high_watermark
        return {
            "recv_occupancy": occupancy,
            "recv_peak_occupancy": peak,
            "recv_reorder_chunks": self._reorder.occupancy,
            "recv_app_queue_chunks": len(self._app_queue),
            "send_retx_queued": sum(len(q) for q in self._retx_queues.values()),
            "send_in_flight_packets": sum(sf.in_flight for sf in self.subflows),
            "send_registry_chunks": len(self._chunk_registry),
        }

    def flow_stats(self) -> Dict[str, object]:
        """Flow-control counters (zeros when the knob is off)."""
        gate = self.flow_gate
        window = self.recv_window
        return {
            "enabled": gate is not None,
            "flow_pauses": gate.pauses if gate is not None else 0,
            "flow_limit": gate.limit if gate is not None else None,
            "flow_paused": gate.paused if gate is not None else False,
            "window_probes": self.window_probes,
            "zero_window_advertises": (
                window.zero_window_advertises if window is not None else 0
            ),
            "window_discards": self.chunks_window_discarded,
            "drained_units": self.drained_chunks,
        }

    @property
    def reorder_buffer(self) -> ReorderBuffer:
        return self._reorder

    def corruption_stats(self) -> Dict[str, int]:
        """Integrity-layer counters, aggregated for telemetry and soaks."""
        return {
            "packets_discarded_corrupt": sum(
                sink.packets_discarded_corrupt for sink in self._sinks
            ),
            "packets_rejected": sum(sink.packets_rejected for sink in self._sinks),
            "acks_discarded_corrupt": sum(
                sf.acks_discarded_corrupt for sf in self.subflows
            ),
            "chunks_discarded_checksum": self.chunks_discarded_checksum,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MptcpConnection subflows={len(self.subflows)} "
            f"dsn={self._next_dsn} acked={self._data_acked}>"
        )
