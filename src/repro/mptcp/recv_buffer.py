"""Connection-level reorder buffer.

Holds out-of-order chunks until the in-order gap fills. Its capacity is
what the receiver advertises back to the sender; when a chunk lost on a
slow subflow leaves a gap, the buffer fills with data from the fast
subflow and the advertised window collapses — the "receive buffer
blocking" of Iyengar et al. that the paper's Section II discusses.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple


class BufferOverflowError(OverflowError):
    """A reorder-buffer insert that flow control should have prevented.

    Carries the state a post-mortem needs: the offending sequence
    number, the in-order frontier, and how full the buffer was. Subclass
    of :class:`OverflowError` so pre-existing handlers keep working.
    """

    def __init__(self, seq: int, next_expected: int, occupancy: int, capacity: int):
        self.seq = seq
        self.next_expected = next_expected
        self.occupancy = occupancy
        self.capacity = capacity
        super().__init__(
            f"reorder buffer overflow at seq {seq}: {occupancy}/{capacity} "
            f"out-of-order chunks buffered, next expected {next_expected} — "
            f"flow control must prevent this"
        )


class ReorderBuffer:
    """In-order assembly of connection-sequenced chunks.

    Sequence numbers are chunk indices (packet-based sequencing, as in the
    rest of the substrate). The sender's flow control must guarantee
    occupancy never exceeds ``capacity``; :meth:`insert` enforces that
    invariant with an exception rather than a silent drop, because
    acknowledged TCP data can never legally vanish. With a ``trace`` bus
    attached, a ``recv.overflow`` record is emitted before raising so the
    flight recorder captures the terminal state.
    """

    def __init__(
        self,
        capacity: int,
        trace: Optional[Any] = None,
        clock: Optional[Callable[[], float]] = None,
        start_seq: int = 0,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if start_seq < 0:
            raise ValueError(f"start_seq must be >= 0, got {start_seq}")
        self.capacity = capacity
        self.trace = trace
        self.clock = clock
        self._buffered: Dict[int, Any] = {}
        # Nonzero when a crash-recovered receiver resumes at its delivered
        # frontier: earlier sequence numbers count as duplicates (MPTCP's
        # chunk-map restore — contrast FMTCP, which discards decode state).
        self.next_expected = int(start_seq)
        self.duplicates = 0
        self.high_watermark = 0

    @property
    def occupancy(self) -> int:
        return len(self._buffered)

    @property
    def advertised_window(self) -> int:
        """Chunks the sender may still have outstanding beyond delivery."""
        return self.capacity - len(self._buffered)

    def insert(self, seq: int, chunk: Any) -> List[Tuple[int, Any]]:
        """Insert chunk ``seq``; returns the chunks that became deliverable.

        Old or duplicate sequence numbers are counted and ignored.
        """
        if seq < self.next_expected or seq in self._buffered:
            self.duplicates += 1
            return []
        if seq == self.next_expected:
            delivered = [(seq, chunk)]
            self.next_expected += 1
            while self.next_expected in self._buffered:
                delivered.append(
                    (self.next_expected, self._buffered.pop(self.next_expected))
                )
                self.next_expected += 1
            return delivered
        if len(self._buffered) >= self.capacity:
            error = BufferOverflowError(
                seq=seq,
                next_expected=self.next_expected,
                occupancy=len(self._buffered),
                capacity=self.capacity,
            )
            if self.trace is not None and self.trace.has_subscribers("recv.overflow"):
                self.trace.emit(
                    self.clock() if self.clock is not None else 0.0,
                    "recv.overflow",
                    seq=seq,
                    next_expected=self.next_expected,
                    occupancy=len(self._buffered),
                    capacity=self.capacity,
                )
            raise error
        self._buffered[seq] = chunk
        if len(self._buffered) > self.high_watermark:
            self.high_watermark = len(self._buffered)
        return []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ReorderBuffer next={self.next_expected} "
            f"buffered={len(self._buffered)}/{self.capacity}>"
        )
