"""Chunk-to-subflow schedulers for the MPTCP baseline.

Subflows pull data when their congestion window opens; the scheduler only
has to arbitrate when connection-level send credit (the advertised
receive window) is scarcer than the aggregate window space. The default
is the lowest-SRTT policy of production MPTCP stacks; round-robin is kept
for ablations.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Union

from repro.tcp.subflow import Subflow


class SubflowScheduler:
    """Interface: order subflows by transmission preference."""

    def preference_order(self, subflows: Sequence[Subflow]) -> List[Subflow]:
        raise NotImplementedError

    def prefers(self, subflow: Subflow, subflows: Sequence[Subflow]) -> bool:
        """Whether ``subflow`` is the most-preferred one with window space."""
        with_space = [candidate for candidate in subflows if candidate.window_space > 0]
        if not with_space:
            return False
        return self.preference_order(with_space)[0] is subflow


class MinRttScheduler(SubflowScheduler):
    """Prefer the subflow with the smallest smoothed RTT (Linux default)."""

    def preference_order(self, subflows: Sequence[Subflow]) -> List[Subflow]:
        return sorted(subflows, key=lambda subflow: (subflow.srtt, subflow.subflow_id))


class RoundRobinScheduler(SubflowScheduler):
    """Rotate preference across subflows, ignoring path quality."""

    def __init__(self) -> None:
        self._turn = 0

    def preference_order(self, subflows: Sequence[Subflow]) -> List[Subflow]:
        ordered = sorted(subflows, key=lambda subflow: subflow.subflow_id)
        if not ordered:
            return []
        pivot = self._turn % len(ordered)
        self._turn += 1
        return ordered[pivot:] + ordered[:pivot]


class WeightedScheduler(SubflowScheduler):
    """Order subflows by descending caller-supplied weight.

    The pluggable half of the decision layer on the MPTCP side: a policy
    (``repro.policy``) supplies ``weight_of`` and thereby controls which
    subflow gets first claim on scarce connection-level send credit. Ties
    (and the degenerate constant-weight case) fall back to subflow id.
    """

    def __init__(self, weight_of: Callable[[Subflow], float]):
        self.weight_of = weight_of

    def preference_order(self, subflows: Sequence[Subflow]) -> List[Subflow]:
        return sorted(
            subflows,
            key=lambda subflow: (-self.weight_of(subflow), subflow.subflow_id),
        )


def make_scheduler(kind: Union[str, SubflowScheduler]) -> SubflowScheduler:
    """Factory (``kind`` in {"minrtt", "roundrobin"} or a ready instance).

    Accepting an instance lets callers thread arbitrary policy-driven
    schedulers (e.g. :class:`WeightedScheduler`) through ``MptcpConfig``
    without widening the string vocabulary.
    """
    if isinstance(kind, SubflowScheduler):
        return kind
    if kind == "minrtt":
        return MinRttScheduler()
    if kind == "roundrobin":
        return RoundRobinScheduler()
    raise ValueError(f"unknown scheduler kind {kind!r}")
