"""Chunk-to-subflow schedulers for the MPTCP baseline.

Subflows pull data when their congestion window opens; the scheduler only
has to arbitrate when connection-level send credit (the advertised
receive window) is scarcer than the aggregate window space. The default
is the lowest-SRTT policy of production MPTCP stacks; round-robin is kept
for ablations.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.tcp.subflow import Subflow


class SubflowScheduler:
    """Interface: order subflows by transmission preference."""

    def preference_order(self, subflows: Sequence[Subflow]) -> List[Subflow]:
        raise NotImplementedError

    def prefers(self, subflow: Subflow, subflows: Sequence[Subflow]) -> bool:
        """Whether ``subflow`` is the most-preferred one with window space."""
        with_space = [candidate for candidate in subflows if candidate.window_space > 0]
        if not with_space:
            return False
        return self.preference_order(with_space)[0] is subflow


class MinRttScheduler(SubflowScheduler):
    """Prefer the subflow with the smallest smoothed RTT (Linux default)."""

    def preference_order(self, subflows: Sequence[Subflow]) -> List[Subflow]:
        return sorted(subflows, key=lambda subflow: (subflow.srtt, subflow.subflow_id))


class RoundRobinScheduler(SubflowScheduler):
    """Rotate preference across subflows, ignoring path quality."""

    def __init__(self) -> None:
        self._turn = 0

    def preference_order(self, subflows: Sequence[Subflow]) -> List[Subflow]:
        ordered = sorted(subflows, key=lambda subflow: subflow.subflow_id)
        if not ordered:
            return []
        pivot = self._turn % len(ordered)
        self._turn += 1
        return ordered[pivot:] + ordered[:pivot]


def make_scheduler(kind: str) -> SubflowScheduler:
    """Factory (``kind`` in {"minrtt", "roundrobin"})."""
    if kind == "minrtt":
        return MinRttScheduler()
    if kind == "roundrobin":
        return RoundRobinScheduler()
    raise ValueError(f"unknown scheduler kind {kind!r}")
