"""Packet-level network substrate (the ns-2 stand-in).

Provides hosts, source-routed forwarding, duplex links with bandwidth,
propagation delay and drop-tail queueing, pluggable loss models (Bernoulli,
scheduled/time-varying, Gilbert–Elliott), and topology builders — including
the paper's two-disjoint-path topology.
"""

from repro.net.corruption import (
    CORRUPTION_EFFECTS,
    BernoulliCorruption,
    CorruptedPayload,
    CorruptionModel,
    GilbertElliottCorruption,
    NoCorruption,
    corrupt_packet,
)
from repro.net.integrity import packet_checksum, payload_digest, seal, verify
from repro.net.loss import (
    BernoulliLoss,
    GilbertElliottLoss,
    LossModel,
    NoLoss,
    ReplayLoss,
    ScheduledLoss,
    record_loss_trace,
)
from repro.net.link import Link
from repro.net.monitors import QueueMonitor, UtilisationMonitor
from repro.net.reorder import NoReordering, ReorderingModel, UniformReordering
from repro.net.node import Node
from repro.net.packet import Packet
from repro.net.queues import DropTailQueue, RedQueue
from repro.net.topology import Network, Path, PathConfig, build_two_path_network

__all__ = [
    "BernoulliCorruption",
    "BernoulliLoss",
    "CORRUPTION_EFFECTS",
    "CorruptedPayload",
    "CorruptionModel",
    "DropTailQueue",
    "GilbertElliottCorruption",
    "GilbertElliottLoss",
    "Link",
    "LossModel",
    "Network",
    "NoCorruption",
    "NoLoss",
    "NoReordering",
    "QueueMonitor",
    "ReorderingModel",
    "UniformReordering",
    "Node",
    "Packet",
    "RedQueue",
    "ReplayLoss",
    "Path",
    "PathConfig",
    "ScheduledLoss",
    "UtilisationMonitor",
    "build_two_path_network",
    "corrupt_packet",
    "packet_checksum",
    "payload_digest",
    "record_loss_trace",
    "seal",
    "verify",
]
