"""Packet-level network substrate (the ns-2 stand-in).

Provides hosts, source-routed forwarding, duplex links with bandwidth,
propagation delay and drop-tail queueing, pluggable loss models (Bernoulli,
scheduled/time-varying, Gilbert–Elliott), and topology builders — including
the paper's two-disjoint-path topology.
"""

from repro.net.loss import (
    BernoulliLoss,
    GilbertElliottLoss,
    LossModel,
    NoLoss,
    ReplayLoss,
    ScheduledLoss,
    record_loss_trace,
)
from repro.net.link import Link
from repro.net.monitors import QueueMonitor, UtilisationMonitor
from repro.net.reorder import NoReordering, ReorderingModel, UniformReordering
from repro.net.node import Node
from repro.net.packet import Packet
from repro.net.queues import DropTailQueue, RedQueue
from repro.net.topology import Network, Path, PathConfig, build_two_path_network

__all__ = [
    "BernoulliLoss",
    "DropTailQueue",
    "GilbertElliottLoss",
    "Link",
    "LossModel",
    "Network",
    "NoLoss",
    "NoReordering",
    "QueueMonitor",
    "ReorderingModel",
    "UniformReordering",
    "Node",
    "Packet",
    "RedQueue",
    "ReplayLoss",
    "Path",
    "PathConfig",
    "ScheduledLoss",
    "UtilisationMonitor",
    "build_two_path_network",
    "record_loss_trace",
]
