"""Per-link packet corruption models.

Loss models decide whether a packet *disappears*; corruption models
decide whether its *content* is damaged in flight. Each model answers
once per packet leaving the wire, from the link's own named RNG stream,
so corruption realisations are reproducible and independent across
links — exactly the contract of :mod:`repro.net.loss`.

Three damage effects (the ``effect`` knob):

* ``bitflip`` — the payload is mutated in place on the wire (one
  flipped bit somewhere in the packet);
* ``truncate`` — the tail of the packet is cut off;
* ``duplicate`` — the packet arrives twice, the second copy mutated
  (a duplication-with-mutation fault, as produced by buggy middleboxes).

Two gating variants: :class:`BernoulliCorruption` (i.i.d. per packet)
and :class:`GilbertElliottCorruption` (two-state bursty, mirroring
:class:`~repro.net.loss.GilbertElliottLoss`).

Detectability: by default a corrupted packet keeps its stale link CRC
(:mod:`repro.net.integrity`), so the receiving subflow's verify-and-
discard turns corruption into loss. With probability ``evade_crc`` a
``bitflip``/``duplicate`` mutation instead *re-seals* the packet —
modelling a CRC collision — which requires a deep, content-level
mutation of the payload (the duck-typed ``integrity_mutate(rng)``
protocol). Payloads that carry no real content (statistical-mode
symbol groups, synthetic byte-count chunks) cannot be deeply mutated;
evasion then degrades to detectable corruption. Truncation is always
detectable: no checksum collision preserves a length change.

Mutation never touches sender-owned objects: ``integrity_mutate``
returns a mutated *copy*, and detectable corruption wraps the payload
in :class:`CorruptedPayload` without modifying it — the sender's
retransmission buffers stay clean, as on a real network.
"""

from __future__ import annotations

import random
from typing import Any, Optional, Tuple

from repro.net.integrity import payload_digest, seal
from repro.net.packet import Packet

#: Damage effects a corruption model can apply.
CORRUPTION_EFFECTS = ("bitflip", "truncate", "duplicate")


class CorruptedPayload:
    """Wrapper marking a payload damaged in flight (detectable variant).

    The wrapped payload object itself is untouched (the sender may still
    own it); the wrapper's digest differs from the inner payload's, so
    the packet's stale checksum no longer verifies. ``salt`` makes two
    corruptions of the same payload distinguishable.
    """

    __slots__ = ("inner", "effect", "salt")

    def __init__(self, inner: Any, effect: str, salt: int):
        self.inner = inner
        self.effect = effect
        self.salt = salt

    def integrity_digest(self) -> bytes:
        return (
            b"!corrupt:"
            + self.effect.encode()
            + b":"
            + self.salt.to_bytes(4, "big")
            + payload_digest(self.inner)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CorruptedPayload {self.effect} of {self.inner!r}>"


def _mutate_packet(packet: Packet, effect: str, rng: random.Random, evade_crc: float):
    """One damaged copy/wrap of ``packet`` (never the original object)."""
    if effect == "bitflip" and evade_crc > 0.0 and rng.random() < evade_crc:
        mutate = getattr(packet.payload, "integrity_mutate", None)
        mutated = mutate(rng) if mutate is not None else None
        if mutated is not None:
            # CRC collision: the damaged packet re-seals and sails past
            # the link-level check — only end-to-end integrity catches it.
            return seal(packet.clone(payload=mutated))
    damaged = packet.clone(
        payload=CorruptedPayload(packet.payload, effect, rng.getrandbits(32))
    )
    if effect == "truncate":
        damaged.size = max(1, packet.size - 1 - rng.randrange(packet.size))
    return damaged


def corrupt_packet(
    packet: Packet, effect: str, rng: random.Random, evade_crc: float = 0.0
) -> Tuple[Packet, ...]:
    """Apply one damage effect; returns the packets to deliver instead."""
    if effect not in CORRUPTION_EFFECTS:
        raise ValueError(f"unknown corruption effect {effect!r}")
    if effect == "duplicate":
        return (packet, _mutate_packet(packet, "bitflip", rng, evade_crc))
    return (_mutate_packet(packet, effect, rng, evade_crc),)


class CorruptionModel:
    """Interface: possibly damage a packet observed leaving the wire.

    ``apply`` returns ``None`` for a clean pass-through (the common case,
    and the only case that must draw no extra randomness when the rate is
    zero), or the tuple of packets to deliver in the original's place.
    """

    def apply(
        self, packet: Packet, now: float, rng: random.Random
    ) -> Optional[Tuple[Packet, ...]]:
        raise NotImplementedError

    def rate_at(self, now: float) -> float:
        """The (marginal) corruption probability at ``now``."""
        raise NotImplementedError


class NoCorruption(CorruptionModel):
    """A clean link."""

    def apply(self, packet, now, rng):
        return None

    def rate_at(self, now: float) -> float:
        return 0.0


def _validated(name: str, value: float, upper: float = 1.0) -> float:
    if not 0.0 <= value <= upper:
        raise ValueError(f"{name} must be in [0, {upper}], got {value}")
    return float(value)


class BernoulliCorruption(CorruptionModel):
    """Independent corruption with fixed probability ``rate``."""

    def __init__(self, rate: float, effect: str = "bitflip", evade_crc: float = 0.0):
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"corruption rate must be in [0, 1], got {rate}")
        if effect not in CORRUPTION_EFFECTS:
            raise ValueError(f"unknown corruption effect {effect!r}")
        self.rate = float(rate)
        self.effect = effect
        self.evade_crc = _validated("evade_crc", evade_crc)

    def apply(self, packet, now, rng):
        if self.rate <= 0.0 or rng.random() >= self.rate:
            return None
        return corrupt_packet(packet, self.effect, rng, self.evade_crc)

    def rate_at(self, now: float) -> float:
        return self.rate

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BernoulliCorruption({self.rate}, effect={self.effect!r}, "
            f"evade_crc={self.evade_crc})"
        )


class GilbertElliottCorruption(CorruptionModel):
    """Two-state Markov (Gilbert–Elliott) bursty corruption.

    Mirrors :class:`~repro.net.loss.GilbertElliottLoss`: the chain steps
    once per observed packet; packets are corrupted with
    ``corrupt_good``/``corrupt_bad`` depending on the state.
    """

    GOOD = 0
    BAD = 1

    def __init__(
        self,
        p_gb: float,
        p_bg: float,
        corrupt_good: float = 0.0,
        corrupt_bad: float = 0.3,
        effect: str = "bitflip",
        evade_crc: float = 0.0,
    ):
        for name, value in (
            ("p_gb", p_gb),
            ("p_bg", p_bg),
            ("corrupt_good", corrupt_good),
            ("corrupt_bad", corrupt_bad),
        ):
            _validated(name, value)
        if effect not in CORRUPTION_EFFECTS:
            raise ValueError(f"unknown corruption effect {effect!r}")
        self.p_gb = float(p_gb)
        self.p_bg = float(p_bg)
        self.corrupt_good = float(corrupt_good)
        self.corrupt_bad = float(corrupt_bad)
        self.effect = effect
        self.evade_crc = _validated("evade_crc", evade_crc)
        self.state = self.GOOD

    def stationary_bad_fraction(self) -> float:
        denominator = self.p_gb + self.p_bg
        if denominator == 0.0:
            return 0.0 if self.state == self.GOOD else 1.0
        return self.p_gb / denominator

    def rate_at(self, now: float) -> float:
        bad = self.stationary_bad_fraction()
        return (1.0 - bad) * self.corrupt_good + bad * self.corrupt_bad

    def apply(self, packet, now, rng):
        if self.state == self.GOOD:
            if rng.random() < self.p_gb:
                self.state = self.BAD
        else:
            if rng.random() < self.p_bg:
                self.state = self.GOOD
        rate = self.corrupt_good if self.state == self.GOOD else self.corrupt_bad
        if rate <= 0.0 or rng.random() >= rate:
            return None
        return corrupt_packet(packet, self.effect, rng, self.evade_crc)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GilbertElliottCorruption(p_gb={self.p_gb}, p_bg={self.p_bg}, "
            f"corrupt_good={self.corrupt_good}, corrupt_bad={self.corrupt_bad}, "
            f"effect={self.effect!r})"
        )
