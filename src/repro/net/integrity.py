"""Packet integrity: a cheap simulated CRC over header + payload.

Real TCP protects every segment with a checksum; this module is the
simulated equivalent. Because payloads in the simulator are Python
objects rather than wire bytes, the CRC is computed over a *structural
digest*: the packet's addressing/size header packed into bytes, plus a
canonical byte rendering of the payload obtained through the duck-typed
``integrity_digest()`` protocol (every transport payload class provides
one covering exactly its immutable wire-relevant fields).

``seal`` stamps :attr:`Packet.checksum`; ``verify`` recomputes and
compares. The corruption models in :mod:`repro.net.corruption` attack
the invariant from the other side: *detectable* corruption changes the
payload (so the digest changes and the stale checksum no longer
matches), while *CRC-evading* corruption mutates the payload and then
re-seals — modelling a checksum collision — so that only end-to-end
defenses (MPTCP's DSS checksum, FMTCP's block CRC and GF(2)
inconsistency detection) can catch it.

An unsealed packet (``checksum is None``) always verifies: integrity is
opt-in per transport, and raw packets built by unit tests keep working.
Sealing and verifying draw no randomness and change no behaviour on a
clean network, so enabling the layer is invisible to golden anchors.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any

from repro.net.packet import Packet

_HEADER = struct.Struct(">I")


def payload_digest(payload: Any) -> bytes:
    """Canonical byte rendering of a transport payload for checksumming.

    Order of preference: the payload's own ``integrity_digest()`` (the
    wire-relevant fields, chosen by each payload class), raw ``bytes``,
    ``None``/ints/floats/strs packed directly, and finally ``repr`` —
    which for plain objects includes the id, i.e. is stable for one
    object but differs for any replacement object, so wrapping a payload
    always changes the digest.
    """
    digest = getattr(payload, "integrity_digest", None)
    if digest is not None:
        return digest()
    if payload is None:
        return b"\x00none"
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return b"\x01" + bytes(payload)
    if isinstance(payload, bool):
        return b"\x02" + (b"\x01" if payload else b"\x00")
    if isinstance(payload, int):
        return b"\x03" + payload.to_bytes(
            max(1, (payload.bit_length() + 8) // 8), "big", signed=True
        )
    if isinstance(payload, float):
        return b"\x04" + struct.pack(">d", payload)
    if isinstance(payload, str):
        return b"\x05" + payload.encode("utf-8", "surrogatepass")
    if isinstance(payload, (tuple, list)):
        parts = [b"\x06", str(len(payload)).encode()]
        for item in payload:
            inner = payload_digest(item)
            parts.append(str(len(inner)).encode() + b":")
            parts.append(inner)
        return b"".join(parts)
    return b"\x07" + repr(payload).encode("utf-8", "backslashreplace")


def packet_checksum(packet: Packet) -> int:
    """CRC32 over the packet header fields and the payload digest.

    The simulator-internal ``uid`` is deliberately excluded: it is
    bookkeeping, not a wire field, and a duplicated packet (fresh uid,
    same wire contents) must carry a valid checksum.
    """
    header = _HEADER.pack(packet.size & 0xFFFFFFFF)
    crc = zlib.crc32(header)
    crc = zlib.crc32(
        f"{packet.src}>{packet.dst}:{packet.src_port}>{packet.dst_port}"
        f":{packet.flow_label or ''}".encode(),
        crc,
    )
    return zlib.crc32(payload_digest(packet.payload), crc)


def seal(packet: Packet) -> Packet:
    """Stamp the packet's checksum; returns the packet for chaining."""
    packet.checksum = packet_checksum(packet)
    return packet


def verify(packet: Packet) -> bool:
    """True iff the packet is unsealed or its checksum still matches.

    ``getattr`` rather than attribute access: handlers are fed duck-typed
    packet stand-ins in unit tests, and anything without a ``checksum``
    field is by definition unsealed.
    """
    if getattr(packet, "checksum", None) is None:
        return True
    return packet.checksum == packet_checksum(packet)
