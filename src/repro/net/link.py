"""Unidirectional links: serialisation delay + propagation delay + loss.

A link models the classic store-and-forward pipeline: packets wait in a
drop-tail queue while the link serialises the packet in service
(``size * 8 / bandwidth`` seconds), then propagate for ``delay`` seconds,
during which the link is already free to serialise the next packet. Loss
is sampled when the packet leaves the wire (an erasure en route).

Links are *mutable at runtime*: the fault-injection subsystem
(:mod:`repro.faults`) drives ``set_bandwidth`` / ``set_delay`` /
``set_loss_model`` / ``set_down`` / ``set_reordering_model`` mid-
simulation to model flapping, collapsing and dying paths. Mutations take
effect for packets entering the affected pipeline stage from then on:
a packet already being serialised keeps its old finish time, a packet
already propagating keeps its old arrival time.
"""

from __future__ import annotations

import math
import random
from typing import Optional

from repro.net.corruption import CorruptionModel
from repro.net.loss import LossModel, NoLoss
from repro.net.packet import Packet
from repro.net.queues import DropTailQueue
from repro.net.reorder import ReorderingModel
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.trace import TraceBus


def _check_bandwidth(bandwidth_bps: float, link: str) -> None:
    # `nan <= 0` is False, so a plain sign check would let NaN (and inf)
    # through into serialisation-time arithmetic — reject explicitly.
    if not math.isfinite(bandwidth_bps) or bandwidth_bps <= 0:
        raise ValueError(
            f"link {link!r}: bandwidth must be finite and positive, "
            f"got {bandwidth_bps!r}"
        )


def _check_delay(delay_s: float, link: str) -> None:
    if not math.isfinite(delay_s) or delay_s < 0:
        raise ValueError(
            f"link {link!r}: delay must be finite and non-negative, "
            f"got {delay_s!r}"
        )


class Link:
    """One direction of a network link between two nodes."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        dst_node,
        bandwidth_bps: float,
        delay_s: float,
        loss_model: Optional[LossModel] = None,
        queue: Optional[DropTailQueue] = None,
        rng: Optional[random.Random] = None,
        trace: Optional[TraceBus] = None,
        reordering_model: Optional[ReorderingModel] = None,
        corruption_model: Optional[CorruptionModel] = None,
    ):
        _check_bandwidth(bandwidth_bps, name)
        _check_delay(delay_s, name)
        self.sim = sim
        self.name = name
        self.dst_node = dst_node
        self.bandwidth_bps = float(bandwidth_bps)
        self.delay_s = float(delay_s)
        self.loss_model = loss_model if loss_model is not None else NoLoss()
        # `queue or ...` would discard a provided *empty* queue (it has
        # __len__ and is falsy), so compare against None explicitly.
        self.queue = queue if queue is not None else DropTailQueue()
        # Fallback RNG: a per-link stream derived from the link name, so
        # two links constructed without an explicit rng still see
        # *independent* loss realisations (a shared Random(0) would give
        # every such link the same drop sequence).
        self.rng = rng if rng is not None else RngStreams(0).get(f"link:{name}")
        self.trace = trace
        self.reordering_model = reordering_model
        self.corruption_model = corruption_model
        self._busy = False
        self._down = False
        # Counters for link-level accounting in tests and the Table I bench.
        self.packets_sent = 0
        self.packets_dropped_loss = 0
        self.packets_dropped_queue = 0
        self.packets_dropped_down = 0
        self.packets_corrupted = 0
        self.packets_delivered = 0
        self.bytes_delivered = 0

    # ------------------------------------------------------------------
    # Runtime mutation API (driven by repro.faults).
    # ------------------------------------------------------------------
    @property
    def is_down(self) -> bool:
        """Whether the link is administratively dead (drops everything)."""
        return self._down

    def set_bandwidth(self, bandwidth_bps: float) -> None:
        """Change the serialisation rate for packets not yet in service."""
        _check_bandwidth(bandwidth_bps, self.name)
        self.bandwidth_bps = float(bandwidth_bps)

    def set_delay(self, delay_s: float) -> None:
        """Change the propagation delay for packets not yet on the wire."""
        _check_delay(delay_s, self.name)
        self.delay_s = float(delay_s)

    def set_loss_model(self, loss_model: Optional[LossModel]) -> None:
        """Swap the loss model; ``None`` makes the link lossless."""
        self.loss_model = loss_model if loss_model is not None else NoLoss()

    def set_reordering_model(self, model: Optional[ReorderingModel]) -> None:
        """Install (or with ``None`` remove) a reordering model."""
        self.reordering_model = model

    def set_corruption_model(self, model: Optional[CorruptionModel]) -> None:
        """Install (or with ``None`` remove) a corruption model."""
        self.corruption_model = model

    def set_down(self, down: bool = True) -> None:
        """Kill (or revive) the link.

        While down, arriving packets are dropped at the entry point and
        packets finishing serialisation are dropped instead of
        propagating. Packets already propagating were past the cut and
        still arrive.
        """
        self._down = bool(down)
        if self.trace is not None:
            kind = "link.down" if self._down else "link.up"
            if self.trace.has_subscribers(kind):
                self.trace.emit(self.sim.now, kind, link=self.name)

    # ------------------------------------------------------------------
    # Data path.
    # ------------------------------------------------------------------
    def transmission_time(self, packet: Packet) -> float:
        """Serialisation delay of ``packet`` on this link."""
        return packet.size * 8.0 / self.bandwidth_bps

    def send(self, packet: Packet) -> None:
        """Entry point: queue the packet or start serialising immediately."""
        if self._down:
            self._drop_down(packet)
            return
        if self._busy:
            if not self.queue.try_enqueue(packet):
                self.packets_dropped_queue += 1
                if self.trace is not None and self.trace.has_subscribers(
                    "link.drop_queue"
                ):
                    self.trace.emit(
                        self.sim.now, "link.drop_queue", link=self.name, packet=packet
                    )
            return
        self._start_transmission(packet)

    def _drop_down(self, packet: Packet) -> None:
        self.packets_dropped_down += 1
        if self.trace is not None and self.trace.has_subscribers("link.drop_down"):
            self.trace.emit(
                self.sim.now, "link.drop_down", link=self.name, packet=packet
            )

    def _start_transmission(self, packet: Packet) -> None:
        self._busy = True
        self.packets_sent += 1
        self.sim.schedule(self.transmission_time(packet), self._finish_transmission, packet)

    def _finish_transmission(self, packet: Packet) -> None:
        # The wire is free again; pull the next queued packet, if any.
        self._busy = False
        next_packet = self.queue.dequeue()
        if next_packet is not None:
            self._start_transmission(next_packet)

        if self._down:
            self._drop_down(packet)
            return
        if self.loss_model.should_drop(self.sim.now, self.rng):
            self.packets_dropped_loss += 1
            if self.trace is not None and self.trace.has_subscribers(
                "link.drop_loss"
            ):
                self.trace.emit(
                    self.sim.now, "link.drop_loss", link=self.name, packet=packet
                )
            return
        delay = self.delay_s
        if self.reordering_model is not None:
            delay += self.reordering_model.extra_delay(self.sim.now, self.rng)
        if self.corruption_model is not None:
            damaged = self.corruption_model.apply(packet, self.sim.now, self.rng)
            if damaged is not None:
                self.packets_corrupted += 1
                if self.trace is not None and self.trace.has_subscribers(
                    "link.corrupt"
                ):
                    self.trace.emit(
                        self.sim.now, "link.corrupt", link=self.name, packet=packet
                    )
                for replacement in damaged:
                    self.sim.schedule(delay, self._deliver, replacement)
                return
        self.sim.schedule(delay, self._deliver, packet)

    def _deliver(self, packet: Packet) -> None:
        self.packets_delivered += 1
        self.bytes_delivered += packet.size
        if self.trace is not None and self.trace.has_subscribers("link.deliver"):
            self.trace.emit(self.sim.now, "link.deliver", link=self.name, packet=packet)
        self.dst_node.receive(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " DOWN" if self._down else ""
        return (
            f"<Link {self.name} {self.bandwidth_bps / 1e6:.1f}Mbps "
            f"{self.delay_s * 1e3:.1f}ms loss={self.loss_model!r}{state}>"
        )
