"""Unidirectional links: serialisation delay + propagation delay + loss.

A link models the classic store-and-forward pipeline: packets wait in a
drop-tail queue while the link serialises the packet in service
(``size * 8 / bandwidth`` seconds), then propagate for ``delay`` seconds,
during which the link is already free to serialise the next packet. Loss
is sampled when the packet leaves the wire (an erasure en route).
"""

from __future__ import annotations

import random
from typing import Optional

from repro.net.loss import LossModel, NoLoss
from repro.net.packet import Packet
from repro.net.queues import DropTailQueue
from repro.sim.engine import Simulator
from repro.sim.trace import TraceBus


class Link:
    """One direction of a network link between two nodes."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        dst_node,
        bandwidth_bps: float,
        delay_s: float,
        loss_model: Optional[LossModel] = None,
        queue: Optional[DropTailQueue] = None,
        rng: Optional[random.Random] = None,
        trace: Optional[TraceBus] = None,
    ):
        if bandwidth_bps <= 0:
            raise ValueError(f"bandwidth must be positive, got {bandwidth_bps}")
        if delay_s < 0:
            raise ValueError(f"delay must be non-negative, got {delay_s}")
        self.sim = sim
        self.name = name
        self.dst_node = dst_node
        self.bandwidth_bps = float(bandwidth_bps)
        self.delay_s = float(delay_s)
        self.loss_model = loss_model if loss_model is not None else NoLoss()
        # `queue or ...` would discard a provided *empty* queue (it has
        # __len__ and is falsy), so compare against None explicitly.
        self.queue = queue if queue is not None else DropTailQueue()
        self.rng = rng or random.Random(0)
        self.trace = trace
        self._busy = False
        # Counters for link-level accounting in tests and the Table I bench.
        self.packets_sent = 0
        self.packets_dropped_loss = 0
        self.packets_dropped_queue = 0
        self.packets_delivered = 0
        self.bytes_delivered = 0

    def transmission_time(self, packet: Packet) -> float:
        """Serialisation delay of ``packet`` on this link."""
        return packet.size * 8.0 / self.bandwidth_bps

    def send(self, packet: Packet) -> None:
        """Entry point: queue the packet or start serialising immediately."""
        if self._busy:
            if not self.queue.try_enqueue(packet):
                self.packets_dropped_queue += 1
                if self.trace is not None:
                    self.trace.emit(
                        self.sim.now, "link.drop_queue", link=self.name, packet=packet
                    )
            return
        self._start_transmission(packet)

    def _start_transmission(self, packet: Packet) -> None:
        self._busy = True
        self.packets_sent += 1
        self.sim.schedule(self.transmission_time(packet), self._finish_transmission, packet)

    def _finish_transmission(self, packet: Packet) -> None:
        # The wire is free again; pull the next queued packet, if any.
        self._busy = False
        next_packet = self.queue.dequeue()
        if next_packet is not None:
            self._start_transmission(next_packet)

        if self.loss_model.should_drop(self.sim.now, self.rng):
            self.packets_dropped_loss += 1
            if self.trace is not None:
                self.trace.emit(
                    self.sim.now, "link.drop_loss", link=self.name, packet=packet
                )
            return
        self.sim.schedule(self.delay_s, self._deliver, packet)

    def _deliver(self, packet: Packet) -> None:
        self.packets_delivered += 1
        self.bytes_delivered += packet.size
        if self.trace is not None and self.trace.has_subscribers("link.deliver"):
            self.trace.emit(self.sim.now, "link.deliver", link=self.name, packet=packet)
        self.dst_node.receive(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Link {self.name} {self.bandwidth_bps / 1e6:.1f}Mbps "
            f"{self.delay_s * 1e3:.1f}ms loss={self.loss_model!r}>"
        )
