"""Per-link packet loss models.

Each model answers one question per packet — should this packet be
dropped? — from its own named RNG stream, so loss realisations are
reproducible and independent across links.

Three models cover the paper's needs plus one common extension:

* :class:`BernoulliLoss` — i.i.d. loss at a fixed rate (Table I sweeps).
* :class:`ScheduledLoss` — piecewise-constant rate over time (the Fig. 4
  loss surge: 1 % → 25/35 % at t=50 s → 1 % at t=200 s).
* :class:`GilbertElliottLoss` — two-state bursty loss (extension; the
  paper's "bursty packet losses" language maps naturally onto it).
"""

from __future__ import annotations

import bisect
import random
from typing import List, Optional, Sequence, Tuple


class LossModel:
    """Interface: decide whether a packet observed at ``now`` is dropped."""

    def should_drop(self, now: float, rng: random.Random) -> bool:
        raise NotImplementedError

    def rate_at(self, now: float) -> float:
        """The (marginal) loss probability at time ``now``; for estimators/tests."""
        raise NotImplementedError


class NoLoss(LossModel):
    """A lossless link."""

    def should_drop(self, now: float, rng: random.Random) -> bool:
        return False

    def rate_at(self, now: float) -> float:
        return 0.0


class BernoulliLoss(LossModel):
    """Independent loss with fixed probability ``rate``."""

    def __init__(self, rate: float):
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"loss rate must be in [0, 1), got {rate}")
        self.rate = rate

    def should_drop(self, now: float, rng: random.Random) -> bool:
        return self.rate > 0.0 and rng.random() < self.rate

    def rate_at(self, now: float) -> float:
        return self.rate

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BernoulliLoss({self.rate})"


class ScheduledLoss(LossModel):
    """Piecewise-constant Bernoulli loss.

    ``segments`` is a list of ``(start_time, rate)`` pairs; the rate in
    effect is the one with the greatest ``start_time <= now``. Segments are
    sorted on construction; the first segment should start at 0.
    """

    def __init__(self, segments: Sequence[Tuple[float, float]]):
        if not segments:
            raise ValueError("ScheduledLoss needs at least one segment")
        ordered = sorted(segments)
        for __, rate in ordered:
            if not 0.0 <= rate < 1.0:
                raise ValueError(f"loss rate must be in [0, 1), got {rate}")
        self._starts: List[float] = [start for start, __ in ordered]
        self._rates: List[float] = [rate for __, rate in ordered]
        if self._starts[0] > 0.0:
            # Before the first explicit segment the link is lossless.
            self._starts.insert(0, 0.0)
            self._rates.insert(0, 0.0)

    def rate_at(self, now: float) -> float:
        index = bisect.bisect_right(self._starts, now) - 1
        return self._rates[max(index, 0)]

    def should_drop(self, now: float, rng: random.Random) -> bool:
        rate = self.rate_at(now)
        return rate > 0.0 and rng.random() < rate

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        segments = list(zip(self._starts, self._rates))
        return f"ScheduledLoss({segments})"


class ReplayLoss(LossModel):
    """Replays a recorded per-packet drop sequence.

    Lets experiments reuse an exact loss realisation — e.g. captured from
    a Gilbert-Elliott run via :func:`record_loss_trace`, or derived from a
    real packet trace — so two protocols face *identical* channel
    adversity rather than merely identically-distributed adversity.
    """

    def __init__(self, outcomes: Sequence[bool], repeat: bool = False):
        if not outcomes:
            raise ValueError("need at least one recorded outcome")
        self._outcomes = list(bool(outcome) for outcome in outcomes)
        self.repeat = repeat
        self._index = 0
        self.exhausted = False

    def rate_at(self, now: float) -> float:
        return sum(self._outcomes) / len(self._outcomes)

    def should_drop(self, now: float, rng: random.Random) -> bool:
        if self._index >= len(self._outcomes):
            if not self.repeat:
                self.exhausted = True
                return False
            self._index = 0
        outcome = self._outcomes[self._index]
        self._index += 1
        return outcome

    def reset(self) -> None:
        """Rewind to the start of the recording."""
        self._index = 0
        self.exhausted = False


def record_loss_trace(
    model: LossModel, packets: int, rng: Optional[random.Random] = None
) -> List[bool]:
    """Sample ``packets`` drop outcomes from any model into a replayable list."""
    if packets < 1:
        raise ValueError("packets must be >= 1")
    rng = rng if rng is not None else random.Random(0)
    return [model.should_drop(0.0, rng) for __ in range(packets)]


class GilbertElliottLoss(LossModel):
    """Two-state Markov (Gilbert–Elliott) bursty loss.

    The chain steps once per observed packet. In the GOOD state packets
    drop with ``loss_good``; in BAD with ``loss_bad``. ``p_gb``/``p_bg``
    are per-packet transition probabilities GOOD→BAD and BAD→GOOD.
    """

    GOOD = 0
    BAD = 1

    def __init__(
        self,
        p_gb: float,
        p_bg: float,
        loss_good: float = 0.0,
        loss_bad: float = 0.5,
    ):
        for name, value in (
            ("p_gb", p_gb),
            ("p_bg", p_bg),
            ("loss_good", loss_good),
            ("loss_bad", loss_bad),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        self.p_gb = p_gb
        self.p_bg = p_bg
        self.loss_good = loss_good
        self.loss_bad = loss_bad
        self.state = self.GOOD

    def stationary_bad_fraction(self) -> float:
        """Long-run fraction of time spent in the BAD state."""
        denominator = self.p_gb + self.p_bg
        if denominator == 0.0:
            return 0.0 if self.state == self.GOOD else 1.0
        return self.p_gb / denominator

    def rate_at(self, now: float) -> float:
        """Stationary marginal loss rate (state-averaged)."""
        bad = self.stationary_bad_fraction()
        return (1.0 - bad) * self.loss_good + bad * self.loss_bad

    def should_drop(self, now: float, rng: random.Random) -> bool:
        if self.state == self.GOOD:
            if rng.random() < self.p_gb:
                self.state = self.BAD
        else:
            if rng.random() < self.p_bg:
                self.state = self.GOOD
        loss = self.loss_good if self.state == self.GOOD else self.loss_bad
        return loss > 0.0 and rng.random() < loss

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GilbertElliottLoss(p_gb={self.p_gb}, p_bg={self.p_bg}, "
            f"loss_good={self.loss_good}, loss_bad={self.loss_bad})"
        )
