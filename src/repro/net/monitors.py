"""Periodic samplers for link and queue state.

The trace bus reports *events*; these monitors sample *state* — queue
occupancy, link utilisation — at a fixed period, producing the
time-series a network operator would plot. Used by tests to verify
queueing behaviour (bufferbloat under Reno, RED keeping queues short) and
available for diagnostics in experiments.

Monitors cancel their pending sample event on ``stop()``, so an attached
monitor never keeps the event heap alive after the run is torn down (the
chaos-soak harness asserts ``pending_events == 0`` after close).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.net.link import Link
from repro.sim.engine import Event, Simulator


class QueueMonitor:
    """Samples a link's queue depth every ``period_s`` seconds."""

    def __init__(self, sim: Simulator, link: Link, period_s: float = 0.1):
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        self.sim = sim
        self.link = link
        self.period_s = period_s
        self.samples: List[Tuple[float, int]] = []
        self._running = False
        self._pending: Optional[Event] = None

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._pending = self.sim.schedule(self.period_s, self._sample)

    def stop(self) -> None:
        self._running = False
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    def _sample(self) -> None:
        self._pending = None
        if not self._running:
            return
        self.samples.append((self.sim.now, len(self.link.queue)))
        self._pending = self.sim.schedule(self.period_s, self._sample)

    def mean_depth(self) -> float:
        if not self.samples:
            return 0.0
        return sum(depth for __, depth in self.samples) / len(self.samples)

    def max_depth(self) -> int:
        if not self.samples:
            return 0
        return max(depth for __, depth in self.samples)


class UtilisationMonitor:
    """Samples a link's delivered-byte throughput per period.

    Utilisation is measured against the link's configured bandwidth, so a
    value of 1.0 means the wire was busy for the whole period.
    """

    def __init__(self, sim: Simulator, link: Link, period_s: float = 1.0):
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        self.sim = sim
        self.link = link
        self.period_s = period_s
        self.samples: List[Tuple[float, float]] = []
        self._last_bytes = 0
        self._running = False
        self._pending: Optional[Event] = None

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._last_bytes = self.link.bytes_delivered
        self._pending = self.sim.schedule(self.period_s, self._sample)

    def stop(self) -> None:
        self._running = False
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    def _sample(self) -> None:
        self._pending = None
        if not self._running:
            return
        delivered = self.link.bytes_delivered - self._last_bytes
        self._last_bytes = self.link.bytes_delivered
        utilisation = delivered * 8.0 / self.period_s / self.link.bandwidth_bps
        self.samples.append((self.sim.now, utilisation))
        self._pending = self.sim.schedule(self.period_s, self._sample)

    def mean_utilisation(self) -> float:
        if not self.samples:
            return 0.0
        return sum(value for __, value in self.samples) / len(self.samples)
