"""Nodes: endpoints and forwarders.

Packets are source-routed — they carry the remaining chain of links — so a
node's forwarding job is just "push onto the next link". At the end of the
route, the node delivers the packet to the transport agent bound to the
destination port.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from repro.net.packet import Packet
from repro.sim.trace import TraceBus

PortHandler = Callable[[Packet], Any]


class Node:
    """A host or router."""

    def __init__(self, name: str, trace: Optional[TraceBus] = None):
        self.name = name
        self.trace = trace
        self._ports: Dict[int, PortHandler] = {}
        self._next_ephemeral = 49152
        self.packets_received = 0
        self.packets_forwarded = 0
        self.packets_undeliverable = 0

    def bind(self, port: int, handler: PortHandler) -> None:
        """Register ``handler`` to receive packets addressed to ``port``."""
        if port in self._ports:
            raise ValueError(f"port {port} already bound on node {self.name}")
        self._ports[port] = handler

    def unbind(self, port: int) -> None:
        self._ports.pop(port, None)

    def allocate_port(self) -> int:
        """Hand out an unused ephemeral port number."""
        while self._next_ephemeral in self._ports:
            self._next_ephemeral += 1
        port = self._next_ephemeral
        self._next_ephemeral += 1
        return port

    def receive(self, packet: Packet) -> None:
        """Forward along the source route, or deliver locally at its end."""
        next_link = packet.next_link()
        if next_link is not None:
            self.packets_forwarded += 1
            next_link.send(packet)
            return
        self.packets_received += 1
        handler = self._ports.get(packet.dst_port)
        if handler is None:
            self.packets_undeliverable += 1
            return
        handler(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.name} ports={sorted(self._ports)}>"
