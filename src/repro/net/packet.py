"""The simulated packet.

A packet carries an opaque transport payload plus the little header state
the substrate needs: a size in bytes (for serialisation delay), a source
route (the remaining chain of links to traverse), and addressing
(destination node / port) for final delivery.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional, Tuple

_uid_counter = itertools.count()


class Packet:
    """One simulated datagram.

    ``payload`` is whatever object the sending transport put in; the
    substrate never inspects it. ``size`` is the on-the-wire size in bytes
    and drives transmission delay on links.
    """

    __slots__ = (
        "uid",
        "size",
        "src",
        "dst",
        "src_port",
        "dst_port",
        "payload",
        "route",
        "route_index",
        "sent_at",
        "flow_label",
        "checksum",
    )

    def __init__(
        self,
        size: int,
        src: str,
        dst: str,
        src_port: int,
        dst_port: int,
        payload: Any = None,
        flow_label: Optional[str] = None,
    ):
        if size <= 0:
            raise ValueError(f"packet size must be positive, got {size}")
        self.uid = next(_uid_counter)
        self.size = int(size)
        self.src = src
        self.dst = dst
        self.src_port = src_port
        self.dst_port = dst_port
        self.payload = payload
        self.route: Tuple[Any, ...] = ()
        self.route_index = 0
        self.sent_at: Optional[float] = None
        self.flow_label = flow_label
        # Set by repro.net.integrity.seal; None means unsealed (always
        # verifies, so transports opt in per packet).
        self.checksum: Optional[int] = None

    def clone(self, payload: Any = None) -> "Packet":
        """A mid-flight copy (fresh uid) continuing the same journey.

        Used by corruption models that duplicate a packet on the wire:
        the copy keeps the original's routing progress, timestamps and
        checksum, optionally with ``payload`` substituted.
        """
        copy = Packet(
            size=self.size,
            src=self.src,
            dst=self.dst,
            src_port=self.src_port,
            dst_port=self.dst_port,
            payload=self.payload if payload is None else payload,
            flow_label=self.flow_label,
        )
        copy.route = self.route
        copy.route_index = self.route_index
        copy.sent_at = self.sent_at
        copy.checksum = self.checksum
        return copy

    def next_link(self):
        """Pop the next hop off the source route; ``None`` at the endpoint."""
        if self.route_index >= len(self.route):
            return None
        link = self.route[self.route_index]
        self.route_index += 1
        return link

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Packet #{self.uid} {self.src}:{self.src_port}->"
            f"{self.dst}:{self.dst_port} {self.size}B {self.flow_label or ''}>"
        )
