"""Link queues.

Drop-tail is ns-2's default and what the reproduction uses;
:class:`RedQueue` (Random Early Detection) is provided as the classic
alternative AQM so congestion-control behaviour can be studied without
bufferbloat-driven standing queues.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Optional

from repro.net.packet import Packet


class DropTailQueue:
    """FIFO queue with a hard capacity in packets.

    ``capacity`` follows the ns-2 convention of counting the packet in
    service as part of queue occupancy is *not* used here: capacity limits
    only waiting packets; the link holds the in-service packet itself.
    """

    def __init__(self, capacity: int = 100):
        if capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._queue: Deque[Packet] = deque()
        self.drops = 0
        self.enqueues = 0
        self.high_watermark = 0

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def occupancy_bytes(self) -> int:
        return sum(packet.size for packet in self._queue)

    def try_enqueue(self, packet: Packet) -> bool:
        """Append ``packet``; returns False (a tail drop) when full."""
        if len(self._queue) >= self.capacity:
            self.drops += 1
            return False
        self._queue.append(packet)
        self.enqueues += 1
        if len(self._queue) > self.high_watermark:
            self.high_watermark = len(self._queue)
        return True

    def dequeue(self) -> Optional[Packet]:
        """Pop the head packet, or ``None`` when empty."""
        if not self._queue:
            return None
        return self._queue.popleft()

    def clear(self) -> None:
        self._queue.clear()


class RedQueue(DropTailQueue):
    """Random Early Detection (Floyd & Jacobson 1993), packet-counted.

    Maintains an EWMA of queue occupancy; between ``min_threshold`` and
    ``max_threshold`` packets are dropped with probability ramping to
    ``max_probability`` (spread out by the standard count mechanism);
    above ``max_threshold`` every arrival is dropped. Falls back to tail
    drop at the hard ``capacity``.
    """

    def __init__(
        self,
        capacity: int = 100,
        min_threshold: int = 5,
        max_threshold: int = 15,
        max_probability: float = 0.1,
        weight: float = 0.002,
        rng: Optional[random.Random] = None,
    ):
        super().__init__(capacity)
        if not 0 <= min_threshold < max_threshold <= capacity:
            raise ValueError(
                "require 0 <= min_threshold < max_threshold <= capacity"
            )
        if not 0.0 < max_probability <= 1.0:
            raise ValueError("max_probability must be in (0, 1]")
        if not 0.0 < weight <= 1.0:
            raise ValueError("weight must be in (0, 1]")
        self.min_threshold = min_threshold
        self.max_threshold = max_threshold
        self.max_probability = max_probability
        self.weight = weight
        self._rng = rng or random.Random(0)
        self.average_queue = 0.0
        self._count_since_drop = -1
        self.early_drops = 0

    def _update_average(self) -> None:
        self.average_queue = (
            (1.0 - self.weight) * self.average_queue + self.weight * len(self._queue)
        )

    def _early_drop(self) -> bool:
        if self.average_queue < self.min_threshold:
            self._count_since_drop = -1
            return False
        if self.average_queue >= self.max_threshold:
            self._count_since_drop = 0
            return True
        self._count_since_drop += 1
        fraction = (self.average_queue - self.min_threshold) / (
            self.max_threshold - self.min_threshold
        )
        base_probability = self.max_probability * fraction
        denominator = 1.0 - self._count_since_drop * base_probability
        probability = (
            base_probability / denominator if denominator > 0 else 1.0
        )
        if self._rng.random() < probability:
            self._count_since_drop = 0
            return True
        return False

    def try_enqueue(self, packet: Packet) -> bool:
        self._update_average()
        if self._early_drop():
            self.drops += 1
            self.early_drops += 1
            return False
        return super().try_enqueue(packet)
