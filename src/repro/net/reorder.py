"""Per-link packet reordering models.

A reordering model sits next to :class:`~repro.net.loss.LossModel` in the
link pipeline: where a loss model decides *whether* a packet leaves the
wire, a reordering model decides *when* it arrives — by adding an extra
propagation delay to a subset of packets, which lets later packets
overtake them. Transports see the classic symptoms: duplicate-ACK storms,
spurious loss declarations and receive-buffer churn.

Like loss models, a reordering model draws from the link's own named RNG
stream, so realisations are reproducible and independent across links.
"""

from __future__ import annotations

import random


class ReorderingModel:
    """Interface: extra propagation delay for a packet departing at ``now``."""

    def extra_delay(self, now: float, rng: random.Random) -> float:
        raise NotImplementedError


class NoReordering(ReorderingModel):
    """Strictly in-order delivery (the default wire behaviour)."""

    def extra_delay(self, now: float, rng: random.Random) -> float:
        return 0.0


class UniformReordering(ReorderingModel):
    """Delay a fraction of packets by a uniform extra propagation time.

    With probability ``probability`` a packet is held back for an extra
    delay drawn uniformly from ``[min_extra_s, max_extra_s]`` — long
    enough (relative to the link's serialisation time) and later packets
    arrive first.
    """

    def __init__(
        self,
        probability: float,
        min_extra_s: float = 0.0,
        max_extra_s: float = 0.1,
    ):
        if not 0.0 <= probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {probability}")
        if min_extra_s < 0.0 or max_extra_s < min_extra_s:
            raise ValueError(
                f"require 0 <= min_extra_s <= max_extra_s, got "
                f"[{min_extra_s}, {max_extra_s}]"
            )
        self.probability = probability
        self.min_extra_s = min_extra_s
        self.max_extra_s = max_extra_s
        self.packets_reordered = 0

    def extra_delay(self, now: float, rng: random.Random) -> float:
        if self.probability <= 0.0 or rng.random() >= self.probability:
            return 0.0
        self.packets_reordered += 1
        return rng.uniform(self.min_extra_s, self.max_extra_s)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"UniformReordering(p={self.probability}, "
            f"extra=[{self.min_extra_s}, {self.max_extra_s}]s)"
        )
