"""Network container and topology builders.

:class:`Network` owns the nodes and links of a scenario and can assemble
:class:`Path` objects — the duplex, source-routed pipes that transport
subflows ride on. :func:`build_two_path_network` constructs the paper's
evaluation topology: a sender and receiver joined by two disjoint paths
with independently configurable bandwidth, one-way delay and loss.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.net.link import Link
from repro.net.loss import BernoulliLoss, LossModel, NoLoss
from repro.net.node import Node
from repro.net.packet import Packet
from repro.net.queues import DropTailQueue
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.trace import TraceBus


@dataclass
class PathConfig:
    """Declarative description of one path of the evaluation topology.

    ``delay_s`` is the one-way propagation delay (Table I convention, see
    DESIGN.md §3.5); ``loss_model`` overrides ``loss_rate`` when given.
    """

    bandwidth_bps: float = 4e6
    delay_s: float = 0.100
    loss_rate: float = 0.0
    loss_model: Optional[LossModel] = None
    queue_capacity: int = 100
    lossy_reverse: bool = False
    # Optional factory for the forward-direction queue (e.g. a RedQueue);
    # None means a DropTailQueue of queue_capacity.
    queue_factory: Optional[Callable[[], DropTailQueue]] = None

    def make_queue(self) -> DropTailQueue:
        if self.queue_factory is not None:
            return self.queue_factory()
        return DropTailQueue(self.queue_capacity)

    def make_loss_model(self) -> LossModel:
        if self.loss_model is not None:
            return self.loss_model
        if self.loss_rate > 0.0:
            return BernoulliLoss(self.loss_rate)
        return NoLoss()


class Path:
    """A duplex, source-routed pipe between two endpoint nodes.

    Transports hand fully-addressed packets to :meth:`send_forward` /
    :meth:`send_reverse`; the path stamps the source route and injects the
    packet onto the first link.
    """

    def __init__(
        self,
        name: str,
        src_node: Node,
        dst_node: Node,
        forward_links: Sequence[Link],
        reverse_links: Sequence[Link],
    ):
        if not forward_links or not reverse_links:
            raise ValueError("a path needs at least one link in each direction")
        self.name = name
        self.src_node = src_node
        self.dst_node = dst_node
        self.forward_links: Tuple[Link, ...] = tuple(forward_links)
        self.reverse_links: Tuple[Link, ...] = tuple(reverse_links)

    @property
    def one_way_delay_s(self) -> float:
        """Sum of propagation delays along the forward direction."""
        return sum(link.delay_s for link in self.forward_links)

    @property
    def bottleneck_bandwidth_bps(self) -> float:
        return min(link.bandwidth_bps for link in self.forward_links)

    def forward_loss_rate(self, now: float = 0.0) -> float:
        """Combined (independent) loss probability of the forward direction."""
        survive = 1.0
        for link in self.forward_links:
            survive *= 1.0 - link.loss_model.rate_at(now)
        return 1.0 - survive

    def _send(self, packet: Packet, links: Tuple[Link, ...]) -> None:
        packet.route = links
        packet.route_index = 1
        links[0].send(packet)

    def send_forward(self, packet: Packet) -> None:
        self._send(packet, self.forward_links)

    def send_reverse(self, packet: Packet) -> None:
        self._send(packet, self.reverse_links)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Path {self.name} {self.src_node.name}->{self.dst_node.name} "
            f"{len(self.forward_links)} hop(s)>"
        )


class Network:
    """A simulation scenario's nodes and links, plus shared services."""

    def __init__(
        self,
        sim: Optional[Simulator] = None,
        rng: Optional[RngStreams] = None,
        trace: Optional[TraceBus] = None,
    ):
        self.sim = sim or Simulator()
        self.rng = rng or RngStreams(0)
        self.trace = trace or TraceBus()
        self.nodes: Dict[str, Node] = {}
        self.links: List[Link] = []
        self._adjacency: Dict[str, Dict[str, Link]] = {}

    def add_node(self, name: str) -> Node:
        if name in self.nodes:
            raise ValueError(f"duplicate node name {name!r}")
        node = Node(name, trace=self.trace)
        self.nodes[name] = node
        self._adjacency[name] = {}
        return node

    def node(self, name: str) -> Node:
        return self.nodes[name]

    def add_link(
        self,
        src: str,
        dst: str,
        bandwidth_bps: float,
        delay_s: float,
        loss_model: Optional[LossModel] = None,
        queue_capacity: int = 100,
    ) -> Link:
        """Add one unidirectional link from ``src`` to ``dst``."""
        if src not in self.nodes or dst not in self.nodes:
            raise KeyError(f"both endpoints must exist: {src!r}, {dst!r}")
        name = f"{src}->{dst}"
        link = Link(
            sim=self.sim,
            name=name,
            dst_node=self.nodes[dst],
            bandwidth_bps=bandwidth_bps,
            delay_s=delay_s,
            loss_model=loss_model,
            queue=DropTailQueue(queue_capacity),
            rng=self.rng.get(f"loss:{name}"),
            trace=self.trace,
        )
        self.links.append(link)
        self._adjacency[src][dst] = link
        return link

    def add_duplex_link(
        self,
        a: str,
        b: str,
        bandwidth_bps: float,
        delay_s: float,
        loss_forward: Optional[LossModel] = None,
        loss_reverse: Optional[LossModel] = None,
        queue_capacity: int = 100,
    ) -> Tuple[Link, Link]:
        forward = self.add_link(a, b, bandwidth_bps, delay_s, loss_forward, queue_capacity)
        reverse = self.add_link(b, a, bandwidth_bps, delay_s, loss_reverse, queue_capacity)
        return forward, reverse

    def link_between(self, src: str, dst: str) -> Link:
        return self._adjacency[src][dst]

    def shortest_route(self, src: str, dst: str) -> List[str]:
        """BFS hop-count route, for building paths in arbitrary topologies."""
        if src == dst:
            return [src]
        parents: Dict[str, str] = {}
        frontier = deque([src])
        seen = {src}
        while frontier:
            here = frontier.popleft()
            for neighbour in self._adjacency[here]:
                if neighbour in seen:
                    continue
                parents[neighbour] = here
                if neighbour == dst:
                    route = [dst]
                    while route[-1] != src:
                        route.append(parents[route[-1]])
                    route.reverse()
                    return route
                seen.add(neighbour)
                frontier.append(neighbour)
        raise ValueError(f"no route from {src!r} to {dst!r}")

    def attach_path(
        self, index: int, config: PathConfig, src: str = "src", dst: str = "dst"
    ) -> Path:
        """Attach one direct duplex path between two existing hosts.

        Works both at build time (``build_two_path_network`` routes its
        non-router branch through here) and at runtime — mobility
        scenarios attach a brand-new path mid-simulation, then hand it to
        ``Connection.add_subflow``. Link names (``src->dst#i``) and RNG
        stream names (``loss:path{i}:fwd``) are derived from ``index``
        only, so a path's loss realisation is identical whether it existed
        from t=0 or appeared later.
        """
        loss_forward = config.make_loss_model()
        loss_reverse = config.make_loss_model() if config.lossy_reverse else NoLoss()
        forward = Link(
            sim=self.sim,
            name=f"{src}->{dst}#{index}",
            dst_node=self.nodes[dst],
            bandwidth_bps=config.bandwidth_bps,
            delay_s=config.delay_s,
            loss_model=loss_forward,
            queue=config.make_queue(),
            rng=self.rng.get(f"loss:path{index}:fwd"),
            trace=self.trace,
        )
        reverse = Link(
            sim=self.sim,
            name=f"{dst}->{src}#{index}",
            dst_node=self.nodes[src],
            bandwidth_bps=config.bandwidth_bps,
            delay_s=config.delay_s,
            loss_model=loss_reverse,
            queue=DropTailQueue(config.queue_capacity),
            rng=self.rng.get(f"loss:path{index}:rev"),
            trace=self.trace,
        )
        self.links.extend([forward, reverse])
        return Path(
            name=f"path{index}",
            src_node=self.nodes[src],
            dst_node=self.nodes[dst],
            forward_links=[forward],
            reverse_links=[reverse],
        )

    def detach_path(self, path: Path) -> None:
        """Administratively remove a path: down its links, drop them here.

        Packets already serialising or propagating are lost (cable-pull
        semantics, same as ``Link.set_down``); the Path object stays valid
        so a later :meth:`attach_path` with the same index — or simply
        re-raising the links — can bring the route back.
        """
        for link in (*path.forward_links, *path.reverse_links):
            if not link.is_down:
                link.set_down(True)
            if link in self.links:
                self.links.remove(link)

    def make_path(self, name: str, node_names: Sequence[str]) -> Path:
        """Build a duplex :class:`Path` along an explicit chain of nodes."""
        if len(node_names) < 2:
            raise ValueError("a path needs at least two nodes")
        forward = [
            self.link_between(a, b) for a, b in zip(node_names, node_names[1:])
        ]
        reversed_names = list(reversed(node_names))
        reverse = [
            self.link_between(a, b) for a, b in zip(reversed_names, reversed_names[1:])
        ]
        return Path(
            name=name,
            src_node=self.nodes[node_names[0]],
            dst_node=self.nodes[node_names[-1]],
            forward_links=forward,
            reverse_links=reverse,
        )


def build_shared_bottleneck_network(
    n_endpoints: int,
    bottleneck_bps: float = 10e6,
    bottleneck_delay_s: float = 0.020,
    bottleneck_queue: int = 100,
    edge_bps: float = 1e9,
    edge_delay_s: float = 0.001,
    loss_model: Optional[LossModel] = None,
    sim: Optional[Simulator] = None,
    rng: Optional[RngStreams] = None,
    trace: Optional[TraceBus] = None,
) -> Tuple[Network, List[Path]]:
    """A dumbbell: N senders share one bottleneck link to one receiver.

    Used by the TCP-friendliness experiments (paper Section III-A):
    competing connections each get a :class:`Path` src_i → gw → dst whose
    middle hop is the shared bottleneck, so their packets contend in the
    same drop-tail queue.
    """
    if n_endpoints < 1:
        raise ValueError("need at least one endpoint")
    network = Network(sim=sim, rng=rng, trace=trace)
    network.add_node("gw")
    network.add_node("dst")
    network.add_duplex_link(
        "gw",
        "dst",
        bandwidth_bps=bottleneck_bps,
        delay_s=bottleneck_delay_s,
        loss_forward=loss_model,
        queue_capacity=bottleneck_queue,
    )
    paths: List[Path] = []
    for index in range(n_endpoints):
        name = f"src{index}"
        network.add_node(name)
        network.add_duplex_link(
            name, "gw", bandwidth_bps=edge_bps, delay_s=edge_delay_s,
            queue_capacity=1000,
        )
        paths.append(network.make_path(f"flow{index}", [name, "gw", "dst"]))
    return network, paths


def build_two_path_network(
    path_configs: Sequence[PathConfig],
    sim: Optional[Simulator] = None,
    rng: Optional[RngStreams] = None,
    trace: Optional[TraceBus] = None,
    with_edge_routers: bool = False,
) -> Tuple[Network, List[Path]]:
    """The paper's evaluation topology: N disjoint paths between two hosts.

    With ``with_edge_routers`` each path runs src → router_i → dst with a
    fast lossless edge hop and the configured bottleneck hop; without (the
    default, cheaper in events) each path is a single duplex link carrying
    the configured bandwidth/delay/loss.
    """
    if not path_configs:
        raise ValueError("need at least one PathConfig")
    network = Network(sim=sim, rng=rng, trace=trace)
    network.add_node("src")
    network.add_node("dst")
    paths: List[Path] = []
    for index, config in enumerate(path_configs):
        if with_edge_routers:
            loss_forward = config.make_loss_model()
            loss_reverse = (
                config.make_loss_model() if config.lossy_reverse else NoLoss()
            )
            router = f"r{index}"
            network.add_node(router)
            network.add_duplex_link(
                "src", router, bandwidth_bps=1e9, delay_s=0.0001, queue_capacity=1000
            )
            network.add_duplex_link(
                router,
                "dst",
                bandwidth_bps=config.bandwidth_bps,
                delay_s=config.delay_s,
                loss_forward=loss_forward,
                loss_reverse=loss_reverse,
                queue_capacity=config.queue_capacity,
            )
            paths.append(network.make_path(f"path{index}", ["src", router, "dst"]))
        else:
            paths.append(network.attach_path(index, config))
    return network, paths
