"""Pluggable scheduling/redundancy policies over the FMTCP simulator.

The paper hard-wires one decision procedure (Algorithm 1's EAT-ranked
allocation); this package makes the decision layer a first-class,
swappable axis:

* :mod:`repro.policy.env` — a ``reset()/step(action)`` environment that
  drives the discrete-event simulator between decision epochs, with a
  versioned observation vector and a configurable reward;
* :mod:`repro.policy.policies` — the :class:`Policy` protocol plus
  baselines (paper EAT, round-robin, weighted-RTT, an ε-greedy
  redundancy bandit);
* :mod:`repro.policy.rollout` — seeded deterministic rollouts, batched
  over a process pool, with JSONL trajectories and per-policy reports.

``repro policy list|rollout|compare`` is the CLI surface.
"""

from repro.policy.env import (
    HEADER_OBS_FIELDS,
    OBS_VERSION,
    SUBFLOW_OBS_FIELDS,
    EnvConfig,
    RewardConfig,
    SchedulingEnv,
    observation_names,
)
from repro.policy.policies import (
    POLICIES,
    EpsilonGreedyRedundancyPolicy,
    PaperEATPolicy,
    Policy,
    RoundRobinPolicy,
    WeightedRTTPolicy,
    make_policy,
    share_capped_fill,
)
from repro.policy.rollout import (
    PolicyReport,
    RolloutJob,
    RolloutResult,
    StepRecord,
    compare_policies,
    run_rollout,
    run_rollouts,
    summarize_rollouts,
    write_trajectories,
)

__all__ = [
    "OBS_VERSION",
    "HEADER_OBS_FIELDS",
    "SUBFLOW_OBS_FIELDS",
    "EnvConfig",
    "RewardConfig",
    "SchedulingEnv",
    "observation_names",
    "Policy",
    "POLICIES",
    "PaperEATPolicy",
    "RoundRobinPolicy",
    "WeightedRTTPolicy",
    "EpsilonGreedyRedundancyPolicy",
    "make_policy",
    "share_capped_fill",
    "RolloutJob",
    "RolloutResult",
    "StepRecord",
    "PolicyReport",
    "run_rollout",
    "run_rollouts",
    "summarize_rollouts",
    "compare_policies",
    "write_trajectories",
]
