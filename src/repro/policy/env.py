"""A step-driven decision environment over the FMTCP simulator.

Shapes the discrete-event simulator into the canonical ``reset()`` /
``step(action)`` loop (the Aurora packet-level environments are the
model): the simulator advances one *decision epoch* per step, and between
epochs a policy — built-in, scripted, or learned — controls the sender's
allocation decisions through the pluggable hook in
:class:`~repro.core.sender.FmtcpSender`.

Observation vector (``OBS_VERSION = 1``)
----------------------------------------

A flat ``List[float]``, layout frozen per version and documented in
``docs/policies.md``. All per-subflow fields are read through
:func:`repro.telemetry.samplers.subflow_state_fields` — the same single
source of truth the ``telemetry.subflow`` trace series uses — and the
decoder fields come from ``FmtcpReceiver.decoder_stats()``:

* 4 header fields: sim time, pending sender blocks, cumulative delivered
  MB, MB delivered during the last epoch;
* 3 decoder fields: mean rank deficit (k − k̄ over active blocks), max
  active-block age (s), active block count;
* 9 fields per subflow slot (``n_subflow_slots`` slots, sorted by
  subflow id, zero-padded): present, srtt, rto, cwnd, in-flight,
  window space, loss estimate, suspect flag, EAT.

Actions
-------

``step`` accepts ``None`` (the attached policy decides per transmission
opportunity) or a dict with optional keys:

* ``"weights"`` — per-subflow-id symbol allocation weights; symbols are
  share-capped to the weights (0 disables a path);
* ``"redundancy"`` — absolute completeness-margin override (the paper's
  log₂(1/δ̂) head-room), i.e. the per-block redundancy target.

Reward
------

``goodput_weight`` MB-delivered-this-epoch minus ``block_delay_penalty``
× mean delivery delay (s) of the blocks completed this epoch — the
paper's two §V headline metrics folded into one scalar.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.allocation import AllocationRequest, AllocationResult, allocate_packet
from repro.core.config import FmtcpConfig
from repro.core.connection import FmtcpConnection
from repro.net.topology import PathConfig, build_two_path_network
from repro.policy.policies import Policy, share_capped_fill
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.trace import TraceBus
from repro.telemetry.samplers import fmtcp_eat_provider, subflow_state_fields
from repro.workloads.scenarios import TABLE1_CASES, table1_path_configs
from repro.workloads.sources import BulkSource

#: Version of the observation layout. Bump on ANY change to the layout,
#: and record the old layout in docs/policies.md.
OBS_VERSION = 1

#: Per-subflow-slot observation fields, in order.
SUBFLOW_OBS_FIELDS = (
    "present",
    "srtt",
    "rto",
    "cwnd",
    "in_flight",
    "window_space",
    "loss_est",
    "suspect",
    "eat",
)

#: Header + decoder observation fields, in order.
HEADER_OBS_FIELDS = (
    "t",
    "pending_blocks",
    "delivered_mbytes",
    "epoch_goodput_mbytes",
    "mean_rank_deficit",
    "max_block_age_s",
    "active_blocks",
)


def observation_names(n_subflow_slots: int = 2) -> List[str]:
    """The documented name of every observation component, in order."""
    names = list(HEADER_OBS_FIELDS)
    for slot in range(n_subflow_slots):
        names.extend(f"subflow{slot}.{name}" for name in SUBFLOW_OBS_FIELDS)
    return names


@dataclass(frozen=True)
class RewardConfig:
    """Weights of the scalar reward (see module docstring)."""

    goodput_weight: float = 1.0
    block_delay_penalty: float = 0.1


@dataclass
class EnvConfig:
    """Everything that parameterises one environment instance."""

    path_configs: Optional[Sequence[PathConfig]] = None
    case_id: int = 4  # Table I case used when path_configs is omitted.
    bandwidth_bps: Optional[float] = None
    duration_s: float = 20.0
    epoch_s: float = 0.25
    seed: int = 1
    fmtcp_config: Optional[FmtcpConfig] = None
    reward: RewardConfig = field(default_factory=RewardConfig)

    def resolve_paths(self) -> List[PathConfig]:
        if self.path_configs is not None:
            return list(self.path_configs)
        case = next(c for c in TABLE1_CASES if c.case_id == self.case_id)
        if self.bandwidth_bps is not None:
            return table1_path_configs(case, self.bandwidth_bps)
        return table1_path_configs(case)


class _ActionHook:
    """Decision hook that executes the most recent explicit action."""

    def __init__(self) -> None:
        self.weights: Optional[Dict[int, float]] = None
        self.redundancy: Optional[float] = None
        self._served: Dict[int, int] = {}

    def update(self, action: Dict[str, Any]) -> None:
        if "weights" in action and action["weights"] is not None:
            self.weights = {
                int(subflow_id): float(weight)
                for subflow_id, weight in action["weights"].items()
            }
        if "redundancy" in action:
            value = action["redundancy"]
            self.redundancy = None if value is None else float(value)

    def __call__(self, request: AllocationRequest) -> AllocationResult:
        if self.redundancy is not None:
            request = replace(request, margin=self.redundancy)
        if self.weights is None:
            return request.run(allocate_packet)
        return share_capped_fill(request, self.weights, self._served)


class SchedulingEnv:
    """Drive an FMTCP transfer one decision epoch at a time."""

    def __init__(self, config: Optional[EnvConfig] = None, **overrides: Any):
        if config is None:
            config = EnvConfig(**overrides)
        elif overrides:
            raise ValueError("pass either a config or keyword overrides, not both")
        self.config = config
        self.n_subflow_slots = len(config.resolve_paths())
        self._policy: Optional[Policy] = None
        self._action_hook: Optional[_ActionHook] = None
        self._connection: Optional[FmtcpConnection] = None
        self._sim: Optional[Simulator] = None
        self._done = True
        self._epoch_delays: List[float] = []
        self._last_delivered = 0
        self._epoch_goodput_mb = 0.0
        self.episodes = 0
        self.steps_taken = 0

    # ------------------------------------------------------------------
    # Episode lifecycle.
    # ------------------------------------------------------------------
    def reset(self, seed: Optional[int] = None) -> List[float]:
        """Build a fresh simulation; returns the initial observation."""
        self.close()
        if seed is not None:
            self.config.seed = seed
        config = self.config
        self._sim = Simulator()
        rng = RngStreams(config.seed)
        self._trace = TraceBus()
        __, paths = build_two_path_network(
            config.resolve_paths(), sim=self._sim, rng=rng, trace=self._trace
        )
        self._connection = FmtcpConnection(
            sim=self._sim,
            paths=paths,
            source=BulkSource(),
            config=config.fmtcp_config or FmtcpConfig(),
            trace=self._trace,
            rng=rng,
        )
        self._eat_provider = fmtcp_eat_provider(self._connection.sender)
        self._trace.subscribe("conn.block_done", self._on_block_done)
        self._epoch_delays = []
        self._last_delivered = 0
        self._epoch_goodput_mb = 0.0
        self._done = False
        self.episodes += 1
        if self._policy is not None:
            self._install_policy(self._policy)
        self._connection.start()
        return self._observe()

    def attach_policy(self, policy: Optional[Policy]) -> None:
        """Let ``policy`` take every allocation decision of this episode.

        ``None`` detaches (the sender falls back to its configured
        allocator until an explicit action installs the action hook).
        """
        self._policy = policy
        if self._connection is not None:
            self._install_policy(policy)

    def _install_policy(self, policy: Optional[Policy]) -> None:
        self._action_hook = None
        if policy is None:
            self._connection.sender.set_decision_hook(None)
        else:
            policy.reset(self.config.seed)
            self._connection.sender.set_decision_hook(policy.decide)

    def step(
        self, action: Optional[Dict[str, Any]] = None
    ) -> Tuple[List[float], float, bool, Dict[str, Any]]:
        """Advance one decision epoch; returns ``(obs, reward, done, info)``."""
        if self._done or self._connection is None:
            raise RuntimeError("step() after episode end — call reset() first")
        if action is not None:
            if self._policy is not None:
                raise ValueError(
                    "explicit actions conflict with an attached policy; "
                    "detach it (attach_policy(None)) to drive the env directly"
                )
            if self._action_hook is None:
                self._action_hook = _ActionHook()
                self._connection.sender.set_decision_hook(self._action_hook)
            self._action_hook.update(action)
            # A changed action can unblock subflows that were declined
            # symbols under the previous one — offer opportunities now.
            self._connection.pump()

        self._epoch_delays = []
        start_bytes = self._connection.delivered_bytes
        target = min(self._sim.now + self.config.epoch_s, self.config.duration_s)
        self._sim.run(until=target)
        self.steps_taken += 1

        delivered = self._connection.delivered_bytes
        self._epoch_goodput_mb = (delivered - start_bytes) / 1e6
        self._last_delivered = delivered
        reward = self.config.reward.goodput_weight * self._epoch_goodput_mb
        mean_delay = 0.0
        if self._epoch_delays:
            mean_delay = sum(self._epoch_delays) / len(self._epoch_delays)
            reward -= self.config.reward.block_delay_penalty * mean_delay
        self._done = self._sim.now >= self.config.duration_s - 1e-12
        info = {
            "t": self._sim.now,
            "delivered_bytes": delivered,
            "blocks_done_epoch": len(self._epoch_delays),
            "mean_block_delay_s": mean_delay,
            "obs_version": OBS_VERSION,
        }
        return self._observe(), reward, self._done, info

    def close(self) -> None:
        """Tear down the current episode's simulation, if any."""
        if self._connection is not None:
            self._connection.close()
            self._connection = None
        self._sim = None
        self._done = True

    # ------------------------------------------------------------------
    # Observation building (layout frozen per OBS_VERSION).
    # ------------------------------------------------------------------
    def _on_block_done(self, record) -> None:
        self._epoch_delays.append(float(record["delay"]))

    def _observe(self) -> List[float]:
        connection = self._connection
        stats = connection.receiver.decoder_stats()
        deficits = [entry["deficit"] for entry in stats]
        ages = [entry["age_s"] for entry in stats]
        obs = [
            self._sim.now,
            float(len(connection.block_manager.pending_blocks)),
            connection.delivered_bytes / 1e6,
            self._epoch_goodput_mb,
            (sum(deficits) / len(deficits)) if deficits else 0.0,
            max(ages) if ages else 0.0,
            float(len(stats)),
        ]
        eats = self._eat_provider()
        subflows = sorted(connection.subflows, key=lambda sf: sf.subflow_id)
        for slot in range(self.n_subflow_slots):
            if slot < len(subflows):
                subflow = subflows[slot]
                fields = subflow_state_fields(
                    subflow, eats.get(subflow.subflow_id)
                )
                obs.extend(
                    [
                        1.0,
                        fields["srtt"],
                        fields["rto"],
                        float(fields["cwnd"]),
                        float(fields["in_flight"]),
                        float(fields["window_space"]),
                        fields["loss_est"],
                        1.0 if fields["suspect"] else 0.0,
                        fields["eat"] if fields["eat"] is not None else 0.0,
                    ]
                )
            else:
                obs.extend([0.0] * len(SUBFLOW_OBS_FIELDS))
        return obs

    def observation_names(self) -> List[str]:
        return observation_names(self.n_subflow_slots)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self._done else f"t={self._sim.now:.2f}"
        return f"<SchedulingEnv {state} episodes={self.episodes}>"
