"""Pluggable allocation policies for the FMTCP decision layer.

The paper fixes one decision procedure — Algorithm 1's EAT-ranked
virtual allocation — but the coding-rate/scheduling decision is the
interesting design axis for coded multipath transports (CTCP makes the
same point for coded TCP). This module turns that decision into a small
protocol:

* :meth:`Policy.decide` runs once per transmission opportunity and maps
  an :class:`~repro.core.allocation.AllocationRequest` to the description
  vector actually transmitted (an empty result declines the opportunity);
* :meth:`Policy.on_epoch` runs once per decision epoch of the
  :class:`~repro.policy.env.SchedulingEnv` with the observation vector
  and the previous epoch's reward, and returns the (JSON-serialisable)
  action parameters now in force — this is where adaptive policies learn.

Baselines:

* :class:`PaperEATPolicy` — Algorithm 1 verbatim. Routed through the
  sender's decision hook it reproduces the default behaviour
  byte-identically, proving the hook itself costs nothing.
* :class:`RoundRobinPolicy` — equal symbol shares regardless of quality.
* :class:`WeightedRTTPolicy` — shares proportional to 1/SRTT.
* :class:`EpsilonGreedyRedundancyPolicy` — a bandit that keeps Algorithm
  1's ranking but adapts per-path redundancy (the loss pessimism that
  drives Eq. 8's expected-gain term) to the reward signal.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Any, Dict, Optional, Sequence

from repro.core.allocation import (
    AllocationRequest,
    AllocationResult,
    allocate_packet,
    allocate_packet_greedy,
)

# Loss assumptions stay clamped below the sender's own ceiling so EDT/RT
# formulas remain finite whatever a policy inflates them to.
_MAX_LOSS = 0.95


class Policy:
    """Base class: the paper's behaviour, with no epoch-level adaptation."""

    name = "policy"

    def reset(self, seed: int = 0) -> None:
        """(Re)initialise internal state; called once per rollout."""

    def decide(self, request: AllocationRequest) -> AllocationResult:
        raise NotImplementedError

    def action(self) -> Dict[str, Any]:
        """The action parameters currently in force (for trajectories)."""
        return {}

    def on_epoch(self, obs: Sequence[float], reward: float) -> Dict[str, Any]:
        """Observe one decision epoch; returns the action now in force."""
        return self.action()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name}>"


class PaperEATPolicy(Policy):
    """Algorithm 1, unchanged — the zero-cost-hook proof.

    ``decide`` forwards the request to :func:`allocate_packet` with the
    exact arguments the sender would have used, so golden traces are
    byte-identical with or without the hook installed.
    """

    name = "paper-eat"

    def decide(self, request: AllocationRequest) -> AllocationResult:
        return request.run(allocate_packet)

    def action(self) -> Dict[str, Any]:
        return {"mode": "eat"}


def share_capped_fill(
    request: AllocationRequest,
    weights: Dict[int, float],
    served: Dict[int, int],
    slack_packets: int = 2,
) -> AllocationResult:
    """Grant a greedy fill iff the requester is within its weighted share.

    The pull-based sender offers opportunities whenever a window opens;
    a share policy cannot *push* symbols onto a subflow, only decline the
    over-served ones so the under-served catch up when their windows
    open. ``served`` (symbols granted so far, updated in place) is the
    policy's memory; ``slack_packets`` of head-room avoids start-up
    deadlock and lets every path make progress while the shares converge.
    """
    me = request.pending_subflow_id
    my_weight = weights.get(me, 0.0)
    if my_weight <= 0.0:
        return AllocationResult()
    total_weight = sum(max(weight, 0.0) for weight in weights.values())
    total_served = sum(served.get(subflow_id, 0) for subflow_id in weights)
    slack = slack_packets * request.symbols_per_packet
    if total_served > slack:
        my_share = served.get(me, 0) / total_served
        if my_share > my_weight / total_weight and served.get(me, 0) > slack:
            return AllocationResult()
    result = request.run(allocate_packet_greedy)
    if result.total_symbols:
        served[me] = served.get(me, 0) + result.total_symbols
    return result


class RoundRobinPolicy(Policy):
    """Equal symbol shares across live subflows, ignoring path quality.

    The multipath analogue of the MPTCP round-robin scheduler ablation:
    a lossy or slow path is fed exactly as many symbols as the best one,
    so goodput degrades toward N× the worst path's rate — the behaviour
    Algorithm 1 exists to avoid.
    """

    name = "roundrobin"

    def __init__(self, slack_packets: int = 2):
        self.slack_packets = slack_packets
        self._served: Dict[int, int] = {}

    def reset(self, seed: int = 0) -> None:
        self._served = {}

    def decide(self, request: AllocationRequest) -> AllocationResult:
        weights = {estimate.subflow_id: 1.0 for estimate in request.estimates}
        return share_capped_fill(
            request, weights, self._served, self.slack_packets
        )

    def action(self) -> Dict[str, Any]:
        return {"mode": "share", "weights": "equal"}


class WeightedRTTPolicy(Policy):
    """Symbol shares proportional to 1/SRTT (fast paths carry more).

    A quality-aware heuristic one notch below the paper's: it reacts to
    delay but not to loss, so it beats round-robin on asymmetric-delay
    cases and still overfeeds a lossy-but-fast path.
    """

    name = "weighted-rtt"

    def __init__(self, slack_packets: int = 2):
        self.slack_packets = slack_packets
        self._served: Dict[int, int] = {}

    def reset(self, seed: int = 0) -> None:
        self._served = {}

    def decide(self, request: AllocationRequest) -> AllocationResult:
        weights = {
            estimate.subflow_id: 1.0 / max(estimate.rtt, 1e-3)
            for estimate in request.estimates
        }
        return share_capped_fill(
            request, weights, self._served, self.slack_packets
        )

    def action(self) -> Dict[str, Any]:
        return {"mode": "share", "weights": "1/srtt"}


class EpsilonGreedyRedundancyPolicy(Policy):
    """Bandit-adapted per-path redundancy on top of Algorithm 1.

    Eq. (8) discounts in-flight symbols by the estimated loss rate; the
    estimate lags reality whenever loss shifts, so the right pessimism is
    itself a decision. Each epoch this policy picks, per path, a loss
    inflation factor (an *arm*) ε-greedily by the average epoch reward it
    has produced; ``decide`` then runs the unmodified EAT allocator
    against the inflated loss view, which makes the allocator send extra
    symbols to cover the path's losses (more redundancy) exactly where
    the bandit has learned it pays.
    """

    name = "egreedy-redundancy"

    #: Loss inflation factors selectable per path.
    ARMS = (1.0, 1.5, 2.0)

    def __init__(self, epsilon: float = 0.1):
        if not 0.0 <= epsilon <= 1.0:
            raise ValueError(f"epsilon must be in [0, 1], got {epsilon}")
        self.epsilon = epsilon
        self._rng = random.Random(0)
        self._factors: Dict[int, float] = {}
        self._arm_of: Dict[int, int] = {}
        self._counts: Dict[int, list] = {}
        self._values: Dict[int, list] = {}

    def reset(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._factors = {}
        self._arm_of = {}
        self._counts = {}
        self._values = {}

    def _ensure_path(self, subflow_id: int) -> None:
        if subflow_id not in self._counts:
            self._counts[subflow_id] = [0] * len(self.ARMS)
            self._values[subflow_id] = [0.0] * len(self.ARMS)
            self._arm_of[subflow_id] = 0
            self._factors[subflow_id] = self.ARMS[0]

    def decide(self, request: AllocationRequest) -> AllocationResult:
        for estimate in request.estimates:
            self._ensure_path(estimate.subflow_id)
        factors = self._factors
        base_loss_of = request.loss_rate_of

        def inflated_loss_of(subflow_id: int) -> float:
            loss = base_loss_of(subflow_id)
            return min(loss * factors.get(subflow_id, 1.0), _MAX_LOSS)

        return replace(request, loss_rate_of=inflated_loss_of).run(allocate_packet)

    def on_epoch(self, obs: Sequence[float], reward: float) -> Dict[str, Any]:
        # Credit the arms that were in force during the epoch just ended.
        for subflow_id, arm in self._arm_of.items():
            counts = self._counts[subflow_id]
            values = self._values[subflow_id]
            counts[arm] += 1
            values[arm] += (reward - values[arm]) / counts[arm]
        # Pick next epoch's arms (explore with probability ε, else best).
        for subflow_id in sorted(self._counts):
            if self._rng.random() < self.epsilon:
                arm = self._rng.randrange(len(self.ARMS))
            else:
                values = self._values[subflow_id]
                arm = max(range(len(self.ARMS)), key=lambda a: (values[a], -a))
            self._arm_of[subflow_id] = arm
            self._factors[subflow_id] = self.ARMS[arm]
        return self.action()

    def action(self) -> Dict[str, Any]:
        return {
            "mode": "egreedy",
            "epsilon": self.epsilon,
            "loss_inflation": {
                str(subflow_id): factor
                for subflow_id, factor in sorted(self._factors.items())
            },
        }


#: Registry of constructable policies (the ``repro policy`` CLI menu).
POLICIES = {
    PaperEATPolicy.name: PaperEATPolicy,
    RoundRobinPolicy.name: RoundRobinPolicy,
    WeightedRTTPolicy.name: WeightedRTTPolicy,
    EpsilonGreedyRedundancyPolicy.name: EpsilonGreedyRedundancyPolicy,
}


def make_policy(name: str, **kwargs: Any) -> Policy:
    """Instantiate a registered policy by name.

    Raises ``ValueError`` naming the available policies — the CLI turns
    that into its exit-2 menu, matching the faults-preset convention.
    """
    try:
        factory = POLICIES[name]
    except KeyError:
        available = ", ".join(sorted(POLICIES))
        raise ValueError(f"unknown policy {name!r} (available: {available})")
    return factory(**kwargs)
