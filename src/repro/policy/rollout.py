"""Seeded, deterministic, batched policy rollouts.

One rollout = one :class:`~repro.policy.env.SchedulingEnv` episode driven
by one policy, producing a per-step ``(obs, action, reward)`` trajectory
plus episode aggregates. Rollout batches fan out over a process pool the
same way ``repro.experiments.parallel`` fans transfer jobs: every job is
an isolated seeded simulation, so parallel results are bit-identical to
serial ones and come back in submission order.

Trajectories serialise to JSONL (one step per line, self-describing with
policy/seed/obs-version metadata) so downstream consumers — plotting,
offline analysis, a future training stack — need no repro imports.
"""

from __future__ import annotations

import json
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.experiments.parallel import default_workers
from repro.metrics.stats import mean
from repro.policy.env import OBS_VERSION, EnvConfig, RewardConfig, SchedulingEnv
from repro.policy.policies import make_policy


@dataclass
class RolloutJob:
    """One policy × seed × scenario episode, described declaratively."""

    policy: str
    seed: int = 1
    case_id: int = 4
    duration_s: float = 15.0
    epoch_s: float = 0.25
    bandwidth_bps: Optional[float] = None
    policy_kwargs: Dict[str, Any] = field(default_factory=dict)
    reward: RewardConfig = field(default_factory=RewardConfig)


@dataclass
class StepRecord:
    """One decision epoch of a trajectory."""

    t: float
    obs: List[float]
    action: Dict[str, Any]
    reward: float


@dataclass
class RolloutResult:
    """One episode's trajectory and aggregates."""

    policy: str
    seed: int
    case_id: int
    duration_s: float
    epoch_s: float
    obs_version: int
    steps: List[StepRecord]
    total_reward: float
    goodput_mbytes: float
    blocks_done: int
    mean_block_delay_ms: float

    def trajectory_lines(self) -> List[str]:
        """The episode as JSONL lines (one step per line)."""
        lines = []
        for index, step in enumerate(self.steps):
            lines.append(
                json.dumps(
                    {
                        "policy": self.policy,
                        "seed": self.seed,
                        "case": self.case_id,
                        "obs_version": self.obs_version,
                        "step": index,
                        "t": round(step.t, 9),
                        "obs": step.obs,
                        "action": step.action,
                        "reward": step.reward,
                    },
                    sort_keys=True,
                )
            )
        return lines


def run_rollout(job: RolloutJob) -> RolloutResult:
    """Execute one rollout episode and collect its trajectory."""
    policy = make_policy(job.policy, **job.policy_kwargs)
    env = SchedulingEnv(
        EnvConfig(
            case_id=job.case_id,
            bandwidth_bps=job.bandwidth_bps,
            duration_s=job.duration_s,
            epoch_s=job.epoch_s,
            seed=job.seed,
            reward=job.reward,
        )
    )
    env.attach_policy(policy)
    obs = env.reset()
    steps: List[StepRecord] = []
    reward = 0.0
    total_reward = 0.0
    blocks_done = 0
    delay_weighted = 0.0
    done = False
    while not done:
        action = policy.on_epoch(obs, reward)
        obs, reward, done, info = env.step()
        total_reward += reward
        blocks_done += info["blocks_done_epoch"]
        delay_weighted += info["mean_block_delay_s"] * info["blocks_done_epoch"]
        steps.append(
            StepRecord(t=info["t"], obs=obs, action=action, reward=reward)
        )
    delivered_mb = steps[-1].obs[2] if steps else 0.0
    env.close()
    return RolloutResult(
        policy=job.policy,
        seed=job.seed,
        case_id=job.case_id,
        duration_s=job.duration_s,
        epoch_s=job.epoch_s,
        obs_version=OBS_VERSION,
        steps=steps,
        total_reward=total_reward,
        goodput_mbytes=delivered_mb,
        blocks_done=blocks_done,
        mean_block_delay_ms=(delay_weighted / blocks_done * 1e3)
        if blocks_done
        else 0.0,
    )


def run_rollouts(
    jobs: Sequence[RolloutJob], workers: Optional[int] = None
) -> List[RolloutResult]:
    """Run all jobs, fanned over a process pool when ``workers`` > 1.

    Results come back in job order; each worker runs the same seeded
    simulation it would serially, so the batch is bit-identical either
    way (mirrors ``repro.experiments.parallel.run_jobs``).
    """
    workers = workers if workers is not None else default_workers()
    if workers <= 1 or len(jobs) <= 1:
        return [run_rollout(job) for job in jobs]
    with ProcessPoolExecutor(max_workers=min(workers, len(jobs))) as pool:
        return list(pool.map(run_rollout, jobs))


def write_trajectories(results: Sequence[RolloutResult], path: str) -> int:
    """Append-free JSONL dump of every step of every rollout; returns lines."""
    lines = []
    for result in results:
        lines.extend(result.trajectory_lines())
    with open(path, "w") as handle:
        for line in lines:
            handle.write(line + "\n")
    return len(lines)


@dataclass
class PolicyReport:
    """Aggregates of one policy across a seed batch."""

    policy: str
    case_id: int
    seeds: List[int]
    goodput_mbytes_mean: float
    goodput_mbytes_min: float
    goodput_mbytes_max: float
    total_reward_mean: float
    mean_block_delay_ms: float
    blocks_done_mean: float

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


def summarize_rollouts(results: Sequence[RolloutResult]) -> PolicyReport:
    """Fold one policy's seed batch into a :class:`PolicyReport`."""
    if not results:
        raise ValueError("need at least one rollout result")
    policies = {result.policy for result in results}
    if len(policies) != 1:
        raise ValueError(f"mixed policies in one report: {sorted(policies)}")
    goodputs = [result.goodput_mbytes for result in results]
    return PolicyReport(
        policy=results[0].policy,
        case_id=results[0].case_id,
        seeds=[result.seed for result in results],
        goodput_mbytes_mean=mean(goodputs),
        goodput_mbytes_min=min(goodputs),
        goodput_mbytes_max=max(goodputs),
        total_reward_mean=mean([result.total_reward for result in results]),
        mean_block_delay_ms=mean(
            [result.mean_block_delay_ms for result in results]
        ),
        blocks_done_mean=mean([float(result.blocks_done) for result in results]),
    )


def compare_policies(
    policies: Sequence[str],
    seeds: Sequence[int] = (1, 2, 3),
    case_id: int = 4,
    duration_s: float = 15.0,
    epoch_s: float = 0.25,
    workers: Optional[int] = None,
) -> List[PolicyReport]:
    """Batched same-seed comparison of several policies on one scenario."""
    jobs = [
        RolloutJob(
            policy=policy,
            seed=seed,
            case_id=case_id,
            duration_s=duration_s,
            epoch_s=epoch_s,
        )
        for policy in policies
        for seed in seeds
    ]
    results = run_rollouts(jobs, workers=workers)
    reports = []
    per_policy = len(seeds)
    for index, policy in enumerate(policies):
        batch = results[index * per_policy : (index + 1) * per_policy]
        reports.append(summarize_rollouts(batch))
    return reports
