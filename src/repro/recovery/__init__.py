"""Endpoint crash-recovery and session resumption (ISSUE 8).

Checkpointable endpoint state (:mod:`repro.recovery.checkpoint`), the
crash/reconnect/resume state machine (:mod:`repro.recovery.manager`)
and the soak + benchmark harness (:mod:`repro.recovery.harness`).
Crash timelines live with the other fault presets in
:data:`repro.faults.RECOVERY_SCENARIOS`.
"""

from repro.recovery.checkpoint import (
    CHECKPOINT_VERSION,
    ReceiverCheckpoint,
    ResumeState,
    SenderCheckpoint,
    resume_state,
    snapshot_receiver,
    snapshot_sender,
)
from repro.recovery.harness import (
    PROTOCOLS,
    RecoveryReport,
    measure_recovery,
    run_recovery,
)
from repro.recovery.manager import ReconnectPolicy, RecoveryManager

__all__ = [
    "CHECKPOINT_VERSION",
    "PROTOCOLS",
    "ReceiverCheckpoint",
    "ReconnectPolicy",
    "RecoveryManager",
    "RecoveryReport",
    "ResumeState",
    "SenderCheckpoint",
    "measure_recovery",
    "resume_state",
    "run_recovery",
    "snapshot_receiver",
    "snapshot_sender",
]
