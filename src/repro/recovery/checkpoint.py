"""Versioned, serializable endpoint checkpoints for crash recovery.

A crash loses every volatile structure an endpoint holds — pending
blocks, in-flight symbols, the reorder buffer, partially decoded
matrices. What survives is whatever the endpoint last made durable:

* the **sender** checkpoints periodically (its decoded frontier, the
  matching stream byte offset and, for FMTCP, the adaptive completeness
  margin; for MPTCP, the chunk map of unacked chunk sizes);
* the **receiver** is implicitly checkpointed by delivery itself —
  handing a unit to the application *is* the durable commit, so its
  delivered frontier at crash time is exact, while anything still in
  the app queue or reorder buffer is lost and must be re-sent.

The protocols diverge exactly where the paper says they should
(Section III: ratelessness): an FMTCP receiver deliberately **discards
partial decode matrices** — the restarted endpoint needs only the
delivered-block frontier, because any fresh fountain symbols rebuild
the lost blocks; its checkpoint is O(1). MPTCP must reconstruct exact
chunk-level sequencing, so its sender checkpoint carries the chunk map
— O(window) state the fountain code makes unnecessary.

Checkpoints are frozen dataclasses with a schema ``version`` and strict
``to_dict``/``from_dict`` round-trips, so a future layout change fails
loudly instead of resuming from misread state.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Optional, Tuple

#: Schema version stamped into every checkpoint; ``from_dict`` refuses
#: to restore any other version.
CHECKPOINT_VERSION = 1


def _require_version(data: dict, what: str) -> None:
    version = data.get("version")
    if version != CHECKPOINT_VERSION:
        raise ValueError(
            f"cannot restore {what} checkpoint version {version!r} "
            f"(supported: {CHECKPOINT_VERSION})"
        )


@dataclass(frozen=True)
class SenderCheckpoint:
    """Durable sender progress at one checkpoint instant.

    ``frontier`` is in protocol units (FMTCP blocks / MPTCP chunks) and
    ``byte_offset`` the matching application-stream offset — the point
    the replayable source must rewind to at restore. ``margin`` is
    FMTCP's adaptive completeness margin (None for MPTCP); ``chunk_map``
    is MPTCP's unacked (dsn, size) map (empty for FMTCP).
    """

    protocol: str
    frontier: int
    byte_offset: int
    margin: Optional[float] = None
    chunk_map: Tuple[Tuple[int, int], ...] = ()
    version: int = CHECKPOINT_VERSION

    def __post_init__(self) -> None:
        if self.protocol not in ("fmtcp", "mptcp"):
            raise ValueError(f"unknown protocol {self.protocol!r}")
        if self.frontier < 0 or self.byte_offset < 0:
            raise ValueError("checkpoint frontier/byte_offset must be >= 0")

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "protocol": self.protocol,
            "frontier": self.frontier,
            "byte_offset": self.byte_offset,
            "margin": self.margin,
            "chunk_map": [list(pair) for pair in self.chunk_map],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "SenderCheckpoint":
        _require_version(data, "sender")
        return cls(
            protocol=data["protocol"],
            frontier=int(data["frontier"]),
            byte_offset=int(data["byte_offset"]),
            margin=data.get("margin"),
            chunk_map=tuple(
                (int(dsn), int(size)) for dsn, size in data.get("chunk_map", ())
            ),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @property
    def size_bytes(self) -> int:
        """Serialized footprint — the bench's checkpoint-size metric.

        Makes the paper's asymmetry measurable: FMTCP's stays O(1) while
        MPTCP's grows with the unacked chunk map.
        """
        return len(self.to_json().encode())


@dataclass(frozen=True)
class ReceiverCheckpoint:
    """Durable receiver progress: the delivered in-order frontier.

    Deliberately tiny for both protocols — delivery to the application
    is the durable commit. FMTCP's partial decode matrices are *not*
    checkpointed (ratelessness makes them reconstructible from any fresh
    symbols); MPTCP's reorder buffer is likewise dropped, its contents
    re-sent by the sender from its own checkpoint.
    """

    protocol: str
    frontier: int
    delivered_bytes: int
    version: int = CHECKPOINT_VERSION

    def __post_init__(self) -> None:
        if self.protocol not in ("fmtcp", "mptcp"):
            raise ValueError(f"unknown protocol {self.protocol!r}")
        if self.frontier < 0 or self.delivered_bytes < 0:
            raise ValueError("checkpoint frontier/delivered_bytes must be >= 0")

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "protocol": self.protocol,
            "frontier": self.frontier,
            "delivered_bytes": self.delivered_bytes,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ReceiverCheckpoint":
        _require_version(data, "receiver")
        return cls(
            protocol=data["protocol"],
            frontier=int(data["frontier"]),
            delivered_bytes=int(data["delivered_bytes"]),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True)

    @property
    def size_bytes(self) -> int:
        return len(self.to_json().encode())


def _protocol_of(connection) -> str:
    return "fmtcp" if hasattr(connection, "block_manager") else "mptcp"


def snapshot_sender(connection) -> SenderCheckpoint:
    """Capture the sender's durable progress from a live connection.

    The frontier is the contiguously *confirmed* prefix — never ahead of
    what the receiver acknowledged — so restoring from it can only
    re-send data the receiver deduplicates, never skip data.
    """
    if _protocol_of(connection) == "fmtcp":
        frontier = int(connection.sender._decoded_frontier_seen)
        return SenderCheckpoint(
            protocol="fmtcp",
            frontier=frontier,
            byte_offset=frontier * connection.config.block_bytes,
            margin=float(connection.sender.margin),
        )
    return SenderCheckpoint(
        protocol="mptcp",
        frontier=int(connection._data_acked),
        byte_offset=int(connection._acked_bytes),
        chunk_map=tuple(sorted(connection._chunk_sizes.items())),
    )


def snapshot_receiver(connection) -> ReceiverCheckpoint:
    """Capture the receiver's delivered frontier from a live connection.

    Units still sitting in the app-drain queue have *not* been handed to
    the application, so they do not count: a crash loses them and the
    recovered sender re-delivers. ``delivered_bytes`` already excludes
    them — bytes are only counted at the moment of app delivery.
    """
    if _protocol_of(connection) == "fmtcp":
        receiver = connection.receiver
        queued = len(receiver._app_queue)
        frontier = int(receiver._deliver_next) - queued
        delivered_bytes = int(receiver.delivered_bytes)
        return ReceiverCheckpoint(
            protocol="fmtcp", frontier=frontier, delivered_bytes=delivered_bytes
        )
    queued = len(connection._app_queue)
    frontier = int(connection._reorder.next_expected) - queued
    return ReceiverCheckpoint(
        protocol="mptcp",
        frontier=frontier,
        delivered_bytes=int(connection.delivered_bytes),
    )


@dataclass(frozen=True)
class ResumeState:
    """What a rebuilt connection needs to continue a checkpointed session.

    Combines the sender's (possibly stale) checkpoint with the
    receiver's frontier. The sender restarts at *its own* frontier —
    re-sending the ``[sender_frontier, receiver_frontier)`` gap, which
    the receiver deduplicates — because skipping ahead to the receiver's
    frontier would assume knowledge a crashed sender does not have until
    the first feedback fast-forwards it.
    """

    sender_frontier: int
    sender_byte_offset: int
    sender_margin: Optional[float] = None
    receiver_frontier: int = 0
    receiver_bytes: int = 0
    chunk_map: Tuple[Tuple[int, int], ...] = field(default=())


def resume_state(
    sender_ckpt: SenderCheckpoint, receiver_ckpt: ReceiverCheckpoint
) -> ResumeState:
    """Validate a checkpoint pair and fold it into a :class:`ResumeState`."""
    if sender_ckpt.protocol != receiver_ckpt.protocol:
        raise ValueError(
            f"checkpoint protocol mismatch: sender {sender_ckpt.protocol!r} "
            f"vs receiver {receiver_ckpt.protocol!r}"
        )
    if receiver_ckpt.frontier < sender_ckpt.frontier:
        # The receiver's frontier is the durable commit; the sender's is
        # a periodic snapshot of the *confirmed* prefix, so it can lag
        # but never lead.
        raise ValueError(
            f"inconsistent checkpoints: receiver frontier "
            f"{receiver_ckpt.frontier} behind sender frontier "
            f"{sender_ckpt.frontier}"
        )
    return ResumeState(
        sender_frontier=sender_ckpt.frontier,
        sender_byte_offset=sender_ckpt.byte_offset,
        sender_margin=sender_ckpt.margin,
        receiver_frontier=receiver_ckpt.frontier,
        receiver_bytes=receiver_ckpt.delivered_bytes,
        chunk_map=sender_ckpt.chunk_map,
    )
