"""Crash-recovery soak harness and its benchmark probe.

:func:`run_recovery` drives one finite transfer with **real payload**
through an endpoint crash/restart timeline
(:data:`~repro.faults.scenario.RECOVERY_SCENARIOS`), a
:class:`~repro.recovery.manager.RecoveryManager` handling the crashes
and a :class:`~repro.robustness.watchdog.Watchdog` guaranteeing clean
failure. The source is wrapped in a
:class:`~repro.workloads.sources.ReplayableSource` so every recovery
epoch can re-pull committed stream bytes, and the delivered payload is
compared byte-for-byte against the source transcript. Invariants:

1. **byte-identical delivery** — the concatenated delivered payload is
   a prefix of (and, on completion, equal to) the source transcript,
   no matter how many crashes interrupted the transfer;
2. **exactly-once, in-order delivery** — re-sent units from stale
   sender checkpoints are deduplicated, never double-delivered;
3. **bounded recovery** — every resolvable outage resumes within
   ``recovery_bound_s`` of the endpoint restart, and half-open
   detection stays within the policy's ``max_detect_s``;
4. **completion / clean failure where promised** — scenarios whose
   crashes all restart must complete; a never-restarted endpoint must
   end in a watchdog-declared clean failure (with diagnosis), and must
   *not* quietly succeed;
5. **epoch accounting** — one resume per recovery epoch, attempts at
   least covering resumes, every applied crash accounted;
6. **no wedged timers / event-queue drain** — as in the other soak
   harnesses, including the manager's own timers.

Seeded determinism across restart epochs is asserted by the soak test
(two runs of the same seed must produce identical
:meth:`RecoveryReport.fingerprint` values).

:func:`measure_recovery` is the benchmark probe behind
``benchmarks/bench_recovery.py``: the same transfer with and without
the crash timeline, yielding goodput retention (clean completion time /
crashed completion time), recovery-latency decomposition and the
checkpoint-size asymmetry (FMTCP O(1) frontier vs MPTCP chunk map).
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.config import FmtcpConfig
from repro.core.connection import FmtcpConnection
from repro.faults.chaos import _check_timers
from repro.faults.churn import PathChurnController
from repro.faults.scenario import FaultScenario
from repro.mptcp.connection import MptcpConfig, MptcpConnection
from repro.net.topology import PathConfig, build_two_path_network
from repro.recovery.manager import ReconnectPolicy, RecoveryManager
from repro.robustness.watchdog import Watchdog, WatchdogConfig
from repro.sim.rng import RngStreams
from repro.sim.trace import TraceBus
from repro.telemetry.flight import FlightRecorder
from repro.telemetry.profiler import SimProfiler
from repro.workloads.sources import RandomPayloadSource, ReplayableSource

PROTOCOLS = ("fmtcp", "mptcp")


@dataclass
class RecoveryReport:
    """Outcome of one :func:`run_recovery` run."""

    protocol: str
    scenario_name: str
    seed: int
    duration_s: float
    expected_bytes: int
    expected_units: int
    expect_complete: bool
    delivered_bytes: int = 0
    delivered_units: int = 0
    completed: bool = False
    completion_time_s: Optional[float] = None
    payload_crc32: int = 0
    crashes: int = 0
    resumes: int = 0
    attempts: int = 0
    epochs: int = 0
    recovery_state: str = "running"
    outages: List[Dict[str, Any]] = field(default_factory=list)
    max_outage_s: float = 0.0
    checkpoint_bytes: int = 0
    watchdog_failed: bool = False
    watchdog_escalation: int = 0
    fail_reason: Optional[str] = None
    diagnosis: Optional[Dict[str, Any]] = None
    violations: List[str] = field(default_factory=list)
    flight_dump_path: Optional[str] = None
    profile_dump_path: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.violations

    def fingerprint(self) -> Dict[str, Any]:
        """Determinism probe: two same-seed runs must match exactly."""
        return {
            "payload_crc32": self.payload_crc32,
            "delivered_bytes": self.delivered_bytes,
            "delivered_units": self.delivered_units,
            "completion_time_s": self.completion_time_s,
            "crashes": self.crashes,
            "resumes": self.resumes,
            "attempts": self.attempts,
            "recovery_state": self.recovery_state,
        }


def _expected_completion(scenario: FaultScenario) -> bool:
    """Whether every crash in the timeline is eventually restarted."""
    down = 0
    for event in scenario.events:
        if event.kind in ("crash_sender", "crash_receiver"):
            down += 1
        elif event.kind == "restart":
            down = 0  # restart(None) revives every down endpoint
    return down == 0


def run_recovery(
    protocol: str,
    scenario: FaultScenario,
    seed: int = 1,
    duration_s: float = 40.0,
    total_bytes: int = 600_000,
    bandwidth_bps: float = 2.5e5,
    delay_s: float = 0.03,
    flight_dump_dir: Optional[str] = None,
    flight_capacity: int = 4096,
    policy: Optional[ReconnectPolicy] = None,
    watchdog_config: Optional[WatchdogConfig] = None,
    recovery_bound_s: float = 8.0,
) -> RecoveryReport:
    """One finite real-payload transfer through a crash timeline.

    Sizing rationale: at two clean 250 kbps paths the transfer is
    mid-flight at the presets' first crash (t=8 s within a ~10 s clean
    completion), so every crash interrupts live state. The default
    watchdog stall floor (6 s) sits above the presets' worst healthy
    outage window (~3.5 s), so the stall ladder only fires on genuine
    wedges — the manager escalates budget exhaustion itself through
    :meth:`~repro.robustness.watchdog.Watchdog.fail`.
    """
    if protocol not in PROTOCOLS:
        raise ValueError(f"unknown protocol {protocol!r}")
    if scenario.events and not scenario.has_endpoint_faults:
        raise ValueError(
            f"scenario {scenario.name!r} has no endpoint crash/restart "
            "events; use the chaos/churn/corruption harnesses instead "
            "(an empty scenario is allowed as a clean baseline)"
        )
    trace = TraceBus()
    configs = [
        PathConfig(bandwidth_bps=bandwidth_bps, delay_s=delay_s, loss_rate=0.0)
        for __ in range(scenario.n_paths)
    ]
    network, paths = build_two_path_network(configs, rng=RngStreams(seed), trace=trace)
    sim = network.sim

    flight: Optional[FlightRecorder] = None
    profiler: Optional[SimProfiler] = None
    if flight_dump_dir is not None:
        flight = FlightRecorder(trace, capacity=flight_capacity)
        profiler = SimProfiler()
        sim.set_profiler(profiler)

    # Real payload end to end: the byte-identity invariant needs actual
    # data through the fountain encoder / DSS checksum machinery.
    fmtcp_config = FmtcpConfig(coding="real")
    mptcp_config = MptcpConfig()
    if protocol == "fmtcp":
        block_bytes = fmtcp_config.block_bytes
        expected_units = max(1, total_bytes // block_bytes)
        expected_bytes = expected_units * block_bytes
    else:
        mss = mptcp_config.mss
        expected_units = total_bytes // mss + (1 if total_bytes % mss else 0)
        expected_bytes = total_bytes

    delivered_ids: List[int] = []
    delivered_payload: List[bytes] = []
    if protocol == "fmtcp":
        def sink(block_id, data):
            delivered_ids.append(block_id)
            delivered_payload.append(data or b"")
    else:
        def sink(chunk):
            delivered_ids.append(chunk.dsn)
            delivered_payload.append(chunk.payload_bytes or b"")

    source = ReplayableSource(
        RandomPayloadSource(
            expected_bytes, rng=RngStreams(seed).get("recovery:payload")
        )
    )

    # The epoch builder: every resume rewinds the replayable source to
    # the sender checkpoint (clamped — a post-completion crash may
    # checkpoint a frontier byte-offset past the final short unit) and
    # rebuilds the connection on whatever path set is active *now*.
    controller: Optional[PathChurnController] = None

    def active_indices() -> List[int]:
        if controller is not None:
            return sorted(controller._subflow_of_path)
        return list(scenario.active_paths)

    def build(epoch: int, resume) -> Any:
        if resume is not None:
            source.rewind(min(resume.sender_byte_offset, source.granted_bytes))
        active = active_indices()
        epoch_rng = RngStreams(seed).for_epoch(epoch)
        if protocol == "fmtcp":
            connection = FmtcpConnection(
                sim,
                [paths[index] for index in active],
                source,
                config=fmtcp_config,
                trace=trace,
                rng=epoch_rng,
                sink=sink,
                resume=resume,
            )
        else:
            connection = MptcpConnection(
                sim,
                [paths[index] for index in active],
                source,
                config=mptcp_config,
                trace=trace,
                sink=sink,
                resume=resume,
            )
        if controller is not None:
            controller.rebind(connection, active)
        return connection

    connection = build(0, None)
    if scenario.has_churn:
        for index, path in enumerate(paths):
            if index not in scenario.active_paths:
                network.detach_path(path)
        controller = PathChurnController(
            sim,
            paths,
            connection,
            network=network,
            active_paths=scenario.active_paths,
            trace=trace,
        )

    watchdog = Watchdog(
        sim,
        connection,
        config=watchdog_config or WatchdogConfig(min_stall_s=6.0),
        trace=trace,
        samplers=(),
        flight=flight,
        dump_dir=flight_dump_dir,
        label=f"{protocol}_{scenario.name}_seed{seed}",
    )
    # Default detection ceiling: at soak bandwidths the bottleneck queue
    # inflates RTOs to seconds, so the consecutive-RTO ladder can lag a
    # heartbeat-style timeout; 2.5 s keeps detection inside the presets'
    # crash->restart spacing. Fresh (post-handover) subflows still detect
    # faster via the RTO ladder.
    effective_policy = policy or ReconnectPolicy(max_detect_s=2.5)
    manager = RecoveryManager(
        sim,
        connection,
        build,
        RngStreams(seed),
        policy=effective_policy,
        trace=trace,
        watchdog=watchdog,
        hello_rtt_s=2.0 * delay_s,
    )
    scenario.apply(sim, paths, trace=trace, lifecycle=controller, endpoints=manager)

    report = RecoveryReport(
        protocol=protocol,
        scenario_name=scenario.name,
        seed=seed,
        duration_s=duration_s,
        expected_bytes=expected_bytes,
        expected_units=expected_units,
        expect_complete=_expected_completion(scenario),
    )

    def _watch() -> None:
        if manager.connection.delivered_bytes >= expected_bytes:
            if report.completion_time_s is None:
                report.completion_time_s = sim.now
            # A finished transfer makes no further progress; that is not
            # a stall, so the watchdog retires with the transfer.
            watchdog.stop()
            return
        if watchdog.failed:
            return  # terminal: the diagnosis is already frozen
        sim.schedule(0.25, _watch)

    sim.schedule(0.25, _watch)
    watchdog.start()
    manager.start()
    connection.start()
    sim.run(until=duration_s)

    connection = manager.connection  # the latest epoch's connection
    stats = manager.stats()
    report.delivered_bytes = int(connection.delivered_bytes)
    report.delivered_units = len(delivered_ids)
    report.completed = report.delivered_bytes >= expected_bytes
    report.crashes = manager.crashes
    report.resumes = manager.resumes
    report.attempts = manager.attempts_total
    report.epochs = manager.epoch
    report.recovery_state = manager.state
    report.outages = stats["outages"]
    report.max_outage_s = max(
        (outage.get("outage_s", 0.0) for outage in report.outages), default=0.0
    )
    report.checkpoint_bytes = stats["checkpoint_bytes"]
    report.watchdog_failed = watchdog.failed
    report.watchdog_escalation = watchdog.escalation
    report.fail_reason = watchdog.fail_reason
    report.diagnosis = watchdog.diagnosis

    payload = b"".join(delivered_payload)
    report.payload_crc32 = zlib.crc32(payload)
    transcript = bytes(source.transcript or b"")

    # Invariant 1: byte-identical delivery despite K crashes.
    if payload != transcript[: len(payload)]:
        divergence = next(
            (
                index
                for index, (got, want) in enumerate(zip(payload, transcript))
                if got != want
            ),
            min(len(payload), len(transcript)),
        )
        report.violations.append(
            f"delivered payload diverges from source transcript at byte "
            f"{divergence} (delivered {len(payload)}, transcript "
            f"{len(transcript)})"
        )
    if report.completed and len(payload) != expected_bytes:
        report.violations.append(
            f"completed but payload length {len(payload)} != expected "
            f"{expected_bytes}"
        )

    # Invariant 2: exactly-once, in-order delivery (stale-checkpoint
    # re-sends must be deduplicated, crash-lost units re-delivered once).
    if delivered_ids != list(range(len(delivered_ids))):
        report.violations.append(
            f"delivery not exactly-once/in-order: got {len(delivered_ids)} "
            f"units, first disorder near index "
            f"{next((i for i, v in enumerate(delivered_ids) if v != i), -1)}"
        )
    if report.completed and report.delivered_units != expected_units:
        report.violations.append(
            f"unit count mismatch: delivered {report.delivered_units}, "
            f"expected {expected_units}"
        )

    # Invariant 3: bounded recovery per outage.
    effective_policy = manager.policy
    for outage in report.outages:
        resume_at = outage.get("resume_at")
        if resume_at is not None:
            since = outage.get("restart_at", outage["crash_at"])
            if resume_at - since > recovery_bound_s:
                report.violations.append(
                    f"recovery exceeded bound: {outage['kind']} at "
                    f"t={outage['crash_at']:.1f}s resumed "
                    f"{resume_at - since:.2f}s after restart "
                    f"(bound {recovery_bound_s:.1f}s)"
                )
        detect_s = outage.get("detect_s")
        if detect_s is not None and detect_s > effective_policy.max_detect_s + 0.5:
            report.violations.append(
                f"half-open detection took {detect_s:.2f}s, past the "
                f"{effective_policy.max_detect_s:.1f}s policy ceiling"
            )

    # Invariant 4: completion where promised, clean failure where not.
    if report.expect_complete and not report.completed:
        report.violations.append(
            f"expected completion: {report.delivered_bytes}/{expected_bytes} "
            f"bytes after {duration_s:.0f}s (state {manager.state})"
        )
    if not report.expect_complete and report.completed:
        report.violations.append(
            "expected a clean failure but the transfer completed "
            "(scenario no longer exercises reconnect exhaustion)"
        )
    if not report.completed and not watchdog.failed:
        report.violations.append(
            f"deadlock: transfer neither completed nor failed cleanly "
            f"(state {manager.state}, escalation {watchdog.escalation})"
        )
    if watchdog.failed and watchdog.diagnosis is None:
        report.violations.append("watchdog failed without a diagnosis")

    # Invariant 5: epoch accounting — one resume per recovery epoch,
    # every applied crash either resumed or terminally failed.
    if manager.epoch != manager.resumes:
        report.violations.append(
            f"epoch/resume mismatch: epoch {manager.epoch}, "
            f"resumes {manager.resumes}"
        )
    if report.expect_complete and manager.resumes != manager.crashes:
        report.violations.append(
            f"unresolved outage: {manager.crashes} crashes but only "
            f"{manager.resumes} resumes in a fully-restarted timeline"
        )
    if scenario.has_endpoint_faults and manager.crashes == 0:
        report.violations.append(
            "scenario has crash events but none were applied"
        )
    if manager.attempts_total < manager.resumes:
        report.violations.append(
            f"attempt accounting broken: {manager.attempts_total} attempts "
            f"for {manager.resumes} resumes"
        )

    # Invariant 6: timers + event-queue drain (incl. manager timers).
    # Only a live epoch owes armed timers — after a terminal give-up the
    # manager has deliberately torn the connection down (timers
    # cancelled, in-flight abandoned), which is the clean-fail contract,
    # not a wedge.
    if manager.state == "running":
        _check_timers(connection, "at end", report.violations)
    watchdog.stop()
    manager.close()
    connection.close()
    sim.drain_cancelled()
    if report.completed and sim.pending_events != 0:
        report.violations.append(
            f"event queue did not drain: {sim.pending_events} live events "
            "after completion and close"
        )

    if flight is not None:
        if report.violations:
            os.makedirs(flight_dump_dir, exist_ok=True)
            stem = f"recovery_{protocol}_{scenario.name}_seed{seed}"
            dump_path = os.path.join(flight_dump_dir, stem + ".jsonl")
            flight.dump(
                dump_path,
                meta={
                    "protocol": protocol,
                    "scenario": scenario.name,
                    "seed": seed,
                    "violations": report.violations,
                },
            )
            report.flight_dump_path = dump_path
            if profiler is not None:
                profile_path = os.path.join(flight_dump_dir, stem + ".profile.json")
                with open(profile_path, "w") as handle:
                    json.dump(profiler.report(), handle, indent=2)
                report.profile_dump_path = profile_path
        flight.close()
        sim.set_profiler(None)
    return report


# ----------------------------------------------------------------------
# Benchmark probe.
# ----------------------------------------------------------------------
def measure_recovery(
    protocol: str,
    scenario: FaultScenario,
    seed: int = 1,
    duration_s: float = 40.0,
    total_bytes: int = 600_000,
) -> Dict[str, Any]:
    """Crash run vs clean baseline: retention, latency, checkpoint size.

    Goodput retention is the ratio of the clean completion time to the
    crashed completion time (1.0 = the crash cost nothing); recovery
    latency is decomposed into half-open detection and reconnect
    handshake per outage. ``checkpoint_bytes`` surfaces the paper's
    state asymmetry — FMTCP's O(1) frontier vs MPTCP's chunk map.
    """
    crashed = run_recovery(
        protocol, scenario, seed=seed, duration_s=duration_s, total_bytes=total_bytes
    )
    baseline_scenario = FaultScenario(
        f"baseline:{scenario.name}",
        [],
        n_paths=scenario.n_paths,
        active_paths=scenario.active_paths,
    )
    baseline = run_recovery(
        protocol,
        baseline_scenario,
        seed=seed,
        duration_s=duration_s,
        total_bytes=total_bytes,
    )
    retention = 0.0
    if crashed.completion_time_s and baseline.completion_time_s:
        retention = baseline.completion_time_s / crashed.completion_time_s
    detect_values = [
        outage["detect_s"] for outage in crashed.outages if "detect_s" in outage
    ]
    return {
        "protocol": protocol,
        "scenario": scenario.name,
        "seed": seed,
        "baseline_completion_s": baseline.completion_time_s,
        "crashed_completion_s": crashed.completion_time_s,
        "goodput_retention": round(retention, 4),
        "crashes": crashed.crashes,
        "resumes": crashed.resumes,
        "max_outage_s": round(crashed.max_outage_s, 3),
        "mean_detect_s": (
            round(sum(detect_values) / len(detect_values), 3)
            if detect_values
            else None
        ),
        "checkpoint_bytes": crashed.checkpoint_bytes,
        "violations": len(crashed.violations) + len(baseline.violations),
    }
