"""Crash detection, reconnection and session resumption.

The :class:`RecoveryManager` is the endpoints handler a
:class:`~repro.faults.scenario.FaultInjector` delegates ``crash_sender``
/ ``crash_receiver`` / ``restart`` events to. It implements an **epoch
model**: a crash of either endpoint ends the transport epoch — the
connection object is torn down wholesale, never surgically mutated —
and a successful reconnect rebuilds a fresh connection from the last
durable checkpoints (see :mod:`repro.recovery.checkpoint`) as the next
epoch.

State machine (one manager per transfer)::

                        crash_sender
        ┌─── running ──────────────────────► down ◄─┐
        │       │                              │    │ restart(sender)
        │       │ crash_receiver               ▼    │
        │       ▼                          (waits)──┘
        │   half_open ── detector fires ─► reconnecting ──► resuming
        │       ▲                              │  ▲            │
        │       │ sender keeps sending         │  │ backoff     │ hello
        │       │ into the void                ▼  │ + jitter    │ RTT
        │       └───────────────────────── attempt fails        ▼
        └───────────────────────────────────────────────────── running
                                               │
                                   retry budget exhausted
                                               ▼
                                            failed  (Watchdog.fail)

A **sender crash** is self-announcing: the sender's host knows it went
down, so the epoch tears down immediately and reconnection starts when
the sender restarts. A **receiver crash** is *not*: the receiver's
ports simply unbind, data drops silently, and the sender keeps
transmitting into the void (a half-open connection). The manager's
detector polls for every subflow going ``potentially_failed`` — the
RTO ladder's verdict — with a wall-clock fallback, then tears down and
starts reconnecting.

Reconnection models a session-token handshake: each attempt presents
the session token minted at setup; the (simulated) peer accepts iff
both endpoints are up and the token matches. Failed attempts back off
exponentially with decorrelating jitter drawn from a **per-epoch RNG
stream** (`recovery:backoff` under the next epoch's key), capped, and
bounded by a retry budget; exhaustion escalates through the existing
:meth:`~repro.robustness.watchdog.Watchdog.fail` clean-fail rung.

Idempotent re-delivery needs no new machinery — it is a property the
transports already have: a restarted FMTCP sender re-offers blocks the
receiver already decoded and the first feedback's ``decoded_in_order``
fast-forwards it past them, while MPTCP's reorder buffer counts
below-frontier chunks as duplicates. The soak harness asserts the
end-to-end consequence (byte-identical, exactly-once delivery).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional

from repro.recovery.checkpoint import (
    ReceiverCheckpoint,
    SenderCheckpoint,
    ResumeState,
    resume_state,
    snapshot_receiver,
    snapshot_sender,
)
from repro.sim.rng import RngStreams


@dataclass(frozen=True)
class ReconnectPolicy:
    """Knobs of the reconnection protocol (all times in seconds)."""

    initial_backoff_s: float = 0.25
    backoff_multiplier: float = 2.0
    max_backoff_s: float = 4.0
    # Jitter: uniform in [0, jitter_fraction * current backoff), drawn
    # from the per-epoch `recovery:backoff` stream.
    jitter_fraction: float = 0.5
    retry_budget: int = 8
    # Sender checkpoint cadence while the epoch is healthy.
    checkpoint_period_s: float = 1.0
    # Half-open detector: poll cadence and the wall-clock fallback after
    # which a silent receiver is declared dead even if some subflow has
    # not yet tripped its RTO ladder.
    halfopen_poll_s: float = 0.25
    max_detect_s: float = 10.0

    def __post_init__(self) -> None:
        if self.initial_backoff_s <= 0 or self.max_backoff_s < self.initial_backoff_s:
            raise ValueError("require 0 < initial_backoff_s <= max_backoff_s")
        if self.backoff_multiplier < 1.0:
            raise ValueError("backoff_multiplier must be >= 1")
        if not 0.0 <= self.jitter_fraction <= 1.0:
            raise ValueError("jitter_fraction must be in [0, 1]")
        if self.retry_budget < 1:
            raise ValueError("retry_budget must be >= 1")
        if self.checkpoint_period_s <= 0 or self.halfopen_poll_s <= 0:
            raise ValueError("periods must be positive")
        if self.max_detect_s <= 0:
            raise ValueError("max_detect_s must be positive")


class RecoveryManager:
    """Drives checkpoints, crash handling and reconnection for one transfer.

    ``rebuild(epoch, resume)`` is the harness-supplied closure that
    constructs the next epoch's connection: rewind the replayable source
    to ``resume.sender_byte_offset``, build a connection with
    ``resume=resume`` on the currently active path set, and return it
    un-started (the manager calls ``start()``).
    """

    def __init__(
        self,
        sim: Any,
        connection: Any,
        rebuild: Callable[[int, ResumeState], Any],
        rng: RngStreams,
        policy: Optional[ReconnectPolicy] = None,
        trace: Optional[Any] = None,
        watchdog: Optional[Any] = None,
        hello_rtt_s: float = 0.06,
    ):
        self.sim = sim
        self.connection = connection
        self.rebuild = rebuild
        self.rng = rng
        self.policy = policy or ReconnectPolicy()
        self.trace = trace
        self.watchdog = watchdog
        self.hello_rtt_s = hello_rtt_s

        # Session token minted at connection setup; every reconnect
        # attempt must present it. 64 bits from the seeded stream keeps
        # runs reproducible.
        self.token = f"{rng.get('recovery:token').getrandbits(64):016x}"
        self._peer_token = self.token  # tests tamper with this to model rejects

        self.state = "running"
        self.sender_up = True
        self.receiver_up = True
        self.epoch = 0
        self.crashes = 0
        self.resumes = 0
        self.attempts_total = 0
        self.outages: List[Dict[str, Any]] = []
        self.closed = False

        self._sender_ckpt: SenderCheckpoint = snapshot_sender(connection)
        self._receiver_ckpt: Optional[ReceiverCheckpoint] = None
        self._outage: Optional[Dict[str, Any]] = None
        self._crash_at = 0.0
        self._attempts_this_outage = 0
        self._backoff = self.policy.initial_backoff_s
        self._backoff_rng = None

        self._ckpt_event: Optional[Any] = None
        self._poll_event: Optional[Any] = None
        self._attempt_event: Optional[Any] = None
        self._resume_event: Optional[Any] = None

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Arm the periodic sender checkpoint (call once, after setup)."""
        if self._ckpt_event is None and not self.closed:
            self._ckpt_event = self.sim.schedule(
                self.policy.checkpoint_period_s, self._ckpt_tick
            )

    def close(self) -> None:
        """Cancel every pending timer (event-queue drain hygiene)."""
        self.closed = True
        for attr in ("_ckpt_event", "_poll_event", "_attempt_event", "_resume_event"):
            event = getattr(self, attr)
            if event is not None:
                event.cancel()
                setattr(self, attr, None)

    # ------------------------------------------------------------------
    # Periodic sender checkpoint.
    # ------------------------------------------------------------------
    def _ckpt_tick(self) -> None:
        self._ckpt_event = None
        if self.closed or self.state != "running":
            return
        self._sender_ckpt = snapshot_sender(self.connection)
        if self.trace is not None and self.trace.has_subscribers("recovery.checkpoint"):
            self.trace.emit(
                self.sim.now,
                "recovery.checkpoint",
                epoch=self.epoch,
                frontier=self._sender_ckpt.frontier,
                bytes=self._sender_ckpt.size_bytes,
            )
        self._ckpt_event = self.sim.schedule(
            self.policy.checkpoint_period_s, self._ckpt_tick
        )

    # ------------------------------------------------------------------
    # Endpoints-handler interface (FaultInjector delegates here).
    # ------------------------------------------------------------------
    def crash_sender(self) -> None:
        """The sender's host died: self-announcing, tear down the epoch now.

        Everything volatile on the sender — pending blocks, in-flight
        symbols, the chunk registry — is gone; only the periodic
        checkpoint survives. The receiver outlived the crash, so its
        frontier snapshot at teardown is exact live state.
        """
        if self.closed or self.state != "running":
            return
        self._open_outage("crash_sender")
        self._receiver_ckpt = snapshot_receiver(self.connection)
        self._cancel("_ckpt_event")
        self.connection.close()
        # Pause the stall ladder for the outage: a torn-down epoch makes
        # no progress by design, and a rung-2 pump on a closed connection
        # would be meaningless. The manager owns failure during an outage
        # (budget exhaustion -> Watchdog.fail); the ladder re-arms at
        # resume.
        if self.watchdog is not None:
            self.watchdog.stop()
        self.sender_up = False
        self.state = "down"
        self._emit("recovery.crash", endpoint="sender")

    def crash_receiver(self) -> None:
        """The receiver's host died: silent, the sender must detect it.

        The receiver's frontier is frozen *at the crash instant* —
        delivery to the application was the durable commit, while blocks
        still in the app queue and all partial decode state are lost.
        Its ports unbind (sinks close), so the still-running sender
        transmits into the void until the half-open detector fires.
        """
        if self.closed or self.state != "running":
            return
        self._open_outage("crash_receiver")
        self._receiver_ckpt = snapshot_receiver(self.connection)
        self._cancel("_ckpt_event")
        self.connection.sever_receiver()
        self.receiver_up = False
        self.state = "half_open"
        self._emit("recovery.crash", endpoint="receiver")
        self._poll_event = self.sim.schedule(
            self.policy.halfopen_poll_s, self._poll_halfopen
        )

    def restart(self, which: Optional[str] = None) -> None:
        """A crashed endpoint's host came back up.

        ``which`` is ``"sender"``, ``"receiver"`` or ``None`` (= every
        endpoint currently down). Restarting the sender from the *down*
        state begins reconnection; a receiver restart merely makes
        future attempts succeed (the sender drives the handshake).
        """
        if self.closed or self.state in ("failed",):
            return
        revived = []
        if which in (None, "sender") and not self.sender_up:
            self.sender_up = True
            revived.append("sender")
        if which in (None, "receiver") and not self.receiver_up:
            self.receiver_up = True
            revived.append("receiver")
        if not revived:
            return
        if self._outage is not None and "restart_at" not in self._outage:
            self._outage["restart_at"] = self.sim.now
        self._emit("recovery.restart", endpoints=",".join(revived))
        if self.state == "down" and self.sender_up:
            self._begin_reconnect()

    # ------------------------------------------------------------------
    # Half-open detection.
    # ------------------------------------------------------------------
    def _poll_halfopen(self) -> None:
        self._poll_event = None
        if self.closed or self.state != "half_open":
            return
        connection = self.connection
        subflows = getattr(connection, "subflows", [])
        detected = bool(subflows) and all(
            getattr(subflow, "potentially_failed", False) for subflow in subflows
        )
        waited = self.sim.now - self._crash_at
        if detected or waited >= self.policy.max_detect_s:
            if self._outage is not None:
                self._outage["detect_s"] = round(waited, 6)
            self._emit(
                "recovery.detect",
                waited_s=round(waited, 3),
                via="rto_ladder" if detected else "timeout",
            )
            connection.close()
            if self.watchdog is not None:  # paused for the outage, see crash_sender
                self.watchdog.stop()
            self._begin_reconnect()
        else:
            self._poll_event = self.sim.schedule(
                self.policy.halfopen_poll_s, self._poll_halfopen
            )

    # ------------------------------------------------------------------
    # Reconnection.
    # ------------------------------------------------------------------
    def _begin_reconnect(self) -> None:
        self.state = "reconnecting"
        self._attempts_this_outage = 0
        self._backoff = self.policy.initial_backoff_s
        # Jitter decorrelates retry storms; its stream is keyed by the
        # epoch being *established*, so every recovery epoch replays
        # identically for a given master seed.
        self._backoff_rng = self.rng.for_epoch(self.epoch + 1).get("recovery:backoff")
        self._attempt_event = self.sim.schedule(0.0, self._attempt)

    def _accept_hello(self, token: str) -> bool:
        """The peer's accept rule: both hosts up, session token matches."""
        return self.sender_up and self.receiver_up and token == self._peer_token

    def _attempt(self) -> None:
        self._attempt_event = None
        if self.closed or self.state != "reconnecting":
            return
        self.attempts_total += 1
        self._attempts_this_outage += 1
        accepted = self._accept_hello(self.token)
        self._emit(
            "recovery.attempt",
            n=self._attempts_this_outage,
            accepted=accepted,
        )
        if accepted:
            self.state = "resuming"
            self._resume_event = self.sim.schedule(self.hello_rtt_s, self._resume)
            return
        if self._attempts_this_outage >= self.policy.retry_budget:
            self._give_up()
            return
        jitter = self._backoff_rng.uniform(
            0.0, self.policy.jitter_fraction * self._backoff
        )
        delay = self._backoff + jitter
        self._backoff = min(
            self._backoff * self.policy.backoff_multiplier, self.policy.max_backoff_s
        )
        self._attempt_event = self.sim.schedule(delay, self._attempt)

    def _give_up(self) -> None:
        self.state = "failed"
        if self._outage is not None:
            self._outage["gave_up_at"] = self.sim.now
            self.outages.append(self._outage)
            self._outage = None
        self._emit("recovery.giveup", attempts=self._attempts_this_outage)
        if self.watchdog is not None:
            self.watchdog.fail(
                f"reconnect budget exhausted after "
                f"{self._attempts_this_outage} attempts"
            )

    def _resume(self) -> None:
        self._resume_event = None
        if self.closed or self.state != "resuming":
            return
        assert self._receiver_ckpt is not None  # set at every crash
        resume = resume_state(self._sender_ckpt, self._receiver_ckpt)
        self.epoch += 1
        self.connection = self.rebuild(self.epoch, resume)
        if self.watchdog is not None:
            self.watchdog.connection = self.connection
            if not self.watchdog.failed:
                # Re-arm the stall ladder against the new epoch's
                # progress baseline.
                self.watchdog.start()
        self.state = "running"
        self.resumes += 1
        if self._outage is not None:
            self._outage["resume_at"] = self.sim.now
            self._outage["attempts"] = self._attempts_this_outage
            self._outage["outage_s"] = round(self.sim.now - self._crash_at, 6)
            self.outages.append(self._outage)
            self._outage = None
        self._emit(
            "recovery.resume",
            epoch=self.epoch,
            sender_frontier=resume.sender_frontier,
            receiver_frontier=resume.receiver_frontier,
        )
        self._ckpt_event = self.sim.schedule(
            self.policy.checkpoint_period_s, self._ckpt_tick
        )
        self.connection.start()

    # ------------------------------------------------------------------
    # Helpers.
    # ------------------------------------------------------------------
    def _open_outage(self, kind: str) -> None:
        self.crashes += 1
        self._crash_at = self.sim.now
        self._outage = {"kind": kind, "crash_at": self.sim.now}

    def _cancel(self, attr: str) -> None:
        event = getattr(self, attr)
        if event is not None:
            event.cancel()
            setattr(self, attr, None)

    def _emit(self, kind: str, **fields: Any) -> None:
        if self.trace is not None and self.trace.has_subscribers(kind):
            self.trace.emit(self.sim.now, kind, state=self.state, **fields)

    def stats(self) -> Dict[str, Any]:
        """Structured recovery accounting for reports and post-mortems."""
        return {
            "state": self.state,
            "epoch": self.epoch,
            "crashes": self.crashes,
            "resumes": self.resumes,
            "attempts_total": self.attempts_total,
            "outages": list(self.outages),
            "checkpoint_bytes": self._sender_ckpt.size_bytes,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<RecoveryManager state={self.state} epoch={self.epoch} "
            f"crashes={self.crashes} resumes={self.resumes}>"
        )
