"""Robustness layer: flow control, bounded memory, watchdogs, soaks.

Split in two halves with different import weight:

* The *primitives* (``flowcontrol``, ``budget``, ``watchdog``) are
  dependency-free and imported eagerly — the core FMTCP/MPTCP stacks
  import :class:`ReceiveWindow`/:class:`WindowGate` from here on their
  own hot path, so this module must not drag the connection classes in.
* The *exhaustion harness* builds whole connections and therefore
  imports ``repro.core``/``repro.mptcp``; loading it eagerly would make
  the import graph circular (core → robustness → exhaustion → core).
  Its symbols resolve lazily via module ``__getattr__`` instead, so
  ``from repro.robustness import run_exhaustion`` still works.
"""

from repro.robustness.budget import MemoryBudget
from repro.robustness.flowcontrol import ReceiveWindow, WindowGate, ZeroWindowProber
from repro.robustness.watchdog import Watchdog, WatchdogConfig

_EXHAUSTION_SYMBOLS = (
    "BUFFERBLOCK_PATHS",
    "EXHAUSTION_SCENARIOS",
    "ExhaustionReport",
    "ExhaustionScenario",
    "measure_bufferblock",
    "run_exhaustion",
)

__all__ = [
    "MemoryBudget",
    "ReceiveWindow",
    "Watchdog",
    "WatchdogConfig",
    "WindowGate",
    "ZeroWindowProber",
    *_EXHAUSTION_SYMBOLS,
]


def __getattr__(name: str):
    if name in _EXHAUSTION_SYMBOLS:
        from repro.robustness import exhaustion

        return getattr(exhaustion, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
