"""Peak-memory accounting for bounded-operation soaks.

A :class:`MemoryBudget` is a passive accountant: the exhaustion harness
(or any caller) feeds it ``connection.memory_stats()`` snapshots and it
tracks the peak of every numeric category. Limits are optional; a
category with a limit whose peak exceeds it becomes a violation string,
which the soak invariant machinery folds into its report. Nothing here
touches protocol hot paths — all cost is borne by whoever samples.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Union

Number = Union[int, float]


class MemoryBudget:
    """Tracks peak occupancy per category against optional hard limits."""

    def __init__(self, limits: Optional[Mapping[str, Number]] = None):
        self.limits: Dict[str, Number] = dict(limits or {})
        self.peaks: Dict[str, Number] = {}
        self.observations = 0

    def observe(self, stats: Mapping[str, Number]) -> None:
        """Fold one snapshot of per-category occupancy into the peaks."""
        self.observations += 1
        for key, value in stats.items():
            if not isinstance(value, (int, float)):
                continue
            if key not in self.peaks or value > self.peaks[key]:
                self.peaks[key] = value

    def peak(self, key: str) -> Number:
        return self.peaks.get(key, 0)

    def violations(self) -> List[str]:
        """One message per category whose peak exceeded its limit."""
        over = []
        for key, limit in sorted(self.limits.items()):
            peak = self.peaks.get(key, 0)
            if peak > limit:
                over.append(
                    f"memory budget exceeded: {key} peaked at {peak} "
                    f"(budget {limit})"
                )
        return over

    @property
    def ok(self) -> bool:
        return not self.violations()

    def summary(self) -> Dict[str, Number]:
        """Peaks dict for reports (a copy; safe to serialise)."""
        return dict(self.peaks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MemoryBudget {len(self.peaks)} categories, "
            f"{self.observations} observations>"
        )
