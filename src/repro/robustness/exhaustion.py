"""Resource-exhaustion soak harness: bounded-memory operation under
hostile receivers.

The chaos harness (:mod:`repro.faults.chaos`) attacks the *network*;
this one attacks the *endpoint*: a tiny receive buffer, an application
that stops reading, a path mix engineered for receive-buffer blocking.
Each :class:`ExhaustionScenario` fixes a receiver memory budget (bytes,
converted to blocks or chunks per protocol) and an application drain
model, then :func:`run_exhaustion` drives one finite transfer with flow
control on, a :class:`~repro.robustness.budget.MemoryBudget` accountant
riding the run and a :class:`~repro.robustness.watchdog.Watchdog`
guaranteeing a stalled run degrades and fails cleanly instead of
hanging. Invariants checked afterwards:

1. **bounded memory** — peak receiver occupancy never exceeds the
   budgeted unit count (the flow-control licence actually held);
2. **exactly-once, in-order delivery** — same as the chaos harness;
3. **no deadlock** — the transfer either completes or the watchdog
   declares a clean failure *with a structured diagnosis*; hanging
   forever in between is a violation;
4. **completion where promised** — scenarios marked ``expect_complete``
   must finish despite the tiny budget (and unrecoverable ones must
   *not* quietly succeed, which would mean the scenario tests nothing);
5. **no wedged timers / event-queue drain** — as in the chaos harness.

:func:`measure_bufferblock` is the open-ended companion used by
``benchmarks/bench_bufferblock.py``: goodput as a function of the
receive-buffer budget on an RTT-mismatched path pair, the paper's
receive-buffer-blocking story in one sweep.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.config import FmtcpConfig
from repro.core.connection import FmtcpConnection
from repro.mptcp.connection import MptcpConfig, MptcpConnection
from repro.net.topology import PathConfig, build_two_path_network
from repro.robustness.budget import MemoryBudget
from repro.robustness.watchdog import Watchdog, WatchdogConfig
from repro.sim.rng import RngStreams
from repro.sim.trace import TraceBus
from repro.telemetry.flight import FlightRecorder
from repro.telemetry.profiler import SimProfiler
from repro.telemetry.samplers import attach_samplers
from repro.workloads.sources import BulkSource

PROTOCOLS = ("fmtcp", "mptcp")


@dataclass(frozen=True)
class ExhaustionScenario:
    """One resource-exhaustion preset: a memory budget plus a drain model.

    ``recv_budget_bytes`` is the receiver's whole memory allowance; the
    per-protocol configs convert it to units (8 KiB blocks for FMTCP,
    MSS chunks for MPTCP) so both stacks face the *same* byte budget
    rather than the same unit count. ``drain_rate_bps`` follows the
    config convention: ``None`` = instant application, ``0.0`` = an
    application that stopped reading.
    """

    name: str
    description: str
    recv_budget_bytes: int
    drain_rate_bps: Optional[float]
    # One dict of PathConfig kwargs per path.
    path_params: Tuple[Dict[str, float], ...]
    total_bytes: int
    duration_s: float
    expect_complete: bool = True

    def budget_units(self, protocol: str) -> int:
        """The byte budget expressed in the protocol's receive units."""
        if protocol == "fmtcp":
            return max(2, self.recv_budget_bytes // FmtcpConfig().block_bytes)
        if protocol == "mptcp":
            return max(2, self.recv_budget_bytes // MptcpConfig().mss)
        raise ValueError(f"unknown protocol {protocol!r}")

    def fmtcp_config(self) -> FmtcpConfig:
        return FmtcpConfig(
            flow_control=True,
            recv_window_blocks=self.budget_units("fmtcp"),
            recv_drain_rate_bps=self.drain_rate_bps,
        )

    def mptcp_config(self) -> MptcpConfig:
        return MptcpConfig(
            flow_control=True,
            recv_buffer_chunks=self.budget_units("mptcp"),
            recv_drain_rate_bps=self.drain_rate_bps,
        )

    def config_for(self, protocol: str):
        if protocol == "fmtcp":
            return self.fmtcp_config()
        if protocol == "mptcp":
            return self.mptcp_config()
        raise ValueError(f"unknown protocol {protocol!r}")


def tiny_receive_buffer() -> ExhaustionScenario:
    """A 32 KiB receiver: four FMTCP blocks of head-room, lossy paths."""
    return ExhaustionScenario(
        name="tiny_receive_buffer",
        description="32 KiB receive budget, 1% loss on both paths",
        recv_budget_bytes=32_768,
        drain_rate_bps=None,
        path_params=(
            {"bandwidth_bps": 1.5e6, "delay_s": 0.03, "loss_rate": 0.01},
            {"bandwidth_bps": 1.5e6, "delay_s": 0.03, "loss_rate": 0.01},
        ),
        total_bytes=600_000,
        duration_s=30.0,
        expect_complete=True,
    )


def slow_drain_receiver() -> ExhaustionScenario:
    """The application stops reading: unrecoverable, must fail cleanly."""
    return ExhaustionScenario(
        name="slow_drain_receiver",
        description="application stops reading (drain rate 0); clean fail",
        recv_budget_bytes=98_304,
        drain_rate_bps=0.0,
        path_params=(
            {"bandwidth_bps": 2e6, "delay_s": 0.02, "loss_rate": 0.0},
            {"bandwidth_bps": 2e6, "delay_s": 0.02, "loss_rate": 0.0},
        ),
        total_bytes=800_000,
        duration_s=25.0,
        expect_complete=False,
    )


def rtt_mismatch_blocking() -> ExhaustionScenario:
    """Fast/slow path pair: classic receive-buffer blocking pressure."""
    return ExhaustionScenario(
        name="rtt_mismatch_blocking",
        description="30x RTT mismatch + loss on the slow path, 32 KiB budget",
        recv_budget_bytes=32_768,
        drain_rate_bps=None,
        path_params=(
            {"bandwidth_bps": 4e6, "delay_s": 0.01, "loss_rate": 0.0},
            {"bandwidth_bps": 1e6, "delay_s": 0.3, "loss_rate": 0.03},
        ),
        total_bytes=800_000,
        duration_s=30.0,
        expect_complete=True,
    )


EXHAUSTION_SCENARIOS = {
    "tiny_receive_buffer": tiny_receive_buffer,
    "slow_drain_receiver": slow_drain_receiver,
    "rtt_mismatch_blocking": rtt_mismatch_blocking,
}


@dataclass
class ExhaustionReport:
    """Outcome of one :func:`run_exhaustion` run."""

    protocol: str
    scenario_name: str
    seed: int
    duration_s: float
    expected_bytes: int
    budget_units: int
    delivered_bytes: int = 0
    delivered_units: int = 0
    completed: bool = False
    completion_time_s: Optional[float] = None
    peak_occupancy: int = 0
    memory_peaks: Dict[str, float] = field(default_factory=dict)
    flow: Dict[str, Any] = field(default_factory=dict)
    watchdog_failed: bool = False
    watchdog_escalation: int = 0
    diagnosis: Optional[Dict[str, Any]] = None
    violations: List[str] = field(default_factory=list)
    flight_dump_path: Optional[str] = None
    watchdog_dump_path: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.violations


def _build_connection(protocol, scenario, sim, paths, source, seed, trace, sink):
    config = scenario.config_for(protocol)
    if protocol == "fmtcp":
        return FmtcpConnection(
            sim, paths, source, config=config,
            trace=trace, rng=RngStreams(seed), sink=sink,
        )
    return MptcpConnection(
        sim, paths, source, config=config, trace=trace, sink=sink
    )


def _check_timers(connection, label: str, violations: List[str]) -> None:
    """Outstanding data without a pending RTO timer = wedged."""
    for subflow in connection.subflows:
        if subflow.in_flight > 0 and not subflow.timer_armed:
            violations.append(
                f"wedged timer {label}: subflow {subflow.subflow_id} has "
                f"{subflow.in_flight} packets in flight and no RTO pending"
            )


def run_exhaustion(
    protocol: str,
    scenario: ExhaustionScenario,
    seed: int = 1,
    flight_dump_dir: Optional[str] = None,
    flight_capacity: int = 4096,
    watchdog_config: Optional[WatchdogConfig] = None,
    telemetry_period_s: float = 0.1,
) -> ExhaustionReport:
    """Run one finite transfer against ``scenario`` and check invariants."""
    trace = TraceBus()
    configs = [PathConfig(**params) for params in scenario.path_params]
    network, paths = build_two_path_network(configs, rng=RngStreams(seed), trace=trace)
    sim = network.sim

    flight: Optional[FlightRecorder] = None
    profiler: Optional[SimProfiler] = None
    if flight_dump_dir is not None:
        flight = FlightRecorder(trace, capacity=flight_capacity)
        profiler = SimProfiler()
        sim.set_profiler(profiler)

    delivered_ids: List[int] = []
    if protocol == "fmtcp":
        block_bytes = scenario.fmtcp_config().block_bytes
        expected_units = max(1, scenario.total_bytes // block_bytes)
        expected_bytes = expected_units * block_bytes
        sink = lambda block_id, data: delivered_ids.append(block_id)  # noqa: E731
    elif protocol == "mptcp":
        mss = scenario.mptcp_config().mss
        expected_units = scenario.total_bytes // mss + (
            1 if scenario.total_bytes % mss else 0
        )
        expected_bytes = scenario.total_bytes
        sink = lambda chunk: delivered_ids.append(chunk.dsn)  # noqa: E731
    else:
        raise ValueError(f"unknown protocol {protocol!r}")

    source = BulkSource(total_bytes=expected_bytes)
    connection = _build_connection(
        protocol, scenario, sim, paths, source, seed, trace, sink
    )
    samplers = attach_samplers(
        sim, connection, trace, period_s=telemetry_period_s
    )
    budget = MemoryBudget(
        limits={"recv_occupancy": scenario.budget_units(protocol)}
    )
    watchdog = Watchdog(
        sim,
        connection,
        config=watchdog_config,
        trace=trace,
        samplers=samplers,
        flight=flight,
        dump_dir=flight_dump_dir,
        label=f"{protocol}_{scenario.name}_seed{seed}",
    )

    report = ExhaustionReport(
        protocol=protocol,
        scenario_name=scenario.name,
        seed=seed,
        duration_s=scenario.duration_s,
        expected_bytes=expected_bytes,
        budget_units=scenario.budget_units(protocol),
    )

    def _watch() -> None:
        budget.observe(connection.memory_stats())
        if connection.delivered_bytes >= expected_bytes:
            if report.completion_time_s is None:
                report.completion_time_s = sim.now
            # A finished transfer makes no further progress; that is not
            # a stall, so the watchdog retires with the transfer.
            watchdog.stop()
            return  # done observing; let the queue drain
        if watchdog.failed:
            return  # terminal: the diagnosis is already frozen
        sim.schedule(0.25, _watch)

    sim.schedule(0.25, _watch)
    watchdog.start()
    connection.start()
    sim.run(until=scenario.duration_s)

    budget.observe(connection.memory_stats())
    report.delivered_bytes = connection.delivered_bytes
    report.delivered_units = len(delivered_ids)
    report.completed = report.delivered_bytes >= expected_bytes
    report.peak_occupancy = int(budget.peak("recv_occupancy"))
    report.memory_peaks = budget.summary()
    report.flow = connection.flow_stats()
    report.watchdog_failed = watchdog.failed
    report.watchdog_escalation = watchdog.escalation
    report.diagnosis = watchdog.diagnosis
    report.watchdog_dump_path = watchdog.dump_path

    # Invariant 1: peak occupancy within the budgeted unit count.
    report.violations.extend(budget.violations())

    # Invariant 2: exactly-once, in-order delivery.
    if delivered_ids != list(range(len(delivered_ids))):
        report.violations.append(
            f"delivery not exactly-once/in-order: got {len(delivered_ids)} "
            f"units, first disorder near index "
            f"{next((i for i, v in enumerate(delivered_ids) if v != i), -1)}"
        )
    if report.completed and report.delivered_units != expected_units:
        report.violations.append(
            f"unit count mismatch: delivered {report.delivered_units}, "
            f"expected {expected_units}"
        )

    # Invariant 3: no deadlock — either done, or failed *with* diagnosis.
    if not report.completed and not watchdog.failed:
        report.violations.append(
            f"deadlock: transfer neither completed nor failed cleanly "
            f"({report.delivered_bytes}/{expected_bytes} bytes after "
            f"{scenario.duration_s:.0f}s, watchdog escalation "
            f"{watchdog.escalation})"
        )
    if watchdog.failed and watchdog.diagnosis is None:
        report.violations.append("watchdog failed without a diagnosis")

    # Invariant 4: completion where the scenario promises it (and a
    # clean failure where it promises *that* — an "unrecoverable"
    # scenario that completes is not exercising anything).
    if scenario.expect_complete and not report.completed:
        report.violations.append(
            f"expected completion: {report.delivered_bytes}/{expected_bytes} "
            f"bytes delivered within the {scenario.recv_budget_bytes}B budget"
        )
    if not scenario.expect_complete and report.completed:
        report.violations.append(
            "expected a clean failure but the transfer completed "
            "(scenario no longer exercises exhaustion)"
        )

    # Invariant 5: timers + event-queue drain.
    _check_timers(connection, "at end", report.violations)
    watchdog.stop()
    for sampler in samplers:
        sampler.stop()
    connection.close()
    sim.drain_cancelled()
    if report.completed and sim.pending_events != 0:
        report.violations.append(
            f"event queue did not drain: {sim.pending_events} live events "
            "after completion and close"
        )

    if flight is not None:
        if report.violations:
            os.makedirs(flight_dump_dir, exist_ok=True)
            stem = f"exhaustion_{protocol}_{scenario.name}_seed{seed}"
            dump_path = os.path.join(flight_dump_dir, stem + ".jsonl")
            flight.dump(
                dump_path,
                meta={
                    "protocol": protocol,
                    "scenario": scenario.name,
                    "seed": seed,
                    "violations": report.violations,
                },
            )
            report.flight_dump_path = dump_path
            if profiler is not None:
                profile_path = os.path.join(flight_dump_dir, stem + ".profile.json")
                with open(profile_path, "w") as handle:
                    json.dump(profiler.report(), handle, indent=2)
        flight.close()
        sim.set_profiler(None)
    return report


# ----------------------------------------------------------------------
# Buffer-blocking benchmark backend.
# ----------------------------------------------------------------------

# The bench topology: equal-bandwidth paths, one with 10x the RTT and
# more loss. Both paths must carry real traffic (equal bandwidth), so a
# slow-path loss stalls MPTCP's in-order frontier while the buffered
# fast-path data pins the tiny window — the "receive buffer blocking"
# of Iyengar et al. that the paper's Section II argues coding sidesteps.
BUFFERBLOCK_PATHS: Tuple[Tuple[float, float, float], ...] = (
    (1.5e6, 0.03, 0.04),
    (1.5e6, 0.3, 0.08),
)


def _bufferblock_config(protocol: str, budget_bytes: int):
    """Each stack configured for one shared receive-buffer byte budget.

    MPTCP's unit is fixed (one MSS chunk), so its budget is just a chunk
    count. FMTCP's block size k̂ is a *design parameter chosen against
    the buffer* (paper Section III-B), so the bench does what a deployer
    would: shrink the block so roughly eight fit in the budget, floored
    at 64 symbols (2 KiB) where the completeness margin starts to
    dominate, capped at the default 256 (8 KiB).
    """
    if protocol == "fmtcp":
        base = FmtcpConfig()
        symbols = min(256, max(64, budget_bytes // (8 * base.symbol_size)))
        block_bytes = symbols * base.symbol_size
        return FmtcpConfig(
            flow_control=True,
            symbols_per_block=symbols,
            recv_window_blocks=max(2, budget_bytes // block_bytes),
        )
    if protocol == "mptcp":
        return MptcpConfig(
            flow_control=True,
            recv_buffer_chunks=max(2, budget_bytes // MptcpConfig().mss),
        )
    raise ValueError(f"unknown protocol {protocol!r}")


def measure_bufferblock(
    protocol: str,
    budget_bytes: int,
    seed: int = 1,
    duration_s: float = 40.0,
) -> Dict[str, Any]:
    """Open-ended goodput under one receive-buffer byte budget.

    Flow control is on for both stacks; the budget is converted to each
    protocol's unit granularity by :func:`_bufferblock_config`, so FMTCP
    and MPTCP face the same byte allowance.
    """
    config = _bufferblock_config(protocol, budget_bytes)
    trace = TraceBus()
    configs = [
        PathConfig(bandwidth_bps=bw, delay_s=delay, loss_rate=loss)
        for bw, delay, loss in BUFFERBLOCK_PATHS
    ]
    network, paths = build_two_path_network(configs, rng=RngStreams(seed), trace=trace)
    if protocol == "fmtcp":
        connection = FmtcpConnection(
            network.sim, paths, BulkSource(), config=config,
            trace=trace, rng=RngStreams(seed),
        )
        budget_units = config.recv_window_blocks
    else:
        connection = MptcpConnection(
            network.sim, paths, BulkSource(), config=config, trace=trace
        )
        budget_units = config.recv_buffer_chunks
    connection.start()
    network.sim.run(until=duration_s)
    delivered = connection.delivered_bytes
    peak = connection.memory_stats()["recv_peak_occupancy"]
    connection.close()
    return {
        "protocol": protocol,
        "budget_bytes": budget_bytes,
        "budget_units": budget_units,
        "peak_occupancy": peak,
        "goodput_mbytes_per_s": round(delivered / duration_s / 1e6, 4),
    }
