"""End-to-end flow control primitives shared by both stacks.

The scheme is *sequence-licensed*: the receiver advertises a window such
that ``limit = acked + window`` is the highest unit id (block for FMTCP,
chunk for MPTCP) the sender may introduce, and that limit is monotone
non-decreasing over time (``limit = drained + capacity``, and both terms
only grow). Monotonicity is what makes the scheme safe over multiple
paths: feedback arrives out of order across subflows, and the sender
simply keeps the *highest* limit it has ever seen — a stale ACK can
never retract permission already granted.

Every unit the receiver holds has an id in ``[drained, limit)``, so
honest-sender occupancy is bounded by ``capacity`` by construction.
With an instantly-draining application this degenerates to exactly the
local credit rule MPTCP already used (``capacity - (next - acked)``),
which is why the knob-off golden traces stay byte-identical.
"""

from __future__ import annotations

from typing import Any, Callable, Optional


class ReceiveWindow:
    """Receiver-side accountant for one connection's unit-granular window.

    ``drained`` counts units the *application* consumed (not merely
    received); the sender is licensed to introduce unit ids strictly
    below ``drained + capacity``. ``advertise`` turns that licence into
    the window value carried on an ACK.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.drained = 0
        self.peak_occupancy = 0
        self.zero_window_advertises = 0

    @property
    def limit(self) -> int:
        """Highest unit id (exclusive) the sender is licensed to send."""
        return self.drained + self.capacity

    def admits(self, seq: int) -> bool:
        """Whether a *new* unit with this id fits in the licensed range."""
        return seq < self.limit

    def on_drained(self, units: int = 1) -> None:
        """The application consumed ``units`` more in-order units."""
        self.drained += units

    def observe_occupancy(self, occupancy: int) -> None:
        if occupancy > self.peak_occupancy:
            self.peak_occupancy = occupancy

    def advertise(self, acked: int, occupancy: int) -> int:
        """The window to piggyback on an ACK that acknowledges ``acked``.

        ``acked + window == limit`` by construction; a full application
        backlog (nothing drained since ``acked`` caught up) advertises 0
        and the sender falls back to zero-window probing.
        """
        self.observe_occupancy(occupancy)
        window = max(0, self.limit - acked)
        if window == 0:
            self.zero_window_advertises += 1
        return window


class WindowGate:
    """Sender-side ledger of the receiver's licence, with backpressure.

    ``limit`` is the maximum ``acked + window`` seen across all feedback
    on all subflows (monotone, so multipath reordering is harmless).
    The watermark pair adds hysteresis on top of the hard limit: when
    the receiver-held backlog crosses ``high_watermark`` of capacity the
    gate pauses *new* unit introduction entirely, resuming only once the
    backlog falls to ``low_watermark`` — so the sender stops hammering a
    nearly-full receiver instead of oscillating at the edge.
    """

    def __init__(
        self,
        capacity: int,
        high_watermark: float = 0.75,
        low_watermark: float = 0.5,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if not 0.0 < low_watermark <= high_watermark <= 1.0:
            raise ValueError(
                f"watermarks must satisfy 0 < low <= high <= 1, got "
                f"low={low_watermark}, high={high_watermark}"
            )
        self.capacity = capacity
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark
        self.limit = capacity  # ids < capacity are licensed before any ACK
        self.paused = False
        self.pauses = 0
        self.zero_windows_seen = 0
        self.last_window: Optional[int] = None

    def advertise(self, acked: int, window: int) -> None:
        """Fold one ACK's (cumulative ack, advertised window) pair in."""
        limit = acked + window
        if limit > self.limit:
            self.limit = limit
        if window == 0:
            self.zero_windows_seen += 1
        self.last_window = window
        # The receiver still holds (capacity - window) undrained units.
        backlog = self.capacity - window
        if not self.paused and backlog >= self.high_watermark * self.capacity:
            self.paused = True
            self.pauses += 1
        elif self.paused and backlog <= self.low_watermark * self.capacity:
            self.paused = False

    def admits(self, seq: int) -> bool:
        """Whether a *new* unit with this id may be introduced now."""
        return not self.paused and seq < self.limit

    def credit(self, next_seq: int) -> int:
        """How many new units may be introduced starting at ``next_seq``."""
        if self.paused:
            return 0
        return max(0, self.limit - next_seq)

    def blocked(self, next_seq: int) -> bool:
        """True when no new unit may be introduced (probe territory)."""
        return self.credit(next_seq) <= 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "paused" if self.paused else "open"
        return f"<WindowGate limit={self.limit} {state}>"


class ZeroWindowProber:
    """Exponential-backoff pacing for probing a closed receive window.

    ``fire`` is the owner's probe callback; it must *send* one probe (a
    single symbol / a duplicate chunk — something the receiver will ACK
    even when its window is closed) and return ``True`` while the window
    is still closed. The prober re-arms itself with doubled interval
    (capped at ``max_s``) while ``fire`` keeps returning ``True``; any
    ``False`` return — or an explicit :meth:`disarm` when a fresh window
    arrives — resets the backoff. A closed window therefore costs one
    small packet per backoff interval and can never deadlock.
    """

    def __init__(
        self,
        sim: Any,
        fire: Callable[[], bool],
        initial_s: float = 0.5,
        max_s: float = 4.0,
    ):
        if initial_s <= 0 or max_s < initial_s:
            raise ValueError(
                f"need 0 < initial_s <= max_s, got {initial_s}, {max_s}"
            )
        self._sim = sim
        self._fire = fire
        self.initial_s = initial_s
        self.max_s = max_s
        self._interval = initial_s
        self._event: Optional[Any] = None
        self.probes_fired = 0

    @property
    def armed(self) -> bool:
        return self._event is not None

    def arm(self) -> None:
        """Start the probe countdown; a no-op if already armed."""
        if self._event is None:
            self._event = self._sim.schedule(self._interval, self._tick)

    def disarm(self) -> None:
        """Stop probing and reset the backoff (window opened, or close)."""
        if self._event is not None:
            self._event.cancel()
            self._event = None
        self._interval = self.initial_s

    def _tick(self) -> None:
        self._event = None
        self._interval = min(self._interval * 2.0, self.max_s)
        self.probes_fired += 1
        if self._fire():
            self._event = self._sim.schedule(self._interval, self._tick)
        else:
            self._interval = self.initial_s
