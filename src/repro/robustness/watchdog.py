"""No-progress watchdog with graceful degradation.

Watches one connection's goodput (``delivered_bytes``). When nothing is
delivered for a stall window (``stall_rtts`` × the slowest subflow's
SRTT, floored at ``min_stall_s``), it escalates one rung per further
stall window instead of letting the transfer hang:

1. **shed telemetry** — stop the periodic samplers riding the run, so a
   resource-starved simulation sheds its own observation cost first;
2. **raise redundancy** — bump an FMTCP sender's completeness margin by
   ``margin_boost`` (more in-flight head-room per block) and pump; a
   stack with no margin passes through this rung as a no-op;
3. **fail cleanly** — declare the transfer failed with a structured
   diagnosis (subflow, window and memory state), emit ``watchdog.failed``
   and optionally dump the flight recorder for post-mortem analysis.

Renewed progress at any rung resets the escalation to zero. The
watchdog is entirely outside the protocol hot path: one periodic timer,
cancelled by :meth:`Watchdog.stop`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence


@dataclass
class WatchdogConfig:
    """Tunables for stall detection and the escalation ladder."""

    check_period_s: float = 0.25
    # Stall threshold: max(min_stall_s, stall_rtts * max subflow SRTT).
    stall_rtts: float = 8.0
    min_stall_s: float = 1.0
    # Rung 2: added to an FMTCP sender's completeness margin.
    margin_boost: float = 8.0

    def __post_init__(self) -> None:
        if self.check_period_s <= 0:
            raise ValueError("check_period_s must be positive")
        if self.min_stall_s <= 0:
            raise ValueError("min_stall_s must be positive")


class Watchdog:
    """Drives the shed → boost → fail ladder for one connection."""

    def __init__(
        self,
        sim: Any,
        connection: Any,
        config: Optional[WatchdogConfig] = None,
        trace: Optional[Any] = None,
        samplers: Sequence[Any] = (),
        flight: Optional[Any] = None,
        dump_dir: Optional[str] = None,
        label: str = "transfer",
    ):
        self.sim = sim
        self.connection = connection
        self.config = config or WatchdogConfig()
        self.trace = trace
        self.samplers = list(samplers)
        self.flight = flight
        self.dump_dir = dump_dir
        self.label = label

        self.escalation = 0  # 0 healthy, 1 shed, 2 boosted, 3 failed
        self.failed = False
        self.fail_reason: Optional[str] = None
        self.diagnosis: Optional[Dict[str, Any]] = None
        self.stalls_detected = 0
        self.samplers_shed = 0
        self.margin_boosts = 0
        self.dump_path: Optional[str] = None
        self._event: Optional[Any] = None
        self._last_progress_bytes = -1
        self._last_progress_at = 0.0

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._event is not None:
            return
        self._last_progress_bytes = int(self.connection.delivered_bytes)
        self._last_progress_at = self.sim.now
        self._event = self.sim.schedule(self.config.check_period_s, self._tick)

    def stop(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None

    # ------------------------------------------------------------------
    # Stall detection.
    # ------------------------------------------------------------------
    def stall_threshold_s(self) -> float:
        srtts = [
            subflow.srtt
            for subflow in getattr(self.connection, "subflows", [])
            if subflow.srtt > 0
        ]
        rtt_based = self.config.stall_rtts * max(srtts, default=0.0)
        return max(self.config.min_stall_s, rtt_based)

    def _tick(self) -> None:
        self._event = None
        delivered = int(self.connection.delivered_bytes)
        if delivered != self._last_progress_bytes:
            self._last_progress_bytes = delivered
            self._last_progress_at = self.sim.now
            self.escalation = 0  # progress heals the ladder
        elif self.sim.now - self._last_progress_at >= self.stall_threshold_s():
            self._escalate()
            # Each rung gets a full stall window before the next one.
            self._last_progress_at = self.sim.now
        if not self.failed:
            self._event = self.sim.schedule(self.config.check_period_s, self._tick)

    # ------------------------------------------------------------------
    # Escalation ladder.
    # ------------------------------------------------------------------
    def _escalate(self) -> None:
        self.stalls_detected += 1
        self.escalation += 1
        if self.escalation == 1:
            self._shed_telemetry()
        elif self.escalation == 2:
            self._boost_margin()
        else:
            self._fail()

    def _shed_telemetry(self) -> None:
        shed = 0
        for sampler in self.samplers:
            if getattr(sampler, "_running", False):
                sampler.stop()
                shed += 1
        self.samplers_shed += shed
        self._emit("watchdog.shed", samplers=shed)

    def _boost_margin(self) -> None:
        sender = getattr(self.connection, "sender", None)
        margin = getattr(sender, "margin", None)
        if margin is not None:
            sender.margin = margin + self.config.margin_boost
            self.margin_boosts += 1
            self._emit("watchdog.margin_boost", margin=sender.margin)
            sender.pump_all()
        else:
            # No redundancy knob on this stack (MPTCP): rung is a no-op.
            self._emit("watchdog.margin_boost", margin=None)
        getattr(self.connection, "pump", lambda: None)()

    def fail(self, reason: str) -> None:
        """Escalate straight to a clean failure from outside the ladder.

        Entry point for subsystems that *know* the transfer is dead
        without waiting out stall windows — e.g. the recovery manager
        after exhausting its reconnection budget. Idempotent; the reason
        lands in :attr:`fail_reason`, the diagnosis, and the
        ``watchdog.failed`` trace record.
        """
        if self.failed:
            return
        self.escalation = 3
        self.fail_reason = reason
        self._fail()
        self.stop()

    def _fail(self) -> None:
        self.failed = True
        self.diagnosis = self.diagnose()
        if self.fail_reason is not None:
            self.diagnosis["fail_reason"] = self.fail_reason
        self._emit(
            "watchdog.failed",
            label=self.label,
            stalled_s=round(self.sim.now - self._last_progress_at, 3),
            delivered_bytes=self._last_progress_bytes,
            reason=self.fail_reason or "stall",
        )
        if self.flight is not None and self.dump_dir is not None:
            os.makedirs(self.dump_dir, exist_ok=True)
            slug = "".join(
                ch if ch.isalnum() or ch in "-_." else "-" for ch in self.label
            )
            self.dump_path = os.path.join(self.dump_dir, f"watchdog_{slug}.jsonl")
            self.flight.dump(self.dump_path, meta=self._dump_meta())

    # ------------------------------------------------------------------
    # Diagnosis.
    # ------------------------------------------------------------------
    def diagnose(self) -> Dict[str, Any]:
        """A structured snapshot of why the transfer is stuck."""
        connection = self.connection
        subflows: List[Dict[str, Any]] = []
        for subflow in getattr(connection, "subflows", []):
            subflows.append(
                {
                    "id": subflow.subflow_id,
                    "state": getattr(subflow, "state", "?"),
                    "in_flight": subflow.in_flight,
                    "srtt_ms": round(subflow.srtt * 1e3, 2),
                    "suspect": bool(getattr(subflow, "potentially_failed", False)),
                }
            )
        diagnosis: Dict[str, Any] = {
            "label": self.label,
            "time_s": round(self.sim.now, 3),
            "delivered_bytes": int(connection.delivered_bytes),
            "stall_threshold_s": round(self.stall_threshold_s(), 3),
            "escalation": self.escalation,
            "subflows": subflows,
        }
        memory = getattr(connection, "memory_stats", None)
        if memory is not None:
            diagnosis["memory"] = memory()
        flow = getattr(connection, "flow_stats", None)
        if flow is not None:
            diagnosis["flow"] = flow()
        return diagnosis

    def _dump_meta(self) -> Dict[str, Any]:
        meta = {"label": self.label, "reason": "watchdog_failed"}
        if self.diagnosis is not None:
            meta["delivered_bytes"] = self.diagnosis["delivered_bytes"]
            meta["escalation"] = self.diagnosis["escalation"]
        return meta

    def _emit(self, kind: str, **fields: Any) -> None:
        if self.trace is not None:
            self.trace.emit(self.sim.now, kind, **fields)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "failed" if self.failed else f"escalation={self.escalation}"
        return f"<Watchdog {self.label} {state}>"
