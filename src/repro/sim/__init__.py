"""Discrete-event simulation core.

This package is the ns-2 replacement used by the whole reproduction: a
deterministic, heap-based event scheduler (:mod:`repro.sim.engine`),
named reproducible random-number streams (:mod:`repro.sim.rng`), restartable
timers (:mod:`repro.sim.timers`) and a lightweight trace bus
(:mod:`repro.sim.trace`).
"""

from repro.sim.engine import Event, SimulationError, Simulator
from repro.sim.rng import RngStreams
from repro.sim.timers import Timer
from repro.sim.trace import TraceBus, TraceRecord
from repro.sim.tracefile import TraceFileWriter, read_trace_file

__all__ = [
    "Event",
    "RngStreams",
    "SimulationError",
    "Simulator",
    "Timer",
    "TraceBus",
    "TraceFileWriter",
    "TraceRecord",
    "read_trace_file",
]
