"""Heap-based discrete-event scheduler.

The engine executes callbacks at simulated timestamps. Determinism is a
hard requirement for the reproduction (every figure must be regenerable
bit-for-bit from a seed), so ties in time are broken by a monotonically
increasing insertion sequence number rather than by object identity.
"""

from __future__ import annotations

import heapq
import time
from typing import Any, Callable, List, Optional


class SimulationError(RuntimeError):
    """Raised on scheduler misuse (negative delays, running twice, ...)."""


class Event:
    """A scheduled callback.

    Events are returned by :meth:`Simulator.schedule` so callers can cancel
    them later. A cancelled event stays in the heap but is skipped when it
    reaches the front (lazy deletion), which keeps cancellation O(1).
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the scheduler skips it."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.6f} seq={self.seq} fn={self.fn!r}{state}>"


class Simulator:
    """Deterministic discrete-event simulator.

    Typical use::

        sim = Simulator()
        sim.schedule(1.0, print, "hello at t=1")
        sim.run(until=10.0)
    """

    def __init__(self) -> None:
        self._heap: List[Event] = []
        self._seq = 0
        self._now = 0.0
        self._running = False
        self._stopped = False
        self._processed = 0
        self._profiler = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far (for progress reporting)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)

    @property
    def profiler(self):
        """The attached :class:`~repro.telemetry.profiler.SimProfiler`, if any."""
        return self._profiler

    def set_profiler(self, profiler) -> None:
        """Attach (or with ``None`` detach) a profiler observing the run loop.

        The profiled branch only observes wall time — simulated behaviour
        is unchanged — and the unprofiled branch costs one ``is None``
        test per event.
        """
        self._profiler = profiler

    def enable_profiling(self):
        """Attach a fresh :class:`~repro.telemetry.profiler.SimProfiler`."""
        from repro.telemetry.profiler import SimProfiler

        self._profiler = SimProfiler()
        return self._profiler

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute simulated time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule in the past: {time!r} < now={self._now!r}"
            )
        event = Event(time, self._seq, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    def stop(self) -> None:
        """Stop the run loop after the current callback returns."""
        self._stopped = True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Execute events in timestamp order.

        Parameters
        ----------
        until:
            Stop once the next event is strictly later than this time; the
            clock is then advanced to ``until``. ``None`` runs to exhaustion.
        max_events:
            Safety valve for tests; stop after this many callbacks.
        """
        if self._running:
            raise SimulationError("run() re-entered")
        self._running = True
        self._stopped = False
        executed = 0
        profiling_run = self._profiler is not None
        run_started_wall = time.perf_counter() if profiling_run else 0.0
        try:
            while self._heap and not self._stopped:
                event = self._heap[0]
                if event.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and event.time > until:
                    break
                heapq.heappop(self._heap)
                self._now = event.time
                profiler = self._profiler
                if profiler is None:
                    event.fn(*event.args)
                else:
                    heap_depth = len(self._heap)
                    started = time.perf_counter()
                    event.fn(*event.args)
                    profiler.on_event(
                        event.fn,
                        time.perf_counter() - started,
                        heap_depth,
                        event.time,
                    )
                self._processed += 1
                executed += 1
                if max_events is not None and executed >= max_events:
                    break
        finally:
            self._running = False
            if profiling_run and self._profiler is not None:
                self._profiler.on_run_complete(
                    time.perf_counter() - run_started_wall
                )
        if until is not None and self._now < until and not self._stopped:
            self._now = until

    def drain_cancelled(self) -> int:
        """Compact the heap by dropping cancelled events; returns the count.

        Long simulations with many restarted timers accumulate tombstones;
        transports call this occasionally to bound memory.
        """
        before = len(self._heap)
        live = [event for event in self._heap if not event.cancelled]
        heapq.heapify(live)
        self._heap = live
        return before - len(live)
