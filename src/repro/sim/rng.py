"""Named, reproducible random-number streams.

Every stochastic component (per-link loss, per-block coding, workload
arrival jitter, ...) draws from its own named stream so that changing one
component's consumption pattern does not perturb any other component —
the standard trick for variance reduction and debuggability in
discrete-event simulation.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngStreams:
    """A registry of independent :class:`random.Random` streams.

    Streams are derived from a master seed and a stream name via SHA-256,
    so ``RngStreams(7).get("loss:path0")`` is identical across runs and
    platforms and independent of creation order.

    ``epoch`` scopes the whole registry to a restart generation: epoch 0
    derives exactly the seed layout as before (byte-identical to the
    pre-epoch implementation), while epoch ``e > 0`` keys every stream as
    ``name#epoch{e}`` so an endpoint rebuilt after a crash neither
    replays nor collides with its pre-crash random stream. Components
    keep calling plain ``get(name)``; recovery hands them an epoch-scoped
    registry via :meth:`for_epoch`.
    """

    def __init__(self, master_seed: int = 0, epoch: int = 0) -> None:
        self.master_seed = int(master_seed)
        self.epoch = int(epoch)
        if self.epoch < 0:
            raise ValueError("epoch must be >= 0")
        self._streams: Dict[str, random.Random] = {}

    def _epoch_key(self, name: str) -> str:
        # Epoch 0 is the bare name: old seeds keep their exact streams.
        if self.epoch == 0:
            return name
        return f"{name}#epoch{self.epoch}"

    def _derive_seed(self, name: str) -> int:
        payload = f"{self.master_seed}:{self._epoch_key(name)}".encode("utf-8")
        digest = hashlib.sha256(payload).digest()
        return int.from_bytes(digest[:8], "big")

    def get(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(self._derive_seed(name))
            self._streams[name] = stream
        return stream

    def for_epoch(self, epoch: int) -> "RngStreams":
        """A registry view keyed to restart generation ``epoch``.

        ``for_epoch(0)`` reproduces this registry's own streams (fresh
        instances, same seeds); higher epochs get disjoint streams that
        are still fully determined by ``(master_seed, name, epoch)``.
        """
        if epoch == self.epoch:
            return self
        return RngStreams(self.master_seed, epoch=epoch)

    def fork(self, name: str) -> "RngStreams":
        """Derive a child registry (e.g. one per simulation replication)."""
        return RngStreams(self._derive_seed(f"fork:{name}"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RngStreams(master_seed={self.master_seed}, epoch={self.epoch}, "
            f"streams={sorted(self._streams)})"
        )
