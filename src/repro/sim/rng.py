"""Named, reproducible random-number streams.

Every stochastic component (per-link loss, per-block coding, workload
arrival jitter, ...) draws from its own named stream so that changing one
component's consumption pattern does not perturb any other component —
the standard trick for variance reduction and debuggability in
discrete-event simulation.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngStreams:
    """A registry of independent :class:`random.Random` streams.

    Streams are derived from a master seed and a stream name via SHA-256,
    so ``RngStreams(7).get("loss:path0")`` is identical across runs and
    platforms and independent of creation order.
    """

    def __init__(self, master_seed: int = 0) -> None:
        self.master_seed = int(master_seed)
        self._streams: Dict[str, random.Random] = {}

    def _derive_seed(self, name: str) -> int:
        payload = f"{self.master_seed}:{name}".encode("utf-8")
        digest = hashlib.sha256(payload).digest()
        return int.from_bytes(digest[:8], "big")

    def get(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(self._derive_seed(name))
            self._streams[name] = stream
        return stream

    def fork(self, name: str) -> "RngStreams":
        """Derive a child registry (e.g. one per simulation replication)."""
        return RngStreams(self._derive_seed(f"fork:{name}"))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStreams(master_seed={self.master_seed}, streams={sorted(self._streams)})"
