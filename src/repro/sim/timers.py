"""Restartable one-shot timers on top of the event scheduler.

TCP code restarts its retransmission timer constantly; doing that with raw
events means juggling cancellation handles everywhere. :class:`Timer`
wraps the pattern: ``start`` (or ``restart``) arms it, ``stop`` disarms it,
and the callback only fires if the timer is still armed.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.engine import Event, Simulator


class Timer:
    """A one-shot timer that can be (re)started and stopped.

    The callback receives no arguments; capture what you need in a closure
    or a bound method.
    """

    def __init__(self, sim: Simulator, callback: Callable[[], Any], name: str = "timer"):
        self._sim = sim
        self._callback = callback
        self.name = name
        self._event: Optional[Event] = None
        self._expiry: Optional[float] = None

    @property
    def armed(self) -> bool:
        """Whether the timer is currently counting down."""
        return self._event is not None and not self._event.cancelled

    @property
    def expiry(self) -> Optional[float]:
        """Absolute expiry time if armed, else ``None``."""
        return self._expiry if self.armed else None

    def start(self, delay: float) -> None:
        """Arm the timer ``delay`` seconds from now, replacing any pending one."""
        self.stop()
        self._expiry = self._sim.now + delay
        self._event = self._sim.schedule(delay, self._fire)

    # ``restart`` reads better at call sites that are semantically restarts.
    restart = start

    def stop(self) -> None:
        """Disarm the timer; a no-op if it is not armed."""
        if self._event is not None:
            self._event.cancel()
            self._event = None
        self._expiry = None

    def _fire(self) -> None:
        if self._event is None or self._event.cancelled:
            return
        self._event = None
        self._expiry = None
        self._callback()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"expires={self._expiry:.6f}" if self.armed else "idle"
        return f"<Timer {self.name} {state}>"
