"""Restartable one-shot and aligned periodic timers on the scheduler.

TCP code restarts its retransmission timer constantly; doing that with raw
events means juggling cancellation handles everywhere. :class:`Timer`
wraps the pattern: ``start`` (or ``restart``) arms it, ``stop`` disarms it,
and the callback only fires if the timer is still armed.

:class:`PeriodicTimer` adds drift-free repetition for clock-aligned
replay (the trace player): the k-th tick fires at exactly
``epoch + k * period`` via absolute scheduling, so accumulated float
error never skews a long trace against the simulated clock the way a
``now + period`` chain would.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.engine import Event, Simulator


class Timer:
    """A one-shot timer that can be (re)started and stopped.

    The callback receives no arguments; capture what you need in a closure
    or a bound method.
    """

    def __init__(self, sim: Simulator, callback: Callable[[], Any], name: str = "timer"):
        self._sim = sim
        self._callback = callback
        self.name = name
        self._event: Optional[Event] = None
        self._expiry: Optional[float] = None

    @property
    def armed(self) -> bool:
        """Whether the timer is currently counting down."""
        return self._event is not None and not self._event.cancelled

    @property
    def expiry(self) -> Optional[float]:
        """Absolute expiry time if armed, else ``None``."""
        return self._expiry if self.armed else None

    def start(self, delay: float) -> None:
        """Arm the timer ``delay`` seconds from now, replacing any pending one."""
        self.stop()
        self._expiry = self._sim.now + delay
        self._event = self._sim.schedule(delay, self._fire)

    # ``restart`` reads better at call sites that are semantically restarts.
    restart = start

    def stop(self) -> None:
        """Disarm the timer; a no-op if it is not armed."""
        if self._event is not None:
            self._event.cancel()
            self._event = None
        self._expiry = None

    def _fire(self) -> None:
        if self._event is None or self._event.cancelled:
            return
        self._event = None
        self._expiry = None
        self._callback()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"expires={self._expiry:.6f}" if self.armed else "idle"
        return f"<Timer {self.name} {state}>"


class PeriodicTimer:
    """A repeating timer whose ticks stay aligned to an epoch.

    Tick ``k`` fires at ``epoch + k * period`` (absolute scheduling), and
    the callback receives the *elapsed trace time* ``k * period`` — so a
    replayed time series indexes itself by exact multiples of its step,
    immune to float drift over thousands of ticks. ``stop`` disarms it;
    the callback may call ``stop`` to end the series from inside a tick.
    """

    def __init__(
        self,
        sim: Simulator,
        period_s: float,
        callback: Callable[[float], Any],
        name: str = "periodic",
    ):
        if period_s <= 0:
            raise ValueError(f"period must be positive, got {period_s}")
        self._sim = sim
        self.period_s = period_s
        self._callback = callback
        self.name = name
        self._event: Optional[Event] = None
        self._epoch: Optional[float] = None
        self._tick = 0

    @property
    def armed(self) -> bool:
        return self._event is not None and not self._event.cancelled

    @property
    def elapsed_s(self) -> float:
        """Trace time of the most recently scheduled tick."""
        return self._tick * self.period_s

    def start(self, fire_now: bool = True) -> None:
        """Anchor the epoch at the current simulated time and begin ticking.

        With ``fire_now`` the first tick (elapsed 0.0) runs at the epoch
        itself; otherwise the first tick is one period in.
        """
        self.stop()
        self._epoch = self._sim.now
        self._tick = 0 if fire_now else 1
        self._schedule_next()

    def stop(self) -> None:
        if self._event is not None:
            self._event.cancel()
            self._event = None
        self._epoch = None
        self._tick = 0

    def _schedule_next(self) -> None:
        assert self._epoch is not None
        self._event = self._sim.schedule_at(
            self._epoch + self._tick * self.period_s, self._fire
        )

    def _fire(self) -> None:
        if self._event is None or self._event.cancelled:
            return
        elapsed = self._tick * self.period_s
        self._tick += 1
        self._schedule_next()
        self._callback(elapsed)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"tick={self._tick}" if self.armed else "idle"
        return f"<PeriodicTimer {self.name} period={self.period_s:g}s {state}>"
