"""A minimal publish/subscribe trace bus.

Network elements and transports publish structured records ("packet
enqueued", "block decoded", ...); metric collectors subscribe to the kinds
they care about. Keeping tracing out-of-band means the protocol code never
depends on which metrics an experiment collects.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, List

# Hard cap on records queued by re-entrant emits (a subscriber emitting
# from inside a dispatch). Generous — a healthy run never queues more
# than a handful — but finite, so a pathological subscriber feedback
# loop degrades to counted drops instead of unbounded memory growth.
DEFAULT_MAX_PENDING = 65536


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry: a timestamp, a kind, and free-form fields."""

    time: float
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)


Subscriber = Callable[[TraceRecord], None]


class TraceBus:
    """Routes :class:`TraceRecord` instances to subscribers by kind."""

    def __init__(self, max_pending: int = DEFAULT_MAX_PENDING) -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self._subscribers: Dict[str, List[Subscriber]] = {}
        self._wildcard: List[Subscriber] = []
        self.max_pending = max_pending
        self._pending: Deque[TraceRecord] = deque()
        self._dispatching = False
        self.records_dropped = 0

    def subscribe(self, kind: str, fn: Subscriber) -> None:
        """Receive records of ``kind``; ``"*"`` subscribes to everything."""
        if kind == "*":
            self._wildcard.append(fn)
        else:
            self._subscribers.setdefault(kind, []).append(fn)

    def unsubscribe(self, kind: str, fn: Subscriber) -> None:
        """Remove a subscription added with :meth:`subscribe`."""
        pool = self._wildcard if kind == "*" else self._subscribers.get(kind, [])
        if fn in pool:
            pool.remove(fn)

    def emit(self, time: float, kind: str, **fields: Any) -> None:
        """Publish a record; cheap (no allocation) when nobody listens.

        Dispatch iterates over a snapshot of each subscriber list, so a
        callback may ``subscribe``/``unsubscribe`` (itself included)
        without corrupting the loop; subscriptions added mid-emit first
        see the *next* record.

        A record emitted *from inside* a dispatch (a subscriber reacting
        by emitting) is queued and dispatched by the outermost emit once
        its own record finishes, preserving causal order. The queue is
        bounded by ``max_pending``: overflow increments
        ``records_dropped`` instead of growing without limit.
        """
        targeted = self._subscribers.get(kind)
        if not targeted and not self._wildcard:
            return
        record = TraceRecord(time=time, kind=kind, fields=fields)
        if self._dispatching:
            if len(self._pending) >= self.max_pending:
                self.records_dropped += 1
            else:
                self._pending.append(record)
            return
        self._dispatching = True
        try:
            self._dispatch(record)
            while self._pending:
                self._dispatch(self._pending.popleft())
        finally:
            self._dispatching = False

    def _dispatch(self, record: TraceRecord) -> None:
        targeted = self._subscribers.get(record.kind)
        if targeted:
            for fn in tuple(targeted):
                fn(record)
        if self._wildcard:
            for fn in tuple(self._wildcard):
                fn(record)

    def has_subscribers(self, kind: str) -> bool:
        """True if emitting ``kind`` would reach anyone (lets hot paths skip work)."""
        return bool(self._subscribers.get(kind)) or bool(self._wildcard)
