"""A minimal publish/subscribe trace bus.

Network elements and transports publish structured records ("packet
enqueued", "block decoded", ...); metric collectors subscribe to the kinds
they care about. Keeping tracing out-of-band means the protocol code never
depends on which metrics an experiment collects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry: a timestamp, a kind, and free-form fields."""

    time: float
    kind: str
    fields: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)


Subscriber = Callable[[TraceRecord], None]


class TraceBus:
    """Routes :class:`TraceRecord` instances to subscribers by kind."""

    def __init__(self) -> None:
        self._subscribers: Dict[str, List[Subscriber]] = {}
        self._wildcard: List[Subscriber] = []

    def subscribe(self, kind: str, fn: Subscriber) -> None:
        """Receive records of ``kind``; ``"*"`` subscribes to everything."""
        if kind == "*":
            self._wildcard.append(fn)
        else:
            self._subscribers.setdefault(kind, []).append(fn)

    def unsubscribe(self, kind: str, fn: Subscriber) -> None:
        """Remove a subscription added with :meth:`subscribe`."""
        pool = self._wildcard if kind == "*" else self._subscribers.get(kind, [])
        if fn in pool:
            pool.remove(fn)

    def emit(self, time: float, kind: str, **fields: Any) -> None:
        """Publish a record; cheap (no allocation) when nobody listens.

        Dispatch iterates over a snapshot of each subscriber list, so a
        callback may ``subscribe``/``unsubscribe`` (itself included)
        without corrupting the loop; subscriptions added mid-emit first
        see the *next* record.
        """
        targeted = self._subscribers.get(kind)
        if not targeted and not self._wildcard:
            return
        record = TraceRecord(time=time, kind=kind, fields=fields)
        if targeted:
            for fn in tuple(targeted):
                fn(record)
        if self._wildcard:
            for fn in tuple(self._wildcard):
                fn(record)

    def has_subscribers(self, kind: str) -> bool:
        """True if emitting ``kind`` would reach anyone (lets hot paths skip work)."""
        return bool(self._subscribers.get(kind)) or bool(self._wildcard)
