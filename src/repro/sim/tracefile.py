"""JSONL trace export.

Attach a :class:`TraceFileWriter` to a :class:`~repro.sim.trace.TraceBus`
to persist selected (or all) trace records as JSON Lines — the simulation
equivalent of an ns-2 trace file, consumable by external tooling.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, List, Optional, Union

from repro.sim.trace import TraceBus, TraceRecord


def _jsonable(value):
    """Best-effort conversion of trace field values to JSON scalars."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return repr(value)


class TraceFileWriter:
    """Streams trace records to a JSONL file (or any text stream)."""

    def __init__(
        self,
        trace: TraceBus,
        target: Union[str, IO[str]],
        kinds: Optional[Iterable[str]] = None,
    ):
        self._owns_handle = isinstance(target, str)
        self._handle: IO[str] = (
            open(target, "w") if isinstance(target, str) else target
        )
        self._trace = trace
        self._kinds: List[str] = list(kinds) if kinds is not None else ["*"]
        self.records_written = 0
        for kind in self._kinds:
            trace.subscribe(kind, self._on_record)

    def _on_record(self, record: TraceRecord) -> None:
        entry = {"t": record.time, "kind": record.kind}
        for key, value in record.fields.items():
            entry[key] = _jsonable(value)
        self._handle.write(json.dumps(entry) + "\n")
        self.records_written += 1

    def close(self) -> None:
        """Detach from the bus and close the file (if we opened it)."""
        for kind in self._kinds:
            self._trace.unsubscribe(kind, self._on_record)
        self._handle.flush()
        if self._owns_handle:
            self._handle.close()

    def __enter__(self) -> "TraceFileWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_trace_file(path: str) -> List[dict]:
    """Load a JSONL trace back into a list of dicts."""
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
