"""JSONL trace export.

Attach a :class:`TraceFileWriter` to a :class:`~repro.sim.trace.TraceBus`
to persist selected (or all) trace records as JSON Lines — the simulation
equivalent of an ns-2 trace file, consumable by external tooling.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, List, Optional, Union

from repro.sim.trace import TraceBus, TraceRecord


def _jsonable(value):
    """Best-effort conversion of trace field values to JSON scalars."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return repr(value)


class TraceFileWriter:
    """Streams trace records to a JSONL file (or any text stream).

    Context-manager friendly: ``with TraceFileWriter(trace, path):``
    guarantees detach-and-close even if the run raises. Each record is
    written as one complete line in a single ``write`` call and
    ``flush_every`` records force an OS-level flush (default 256), so a
    crashed run leaves behind only whole, parseable JSONL lines up to the
    last flush; :func:`read_trace_file` skips a torn trailing line.
    """

    def __init__(
        self,
        trace: TraceBus,
        target: Union[str, IO[str]],
        kinds: Optional[Iterable[str]] = None,
        flush_every: Optional[int] = 256,
    ):
        if flush_every is not None and flush_every < 1:
            raise ValueError("flush_every must be >= 1 or None")
        self._owns_handle = isinstance(target, str)
        self._handle: IO[str] = (
            open(target, "w") if isinstance(target, str) else target
        )
        self._trace = trace
        self._kinds: List[str] = list(kinds) if kinds is not None else ["*"]
        self._flush_every = flush_every
        self.records_written = 0
        self.closed = False
        self._last_time = 0.0
        for kind in self._kinds:
            trace.subscribe(kind, self._on_record)

    def _on_record(self, record: TraceRecord) -> None:
        self._last_time = record.time
        entry = {"t": record.time, "kind": record.kind}
        for key, value in record.fields.items():
            entry[key] = _jsonable(value)
        self._handle.write(json.dumps(entry) + "\n")
        self.records_written += 1
        if self._flush_every is not None and (
            self.records_written % self._flush_every == 0
        ):
            self._handle.flush()

    def flush(self) -> None:
        """Push buffered lines to the OS without detaching from the bus."""
        if not self.closed:
            self._handle.flush()

    def close(self) -> None:
        """Detach from the bus and close the file (if we opened it).

        Idempotent: a second ``close`` (e.g. explicit call inside a
        ``with`` block) is a no-op.
        """
        if self.closed:
            return
        self.closed = True
        if self._trace.records_dropped > 0:
            entry = {
                "t": self._last_time,
                "kind": "trace.dropped",
                "dropped": self._trace.records_dropped,
                "max_pending": self._trace.max_pending,
            }
            self._handle.write(json.dumps(entry) + "\n")
            self.records_written += 1
        for kind in self._kinds:
            self._trace.unsubscribe(kind, self._on_record)
        self._handle.flush()
        if self._owns_handle:
            self._handle.close()

    def __enter__(self) -> "TraceFileWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_trace_file(path: str, strict: bool = False) -> List[dict]:
    """Load a JSONL trace back into a list of dicts.

    A process that crashed mid-write can leave a torn final line (the OS
    flushed a partial buffer). By default that trailing fragment is
    dropped and everything before it is returned; corruption anywhere
    *except* the last non-empty line still raises, as does any corruption
    when ``strict=True``.
    """
    with open(path) as handle:
        lines = [line.strip() for line in handle]
    while lines and not lines[-1]:
        lines.pop()
    records = []
    for index, line in enumerate(lines):
        if not line:
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError:
            if strict or index != len(lines) - 1:
                raise
            # Torn trailing line from an interrupted writer; drop it.
    return records
