"""TCP subflow machinery shared by the IETF-MPTCP baseline and FMTCP.

* :mod:`repro.tcp.rto` — RFC 6298 retransmission-timeout estimation.
* :mod:`repro.tcp.congestion` — Reno/NewReno-style and LIA-coupled
  congestion control (packet-counted windows, as in ns-2).
* :mod:`repro.tcp.subflow` — a congestion-controlled, SACK-style
  loss-detecting packet channel over one network path. Retransmission
  *policy* is delegated to the owning connection: MPTCP re-sends the lost
  chunk, FMTCP sends fresh fountain symbols instead.
"""

from repro.tcp.congestion import (
    CongestionController,
    LiaCoupledController,
    LiaGroup,
    RenoController,
)
from repro.tcp.rto import RtoEstimator
from repro.tcp.stream import TcpConfig, TcpConnection
from repro.tcp.subflow import (
    Subflow,
    SubflowAck,
    SubflowOwner,
    SubflowPacketInfo,
    SubflowSegment,
)

__all__ = [
    "CongestionController",
    "LiaCoupledController",
    "LiaGroup",
    "RenoController",
    "RtoEstimator",
    "Subflow",
    "TcpConfig",
    "TcpConnection",
    "SubflowAck",
    "SubflowOwner",
    "SubflowPacketInfo",
    "SubflowSegment",
]
