"""Congestion control for subflows.

Windows are counted in packets (the ns-2 convention the paper's evaluation
inherits). Two families are provided:

* :class:`RenoController` — uncoupled slow start + AIMD with NewReno-style
  reactions to fast-detected loss vs timeout. The paper runs its
  simulations on disjoint paths, where it argues the choice of coupling
  does not influence results; uncoupled Reno is therefore the default.
* :class:`LiaCoupledController` — RFC 6356 Linked-Increases (the "MPTCP"
  coupled algorithm of Raiciu et al. cited as [14]); subflows registered
  in a :class:`LiaGroup` share the aggressiveness factor alpha.
"""

from __future__ import annotations

from typing import Callable, List, Optional


class CongestionController:
    """Interface shared by all congestion-control algorithms."""

    # Finite default initial ssthresh (ns-2's TCP agents default to a small
    # value too); prevents slow start from overshooting the path BDP by
    # orders of magnitude before the first loss.
    DEFAULT_INITIAL_SSTHRESH = 64.0

    def __init__(
        self,
        initial_cwnd: float = 2.0,
        max_cwnd: float = 10_000.0,
        initial_ssthresh: float = DEFAULT_INITIAL_SSTHRESH,
    ):
        self.cwnd = float(initial_cwnd)
        self.ssthresh = float(initial_ssthresh)
        self.max_cwnd = max_cwnd
        self.fast_recoveries = 0
        self.timeouts = 0

    @property
    def window(self) -> int:
        """Usable window in whole packets (never below 1)."""
        return max(1, int(self.cwnd))

    def can_send(self, in_flight: int) -> bool:
        return in_flight < self.window

    def in_slow_start(self) -> bool:
        return self.cwnd < self.ssthresh

    def on_ack(self, newly_acked: int = 1) -> None:
        raise NotImplementedError

    def on_fast_loss(self) -> None:
        """Loss detected via duplicate/selective ACKs (multiplicative decrease)."""
        raise NotImplementedError

    def on_timeout(self) -> None:
        """Loss detected via RTO (collapse to one packet)."""
        raise NotImplementedError


class RenoController(CongestionController):
    """Slow start + AIMD, NewReno-flavoured."""

    def on_ack(self, newly_acked: int = 1) -> None:
        for __ in range(newly_acked):
            if self.in_slow_start():
                self.cwnd += 1.0
            else:
                self.cwnd += 1.0 / self.cwnd
        self.cwnd = min(self.cwnd, self.max_cwnd)

    def on_fast_loss(self) -> None:
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self.cwnd = self.ssthresh
        self.fast_recoveries += 1

    def on_timeout(self) -> None:
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self.cwnd = 1.0
        self.timeouts += 1


class LiaGroup:
    """Shared state for a set of LIA-coupled subflows.

    Recomputes RFC 6356's alpha lazily: callers invalidate the cache when
    any member's window or RTT changes materially; members query
    :meth:`alpha` on each ACK.
    """

    def __init__(self) -> None:
        self._members: List["LiaCoupledController"] = []

    def register(self, controller: "LiaCoupledController") -> None:
        self._members.append(controller)

    def unregister(self, controller: "CongestionController") -> None:
        """Drop a member whose subflow was removed (no-op if absent).

        Accepts any controller so connection teardown can call it without
        first checking the coupling kind; only LIA members are tracked.
        """
        try:
            self._members.remove(controller)  # type: ignore[arg-type]
        except ValueError:
            pass

    def total_cwnd(self) -> float:
        return sum(member.cwnd for member in self._members)

    def alpha(self) -> float:
        """RFC 6356: alpha = total * max(w_i/rtt_i^2) / (sum w_i/rtt_i)^2."""
        best = 0.0
        denominator = 0.0
        for member in self._members:
            rtt = max(member.rtt_provider(), 1e-6)
            best = max(best, member.cwnd / (rtt * rtt))
            denominator += member.cwnd / rtt
        if denominator <= 0.0:
            return 1.0
        return self.total_cwnd() * best / (denominator * denominator)


class LiaCoupledController(CongestionController):
    """One subflow's half of RFC 6356 Linked Increases.

    ``rtt_provider`` returns the subflow's current smoothed RTT; the group
    needs it to weight windows by path delay.
    """

    def __init__(
        self,
        group: LiaGroup,
        rtt_provider: Callable[[], float],
        initial_cwnd: float = 2.0,
        max_cwnd: float = 10_000.0,
    ):
        super().__init__(initial_cwnd=initial_cwnd, max_cwnd=max_cwnd)
        self.group = group
        self.rtt_provider = rtt_provider
        group.register(self)

    def on_ack(self, newly_acked: int = 1) -> None:
        for __ in range(newly_acked):
            if self.in_slow_start():
                self.cwnd += 1.0
            else:
                total = max(self.group.total_cwnd(), 1e-9)
                increase = min(self.group.alpha() / total, 1.0 / self.cwnd)
                self.cwnd += increase
        self.cwnd = min(self.cwnd, self.max_cwnd)

    def on_fast_loss(self) -> None:
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self.cwnd = self.ssthresh
        self.fast_recoveries += 1

    def on_timeout(self) -> None:
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self.cwnd = 1.0
        self.timeouts += 1


def make_controller(
    kind: str,
    lia_group: Optional[LiaGroup] = None,
    rtt_provider: Optional[Callable[[], float]] = None,
    initial_cwnd: float = 2.0,
) -> CongestionController:
    """Factory used by connection builders (``kind`` in {"reno", "lia"})."""
    if kind == "reno":
        return RenoController(initial_cwnd=initial_cwnd)
    if kind == "lia":
        if lia_group is None or rtt_provider is None:
            raise ValueError("LIA needs a group and an rtt_provider")
        return LiaCoupledController(
            lia_group, rtt_provider, initial_cwnd=initial_cwnd
        )
    raise ValueError(f"unknown congestion controller kind {kind!r}")
