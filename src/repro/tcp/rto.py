"""RFC 6298 retransmission-timeout estimation.

The smoothed RTT / RTT-variance recursion with exponential back-off on
timeouts. The paper's analysis assumes RTO ≈ RTT on short-RTT paths, which
a 200 ms minimum RTO approximates for the Table I configurations.
"""

from __future__ import annotations

from typing import Optional


class RtoEstimator:
    """Tracks SRTT/RTTVAR and derives the retransmission timeout."""

    def __init__(
        self,
        initial_rto: float = 1.0,
        min_rto: float = 0.2,
        max_rto: float = 60.0,
        alpha: float = 1.0 / 8.0,
        beta: float = 1.0 / 4.0,
    ):
        if min_rto <= 0 or max_rto < min_rto:
            raise ValueError("require 0 < min_rto <= max_rto")
        self.initial_rto = initial_rto
        self.min_rto = min_rto
        self.max_rto = max_rto
        self.alpha = alpha
        self.beta = beta
        self.srtt: Optional[float] = None
        self.rttvar: Optional[float] = None
        self._backoff_factor = 1.0
        self.samples = 0

    @property
    def rto(self) -> float:
        """Current timeout, including any exponential back-off."""
        if self.srtt is None:
            base = self.initial_rto
        else:
            base = self.srtt + max(4.0 * self.rttvar, 1e-9)
        return min(max(base * self._backoff_factor, self.min_rto), self.max_rto)

    def on_measurement(self, rtt: float) -> None:
        """Feed one RTT sample (must come from a non-retransmitted packet)."""
        if rtt <= 0:
            raise ValueError(f"rtt must be positive, got {rtt}")
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            self.rttvar = (1 - self.beta) * self.rttvar + self.beta * abs(self.srtt - rtt)
            self.srtt = (1 - self.alpha) * self.srtt + self.alpha * rtt
        self.samples += 1
        self._backoff_factor = 1.0

    def on_timeout(self) -> None:
        """Double the timeout (Karn back-off), clamped at ``max_rto``."""
        self._backoff_factor = min(self._backoff_factor * 2.0, self.max_rto / self.min_rto)

    def reset_backoff(self) -> None:
        self._backoff_factor = 1.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RtoEstimator(srtt={self.srtt}, rttvar={self.rttvar}, rto={self.rto:.3f})"
