"""A conventional single-path TCP connection.

The paper's introduction contrasts FMTCP/MPTCP against "conventional
TCP"; this class provides that comparator as a first-class transport: one
Reno-controlled subflow, chunk retransmission on loss, in-order delivery
to the application, and the same trace vocabulary as the multipath
transports (``conn.delivered`` / ``conn.block_done``) so the metric stack
applies unchanged. It is also the competitor flow in the shared-
bottleneck fairness experiments.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Optional, Tuple, Union

from repro.net.topology import Path
from repro.sim.engine import Simulator
from repro.sim.trace import TraceBus
from repro.tcp.congestion import RenoController
from repro.tcp.rto import RtoEstimator
from repro.tcp.subflow import Subflow, SubflowOwner, SubflowPacketInfo, SubflowSink


@dataclass
class TcpConfig:
    """Tunables of the plain TCP transport."""

    mss: int = 1400
    recv_buffer_chunks: int = 64
    block_bytes: int = 8192
    initial_cwnd: float = 2.0
    dup_ack_threshold: int = 3
    min_rto: float = 0.2


class _StreamChunk:
    __slots__ = ("seq", "size", "payload_bytes", "first_sent_at")

    def __init__(self, seq: int, size: int, payload_bytes: Optional[bytes], now: float):
        self.seq = seq
        self.size = size
        self.payload_bytes = payload_bytes
        self.first_sent_at = now


class _StreamFeedback:
    __slots__ = ("cumulative_ack",)

    def __init__(self, cumulative_ack: int):
        self.cumulative_ack = cumulative_ack


class TcpConnection(SubflowOwner):
    """Reliable, in-order byte stream over one path."""

    def __init__(
        self,
        sim: Simulator,
        path: Path,
        source,
        config: Optional[TcpConfig] = None,
        trace: Optional[TraceBus] = None,
        sink: Optional[Callable[[Any], None]] = None,
    ):
        self.sim = sim
        self.config = config or TcpConfig()
        self.source = source
        self.trace = trace
        self.sink = sink

        self.subflow = Subflow(
            sim=sim,
            path=path,
            owner=self,
            subflow_id=0,
            congestion=RenoController(initial_cwnd=self.config.initial_cwnd),
            rto=RtoEstimator(min_rto=self.config.min_rto),
            mss=self.config.mss,
            dup_ack_threshold=self.config.dup_ack_threshold,
            trace=trace,
        )
        self._sink_endpoint = SubflowSink(
            sim=sim,
            path=path,
            subflow=self.subflow,
            on_segment=self._receiver_on_segment,
            feedback_provider=self._receiver_feedback,
            trace=trace,
        )

        # Sender state.
        self._next_seq = 0
        self._cumulative_acked = 0
        self._retx_queue: Deque[_StreamChunk] = deque()
        self._chunk_sizes: Dict[int, int] = {}
        self._block_first_tx: Dict[int, float] = {}
        self._pulled_stream_bytes = 0
        self._acked_bytes = 0
        self._completed_blocks = 0
        self.chunks_retransmitted = 0

        # Receiver state.
        self._received: Dict[int, _StreamChunk] = {}
        self._deliver_next = 0
        self.delivered_bytes = 0

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------
    def start(self) -> None:
        self.pump()

    def pump(self) -> None:
        self.subflow.pump()

    def close(self) -> None:
        self.subflow.close()
        self._sink_endpoint.close()

    # ------------------------------------------------------------------
    # Sender side.
    # ------------------------------------------------------------------
    def next_payload(self, subflow: Subflow) -> Optional[Tuple[Any, int]]:
        while self._retx_queue:
            chunk = self._retx_queue.popleft()
            if chunk.seq < self._cumulative_acked:
                continue
            self.chunks_retransmitted += 1
            return chunk, chunk.size
        # Flow control: bound outstanding stream chunks by the receive buffer.
        if self._next_seq - self._cumulative_acked >= self.config.recv_buffer_chunks:
            return None
        pulled: Union[int, bytes, None] = self.source.pull(self.config.mss)
        if not pulled:
            return None
        if isinstance(pulled, bytes):
            size, payload = len(pulled), pulled
        else:
            size, payload = int(pulled), None
        chunk = _StreamChunk(self._next_seq, size, payload, self.sim.now)
        self._next_seq += 1
        self._chunk_sizes[chunk.seq] = size
        block_id = self._pulled_stream_bytes // self.config.block_bytes
        self._pulled_stream_bytes += size
        self._block_first_tx.setdefault(block_id, self.sim.now)
        return chunk, size

    def on_payload_lost(self, subflow: Subflow, info: SubflowPacketInfo, reason: str) -> None:
        chunk: _StreamChunk = info.payload
        if chunk.seq >= self._cumulative_acked:
            self._retx_queue.append(chunk)

    def on_ack_feedback(self, subflow: Subflow, feedback: _StreamFeedback) -> None:
        if feedback.cumulative_ack <= self._cumulative_acked:
            return
        for seq in range(self._cumulative_acked, feedback.cumulative_ack):
            self._acked_bytes += self._chunk_sizes.pop(seq, self.config.mss)
        self._cumulative_acked = feedback.cumulative_ack
        self._emit_completed_blocks()
        self.pump()

    def _emit_completed_blocks(self) -> None:
        while self._acked_bytes >= (self._completed_blocks + 1) * self.config.block_bytes:
            block_id = self._completed_blocks
            started = self._block_first_tx.pop(block_id, None)
            if (
                started is not None
                and self.trace is not None
                and self.trace.has_subscribers("conn.block_done")
            ):
                self.trace.emit(
                    self.sim.now,
                    "conn.block_done",
                    block_id=block_id,
                    delay=self.sim.now - started,
                )
            self._completed_blocks += 1

    # ------------------------------------------------------------------
    # Receiver side.
    # ------------------------------------------------------------------
    def _receiver_on_segment(self, subflow_id: int, segment) -> None:
        chunk: _StreamChunk = segment.payload
        if chunk.seq < self._deliver_next or chunk.seq in self._received:
            return  # duplicate
        self._received[chunk.seq] = chunk
        while self._deliver_next in self._received:
            delivered = self._received.pop(self._deliver_next)
            self.delivered_bytes += delivered.size
            if self.sink is not None:
                self.sink(delivered)
            if self.trace is not None and self.trace.has_subscribers("conn.delivered"):
                self.trace.emit(
                    self.sim.now,
                    "conn.delivered",
                    bytes=delivered.size,
                    seq=delivered.seq,
                )
            self._deliver_next += 1

    def _receiver_feedback(self, subflow_id: int, segment) -> _StreamFeedback:
        return _StreamFeedback(cumulative_ack=self._deliver_next)

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------
    @property
    def cumulative_acked(self) -> int:
        return self._cumulative_acked

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TcpConnection seq={self._next_seq} acked={self._cumulative_acked} "
            f"delivered={self.delivered_bytes}B>"
        )
