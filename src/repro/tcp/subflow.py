"""A congestion-controlled subflow over one network path.

This is the piece of TCP both protocols share: packet-sequenced
transmission under a congestion window, RTT/RTO estimation, per-packet
ACKs, and SACK-style loss detection (a packet is declared lost after
``dup_ack_threshold`` later packets are acknowledged, or on RTO).

What happens *after* a loss is the owning connection's decision, exposed
through the :class:`SubflowOwner` interface:

* the IETF-MPTCP baseline re-enqueues the lost connection-level chunk
  (classic retransmission);
* FMTCP merely releases the window space — the allocation algorithm will
  fill the next transmission opportunity with freshly generated fountain
  symbols for whichever block still needs them (Section III of the paper:
  "lost packets do not need to be retransmitted").

Subflow sequence numbers are therefore *transmission identifiers*: they
are never reused, which keeps RTT sampling Karn-safe and makes the ACK
machinery trivial to reason about.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.net.integrity import payload_digest, seal, verify
from repro.net.packet import Packet
from repro.net.topology import Path
from repro.sim.engine import Simulator
from repro.sim.timers import Timer
from repro.sim.trace import TraceBus
from repro.tcp.congestion import CongestionController, RenoController
from repro.tcp.rto import RtoEstimator

HEADER_BYTES = 40
ACK_BYTES = 40

#: Lifecycle states reported by :attr:`Subflow.state`.
SUBFLOW_STATES = ("joining", "active", "suspect", "closed")


class SubflowSegment:
    """Wire payload of a data packet."""

    __slots__ = ("seq", "payload")

    def __init__(self, seq: int, payload: Any):
        self.seq = seq
        self.payload = payload

    def integrity_digest(self) -> bytes:
        return b"seg:" + str(self.seq).encode() + b":" + payload_digest(self.payload)

    def integrity_mutate(self, rng):
        """A deep-mutated copy for CRC-evading corruption, or ``None``."""
        mutate = getattr(self.payload, "integrity_mutate", None)
        mutated = mutate(rng) if mutate is not None else None
        if mutated is None:
            return None
        return SubflowSegment(self.seq, mutated)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Seg seq={self.seq}>"


class SubflowAck:
    """Wire payload of an ACK packet: which seq, plus owner feedback."""

    __slots__ = ("echo_seq", "feedback")

    def __init__(self, echo_seq: int, feedback: Any = None):
        self.echo_seq = echo_seq
        self.feedback = feedback

    def integrity_digest(self) -> bytes:
        return (
            b"ack:" + str(self.echo_seq).encode() + b":"
            + payload_digest(self.feedback)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Ack echo={self.echo_seq}>"


class SubflowPacketInfo:
    """Sender-side bookkeeping for one in-flight packet."""

    __slots__ = ("seq", "payload", "size", "sent_at", "higher_acks")

    def __init__(self, seq: int, payload: Any, size: int, sent_at: float):
        self.seq = seq
        self.payload = payload
        self.size = size
        self.sent_at = sent_at
        self.higher_acks = 0


class SubflowOwner:
    """What a connection must provide to drive its subflows.

    The default implementations make the owner optional in unit tests.
    """

    def next_payload(self, subflow: "Subflow") -> Optional[Tuple[Any, int]]:
        """Return ``(payload, payload_bytes)`` to transmit, or ``None``."""
        return None

    def on_payload_delivered(self, subflow: "Subflow", info: SubflowPacketInfo) -> None:
        """The packet carrying ``info.payload`` was acknowledged."""

    def on_payload_lost(
        self, subflow: "Subflow", info: SubflowPacketInfo, reason: str
    ) -> None:
        """The packet was declared lost (``reason`` in {"dupack", "timeout"})."""

    def on_ack_feedback(self, subflow: "Subflow", feedback: Any) -> None:
        """Receiver-side piggyback data arrived with an ACK."""

    def on_subflow_suspect(self, subflow: "Subflow") -> None:
        """The subflow crossed its consecutive-RTO threshold and entered
        probe mode: treat its path as potentially failed and route around
        it (reinject its data, exclude it from allocation)."""

    def on_subflow_recovered(self, subflow: "Subflow") -> None:
        """A previously-suspect subflow saw an ACK again: the path is
        alive and may rejoin normal scheduling."""

    def on_subflow_ready(self, subflow: "Subflow") -> None:
        """A JOINING subflow finished its handshake and became ACTIVE:
        it may now be pumped and counted by the scheduler."""


class Subflow:
    """Sender endpoint of one subflow."""

    def __init__(
        self,
        sim: Simulator,
        path: Path,
        owner: SubflowOwner,
        subflow_id: int = 0,
        congestion: Optional[CongestionController] = None,
        rto: Optional[RtoEstimator] = None,
        mss: int = 1400,
        dup_ack_threshold: int = 3,
        loss_ewma_gain: float = 0.05,
        trace: Optional[TraceBus] = None,
        failed_rto_threshold: Optional[int] = None,
        join_delay_s: Optional[float] = None,
    ):
        if failed_rto_threshold is not None and failed_rto_threshold < 1:
            raise ValueError(
                f"failed_rto_threshold must be >= 1, got {failed_rto_threshold}"
            )
        if join_delay_s is not None and join_delay_s < 0:
            raise ValueError(f"join_delay_s must be >= 0, got {join_delay_s}")
        self.sim = sim
        self.path = path
        self.owner = owner
        self.subflow_id = subflow_id
        self.cc = congestion or RenoController()
        self.rto = rto or RtoEstimator()
        self.mss = mss
        self.dup_ack_threshold = dup_ack_threshold
        self.loss_ewma_gain = loss_ewma_gain
        self.failed_rto_threshold = failed_rto_threshold
        self.trace = trace

        self.src_node = path.src_node
        self.dst_node = path.dst_node
        self.src_port = self.src_node.allocate_port()
        self.dst_port = self.dst_node.allocate_port()
        self.src_node.bind(self.src_port, self._on_ack_packet)

        self._next_seq = 0
        self._outstanding: Dict[int, SubflowPacketInfo] = {}
        self._declared_lost: set = set()
        self._recovery_until = -1
        self._timer = Timer(sim, self._on_rto, name=f"rto[{subflow_id}]")

        # Lifecycle: JOINING (handshake pending) -> ACTIVE -> CLOSED, with
        # SUSPECT (potentially_failed) overlaying ACTIVE. join_delay_s=None
        # skips the handshake entirely: the subflow is born ACTIVE, which
        # is what static connection construction uses.
        self._closed = False
        self._join_event = None
        if join_delay_s is not None:
            self._join_event = sim.schedule(join_delay_s, self._complete_join)
            if trace is not None and trace.has_subscribers("subflow.join"):
                trace.emit(
                    sim.now,
                    "subflow.join",
                    subflow=subflow_id,
                    handshake_s=join_delay_s,
                )

        # Dead-path detection: consecutive RTO firings with no intervening
        # ACK. At failed_rto_threshold the subflow enters probe mode.
        self.consecutive_timeouts = 0

        # Statistics / estimator state.
        self.loss_rate_estimate = 0.0
        self.last_transmit_at = 0.0
        self.last_ack_at: Optional[float] = None
        self.last_loss_observed_at: Optional[float] = None
        self._loss_estimate_primed = False
        self.packets_sent = 0
        self.packets_acked = 0
        self.packets_lost_dupack = 0
        self.packets_lost_timeout = 0
        self.acks_discarded_corrupt = 0
        self.bytes_sent = 0

    # ------------------------------------------------------------------
    # Introspection used by schedulers (EAT/EDT need these).
    # ------------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        return len(self._outstanding)

    @property
    def bytes_in_flight(self) -> int:
        """Payload bytes outstanding (flow-control invariant checks)."""
        return sum(info.size for info in self._outstanding.values())

    @property
    def window_space(self) -> int:
        """Packets the congestion window still allows (w_f in the paper)."""
        return max(0, self.cc.window - self.in_flight)

    @property
    def srtt(self) -> float:
        """Smoothed RTT; falls back to 2x propagation delay before samples."""
        if self.rto.srtt is not None:
            return self.rto.srtt
        return 2.0 * self.path.one_way_delay_s

    @property
    def rto_value(self) -> float:
        return self.rto.rto

    @property
    def tau(self) -> float:
        """Time since the oldest unacknowledged packet was sent (τ_f)."""
        if not self._outstanding:
            return 0.0
        oldest = min(info.sent_at for info in self._outstanding.values())
        return self.sim.now - oldest

    @property
    def next_seq(self) -> int:
        return self._next_seq

    @property
    def potentially_failed(self) -> bool:
        """Whether the path is suspected dead (consecutive-RTO threshold).

        A suspect subflow is restricted to one in-flight packet (a probe,
        paced by the exponentially backed-off RTO) until an ACK arrives.
        """
        return (
            self.failed_rto_threshold is not None
            and self.consecutive_timeouts >= self.failed_rto_threshold
        )

    @property
    def state(self) -> str:
        """Lifecycle state, derived so it can never disagree with behaviour.

        ``closed`` dominates, then ``joining`` (handshake pending), then
        ``suspect`` (consecutive-RTO threshold), else ``active``.
        """
        if self._closed:
            return "closed"
        if self._join_event is not None:
            return "joining"
        if self.potentially_failed:
            return "suspect"
        return "active"

    @property
    def is_joining(self) -> bool:
        return self._join_event is not None

    @property
    def is_closed(self) -> bool:
        return self._closed

    @property
    def usable(self) -> bool:
        """Whether schedulers should count on this subflow right now."""
        return not self._closed and self._join_event is None and not self.potentially_failed

    @property
    def timer_armed(self) -> bool:
        """Whether the retransmission timer is pending (invariant checks)."""
        return self._timer.armed

    def outstanding_payloads(self):
        """(seq, payload) of every in-flight packet, in sequence order.

        Lets Go-Back-N-style owners (the fixed-rate baseline) see what was
        sent after a lost packet.
        """
        return sorted(
            ((seq, info.payload) for seq, info in self._outstanding.items()),
            key=lambda item: item[0],
        )

    # ------------------------------------------------------------------
    # Transmission.
    # ------------------------------------------------------------------
    def pump(self) -> None:
        """Fill the congestion window from the owner's payload supply.

        A potentially-failed subflow is capped at one in-flight packet:
        each RTO expiry (exponentially backed off) releases exactly one
        new probe, so a dead path costs one packet per back-off period
        rather than a whole congestion window.
        """
        if self._closed or self._join_event is not None:
            return
        while self.cc.can_send(self.in_flight):
            if self.potentially_failed and self.in_flight >= 1:
                return
            supplied = self.owner.next_payload(self)
            if supplied is None:
                return
            payload, size = supplied
            self._transmit(payload, size)

    def _complete_join(self) -> None:
        self._join_event = None
        if self.trace is not None and self.trace.has_subscribers("subflow.active"):
            self.trace.emit(self.sim.now, "subflow.active", subflow=self.subflow_id)
        self.owner.on_subflow_ready(self)
        self.pump()

    def _transmit(self, payload: Any, size: int) -> None:
        if size <= 0 or size > self.mss:
            raise ValueError(f"payload size {size} outside (0, mss={self.mss}]")
        seq = self._next_seq
        self._next_seq += 1
        info = SubflowPacketInfo(seq, payload, size, self.sim.now)
        self._outstanding[seq] = info
        packet = Packet(
            size=size + HEADER_BYTES,
            src=self.src_node.name,
            dst=self.dst_node.name,
            src_port=self.src_port,
            dst_port=self.dst_port,
            payload=SubflowSegment(seq, payload),
            flow_label=f"sf{self.subflow_id}",
        )
        seal(packet)
        packet.sent_at = self.sim.now
        self.last_transmit_at = self.sim.now
        self.packets_sent += 1
        self.bytes_sent += packet.size
        if not self._timer.armed:
            self._timer.start(self.rto.rto)
        if self.trace is not None and self.trace.has_subscribers("subflow.send"):
            self.trace.emit(
                self.sim.now, "subflow.send", subflow=self.subflow_id, seq=seq, size=size
            )
        self.path.send_forward(packet)

    # ------------------------------------------------------------------
    # ACK processing and loss detection.
    # ------------------------------------------------------------------
    def _on_ack_packet(self, packet: Packet) -> None:
        if not verify(packet):
            # Corrupted ACK: discard silently. The data packet's timer is
            # still running, so this degrades to an ordinary loss.
            self.acks_discarded_corrupt += 1
            if self.trace is not None and self.trace.has_subscribers(
                "subflow.ack_corrupt"
            ):
                self.trace.emit(
                    self.sim.now, "subflow.ack_corrupt", subflow=self.subflow_id
                )
            return
        ack: SubflowAck = packet.payload
        seq = ack.echo_seq
        # Any ACK — even one for a packet we gave up on — proves the path
        # carries traffic in both directions, so it clears suspicion.
        was_suspect = self.potentially_failed
        self.consecutive_timeouts = 0
        info = self._outstanding.pop(seq, None)
        if info is not None:
            self.packets_acked += 1
            self.last_ack_at = self.sim.now
            self.rto.on_measurement(self.sim.now - info.sent_at)
            self._observe_loss_outcome(lost=False)
            self.cc.on_ack(1)
            self.owner.on_payload_delivered(self, info)
            self._detect_dupack_losses(seq)
        elif seq in self._declared_lost:
            # Spurious loss declaration: the packet made it after all. The
            # conservative reaction (window already reduced) is kept; we
            # only tidy the tombstone.
            self._declared_lost.discard(seq)
        # Feedback rides on every ACK, even for packets we gave up on.
        if ack.feedback is not None:
            self.owner.on_ack_feedback(self, ack.feedback)
        if was_suspect:
            if self.trace is not None and self.trace.has_subscribers(
                "subflow.recovered"
            ):
                self.trace.emit(
                    self.sim.now, "subflow.recovered", subflow=self.subflow_id
                )
            self.owner.on_subflow_recovered(self)
        self._restart_or_stop_timer()
        self.pump()

    def _detect_dupack_losses(self, acked_seq: int) -> None:
        newly_lost = []
        for seq, info in self._outstanding.items():
            if seq < acked_seq:
                info.higher_acks += 1
                if info.higher_acks >= self.dup_ack_threshold:
                    newly_lost.append(seq)
        for seq in newly_lost:
            self._declare_lost(seq, "dupack")

    def _declare_lost(self, seq: int, reason: str) -> None:
        info = self._outstanding.pop(seq, None)
        if info is None:
            return
        self._declared_lost.add(seq)
        if len(self._declared_lost) > 20_000:
            horizon = self._next_seq - 10_000
            self._declared_lost = {s for s in self._declared_lost if s >= horizon}
        self._observe_loss_outcome(lost=True)
        if reason == "dupack":
            self.packets_lost_dupack += 1
            # Halve at most once per recovery episode (NewReno behaviour).
            if seq >= self._recovery_until:
                self.cc.on_fast_loss()
                self._recovery_until = self._next_seq
        else:
            self.packets_lost_timeout += 1
            self.cc.on_timeout()
            self._recovery_until = self._next_seq
        if self.trace is not None and self.trace.has_subscribers("subflow.loss"):
            self.trace.emit(
                self.sim.now,
                "subflow.loss",
                subflow=self.subflow_id,
                seq=seq,
                reason=reason,
            )
        self.owner.on_payload_lost(self, info, reason)

    def _on_rto(self) -> None:
        if not self._outstanding:
            return
        # Go-back-N semantics: a retransmission timeout gives up on the
        # whole outstanding window (classic TCP retransmits from snd_una;
        # recovering one packet per backed-off RTO would serialise multi-
        # loss recovery into multi-second stalls). The congestion window
        # collapses once (cc.on_timeout in the first _declare_lost; later
        # calls are idempotent at cwnd=1).
        self.rto.on_timeout()
        self.consecutive_timeouts += 1
        for seq in sorted(self._outstanding, key=lambda s: self._outstanding[s].sent_at):
            self._declare_lost(seq, "timeout")
        if (
            self.failed_rto_threshold is not None
            and self.consecutive_timeouts == self.failed_rto_threshold
        ):
            if self.trace is not None and self.trace.has_subscribers(
                "subflow.suspect"
            ):
                self.trace.emit(
                    self.sim.now, "subflow.suspect", subflow=self.subflow_id
                )
            self.owner.on_subflow_suspect(self)
        self._restart_or_stop_timer()
        self.pump()

    def _restart_or_stop_timer(self) -> None:
        if self._outstanding:
            self._timer.restart(self.rto.rto)
        else:
            self._timer.stop()

    def aged_loss_estimate(self, half_life_s: Optional[float]) -> float:
        """Loss estimate discounted by how long ago the last loss was seen.

        An estimate that can only improve through transmissions the
        scheduler refuses to make would pin a recovered path at "dead"
        forever; halving the estimate every ``half_life_s`` of loss-free
        time lets stale pessimism expire. ``None`` disables aging.
        """
        estimate = self.loss_rate_estimate
        if half_life_s is None or estimate <= 0.0:
            return estimate
        if self.last_loss_observed_at is None:
            return estimate
        quiet_time = self.sim.now - self.last_loss_observed_at
        return estimate * 2.0 ** (-quiet_time / half_life_s)

    def _observe_loss_outcome(self, lost: bool) -> None:
        sample = 1.0 if lost else 0.0
        if lost:
            self.last_loss_observed_at = self.sim.now
        if not self._loss_estimate_primed:
            self.loss_rate_estimate = sample
            self._loss_estimate_primed = True
        else:
            gain = self.loss_ewma_gain
            self.loss_rate_estimate = (1 - gain) * self.loss_rate_estimate + gain * sample

    def close(self) -> None:
        """Stop timers and release the port (ends a simulation cleanly)."""
        self._timer.stop()
        if self._join_event is not None:
            self._join_event.cancel()
            self._join_event = None
        self._closed = True
        self.src_node.unbind(self.src_port)

    def shutdown(self):
        """Tear down at runtime and return the drained in-flight packets.

        Unlike :meth:`close` (end-of-simulation cleanup), shutdown is the
        CLOSED transition of a live transfer: timers and the pending join
        handshake are cancelled, the ACK port is unbound (late ACKs become
        undeliverable drops, not callbacks), and every outstanding
        :class:`SubflowPacketInfo` is handed back — in sequence order — so
        the owning connection can reallocate the data. No owner loss hooks
        fire: the packets were not lost to congestion, the path was
        administratively removed, and the reaction policy belongs to the
        connection, not the congestion machinery.
        """
        infos = [self._outstanding[seq] for seq in sorted(self._outstanding)]
        self._outstanding.clear()
        self._declared_lost.clear()
        self.consecutive_timeouts = 0
        self.close()
        if self.trace is not None and self.trace.has_subscribers("subflow.closed"):
            self.trace.emit(
                self.sim.now,
                "subflow.closed",
                subflow=self.subflow_id,
                drained=len(infos),
            )
        return infos

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Subflow {self.subflow_id} cwnd={self.cc.cwnd:.1f} "
            f"inflight={self.in_flight} p={self.loss_rate_estimate:.3f}>"
        )


class SubflowSink:
    """Receiver endpoint of one subflow: ACK every data packet.

    ``feedback_provider(subflow_id, segment)`` is called after the segment
    is handed to the connection receiver and returns the object to
    piggyback on the ACK (FMTCP's k̄ map, MPTCP's data-level ACK, ...).
    """

    def __init__(
        self,
        sim: Simulator,
        path: Path,
        subflow: Subflow,
        on_segment,
        feedback_provider=None,
        trace: Optional[TraceBus] = None,
    ):
        self.sim = sim
        self.path = path
        self.subflow_id = subflow.subflow_id
        self._on_segment = on_segment
        self._feedback_provider = feedback_provider
        self.trace = trace
        self._src_port = subflow.src_port
        self._dst_port = subflow.dst_port
        self.dst_node = path.dst_node
        self.src_node = path.src_node
        self.dst_node.bind(self._dst_port, self._on_data_packet)
        self.packets_received = 0
        self.packets_discarded_corrupt = 0
        self.packets_rejected = 0

    def _on_data_packet(self, packet: Packet) -> None:
        if not verify(packet):
            # Link-CRC failure: drop without acknowledging, exactly like a
            # wire loss — the sender's dupack/RTO machinery takes it from
            # here, so corruption feeds the normal congestion response.
            self.packets_discarded_corrupt += 1
            if self.trace is not None and self.trace.has_subscribers(
                "subflow.discard_corrupt"
            ):
                self.trace.emit(
                    self.sim.now,
                    "subflow.discard_corrupt",
                    subflow=self.subflow_id,
                    packet=packet,
                )
            return
        segment: SubflowSegment = packet.payload
        self.packets_received += 1
        accepted = self._on_segment(self.subflow_id, segment)
        if accepted is False:
            # The connection-level receiver rejected the segment (e.g. a
            # DSS-checksum mismatch): withhold the ACK so the sender
            # retransmits through the usual loss path.
            self.packets_rejected += 1
            return
        feedback = None
        if self._feedback_provider is not None:
            feedback = self._feedback_provider(self.subflow_id, segment)
        ack_packet = Packet(
            size=ACK_BYTES,
            src=self.dst_node.name,
            dst=self.src_node.name,
            src_port=self._dst_port,
            dst_port=self._src_port,
            payload=SubflowAck(segment.seq, feedback),
            flow_label=f"ack{self.subflow_id}",
        )
        self.path.send_reverse(seal(ack_packet))

    def close(self) -> None:
        self.dst_node.unbind(self._dst_port)
