"""Unified telemetry: metrics, samplers, flight recorder, sim profiler.

Everything here is opt-in and zero-cost when unused — instrumentation
call sites in the transports stay behind ``TraceBus.has_subscribers``
guards, samplers only exist once attached, and the engine profiler costs
a single ``is None`` test per event when disabled. See
``docs/observability.md`` for the architecture and the trace-kind
vocabulary.
"""

from repro.telemetry.flight import FlightRecorder
from repro.telemetry.profiler import SimProfiler, callback_label
from repro.telemetry.registry import (
    Counter,
    Gauge,
    MetricsRegistry,
    P2Quantile,
    StreamingHistogram,
)
from repro.telemetry.samplers import (
    ConnectionSampler,
    DecoderSampler,
    PeriodicSampler,
    SubflowSampler,
    attach_samplers,
    fmtcp_eat_provider,
    subflow_state_fields,
)
from repro.telemetry.session import TelemetryConfig, TelemetryReport, TelemetrySession
from repro.telemetry.spans import (
    FMTCP_STAGES,
    MPTCP_STAGES,
    SPAN_KINDS,
    BlockSpan,
    SpanCollector,
    collect_spans,
    critical_path_report,
    spans_report,
)
from repro.telemetry.traceview import (
    export_csv,
    kind_counts,
    subflow_report,
    summarize,
    time_span,
    timeline,
)

__all__ = [
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "P2Quantile",
    "StreamingHistogram",
    "FlightRecorder",
    "SimProfiler",
    "callback_label",
    "PeriodicSampler",
    "SubflowSampler",
    "DecoderSampler",
    "ConnectionSampler",
    "attach_samplers",
    "fmtcp_eat_provider",
    "subflow_state_fields",
    "TelemetryConfig",
    "TelemetryReport",
    "TelemetrySession",
    "BlockSpan",
    "SpanCollector",
    "SPAN_KINDS",
    "FMTCP_STAGES",
    "MPTCP_STAGES",
    "collect_spans",
    "spans_report",
    "critical_path_report",
    "summarize",
    "subflow_report",
    "timeline",
    "export_csv",
    "kind_counts",
    "time_span",
]
