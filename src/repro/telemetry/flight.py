"""Flight recorder: a bounded ring of the most recent trace records.

Chaos soaks run thousands of seeded scenarios; when one violates an
invariant, a bare seed number forces a full re-run under a debugger. The
flight recorder keeps the last N :class:`~repro.sim.trace.TraceRecord`s
in memory (old ones fall off the front, like an aircraft FDR) and dumps
them as JSONL on demand — the failing run carries its own evidence.

The dump format is one JSON object per line, identical to
:class:`~repro.sim.tracefile.TraceFileWriter` output except for a
leading ``flight.meta`` record holding capacity/drop accounting, so
``read_trace_file`` and the ``repro trace`` CLI consume both formats.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional

from repro.sim.trace import TraceBus, TraceRecord
from repro.sim.tracefile import _jsonable


class FlightRecorder:
    """Subscribes to a trace bus and retains the newest ``capacity`` records."""

    def __init__(
        self,
        trace: TraceBus,
        capacity: int = 4096,
        kinds: Optional[Iterable[str]] = None,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.records_seen = 0
        self._trace = trace
        self._kinds: List[str] = list(kinds) if kinds is not None else ["*"]
        self._ring: Deque[TraceRecord] = deque(maxlen=capacity)
        self._attached = True
        for kind in self._kinds:
            trace.subscribe(kind, self._on_record)

    def _on_record(self, record: TraceRecord) -> None:
        self.records_seen += 1
        self._ring.append(record)

    @property
    def dropped(self) -> int:
        """Records that fell off the front of the ring."""
        return self.records_seen - len(self._ring)

    def records(self) -> List[TraceRecord]:
        """Retained records, oldest first."""
        return list(self._ring)

    def clear(self) -> None:
        self._ring.clear()

    def close(self) -> None:
        """Detach from the bus (the retained records stay readable)."""
        if not self._attached:
            return
        self._attached = False
        for kind in self._kinds:
            self._trace.unsubscribe(kind, self._on_record)

    def dump(self, path: str, meta: Optional[Dict[str, object]] = None) -> str:
        """Write the ring to ``path`` as JSONL; returns ``path``.

        The first line is a ``flight.meta`` record describing the ring
        (capacity, records seen/retained/dropped) plus any caller
        ``meta`` fields — scenario name, seed, the violated invariant.
        """
        header = {
            "t": 0.0,
            "kind": "flight.meta",
            "capacity": self.capacity,
            "records_seen": self.records_seen,
            "records_retained": len(self._ring),
            "dropped": self.dropped,
        }
        if meta:
            for key, value in meta.items():
                header[str(key)] = _jsonable(value)
        with open(path, "w") as handle:
            handle.write(json.dumps(header) + "\n")
            for record in self._ring:
                entry = {"t": record.time, "kind": record.kind}
                for key, value in record.fields.items():
                    entry[key] = _jsonable(value)
                handle.write(json.dumps(entry) + "\n")
        return path

    def __len__(self) -> int:
        return len(self._ring)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FlightRecorder {len(self._ring)}/{self.capacity} "
            f"seen={self.records_seen}>"
        )
