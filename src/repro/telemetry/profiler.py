"""Simulation-engine profiler: where does the wall time go?

The ROADMAP's north star is a simulator that runs as fast as the
hardware allows; the first step of any optimisation is attribution. The
profiler hooks the :class:`~repro.sim.engine.Simulator` run loop (see
``Simulator.set_profiler``) and aggregates, per callback kind:

* callback count and total/mean wall time (``time.perf_counter``),
* peak heap depth observed at dispatch,
* events per wall-clock second and the sim-time/wall-time ratio — the
  headline "how much faster than real time do we simulate" number.

Profiling never changes simulated behaviour (the engine stays
deterministic; only wall-clock is observed), and costs nothing when no
profiler is attached: the run loop takes the unprofiled branch on a
single ``is None`` test.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional


def callback_label(fn: Callable) -> str:
    """Stable, human-readable name for a scheduled callback."""
    qualname = getattr(fn, "__qualname__", None)
    if qualname is None:
        self_obj = getattr(fn, "__self__", None)
        if self_obj is not None:  # pragma: no cover - exotic callables
            return f"{type(self_obj).__name__}.{getattr(fn, '__name__', '?')}"
        return repr(fn)
    module = getattr(fn, "__module__", "") or ""
    short_module = module.rsplit(".", 1)[-1]
    return f"{short_module}.{qualname}" if short_module else qualname


class _KindStats:
    __slots__ = ("count", "total_s", "max_s")

    def __init__(self) -> None:
        self.count = 0
        self.total_s = 0.0
        self.max_s = 0.0


class SimProfiler:
    """Aggregates per-callback-kind wall time for one or more runs."""

    def __init__(self) -> None:
        self.events = 0
        self.wall_s = 0.0  # total wall time inside Simulator.run
        self.callback_wall_s = 0.0  # wall time inside callbacks only
        self.max_heap_depth = 0
        self.sim_time_start: Optional[float] = None
        self.sim_time_end = 0.0
        self.runs = 0
        self._by_kind: Dict[str, _KindStats] = {}

    # ------------------------------------------------------------------
    # Hooks called by the engine (hot path — keep them lean).
    # ------------------------------------------------------------------
    def on_event(
        self, fn: Callable, elapsed_s: float, heap_depth: int, sim_time: float
    ) -> None:
        self.events += 1
        self.callback_wall_s += elapsed_s
        if heap_depth > self.max_heap_depth:
            self.max_heap_depth = heap_depth
        if self.sim_time_start is None:
            self.sim_time_start = sim_time
        self.sim_time_end = sim_time
        label = callback_label(fn)
        stats = self._by_kind.get(label)
        if stats is None:
            stats = _KindStats()
            self._by_kind[label] = stats
        stats.count += 1
        stats.total_s += elapsed_s
        if elapsed_s > stats.max_s:
            stats.max_s = elapsed_s

    def on_run_complete(self, wall_s: float) -> None:
        self.runs += 1
        self.wall_s += wall_s

    # ------------------------------------------------------------------
    # Reporting.
    # ------------------------------------------------------------------
    @property
    def events_per_s(self) -> float:
        return self.events / self.wall_s if self.wall_s > 0 else 0.0

    @property
    def sim_time_span(self) -> float:
        if self.sim_time_start is None:
            return 0.0
        return self.sim_time_end - self.sim_time_start

    @property
    def sim_wall_ratio(self) -> float:
        """Simulated seconds per wall second (>1 = faster than real time)."""
        return self.sim_time_span / self.wall_s if self.wall_s > 0 else 0.0

    def report(self) -> Dict[str, object]:
        kinds = []
        for label, stats in sorted(
            self._by_kind.items(), key=lambda item: -item[1].total_s
        ):
            kinds.append(
                {
                    "kind": label,
                    "count": stats.count,
                    "total_s": stats.total_s,
                    "mean_us": stats.total_s / stats.count * 1e6 if stats.count else 0.0,
                    "max_us": stats.max_s * 1e6,
                }
            )
        return {
            "events": self.events,
            "runs": self.runs,
            "wall_s": self.wall_s,
            "callback_wall_s": self.callback_wall_s,
            "events_per_s": self.events_per_s,
            "sim_time_span_s": self.sim_time_span,
            "sim_wall_ratio": self.sim_wall_ratio,
            "max_heap_depth": self.max_heap_depth,
            "by_kind": kinds,
        }

    def render(self, top: int = 12) -> List[str]:
        report = self.report()
        lines = [
            (
                f"profiler: {report['events']} events in {report['wall_s']:.3f}s wall "
                f"({report['events_per_s']:,.0f} ev/s), sim/wall "
                f"{report['sim_wall_ratio']:.1f}x, max heap depth "
                f"{report['max_heap_depth']}"
            ),
            f"{'callback':<44} {'count':>8} {'total(ms)':>10} {'mean(us)':>9}",
        ]
        for entry in report["by_kind"][:top]:
            lines.append(
                f"{entry['kind']:<44} {entry['count']:>8} "
                f"{entry['total_s'] * 1e3:>10.2f} {entry['mean_us']:>9.2f}"
            )
        remaining = len(report["by_kind"]) - top
        if remaining > 0:
            lines.append(f"... and {remaining} more callback kinds")
        return lines

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<SimProfiler events={self.events} wall={self.wall_s:.3f}s>"
