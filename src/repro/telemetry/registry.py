"""Named counters, gauges and streaming histograms.

The registry is the aggregation half of the telemetry layer: samplers and
collectors fold observations into it as the simulation runs, and a single
``snapshot()`` at the end yields every metric without any component
knowing about any other. Histograms use the P² streaming-quantile
algorithm (Jain & Chlamtac, CACM 1985), so p50/p95/p99 come out of five
markers per quantile rather than a stored sample list — constant memory
no matter how many observations arrive.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple, Union


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: Union[int, float] = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (got {amount})")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A value that can move both ways; remembers its extremes."""

    __slots__ = ("name", "value", "min_seen", "max_seen", "updates")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[float] = None
        self.min_seen: Optional[float] = None
        self.max_seen: Optional[float] = None
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = value
        self.updates += 1
        if self.min_seen is None or value < self.min_seen:
            self.min_seen = value
        if self.max_seen is None or value > self.max_seen:
            self.max_seen = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Gauge {self.name}={self.value}>"


class P2Quantile:
    """One streaming quantile via the P² algorithm (five markers).

    Markers track the running minimum, two intermediate points, the
    quantile estimate itself, and the running maximum; each observation
    nudges marker heights with a piecewise-parabolic update. Accuracy is
    within a few percent of the exact order statistic for unimodal data —
    ample for latency percentiles — at O(1) memory and time.
    """

    __slots__ = ("q", "_heights", "_positions", "_desired", "_increments", "count")

    def __init__(self, q: float):
        if not 0.0 < q < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {q}")
        self.q = q
        self._heights: List[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1.0 + 2.0 * q, 1.0 + 4.0 * q, 3.0 + 2.0 * q, 5.0]
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
        self.count = 0

    def observe(self, x: float) -> None:
        self.count += 1
        heights = self._heights
        if len(heights) < 5:
            heights.append(x)
            heights.sort()
            return
        # Locate the cell containing x, extending the extremes if needed.
        if x < heights[0]:
            heights[0] = x
            cell = 0
        elif x >= heights[4]:
            heights[4] = x
            cell = 3
        else:
            cell = 0
            while cell < 3 and x >= heights[cell + 1]:
                cell += 1
        positions = self._positions
        for index in range(cell + 1, 5):
            positions[index] += 1.0
        desired = self._desired
        for index in range(5):
            desired[index] += self._increments[index]
        # Adjust the three interior markers toward their desired positions.
        for index in range(1, 4):
            drift = desired[index] - positions[index]
            right_gap = positions[index + 1] - positions[index]
            left_gap = positions[index - 1] - positions[index]
            if (drift >= 1.0 and right_gap > 1.0) or (drift <= -1.0 and left_gap < -1.0):
                step = 1.0 if drift >= 1.0 else -1.0
                candidate = self._parabolic(index, step)
                if not heights[index - 1] < candidate < heights[index + 1]:
                    candidate = self._linear(index, step)
                heights[index] = candidate
                positions[index] += step

    def _parabolic(self, index: int, step: float) -> float:
        h, n = self._heights, self._positions
        return h[index] + step / (n[index + 1] - n[index - 1]) * (
            (n[index] - n[index - 1] + step)
            * (h[index + 1] - h[index])
            / (n[index + 1] - n[index])
            + (n[index + 1] - n[index] - step)
            * (h[index] - h[index - 1])
            / (n[index] - n[index - 1])
        )

    def _linear(self, index: int, step: float) -> float:
        h, n = self._heights, self._positions
        other = index + int(step)
        return h[index] + step * (h[other] - h[index]) / (n[other] - n[index])

    @property
    def value(self) -> Optional[float]:
        """Current quantile estimate (exact while fewer than 5 samples)."""
        if not self._heights:
            return None
        if len(self._heights) < 5 or self.count <= 5:
            ordered = sorted(self._heights[: self.count])
            rank = (len(ordered) - 1) * self.q
            low = int(rank)
            high = min(low + 1, len(ordered) - 1)
            fraction = rank - low
            return ordered[low] * (1.0 - fraction) + ordered[high] * fraction
        return self._heights[2]


class StreamingHistogram:
    """Count/min/max/mean plus P² percentile estimates, all streaming."""

    __slots__ = ("name", "count", "total", "min_seen", "max_seen", "_quantiles")

    def __init__(self, name: str, quantiles: Iterable[float] = (0.5, 0.95, 0.99)):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min_seen: Optional[float] = None
        self.max_seen: Optional[float] = None
        self._quantiles: Dict[float, P2Quantile] = {
            q: P2Quantile(q) for q in quantiles
        }

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min_seen is None or value < self.min_seen:
            self.min_seen = value
        if self.max_seen is None or value > self.max_seen:
            self.max_seen = value
        for estimator in self._quantiles.values():
            estimator.observe(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> Optional[float]:
        """Estimate for a quantile registered at construction (q in (0,1))."""
        estimator = self._quantiles.get(q)
        if estimator is None:
            raise KeyError(f"histogram {self.name} does not track q={q}")
        return estimator.value

    def snapshot(self) -> Dict[str, Optional[float]]:
        entry: Dict[str, Optional[float]] = {
            "count": float(self.count),
            "mean": self.mean,
            "min": self.min_seen,
            "max": self.max_seen,
        }
        for q, estimator in sorted(self._quantiles.items()):
            entry[f"p{q * 100:g}"] = estimator.value
        return entry

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<StreamingHistogram {self.name} n={self.count}>"


Metric = Union[Counter, Gauge, StreamingHistogram]


class MetricsRegistry:
    """Get-or-create registry of named metrics.

    Names are free-form dotted strings (``subflow0.cwnd``,
    ``decoder.decode_latency_s``). Asking for an existing name with a
    different metric type is an error — it means two components disagree
    about what the name measures.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get_or_create(self, name: str, factory, kind: type) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif not isinstance(metric, kind):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, lambda: Counter(name), Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name), Gauge)

    def histogram(
        self, name: str, quantiles: Tuple[float, ...] = (0.5, 0.95, 0.99)
    ) -> StreamingHistogram:
        return self._get_or_create(
            name, lambda: StreamingHistogram(name, quantiles), StreamingHistogram
        )

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def snapshot(self) -> Dict[str, object]:
        """Flat name → value (counters/gauges) or dict (histograms)."""
        out: Dict[str, object] = {}
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                out[name] = metric.value
            elif isinstance(metric, Gauge):
                out[name] = metric.value
            else:
                out[name] = metric.snapshot()
        return out

    def render(self) -> List[str]:
        """Human-readable one-line-per-metric report."""
        lines = []
        for name in self.names():
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                lines.append(f"{name}: {metric.value}")
            elif isinstance(metric, Gauge):
                if metric.value is None:
                    lines.append(f"{name}: (never set)")
                else:
                    lines.append(
                        f"{name}: {metric.value:g} "
                        f"(min {metric.min_seen:g}, max {metric.max_seen:g})"
                    )
            else:
                snap = metric.snapshot()
                percentiles = ", ".join(
                    f"{key}={value:.4g}"
                    for key, value in snap.items()
                    if key.startswith("p") and value is not None
                )
                lines.append(
                    f"{name}: n={metric.count} mean={metric.mean:.4g} {percentiles}"
                )
        return lines

    def __len__(self) -> int:
        return len(self._metrics)
