"""Periodic state samplers for transports and decoders.

The trace bus carries *events*; these samplers add the *state* series the
paper's figures are explained by — per-subflow congestion dynamics
(cwnd, SRTT, RTO, in-flight, EAT) and per-block decoder progress (rank
deficit, overhead). Each sampler publishes ``telemetry.*`` records
through the shared :class:`~repro.sim.trace.TraceBus` and optionally
folds observations into a :class:`~repro.telemetry.registry.MetricsRegistry`,
so the protocol hot paths stay untouched: all cost is borne by the
sampler's own timer, which exists only when telemetry is attached.

Samplers cancel their pending timer event on ``stop()``, so an
instrumented run still satisfies the chaos-soak ``pending_events == 0``
drain invariant after close.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.estimators import eat_table
from repro.sim.engine import Event, Simulator
from repro.sim.trace import TraceBus
from repro.telemetry.registry import MetricsRegistry


class PeriodicSampler:
    """Base class: a restartable sampling loop with clean shutdown.

    Subclasses implement :meth:`sample`. Unlike the legacy monitors in
    ``repro.net.monitors``, the pending event is cancelled on ``stop()``
    so no tombstone timers outlive the component being observed.
    """

    def __init__(self, sim: Simulator, period_s: float):
        if period_s <= 0:
            raise ValueError("period_s must be positive")
        self.sim = sim
        self.period_s = period_s
        self.samples_taken = 0
        self._running = False
        self._pending: Optional[Event] = None

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._pending = self.sim.schedule(self.period_s, self._tick)

    def stop(self) -> None:
        self._running = False
        if self._pending is not None:
            self._pending.cancel()
            self._pending = None

    def _tick(self) -> None:
        self._pending = None
        if not self._running:
            return
        self.sample()
        self.samples_taken += 1
        self._pending = self.sim.schedule(self.period_s, self._tick)

    def sample(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


EatProvider = Callable[[], Dict[int, float]]


def subflow_state_fields(subflow, eat: Optional[float] = None) -> Dict:
    """One subflow's sampled transport state, as a flat field dict.

    Single source of truth for what a "subflow sample" is: the
    :class:`SubflowSampler` emits exactly these fields per period, and
    the ``repro.policy`` observation builder reads the same ones — so
    the documented observation vector can never drift from the recorded
    ``telemetry.subflow`` series.
    """
    return {
        "subflow": subflow.subflow_id,
        "cwnd": subflow.cc.cwnd,
        "ssthresh": subflow.cc.ssthresh,
        "srtt": subflow.srtt,
        "rto": subflow.rto_value,
        "in_flight": subflow.in_flight,
        "window_space": subflow.window_space,
        "loss_est": subflow.loss_rate_estimate,
        "suspect": bool(subflow.potentially_failed),
        "eat": eat,
    }


def fmtcp_eat_provider(sender) -> EatProvider:
    """EAT table (Eq. 11) snapshots from a live FMTCP sender.

    Includes suspect paths so the sampled series shows *why* the
    allocator quarantined them (their EAT keeps climbing while probes
    fail) instead of the path silently vanishing from the trace.
    """

    def provider() -> Dict[int, float]:
        estimates = sender.path_estimates(include_suspect=True)
        if not estimates:
            return {}
        return eat_table(estimates)

    return provider


class SubflowSampler(PeriodicSampler):
    """Samples every subflow's transport state each period.

    Emits one ``telemetry.subflow`` record per subflow per period with
    cwnd, ssthresh, SRTT, RTO, in-flight, window space, the loss
    estimate, quarantine state and (when an EAT provider is given) the
    allocator's expected-arriving-time estimate.
    """

    def __init__(
        self,
        sim: Simulator,
        subflows,
        trace: TraceBus,
        period_s: float = 0.1,
        eat_provider: Optional[EatProvider] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        super().__init__(sim, period_s)
        self.subflows = list(subflows)
        self.trace = trace
        self.eat_provider = eat_provider
        self.registry = registry

    def sample(self) -> None:
        eats: Dict[int, float] = {}
        if self.eat_provider is not None:
            eats = self.eat_provider()
        for subflow in self.subflows:
            fields = subflow_state_fields(subflow, eats.get(subflow.subflow_id))
            suspect = fields["suspect"]
            eat = fields["eat"]
            self.trace.emit(self.sim.now, "telemetry.subflow", **fields)
            if self.registry is not None:
                prefix = f"subflow{subflow.subflow_id}"
                self.registry.gauge(f"{prefix}.cwnd").set(subflow.cc.cwnd)
                self.registry.gauge(f"{prefix}.in_flight").set(subflow.in_flight)
                self.registry.histogram(f"{prefix}.srtt_ms").observe(
                    subflow.srtt * 1e3
                )
                if suspect:
                    self.registry.counter(f"{prefix}.suspect_samples").inc()
                if eat is not None:
                    self.registry.histogram(f"{prefix}.eat_ms").observe(eat * 1e3)


class DecoderSampler(PeriodicSampler):
    """Samples an FMTCP receiver's active decoders each period.

    One ``telemetry.decoder`` record per in-progress block: rank (k̄),
    rank deficit (k − k̄), symbols received so far, overhead beyond rank,
    and the block's age. Decode latency itself is an event, not state —
    the collector half subscribes to ``fmtcp.block_decoded`` and feeds
    the ``decoder.decode_latency_s`` / ``decoder.overhead_symbols``
    histograms in the registry.
    """

    def __init__(
        self,
        sim: Simulator,
        receiver,
        trace: TraceBus,
        period_s: float = 0.1,
        registry: Optional[MetricsRegistry] = None,
    ):
        super().__init__(sim, period_s)
        self.receiver = receiver
        self.trace = trace
        self.registry = registry
        if registry is not None:
            trace.subscribe("fmtcp.block_decoded", self._on_block_decoded)

    def _on_block_decoded(self, record) -> None:
        registry = self.registry
        registry.counter("decoder.blocks_decoded").inc()
        registry.histogram("decoder.decode_latency_s").observe(record["wait"])
        overhead = record.get("overhead")
        if overhead is not None:
            registry.histogram("decoder.overhead_symbols").observe(float(overhead))

    def stop(self) -> None:
        super().stop()
        if self.registry is not None:
            self.trace.unsubscribe("fmtcp.block_decoded", self._on_block_decoded)

    def sample(self) -> None:
        for stats in self.receiver.decoder_stats():
            self.trace.emit(self.sim.now, "telemetry.decoder", **stats)
            if self.registry is not None:
                self.registry.gauge("decoder.active_blocks").set(
                    float(self.receiver.buffered_blocks)
                )
                self.registry.histogram("decoder.rank_deficit").observe(
                    float(stats["deficit"])
                )


class ConnectionSampler(PeriodicSampler):
    """Connection-level series shared by both stacks.

    ``telemetry.conn`` records carry cumulative delivered bytes plus the
    stack-specific backlog measure: FMTCP's pending-block count or the
    MPTCP reorder-buffer occupancy (whichever the connection exposes).
    """

    def __init__(
        self,
        sim: Simulator,
        connection,
        trace: TraceBus,
        period_s: float = 0.1,
        registry: Optional[MetricsRegistry] = None,
    ):
        super().__init__(sim, period_s)
        self.connection = connection
        self.trace = trace
        self.registry = registry

    def sample(self) -> None:
        connection = self.connection
        fields = {"delivered_bytes": connection.delivered_bytes}
        manager = getattr(connection, "block_manager", None)
        if manager is not None:
            fields["pending_blocks"] = len(manager.pending_blocks)
        reorder = getattr(connection, "reorder_buffer", None)
        if reorder is not None:
            fields["reorder_occupancy"] = reorder.occupancy
        corruption = getattr(connection, "corruption_stats", None)
        integrity = corruption() if corruption is not None else {}
        fields.update(integrity)
        memory = getattr(connection, "memory_stats", None)
        mem_fields = {}
        if memory is not None:
            mem_fields = {f"mem_{name}": value for name, value in memory().items()}
            fields.update(mem_fields)
        self.trace.emit(self.sim.now, "telemetry.conn", **fields)
        if self.registry is not None:
            self.registry.gauge("conn.delivered_bytes").set(
                float(fields["delivered_bytes"])
            )
            backlog = fields.get("pending_blocks", fields.get("reorder_occupancy"))
            if backlog is not None:
                self.registry.gauge("conn.backlog").set(float(backlog))
            for name, value in integrity.items():
                # Cumulative integrity counters ride as gauges: sampled
                # state, not per-event increments.
                self.registry.gauge(f"conn.{name}").set(float(value))
            for name, value in mem_fields.items():
                self.registry.gauge(f"conn.{name}").set(float(value))


def attach_samplers(
    sim: Simulator,
    connection,
    trace: TraceBus,
    period_s: float = 0.1,
    registry: Optional[MetricsRegistry] = None,
) -> List[PeriodicSampler]:
    """Instrument any transport connection; returns the started samplers.

    Duck-typed over the shared connection surface: anything with
    ``subflows`` (or a single ``subflow``) gets a :class:`SubflowSampler`;
    an FMTCP-style ``sender``/``receiver`` pair additionally gets EAT
    sampling and a :class:`DecoderSampler`.
    """
    samplers: List[PeriodicSampler] = []
    subflows = getattr(connection, "subflows", None)
    if subflows is None:
        single = getattr(connection, "subflow", None)
        subflows = [single] if single is not None else []
    eat_provider = None
    sender = getattr(connection, "sender", None)
    if sender is not None and hasattr(sender, "path_estimates"):
        eat_provider = fmtcp_eat_provider(sender)
    if subflows:
        samplers.append(
            SubflowSampler(
                sim,
                subflows,
                trace,
                period_s=period_s,
                eat_provider=eat_provider,
                registry=registry,
            )
        )
    receiver = getattr(connection, "receiver", None)
    if receiver is not None and hasattr(receiver, "decoder_stats"):
        samplers.append(
            DecoderSampler(sim, receiver, trace, period_s=period_s, registry=registry)
        )
    if hasattr(connection, "delivered_bytes"):
        samplers.append(
            ConnectionSampler(
                sim, connection, trace, period_s=period_s, registry=registry
            )
        )
    for sampler in samplers:
        sampler.start()
    return samplers
