"""One-call wiring of the full telemetry stack onto a simulation run.

:class:`TelemetryConfig` is the single knob surface (sampling period,
JSONL trace output, sim profiling, flight recording); a
:class:`TelemetrySession` applies it to a ``(sim, trace)`` pair, attaches
samplers to any transport connection, and gathers everything into one
:class:`TelemetryReport` at the end. Used by
``repro.experiments.runner.run_transfer(..., telemetry=...)`` and the
``repro trace record`` CLI.

With no session attached nothing changes anywhere: every instrumentation
call site is behind ``TraceBus.has_subscribers`` or a periodic sampler
that simply does not exist.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.sim.engine import Simulator
from repro.sim.trace import TraceBus
from repro.sim.tracefile import TraceFileWriter
from repro.telemetry.flight import FlightRecorder
from repro.telemetry.profiler import SimProfiler
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.samplers import PeriodicSampler, attach_samplers
from repro.telemetry.spans import SpanCollector


@dataclass
class TelemetryConfig:
    """What to observe during a run.

    ``trace_path`` streams records to JSONL via
    :class:`~repro.sim.tracefile.TraceFileWriter` (``trace_kinds`` limits
    which; ``None`` means everything). ``profile_sim`` attaches the
    engine profiler. ``flight_capacity`` > 0 keeps a flight-recorder ring
    available for dumping on failures. ``spans`` attaches a live
    :class:`~repro.telemetry.spans.SpanCollector` whose per-stage delay
    decomposition lands in ``TelemetryReport.spans``.
    """

    sample_period_s: float = 0.1
    trace_path: Optional[str] = None
    trace_kinds: Optional[Tuple[str, ...]] = None
    profile_sim: bool = False
    flight_capacity: int = 0
    spans: bool = False

    def __post_init__(self) -> None:
        if self.sample_period_s <= 0:
            raise ValueError("sample_period_s must be positive")
        if self.flight_capacity < 0:
            raise ValueError("flight_capacity must be >= 0")


@dataclass
class TelemetryReport:
    """Everything a finished session measured."""

    metrics: Dict[str, object] = field(default_factory=dict)
    profile: Optional[Dict[str, object]] = None
    trace_path: Optional[str] = None
    trace_records_written: int = 0
    flight_records: int = 0
    spans: Optional[Dict[str, object]] = None

    def render(self) -> List[str]:
        lines = []
        if self.trace_path is not None:
            lines.append(
                f"trace: {self.trace_records_written} records -> {self.trace_path}"
            )
        if self.spans is not None:
            lines.append(
                f"spans: {self.spans['finished']} finished blocks, "
                f"max conservation error "
                f"{self.spans['max_conservation_error_s']:.2e}s"
            )
        for name, value in sorted(self.metrics.items()):
            if isinstance(value, dict):
                detail = ", ".join(
                    f"{key}={val:.4g}"
                    for key, val in value.items()
                    if isinstance(val, (int, float))
                )
                lines.append(f"{name}: {detail}")
            else:
                lines.append(f"{name}: {value}")
        return lines


class TelemetrySession:
    """Applies a :class:`TelemetryConfig` to one simulation run."""

    def __init__(
        self,
        sim: Simulator,
        trace: TraceBus,
        config: Optional[TelemetryConfig] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.sim = sim
        self.trace = trace
        self.config = config or TelemetryConfig()
        self.registry = registry or MetricsRegistry()
        self.samplers: List[PeriodicSampler] = []
        self.writer: Optional[TraceFileWriter] = None
        self.profiler: Optional[SimProfiler] = None
        self.flight: Optional[FlightRecorder] = None
        self.spans: Optional[SpanCollector] = None
        self._finished = False

        if self.config.trace_path is not None:
            self.writer = TraceFileWriter(
                trace, self.config.trace_path, kinds=self.config.trace_kinds
            )
        if self.config.profile_sim:
            self.profiler = SimProfiler()
            sim.set_profiler(self.profiler)
        if self.config.flight_capacity > 0:
            self.flight = FlightRecorder(trace, capacity=self.config.flight_capacity)
        if self.config.spans:
            self.spans = SpanCollector()
            self.spans.attach(trace)

    def attach(self, connection) -> None:
        """Start samplers for one transport connection (callable per flow)."""
        self.samplers.extend(
            attach_samplers(
                self.sim,
                connection,
                self.trace,
                period_s=self.config.sample_period_s,
                registry=self.registry,
            )
        )

    def stop(self) -> None:
        """Tear down instrumentation without building a report.

        This is the crash-path half of :meth:`finish`: recovery teardown
        calls it when an endpoint dies mid-run and nobody wants a report
        yet. Idempotent — double-stop (or ``stop()`` then ``finish()``)
        never raises and never double-cancels a sampler's pending event
        or double-closes the writer/flight ring.
        """
        if self._finished:
            return
        self._finished = True
        for sampler in self.samplers:
            sampler.stop()
        if self.writer is not None:
            self.writer.close()
        if self.profiler is not None and self.sim.profiler is self.profiler:
            self.sim.set_profiler(None)
        if self.flight is not None:
            self.flight.close()
        if self.spans is not None:
            self.spans.detach()

    def finish(self) -> TelemetryReport:
        """Stop samplers, close the writer, detach the profiler; report.

        Idempotent — a second call returns a fresh report over the same
        (now frozen) state without double-detaching anything.
        """
        self.stop()
        return TelemetryReport(
            metrics=self.registry.snapshot(),
            profile=self.profiler.report() if self.profiler is not None else None,
            trace_path=self.config.trace_path,
            trace_records_written=(
                self.writer.records_written if self.writer is not None else 0
            ),
            flight_records=len(self.flight) if self.flight is not None else 0,
            spans=self.spans.summary() if self.spans is not None else None,
        )

    def __enter__(self) -> "TelemetrySession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.finish()
