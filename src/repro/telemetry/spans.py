"""Causal span tracing: where a block's end-to-end delay actually goes.

The paper's headline claims are latency-shaped (Figs. 5-7: FMTCP cuts
block transfer delay and jitter under lossy paths), but an end-to-end
delay number cannot say *which stage* dominates — EAT scheduling wait,
the wire, loss recovery, decode wait, or the in-order delivery queue.
This module decomposes it.

A :class:`BlockSpan` tracks one block through edge timestamps::

    open -> first_tx -> first_rx -> complete -> delivered

built from ``span.*`` trace records the transports emit (always behind
``TraceBus.has_subscribers`` guards — zero cost with nobody attached)
plus the pre-existing ``fmtcp.block_decoded`` / ``conn.delivered``
records reused as the decode and delivery edges. Consecutive edges
define *additive* stages, so the conservation invariant

    sum(stage durations) == delivered - open == end-to-end block delay

holds by construction and is verified numerically (see
``tests/test_span_soak.py``: 30 seeds x {FMTCP, MPTCP}).

Stage vocabulary (FMTCP)::

    sched_wait    open -> first_tx     block creation until the EAT
                                       allocator first puts symbols on a
                                       wire (includes lazy per-packet
                                       encoding, which happens at tx)
    transmit      first_tx -> first_rx first symbol's flight, including
                                       link-queue wait
    decode_wait   first_rx -> complete accumulating rank k; inflated by
                                       loss recovery (fresh symbols, no
                                       retransmission)
    reorder_wait  complete -> delivered decoded but behind an undecoded
                                       earlier block (or the app queue)

Stage vocabulary (MPTCP): ``transmit`` (first chunk pulled -> first
chunk arrival), ``fill_wait`` (until every chunk of the block has
arrived — the decode_wait analogue, inflated by retransmissions) and
``reorder_wait`` (until the last chunk leaves the reorder buffer for the
application). A chunk is pulled at its first transmission, so
``open == first_tx`` and there is no separate sched_wait stage.

Loss recovery is a causal *annotation*, not an additive stage: it
overlaps transmit/decode_wait (FMTCP: time from a symbol loss until the
block next receives symbols; MPTCP: per-chunk loss-to-arrival gaps), so
adding it to the sum would double-count. It is reported alongside the
stages as ``loss_recovery_s`` / ``loss_episodes``.

Per-subflow child rollups (symbol/chunk tx, rx, lost counts) live in
``BlockSpan.legs`` — the parent/child causal link between per-symbol
edges and the block span.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.sim.trace import TraceBus, TraceRecord
from repro.telemetry.registry import StreamingHistogram

# Every kind the collector consumes. The span.* family is emitted by the
# transports behind has_subscribers guards; the last two are pre-existing
# records reused as the decode and delivery edges.
SPAN_KINDS = (
    "span.block_open",
    "span.symbols_tx",
    "span.symbols_rx",
    "span.symbols_lost",
    "span.chunk_tx",
    "span.chunk_retx",
    "span.chunk_rx",
    "span.chunk_lost",
    "fmtcp.block_decoded",
    "conn.delivered",
)

FMTCP_STAGES = ("sched_wait", "transmit", "decode_wait", "reorder_wait")
MPTCP_STAGES = ("transmit", "fill_wait", "reorder_wait")


def _new_leg() -> Dict[str, int]:
    return {"tx": 0, "rx": 0, "lost": 0}


class BlockSpan:
    """One block's causal span: edge timestamps plus child rollups."""

    __slots__ = (
        "protocol",
        "block_id",
        "open_t",
        "first_tx_t",
        "first_rx_t",
        "complete_t",
        "delivered_t",
        "legs",
        "annotations",
    )

    def __init__(self, protocol: str, block_id: int):
        self.protocol = protocol
        self.block_id = block_id
        self.open_t: Optional[float] = None
        self.first_tx_t: Optional[float] = None
        self.first_rx_t: Optional[float] = None
        self.complete_t: Optional[float] = None
        self.delivered_t: Optional[float] = None
        # subflow_id -> {"tx": n, "rx": n, "lost": n} (symbols or chunks).
        self.legs: Dict[int, Dict[str, int]] = {}
        self.annotations: Dict[str, Any] = {}

    def leg(self, subflow_id: int) -> Dict[str, int]:
        leg = self.legs.get(subflow_id)
        if leg is None:
            leg = self.legs[subflow_id] = _new_leg()
        return leg

    @property
    def stages(self) -> Tuple[str, ...]:
        return FMTCP_STAGES if self.protocol == "fmtcp" else MPTCP_STAGES

    @property
    def is_complete(self) -> bool:
        return None not in (
            self.open_t,
            self.first_tx_t,
            self.first_rx_t,
            self.complete_t,
            self.delivered_t,
        )

    def edges(self) -> "OrderedDict[str, Optional[float]]":
        return OrderedDict(
            (
                ("open", self.open_t),
                ("first_tx", self.first_tx_t),
                ("first_rx", self.first_rx_t),
                ("complete", self.complete_t),
                ("delivered", self.delivered_t),
            )
        )

    def stage_durations(self) -> "OrderedDict[str, float]":
        """Additive per-stage durations (their sum IS the block delay)."""
        if not self.is_complete:
            raise ValueError(
                f"block {self.block_id} span is missing edges; "
                "stage decomposition needs all five"
            )
        if self.protocol == "fmtcp":
            return OrderedDict(
                (
                    ("sched_wait", self.first_tx_t - self.open_t),
                    ("transmit", self.first_rx_t - self.first_tx_t),
                    ("decode_wait", self.complete_t - self.first_rx_t),
                    ("reorder_wait", self.delivered_t - self.complete_t),
                )
            )
        return OrderedDict(
            (
                ("transmit", self.first_rx_t - self.open_t),
                ("fill_wait", self.complete_t - self.first_rx_t),
                ("reorder_wait", self.delivered_t - self.complete_t),
            )
        )

    @property
    def total_delay(self) -> float:
        """End-to-end block delay: open -> in-order delivery."""
        return self.delivered_t - self.open_t

    @property
    def conservation_error(self) -> float:
        """|sum of stages - total delay| — zero up to float rounding."""
        return abs(sum(self.stage_durations().values()) - self.total_delay)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "complete" if self.is_complete else "open"
        return f"<BlockSpan {self.protocol}/{self.block_id} {state}>"


class _MptcpBlockChunks:
    """Chunk-level bookkeeping backing one MPTCP block span."""

    __slots__ = ("dsns", "first_rx", "delivered", "lost_at", "closed")

    def __init__(self) -> None:
        self.dsns: Set[int] = set()
        self.first_rx: Dict[int, float] = {}
        self.delivered: Dict[int, float] = {}
        self.lost_at: Dict[int, float] = {}
        self.closed = False


class SpanCollector:
    """Builds :class:`BlockSpan` objects from trace records.

    Works both live (``attach`` subscribes to a :class:`TraceBus`) and
    offline (``feed`` consumes the dicts of
    :func:`repro.sim.tracefile.read_trace_file`). Events for blocks whose
    ``open`` edge was never seen (a trace started mid-run) are ignored,
    so partial traces degrade to fewer spans, not wrong ones.
    """

    def __init__(self) -> None:
        # (protocol, block_id) -> span still accumulating edges.
        self._open: Dict[Tuple[str, int], BlockSpan] = {}
        self.finished: List[BlockSpan] = []
        # Spans that reached delivery with a missing edge (partial trace).
        self.incomplete = 0
        # FMTCP loss-recovery episodes: block_id -> episode start time.
        self._fm_episode: Dict[int, float] = {}
        # MPTCP chunk state: block_id -> chunks, dsn -> block_id.
        self._mp_chunks: Dict[int, _MptcpBlockChunks] = {}
        self._dsn_block: Dict[int, int] = {}
        self._trace: Optional[TraceBus] = None

    # ------------------------------------------------------------------
    # Wiring.
    # ------------------------------------------------------------------
    def attach(self, trace: TraceBus) -> None:
        """Subscribe to every span-relevant kind on ``trace``."""
        if self._trace is not None:
            raise RuntimeError("collector is already attached")
        self._trace = trace
        for kind in SPAN_KINDS:
            trace.subscribe(kind, self._on_record)

    def detach(self) -> None:
        if self._trace is None:
            return
        for kind in SPAN_KINDS:
            self._trace.unsubscribe(kind, self._on_record)
        self._trace = None

    def _on_record(self, record: TraceRecord) -> None:
        self.observe_event(record.time, record.kind, record.fields)

    def feed(self, records: Iterable[dict]) -> "SpanCollector":
        """Consume offline trace dicts (``t``/``kind`` + flat fields)."""
        for record in records:
            kind = record.get("kind")
            if kind in _HANDLED:
                fields = {
                    key: value
                    for key, value in record.items()
                    if key not in ("t", "kind")
                }
                self.observe_event(record.get("t", 0.0), kind, fields)
        return self

    # ------------------------------------------------------------------
    # Event routing.
    # ------------------------------------------------------------------
    def observe_event(self, t: float, kind: str, fields: Dict[str, Any]) -> None:
        handler = _HANDLED.get(kind)
        if handler is not None:
            handler(self, t, fields)

    # ---- FMTCP ----
    def _on_block_open(self, t: float, fields: Dict[str, Any]) -> None:
        block_id = fields["block_id"]
        span = BlockSpan("fmtcp", block_id)
        span.open_t = t
        span.annotations.update(
            k=fields.get("k"),
            bytes=fields.get("bytes"),
            symbols_tx=0,
            symbols_rx=0,
            symbols_lost=0,
            loss_episodes=0,
            loss_recovery_s=0.0,
        )
        self._open[("fmtcp", block_id)] = span

    def _fm_span(self, block_id: int) -> Optional[BlockSpan]:
        return self._open.get(("fmtcp", block_id))

    def _on_symbols_tx(self, t: float, fields: Dict[str, Any]) -> None:
        span = self._fm_span(fields["block_id"])
        if span is None:
            return
        n = fields.get("n", 1)
        if span.first_tx_t is None:
            span.first_tx_t = t
        span.leg(fields.get("subflow", -1))["tx"] += n
        span.annotations["symbols_tx"] += n

    def _on_symbols_rx(self, t: float, fields: Dict[str, Any]) -> None:
        block_id = fields["block_id"]
        span = self._fm_span(block_id)
        if span is None:
            return
        n = fields.get("n", 1)
        if span.first_rx_t is None:
            span.first_rx_t = t
        span.leg(fields.get("subflow", -1))["rx"] += n
        span.annotations["symbols_rx"] += n
        started = self._fm_episode.pop(block_id, None)
        if started is not None:
            # Fresh symbols arrived: the loss episode is being repaired.
            span.annotations["loss_recovery_s"] += t - started

    def _on_symbols_lost(self, t: float, fields: Dict[str, Any]) -> None:
        block_id = fields["block_id"]
        span = self._fm_span(block_id)
        if span is None:
            return
        n = fields.get("n", 1)
        span.leg(fields.get("subflow", -1))["lost"] += n
        span.annotations["symbols_lost"] += n
        if block_id not in self._fm_episode:
            self._fm_episode[block_id] = t
            span.annotations["loss_episodes"] += 1

    def _on_block_decoded(self, t: float, fields: Dict[str, Any]) -> None:
        block_id = fields["block_id"]
        span = self._fm_span(block_id)
        if span is None:
            return
        span.complete_t = t
        started = self._fm_episode.pop(block_id, None)
        if started is not None:
            # Decoding ends any open recovery episode by definition.
            span.annotations["loss_recovery_s"] += t - started

    # ---- MPTCP ----
    def _mp_span(
        self, block_id: int
    ) -> Tuple[Optional[BlockSpan], Optional[_MptcpBlockChunks]]:
        return self._open.get(("mptcp", block_id)), self._mp_chunks.get(block_id)

    def _on_chunk_tx(self, t: float, fields: Dict[str, Any]) -> None:
        block_id = fields["block"]
        key = ("mptcp", block_id)
        span = self._open.get(key)
        if span is None and block_id not in self._mp_chunks:
            span = BlockSpan("mptcp", block_id)
            # A chunk is pulled at its first transmission opportunity, so
            # the block opens on the wire: open == first_tx.
            span.open_t = span.first_tx_t = t
            span.annotations.update(
                bytes=0,
                chunks=0,
                retransmits=0,
                chunks_lost=0,
                loss_episodes=0,
                loss_recovery_s=0.0,
            )
            self._open[key] = span
            self._mp_chunks[block_id] = _MptcpBlockChunks()
            # Blocks partition the stream in order: a chunk of block b
            # proves every earlier block's chunk set is final.
            earlier_ids = [
                earlier_id
                for earlier_id, chunks in self._mp_chunks.items()
                if earlier_id < block_id and not chunks.closed
            ]
            for earlier_id in earlier_ids:
                self._mp_chunks[earlier_id].closed = True
                self._mp_finalize(earlier_id)
        if span is None:
            return
        chunks = self._mp_chunks[block_id]
        dsn = fields["dsn"]
        chunks.dsns.add(dsn)
        self._dsn_block[dsn] = block_id
        span.leg(fields.get("subflow", -1))["tx"] += 1
        span.annotations["chunks"] += 1
        span.annotations["bytes"] += fields.get("size", 0)

    def _chunk_context(
        self, dsn: int
    ) -> Tuple[Optional[BlockSpan], Optional[_MptcpBlockChunks]]:
        block_id = self._dsn_block.get(dsn)
        if block_id is None:
            return None, None
        return self._mp_span(block_id)

    def _on_chunk_retx(self, t: float, fields: Dict[str, Any]) -> None:
        span, __ = self._chunk_context(fields["dsn"])
        if span is None:
            return
        span.leg(fields.get("subflow", -1))["tx"] += 1
        span.annotations["retransmits"] += 1

    def _on_chunk_rx(self, t: float, fields: Dict[str, Any]) -> None:
        dsn = fields["dsn"]
        span, chunks = self._chunk_context(dsn)
        if span is None or chunks is None:
            return
        span.leg(fields.get("subflow", -1))["rx"] += 1
        # Duplicates (probes, spurious retransmits) keep the first arrival.
        chunks.first_rx.setdefault(dsn, t)
        if span.first_rx_t is None:
            span.first_rx_t = t

    def _on_chunk_lost(self, t: float, fields: Dict[str, Any]) -> None:
        dsn = fields["dsn"]
        span, chunks = self._chunk_context(dsn)
        if span is None or chunks is None:
            return
        span.leg(fields.get("subflow", -1))["lost"] += 1
        span.annotations["chunks_lost"] += 1
        if dsn not in chunks.first_rx:
            # The first loss of a not-yet-arrived chunk opens its
            # recovery interval (closed by the chunk's first arrival).
            chunks.lost_at.setdefault(dsn, t)

    def _mp_finalize(self, block_id: int) -> None:
        """Finish an MPTCP block once closed and fully delivered."""
        span, chunks = self._mp_span(block_id)
        if span is None or chunks is None or not chunks.closed:
            return
        if not chunks.dsns or not chunks.dsns <= set(chunks.delivered):
            return
        span.first_rx_t = min(chunks.first_rx[dsn] for dsn in chunks.dsns)
        # The block is "complete" when its last chunk first arrives — the
        # analogue of FMTCP's decode instant.
        span.complete_t = max(chunks.first_rx[dsn] for dsn in chunks.dsns)
        span.delivered_t = max(chunks.delivered[dsn] for dsn in chunks.dsns)
        recovery = 0.0
        episodes = 0
        for dsn, lost_t in chunks.lost_at.items():
            arrived = chunks.first_rx.get(dsn)
            if arrived is not None and arrived > lost_t:
                recovery += arrived - lost_t
                episodes += 1
        span.annotations["loss_recovery_s"] += recovery
        span.annotations["loss_episodes"] += episodes
        del self._mp_chunks[block_id]
        for dsn in chunks.dsns:
            self._dsn_block.pop(dsn, None)
        self._finish(("mptcp", block_id))

    # ---- shared delivery edge ----
    def _on_delivered(self, t: float, fields: Dict[str, Any]) -> None:
        if "dsn" in fields:
            dsn = fields["dsn"]
            __, chunks = self._chunk_context(dsn)
            if chunks is None:
                return
            chunks.delivered.setdefault(dsn, t)
            block_id = self._dsn_block[dsn]
            self._mp_finalize(block_id)
        elif "block_id" in fields:
            block_id = fields["block_id"]
            span = self._fm_span(block_id)
            if span is None:
                return
            span.delivered_t = t
            self._finish(("fmtcp", block_id))

    def _finish(self, key: Tuple[str, int]) -> None:
        span = self._open.pop(key)
        if span.is_complete:
            self.finished.append(span)
        else:
            self.incomplete += 1

    # ------------------------------------------------------------------
    # Aggregation.
    # ------------------------------------------------------------------
    @property
    def open_spans(self) -> List[BlockSpan]:
        """Spans still in flight (e.g. the tail block at simulation end)."""
        return list(self._open.values())

    def stage_histograms(self) -> Dict[str, Dict[str, StreamingHistogram]]:
        """Per-protocol, per-stage P² histograms over finished spans (ms)."""
        result: Dict[str, Dict[str, StreamingHistogram]] = {}
        for span in self.finished:
            stages = result.setdefault(span.protocol, OrderedDict())
            for stage, duration in span.stage_durations().items():
                histogram = stages.get(stage)
                if histogram is None:
                    histogram = stages[stage] = StreamingHistogram(stage)
                histogram.observe(duration * 1e3)
            total = stages.get("total")
            if total is None:
                total = stages["total"] = StreamingHistogram("total")
            total.observe(span.total_delay * 1e3)
        return result

    def summary(self) -> Dict[str, Any]:
        """Everything a report needs, JSON-serialisable."""
        max_error = 0.0
        min_stage = 0.0
        recovery_s = 0.0
        episodes = 0
        for span in self.finished:
            max_error = max(max_error, span.conservation_error)
            min_stage = min(min_stage, *span.stage_durations().values())
            recovery_s += span.annotations.get("loss_recovery_s", 0.0)
            episodes += span.annotations.get("loss_episodes", 0)
        stages: Dict[str, Dict[str, Dict[str, float]]] = {}
        for protocol, histograms in self.stage_histograms().items():
            stages[protocol] = OrderedDict(
                (name, histogram.snapshot())
                for name, histogram in histograms.items()
            )
        return {
            "finished": len(self.finished),
            "open": len(self._open),
            "incomplete": self.incomplete,
            "max_conservation_error_s": max_error,
            "min_stage_s": min_stage,
            "loss_recovery_s": recovery_s,
            "loss_episodes": episodes,
            "stages": stages,
        }


_HANDLED = {
    "span.block_open": SpanCollector._on_block_open,
    "span.symbols_tx": SpanCollector._on_symbols_tx,
    "span.symbols_rx": SpanCollector._on_symbols_rx,
    "span.symbols_lost": SpanCollector._on_symbols_lost,
    "span.chunk_tx": SpanCollector._on_chunk_tx,
    "span.chunk_retx": SpanCollector._on_chunk_retx,
    "span.chunk_rx": SpanCollector._on_chunk_rx,
    "span.chunk_lost": SpanCollector._on_chunk_lost,
    "fmtcp.block_decoded": SpanCollector._on_block_decoded,
    "conn.delivered": SpanCollector._on_delivered,
}


# ----------------------------------------------------------------------
# Offline reports (the `repro trace spans` / `repro trace critical-path`
# engines; operate on read_trace_file dicts).
# ----------------------------------------------------------------------
def collect_spans(records: Sequence[dict]) -> SpanCollector:
    return SpanCollector().feed(records)


_NO_SPANS_HINT = [
    "no finished block spans in this trace",
    "(span records are captured automatically by `repro trace record`;",
    " programmatic runs need TelemetryConfig(trace_path=...) or spans=True)",
]


def spans_report(records: Sequence[dict]) -> List[str]:
    """The ``repro trace spans`` report: per-stage delay decomposition."""
    collector = collect_spans(records)
    if not collector.finished:
        return list(_NO_SPANS_HINT)
    lines: List[str] = []
    summary = collector.summary()
    lines.append(
        f"{summary['finished']} finished block spans, {summary['open']} open, "
        f"{summary['incomplete']} incomplete; "
        f"max conservation error {summary['max_conservation_error_s']:.2e}s"
    )
    for protocol, stages in summary["stages"].items():
        total = stages.get("total", {})
        lines.append(
            f"{protocol}: block delay p50={total.get('p50', 0.0):.2f}ms "
            f"p95={total.get('p95', 0.0):.2f}ms p99={total.get('p99', 0.0):.2f}ms"
        )
        mean_sum = sum(
            snap["mean"] for name, snap in stages.items() if name != "total"
        )
        lines.append(
            f"  {'stage':<14} {'n':>6} {'p50(ms)':>9} {'p95(ms)':>9} "
            f"{'p99(ms)':>9} {'share':>7}"
        )
        for name, snap in stages.items():
            if name == "total":
                continue
            share = snap["mean"] / mean_sum if mean_sum > 0 else 0.0
            lines.append(
                f"  {name:<14} {int(snap['count']):>6} {snap['p50']:>9.2f} "
                f"{snap['p95']:>9.2f} {snap['p99']:>9.2f} {share:>6.1%}"
            )
    if summary["loss_episodes"]:
        lines.append(
            f"loss recovery (overlay, not additive): "
            f"{summary['loss_episodes']} episodes, "
            f"{summary['loss_recovery_s'] * 1e3:.1f}ms total"
        )
    return lines


def critical_path_report(records: Sequence[dict], top: int = 5) -> List[str]:
    """The ``repro trace critical-path`` report: slowest blocks, decomposed."""
    collector = collect_spans(records)
    if not collector.finished:
        return list(_NO_SPANS_HINT)
    slowest = sorted(
        collector.finished, key=lambda span: span.total_delay, reverse=True
    )[: max(1, top)]
    lines = [
        f"slowest {len(slowest)} of {len(collector.finished)} blocks "
        f"by end-to-end delay:"
    ]
    for span in slowest:
        durations = span.stage_durations()
        total = span.total_delay
        dominant = max(durations, key=lambda name: durations[name])
        parts = ", ".join(
            f"{name} {duration * 1e3:.2f}ms"
            f" ({duration / total:.0%})" if total > 0 else f"{name} 0ms"
            for name, duration in durations.items()
        )
        lines.append(
            f"block {span.block_id} ({span.protocol}): "
            f"{total * 1e3:.2f}ms — critical stage: {dominant}"
        )
        lines.append(f"  {parts}")
        legs = "; ".join(
            f"subflow {subflow_id}: tx={leg['tx']} rx={leg['rx']} "
            f"lost={leg['lost']}"
            for subflow_id, leg in sorted(span.legs.items())
        )
        if legs:
            lines.append(f"  legs: {legs}")
        episodes = span.annotations.get("loss_episodes", 0)
        if episodes:
            lines.append(
                f"  loss: {episodes} episodes, "
                f"{span.annotations['loss_recovery_s'] * 1e3:.2f}ms in recovery"
            )
    return lines
