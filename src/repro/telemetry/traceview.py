"""Offline analysis of JSONL traces (the ``repro trace`` CLI's engine).

Operates on plain lists of dicts as returned by
:func:`repro.sim.tracefile.read_trace_file`, so it consumes both live
:class:`~repro.sim.tracefile.TraceFileWriter` output and flight-recorder
dumps (whose leading ``flight.meta`` record is surfaced, not choked on).
Everything degrades gracefully when a kind is absent — a trace with only
endpoint events still summarises, one with telemetry samples adds the
per-subflow and decoder sections.
"""

from __future__ import annotations

import csv
import io
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.experiments.reporting import sparkline
from repro.telemetry.registry import StreamingHistogram

# Fields every record carries; everything else is kind-specific payload.
_BASE_FIELDS = ("t", "kind")


def kind_counts(records: Sequence[dict]) -> "OrderedDict[str, int]":
    """Record count per kind, ordered by descending count then name."""
    counts: Dict[str, int] = {}
    for record in records:
        kind = record.get("kind", "?")
        counts[kind] = counts.get(kind, 0) + 1
    return OrderedDict(sorted(counts.items(), key=lambda item: (-item[1], item[0])))


def time_span(records: Sequence[dict]) -> Tuple[float, float]:
    times = [record["t"] for record in records if "t" in record]
    if not times:
        return (0.0, 0.0)
    return (min(times), max(times))


def _of_kind(records: Sequence[dict], kind: str) -> List[dict]:
    return [record for record in records if record.get("kind") == kind]


def _histogram_line(label: str, values: Iterable[float], scale: float = 1.0) -> str:
    histogram = StreamingHistogram(label)
    for value in values:
        histogram.observe(value * scale)
    if histogram.count == 0:
        return f"{label}: no samples"
    snap = histogram.snapshot()
    return (
        f"{label}: n={histogram.count} mean={snap['mean']:.2f} "
        f"p50={snap['p50']:.2f} p95={snap['p95']:.2f} p99={snap['p99']:.2f} "
        f"max={snap['max']:.2f}"
    )


def summarize(records: Sequence[dict]) -> List[str]:
    """The ``repro trace summarize`` report."""
    lines: List[str] = []
    meta = _of_kind(records, "flight.meta")
    if meta:
        header = meta[0]
        extras = ", ".join(
            f"{key}={header[key]}"
            for key in header
            if key not in _BASE_FIELDS
            and key not in ("capacity", "records_seen", "records_retained", "dropped")
        )
        lines.append(
            f"flight-recorder dump: {header.get('records_retained', '?')} of "
            f"{header.get('records_seen', '?')} records retained "
            f"(capacity {header.get('capacity', '?')}, "
            f"dropped {header.get('dropped', '?')})"
            + (f" — {extras}" if extras else "")
        )
    start, end = time_span(records)
    lines.append(
        f"{len(records)} records over t=[{start:.3f}, {end:.3f}]s "
        f"({len(kind_counts(records))} kinds)"
    )
    lines.append(f"{'kind':<24} {'count':>8}")
    for kind, count in kind_counts(records).items():
        lines.append(f"{kind:<24} {count:>8}")

    delivered = _of_kind(records, "conn.delivered")
    if delivered:
        total = sum(record.get("bytes", 0) for record in delivered)
        span = max(end - start, 1e-9)
        lines.append(
            f"goodput: {total / 1e6:.3f} MB delivered in {span:.1f}s "
            f"({total / span / 1e6:.3f} MB/s)"
        )
    block_done = _of_kind(records, "conn.block_done")
    if block_done:
        lines.append(
            _histogram_line(
                "block delay (ms)",
                (record["delay"] for record in block_done if "delay" in record),
                scale=1e3,
            )
        )
    decoded = _of_kind(records, "fmtcp.block_decoded")
    overheads = [
        record["overhead"]
        for record in decoded
        if record.get("overhead") is not None
    ]
    if overheads:
        lines.append(_histogram_line("decoder overhead (symbols)", overheads))
    dropped = _of_kind(records, "trace.dropped")
    if dropped:
        total_dropped = sum(record.get("dropped", 0) for record in dropped)
        cap = dropped[-1].get("max_pending", "?")
        lines.append(
            f"trace bus dropped {total_dropped} records at the bounded "
            f"pending-queue cap (max_pending {cap})"
        )
    losses = _of_kind(records, "subflow.loss")
    if losses:
        by_reason: Dict[str, int] = {}
        for record in losses:
            reason = record.get("reason", "?")
            by_reason[reason] = by_reason.get(reason, 0) + 1
        detail = ", ".join(f"{reason}={n}" for reason, n in sorted(by_reason.items()))
        lines.append(f"losses: {len(losses)} ({detail})")
    n_span = sum(
        count
        for kind, count in kind_counts(records).items()
        if kind.startswith("span.")
    )
    if n_span:
        lines.append(
            f"{n_span} span records — decompose block delay with "
            f"`repro trace spans` / `repro trace critical-path`"
        )
    return lines


def _series(samples: Sequence[dict], field: str) -> List[float]:
    return [
        float(record[field])
        for record in samples
        if record.get(field) is not None
    ]


def subflow_report(records: Sequence[dict]) -> List[str]:
    """The ``repro trace subflows`` report: per-subflow state series."""
    samples = _of_kind(records, "telemetry.subflow")
    if not samples:
        return [
            "no telemetry.subflow samples in this trace "
            "(record with telemetry enabled, e.g. `repro trace record`)"
        ]
    by_subflow: Dict[int, List[dict]] = {}
    for record in samples:
        by_subflow.setdefault(int(record.get("subflow", -1)), []).append(record)
    sends = _of_kind(records, "subflow.send")
    losses = _of_kind(records, "subflow.loss")
    lines: List[str] = []
    for subflow_id in sorted(by_subflow):
        rows = by_subflow[subflow_id]
        cwnd = _series(rows, "cwnd")
        srtt_ms = [value * 1e3 for value in _series(rows, "srtt")]
        eat_ms = [value * 1e3 for value in _series(rows, "eat")]
        in_flight = _series(rows, "in_flight")
        suspect_samples = sum(1 for record in rows if record.get("suspect"))
        sent = sum(1 for record in sends if record.get("subflow") == subflow_id)
        lost = sum(1 for record in losses if record.get("subflow") == subflow_id)
        lines.append(
            f"subflow {subflow_id}: {len(rows)} samples"
            + (f", {sent} sends" if sends else "")
            + (f", {lost} losses" if losses else "")
            + (f", suspect in {suspect_samples}" if suspect_samples else "")
        )
        if cwnd:
            lines.append(
                f"  cwnd      {sparkline(cwnd)}  last={cwnd[-1]:.1f} "
                f"max={max(cwnd):.1f}"
            )
        if in_flight:
            lines.append(
                f"  in-flight {sparkline(in_flight)}  last={in_flight[-1]:.0f} "
                f"max={max(in_flight):.0f}"
            )
        if srtt_ms:
            lines.append(
                f"  srtt(ms)  {sparkline(srtt_ms, lo=min(srtt_ms))}  "
                f"last={srtt_ms[-1]:.1f} "
                f"mean={sum(srtt_ms) / len(srtt_ms):.1f}"
            )
        if eat_ms:
            lines.append(
                f"  eat(ms)   {sparkline(eat_ms, lo=min(eat_ms))}  "
                f"last={eat_ms[-1]:.1f} "
                f"mean={sum(eat_ms) / len(eat_ms):.1f}"
            )
        loss_est = _series(rows, "loss_est")
        if loss_est:
            lines.append(
                f"  loss-est  {sparkline(loss_est, hi=max(max(loss_est), 1e-6))}  "
                f"last={loss_est[-1]:.3f}"
            )
    decoder_samples = _of_kind(records, "telemetry.decoder")
    if decoder_samples:
        deficits = _series(decoder_samples, "deficit")
        lines.append(
            f"decoder: {len(decoder_samples)} block samples, "
            f"mean rank deficit {sum(deficits) / len(deficits):.1f}, "
            f"max {max(deficits):.0f}"
        )
    return lines


def timeline(
    records: Sequence[dict],
    kinds: Optional[Sequence[str]] = None,
    start: Optional[float] = None,
    end: Optional[float] = None,
    limit: Optional[int] = None,
) -> List[str]:
    """Chronological event listing, optionally filtered by kind/window."""
    wanted = set(kinds) if kinds else None
    selected = []
    for record in records:
        if wanted is not None and record.get("kind") not in wanted:
            continue
        t = record.get("t", 0.0)
        if start is not None and t < start:
            continue
        if end is not None and t > end:
            continue
        selected.append(record)
    selected.sort(key=lambda record: record.get("t", 0.0))
    total = len(selected)
    if limit is not None and total > limit:
        selected = selected[-limit:]
    lines = []
    if limit is not None and total > limit:
        lines.append(f"... {total - limit} earlier records elided (--limit {limit})")
    for record in selected:
        fields = " ".join(
            f"{key}={record[key]}"
            for key in record
            if key not in _BASE_FIELDS and record[key] is not None
        )
        lines.append(f"{record.get('t', 0.0):>10.4f}  {record.get('kind', '?'):<22} {fields}")
    return lines


def export_csv(records: Sequence[dict], kind: Optional[str] = None) -> str:
    """Flatten records (optionally one kind) to CSV text.

    Columns are ``t``, ``kind``, then the union of field names across the
    selected records in first-seen order; absent fields are empty cells.
    """
    selected = _of_kind(records, kind) if kind is not None else list(records)
    columns: List[str] = list(_BASE_FIELDS)
    seen = set(columns)
    for record in selected:
        for key in record:
            if key not in seen:
                seen.add(key)
                columns.append(key)
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(columns)
    for record in selected:
        writer.writerow(
            ["" if record.get(column) is None else record.get(column) for column in columns]
        )
    return buffer.getvalue()
