"""Trace-driven link dynamics: replayed real-world channel time series.

Everything the synthetic loss models cannot express — deep cellular
fades, LEO handover sawtooths, GPRS burst structure, incast collapse —
enters the simulation through this package: a validated CSV time-series
model (:class:`LinkTrace`), deterministic seeded generators for the
pathological channel families, bundled drive/walk-test style assets,
and the :class:`TracePlayer` that replays a trace onto live links via
the same runtime-mutation APIs the fault injector uses. The ``trace``
fault kind (:mod:`repro.faults.scenario`) and the byte-verified
:func:`run_traces` soak harness build on these pieces.
"""

from repro.traces.generators import (
    BUNDLED_TRACES,
    TRACE_GENERATORS,
    cellular_trace,
    gprs_trace,
    incast_trace,
    leo_trace,
    load_bundled_trace,
    regenerate_bundled_assets,
    resolve_trace,
    wifi_trace,
)
from repro.traces.harness import (
    TraceReport,
    measure_trace_goodput,
    run_traces,
)
from repro.traces.model import (
    CSV_HEADER,
    END_POLICIES,
    LinkTrace,
    TraceFormatError,
    TraceSample,
    load_trace_csv,
    parse_trace_csv,
)
from repro.traces.player import TracePlayer, attach_players

__all__ = [
    "BUNDLED_TRACES",
    "CSV_HEADER",
    "END_POLICIES",
    "TRACE_GENERATORS",
    "LinkTrace",
    "TraceFormatError",
    "TracePlayer",
    "TraceReport",
    "TraceSample",
    "attach_players",
    "cellular_trace",
    "gprs_trace",
    "incast_trace",
    "leo_trace",
    "load_bundled_trace",
    "load_trace_csv",
    "measure_trace_goodput",
    "parse_trace_csv",
    "regenerate_bundled_assets",
    "resolve_trace",
    "run_traces",
    "wifi_trace",
]
