"""Seeded trace generators: pathological channel families as time series.

Each generator returns a fully deterministic :class:`LinkTrace` — the
seed and the keyword knobs pin every sample, so a preset scenario built
from a generator replays bit-identically across runs and platforms
(samples are drawn from a named :class:`~repro.sim.rng.RngStreams`
stream, never from global randomness).

Three families extend the paper's two-path ns-2 setup with the channel
dynamics the related work argues are decisive:

* :func:`gprs_trace` — GPRS-like slow bursty link: a two-state fade
  process alternating a workable ~170 kb/s regime with deep ~30 kb/s
  fades carrying bursty loss (the Fountain-on-GPRS setting where
  rateless codes shine).
* :func:`leo_trace` — LEO-satellite handover: one-way delay climbs in a
  sawtooth as the satellite recedes, then a handover snaps it back
  through a short outage window (bandwidth floor + heavy loss).
* :func:`incast_trace` — datacenter incast: synchronized cross-traffic
  bursts periodically collapse the available bandwidth and spike loss,
  with seeded jitter on the burst times.
* :func:`cellular_trace` / :func:`wifi_trace` — bounded random-walk
  capacity traces in the style of recorded drive/walk tests; fixed
  seeds of these two are bundled as package-data CSV assets.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from repro.sim.rng import RngStreams
from repro.traces.model import LinkTrace, TraceSample


def _stream(family: str, seed: int) -> random.Random:
    return RngStreams(seed).get(f"traces:{family}")


def gprs_trace(
    seed: int = 1,
    duration_s: float = 16.0,
    step_s: float = 0.5,
    good_bps: float = 170_000.0,
    bad_bps: float = 30_000.0,
    delay_s: float = 0.45,
    p_fade: float = 0.15,
    p_recover: float = 0.4,
    bad_loss: float = 0.25,
    good_loss: float = 0.01,
) -> LinkTrace:
    """GPRS-like slow bursty channel: two-state fades with bursty loss."""
    rng = _stream("gprs", seed)
    samples: List[TraceSample] = []
    bad = False
    t = 0.0
    while t <= duration_s:
        bad = (not bad and rng.random() < p_fade) or (
            bad and rng.random() >= p_recover
        )
        base = bad_bps if bad else good_bps
        samples.append(
            TraceSample(
                time_s=round(t, 6),
                bandwidth_bps=round(base * rng.uniform(0.85, 1.15), 1),
                delay_s=round(delay_s * rng.uniform(0.9, 1.3), 6),
                loss_rate=round(bad_loss if bad else good_loss, 6),
            )
        )
        t += step_s
    return LinkTrace(f"gprs:{seed}", samples, end_policy="hold")


def leo_trace(
    seed: int = 1,
    duration_s: float = 16.0,
    step_s: float = 0.25,
    pass_period_s: float = 5.0,
    outage_s: float = 0.5,
    delay_min_s: float = 0.025,
    delay_max_s: float = 0.09,
    bandwidth_bps: float = 1_500_000.0,
    outage_bps: float = 40_000.0,
    outage_loss: float = 0.9,
) -> LinkTrace:
    """LEO handover: periodic RTT sawtooth with an outage at each switch.

    Within each satellite pass the one-way delay climbs linearly from
    ``delay_min_s`` to ``delay_max_s``; the first ``outage_s`` of every
    pass is the handover blackout (bandwidth floor, near-total loss).
    Seeded jitter perturbs each pass's period by ±10 %.
    """
    rng = _stream("leo", seed)
    samples: List[TraceSample] = []
    t = 0.0
    pass_start = 0.0
    period = pass_period_s * rng.uniform(0.9, 1.1)
    while t <= duration_s:
        if t - pass_start >= period:
            pass_start = t
            period = pass_period_s * rng.uniform(0.9, 1.1)
        in_outage = (t - pass_start) < outage_s
        frac = min((t - pass_start) / period, 1.0)
        samples.append(
            TraceSample(
                time_s=round(t, 6),
                bandwidth_bps=outage_bps if in_outage else bandwidth_bps,
                delay_s=round(delay_min_s + (delay_max_s - delay_min_s) * frac, 6),
                loss_rate=outage_loss if in_outage else 0.0,
            )
        )
        t += step_s
    return LinkTrace(f"leo:{seed}", samples, end_policy="hold")


def incast_trace(
    seed: int = 1,
    duration_s: float = 16.0,
    burst_period_s: float = 1.5,
    burst_s: float = 0.25,
    bandwidth_bps: float = 2_000_000.0,
    crushed_bps: float = 150_000.0,
    burst_loss: float = 0.15,
) -> LinkTrace:
    """Datacenter incast: synchronized cross-traffic bursts.

    Every ~``burst_period_s`` (±15 % seeded jitter) a fan-in burst
    crushes the available bandwidth to ``crushed_bps`` and spikes loss
    for ``burst_s``; between bursts the channel is clean and fast.
    """
    rng = _stream("incast", seed)
    samples: List[TraceSample] = [
        TraceSample(0.0, bandwidth_bps=bandwidth_bps, delay_s=0.002, loss_rate=0.0)
    ]
    t = burst_period_s * rng.uniform(0.85, 1.15)
    while t <= duration_s:
        start = round(t, 6)
        end = round(t + burst_s, 6)
        samples.append(
            TraceSample(
                start,
                bandwidth_bps=crushed_bps,
                delay_s=0.004,
                loss_rate=burst_loss,
            )
        )
        if end <= duration_s:
            samples.append(
                TraceSample(
                    end, bandwidth_bps=bandwidth_bps, delay_s=0.002, loss_rate=0.0
                )
            )
        t += burst_period_s * rng.uniform(0.85, 1.15)
    return LinkTrace(f"incast:{seed}", samples, end_policy="hold")


def cellular_trace(
    seed: int = 1,
    duration_s: float = 16.0,
    step_s: float = 0.25,
    mean_bps: float = 900_000.0,
    floor_bps: float = 60_000.0,
    ceil_bps: float = 2_500_000.0,
    fade_p: float = 0.04,
) -> LinkTrace:
    """Cellular drive-test style capacity: bounded random walk + deep fades."""
    rng = _stream("cellular", seed)
    samples: List[TraceSample] = []
    level = mean_bps
    t = 0.0
    while t <= duration_s:
        level *= rng.uniform(0.8, 1.25)
        level = min(max(level, floor_bps * 2), ceil_bps)
        fade = rng.random() < fade_p
        samples.append(
            TraceSample(
                time_s=round(t, 6),
                bandwidth_bps=round(floor_bps if fade else level, 1),
                delay_s=round(0.04 * rng.uniform(0.8, 1.8), 6),
                loss_rate=round(0.08 if fade else 0.002, 6),
            )
        )
        t += step_s
    return LinkTrace(f"cellular:{seed}", samples, end_policy="hold")


def wifi_trace(
    seed: int = 1,
    duration_s: float = 16.0,
    step_s: float = 0.25,
    mean_bps: float = 3_000_000.0,
    floor_bps: float = 250_000.0,
    ceil_bps: float = 6_000_000.0,
) -> LinkTrace:
    """WiFi walk-test style capacity: rate steps as the MCS adapts."""
    rng = _stream("wifi", seed)
    # 802.11-ish rate ladder scaled into our bandwidth range.
    ladder = [floor_bps, 0.6e6, 1.2e6, 2e6, 3e6, 4.5e6, ceil_bps]
    rung = ladder.index(3e6)
    samples: List[TraceSample] = []
    t = 0.0
    while t <= duration_s:
        rung += rng.choice((-1, 0, 0, 1))
        rung = min(max(rung, 0), len(ladder) - 1)
        samples.append(
            TraceSample(
                time_s=round(t, 6),
                bandwidth_bps=float(ladder[rung]),
                delay_s=round(0.008 * rng.uniform(0.8, 2.5), 6),
                loss_rate=round(0.12 if rung == 0 else 0.005, 6),
            )
        )
        t += step_s
    return LinkTrace(f"wifi:{seed}", samples, end_policy="hold")


#: The generator family, keyed by the name ``resolve_trace`` accepts in
#: ``"<family>:<seed>"`` specs.
TRACE_GENERATORS: Dict[str, Callable[..., LinkTrace]] = {
    "gprs": gprs_trace,
    "leo": leo_trace,
    "incast": incast_trace,
    "cellular": cellular_trace,
    "wifi": wifi_trace,
}

#: Bundled package-data assets (``repro/traces/data/<name>.csv``): fixed
#: seeds of the cellular/wifi generators committed as CSV so the replay
#: path exercises real file parsing, not just in-memory objects.
BUNDLED_TRACES = ("cellular_drive", "wifi_walk")

_BUNDLE_RECIPES = {
    "cellular_drive": lambda: cellular_trace(seed=42),
    "wifi_walk": lambda: wifi_trace(seed=42),
}


def load_bundled_trace(name: str) -> LinkTrace:
    """Load one of the bundled CSV assets from package data."""
    if name not in BUNDLED_TRACES:
        raise ValueError(
            f"unknown bundled trace {name!r} (known: {', '.join(BUNDLED_TRACES)})"
        )
    from importlib import resources

    from repro.traces.model import parse_trace_csv

    text = (
        resources.files("repro.traces").joinpath(f"data/{name}.csv").read_text()
    )
    return parse_trace_csv(text, name=name)


def regenerate_bundled_assets(directory: Optional[str] = None) -> List[str]:
    """Rewrite the bundled CSV assets from their recipes; returns paths.

    Run via ``python -m repro.traces.generators`` after changing a
    recipe, then commit the diff like any golden file.
    """
    import os

    if directory is None:
        directory = os.path.join(os.path.dirname(__file__), "data")
    os.makedirs(directory, exist_ok=True)
    paths = []
    for name, recipe in _BUNDLE_RECIPES.items():
        path = os.path.join(directory, f"{name}.csv")
        recipe().save(path)
        paths.append(path)
    return paths


def resolve_trace(spec) -> LinkTrace:
    """Turn a trace spec into a :class:`LinkTrace`.

    Accepts a :class:`LinkTrace` (returned as-is), a bundled asset name
    (``cellular_drive``), a ``"<family>:<seed>"`` generator spec
    (``gprs:7``) or a path to a CSV file (anything containing a path
    separator or ending in ``.csv``). Raises ``ValueError`` (or the
    :class:`~repro.traces.model.TraceFormatError` subclass) on junk.
    """
    if isinstance(spec, LinkTrace):
        return spec
    if not isinstance(spec, str):
        raise ValueError(
            f"trace spec must be a LinkTrace, asset name, 'family:seed' or "
            f"CSV path, got {spec!r}"
        )
    if spec in BUNDLED_TRACES:
        return load_bundled_trace(spec)
    import os

    if os.sep in spec or spec.endswith(".csv"):
        from repro.traces.model import load_trace_csv

        return load_trace_csv(spec)
    if ":" in spec:
        family, __, seed_text = spec.partition(":")
        if family in TRACE_GENERATORS:
            try:
                seed = int(seed_text)
            except ValueError:
                raise ValueError(
                    f"trace generator seed must be an int, got {seed_text!r}"
                ) from None
            return TRACE_GENERATORS[family](seed=seed)
    known = ", ".join(sorted((*TRACE_GENERATORS, *BUNDLED_TRACES)))
    raise ValueError(f"unknown trace spec {spec!r} (known: {known})")


if __name__ == "__main__":  # pragma: no cover - asset regeneration tool
    for path in regenerate_bundled_assets():
        print(f"wrote {path}")
