"""Trace-soak harness: byte-verified transfers through replayed channels.

The chaos and corruption harnesses attack the network with *synthetic*
faults — a loss rate, a bandwidth factor, a flap. This one replays the
*time structure* of real links (:mod:`repro.traces`): GPRS fade trains,
LEO handover sawtooths, incast collapse, recorded drive/walk tests. The
transfer runs with flow control on and real payload bytes flowing
(FMTCP with ``coding="real"``), because a trace's deep-fade minutes are
exactly where receive-buffer pressure and scheduler failover interact.

Invariants checked by :func:`run_traces` on every run:

1. **byte-identical delivery** — the reassembled stream equals the
   source transcript prefix (corruption-harness contract);
2. **exactly-once, in-order delivery**;
3. **bounded memory under bandwidth collapse** — peak receiver
   occupancy stays within the flow-control budget even while the trace
   crushes one path's bandwidth (a
   :class:`~repro.robustness.budget.MemoryBudget` rides the run);
4. **watchdog interplay** — the
   :class:`~repro.robustness.watchdog.Watchdog` must not clean-fail a
   transfer that completes, and an incomplete run must end in a clean
   diagnosed failure, never a silent hang;
5. **post-heal progress / completion** — presets restore the channel at
   ``scenario.heal_time``; the transfer must finish afterwards;
6. **the trace actually played** — at least one trace tick mutated the
   links (a run that never replays anything passes vacuously);
7. **no wedged timers, event queue drains** after completion and close.

:func:`measure_trace_goodput` is the benchmark probe: steady-state
goodput of an open-ended transfer with a trace riding path 1 for the
whole run, used by ``benchmarks/bench_traces.py`` for the
FMTCP-vs-MPTCP goodput heatmap across trace families.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.config import FmtcpConfig
from repro.core.connection import FmtcpConnection
from repro.faults.chaos import _check_timers
from repro.faults.scenario import FaultScenario
from repro.mptcp.connection import MptcpConfig, MptcpConnection
from repro.net.topology import PathConfig, build_two_path_network
from repro.robustness.budget import MemoryBudget
from repro.robustness.watchdog import Watchdog, WatchdogConfig
from repro.sim.rng import RngStreams
from repro.sim.trace import TraceBus
from repro.telemetry.flight import FlightRecorder
from repro.telemetry.profiler import SimProfiler
from repro.telemetry.samplers import attach_samplers
from repro.traces.generators import resolve_trace
from repro.traces.player import TracePlayer
from repro.workloads.sources import BulkSource, RandomPayloadSource


@dataclass
class TraceReport:
    """Outcome of one :func:`run_traces` run."""

    protocol: str
    scenario_name: str
    seed: int
    duration_s: float
    expected_bytes: int
    budget_units: int
    delivered_bytes: int = 0
    delivered_units: int = 0
    bytes_at_heal: int = 0
    completed: bool = False
    completion_time_s: Optional[float] = None
    trace_ticks: int = 0
    peak_occupancy: int = 0
    memory_peaks: Dict[str, float] = field(default_factory=dict)
    watchdog_failed: bool = False
    watchdog_escalation: int = 0
    diagnosis: Optional[Dict[str, Any]] = None
    violations: List[str] = field(default_factory=list)
    flight_dump_path: Optional[str] = None
    profile_dump_path: Optional[str] = None

    @property
    def ok(self) -> bool:
        return not self.violations


def _budget_units(protocol: str, recv_budget_bytes: int) -> int:
    """The byte budget in the protocol's receive units (exhaustion rule)."""
    if protocol == "fmtcp":
        return max(2, recv_budget_bytes // FmtcpConfig().block_bytes)
    if protocol == "mptcp":
        return max(2, recv_budget_bytes // MptcpConfig().mss)
    raise ValueError(f"unknown protocol {protocol!r}")


def run_traces(
    protocol: str,
    scenario: FaultScenario,
    seed: int = 1,
    duration_s: float = 40.0,
    bandwidth_bps: float = 2e5,
    delay_s: float = 0.03,
    total_bytes: int = 327_680,
    recv_budget_bytes: int = 131_072,
    flight_dump_dir: Optional[str] = None,
    flight_capacity: int = 4096,
    watchdog_config: Optional[WatchdogConfig] = None,
    telemetry_period_s: float = 0.1,
) -> TraceReport:
    """Run one finite real-payload transfer through a trace scenario.

    Sizing: traces carry *absolute* regimes (GPRS bottoms out near
    30 kb/s; the WiFi ladder tops out above the baseline, so a replay
    can also *improve* its path). The clean baseline is 2 x 0.2 Mb/s —
    the 320 KiB transfer needs ~7 s clean, so it is mid-flight through
    the preset replay window ([2, 18) s) and must survive whatever the
    trace does to path 1, yet finishes well before ``duration_s`` once
    the restore event heals the channel.
    """
    if not scenario.has_trace:
        raise ValueError(
            f"scenario {scenario.name!r} has no trace events; use "
            "repro.faults.chaos.run_chaos (or the corruption/churn/"
            "recovery harnesses) instead"
        )
    if scenario.has_churn or scenario.has_endpoint_faults:
        raise ValueError(
            f"scenario {scenario.name!r} mixes trace replay with subflow-"
            "lifecycle or crash events; split it across harnesses"
        )
    trace = TraceBus()
    configs = [
        PathConfig(bandwidth_bps=bandwidth_bps, delay_s=delay_s, loss_rate=0.0)
        for __ in range(scenario.n_paths)
    ]
    network, paths = build_two_path_network(configs, rng=RngStreams(seed), trace=trace)
    sim = network.sim

    flight: Optional[FlightRecorder] = None
    profiler: Optional[SimProfiler] = None
    if flight_dump_dir is not None:
        flight = FlightRecorder(trace, capacity=flight_capacity)
        profiler = SimProfiler()
        sim.set_profiler(profiler)

    delivered_ids: List[int] = []
    delivered_data: List[bytes] = []
    budget_units = _budget_units(protocol, recv_budget_bytes)
    if protocol == "fmtcp":
        config = FmtcpConfig(
            coding="real", flow_control=True, recv_window_blocks=budget_units
        )
        expected_units = max(1, total_bytes // config.block_bytes)
        expected_bytes = expected_units * config.block_bytes

        def sink(block_id: int, data: Optional[bytes]) -> None:
            delivered_ids.append(block_id)
            delivered_data.append(data or b"")

    elif protocol == "mptcp":
        config = MptcpConfig(flow_control=True, recv_buffer_chunks=budget_units)
        expected_units = total_bytes // config.mss + (
            1 if total_bytes % config.mss else 0
        )
        expected_bytes = total_bytes

        def sink(chunk) -> None:
            delivered_ids.append(chunk.dsn)
            delivered_data.append(chunk.payload_bytes or b"")

    else:
        raise ValueError(f"unknown protocol {protocol!r}")

    source = RandomPayloadSource(expected_bytes, rng=random.Random(seed))
    if protocol == "fmtcp":
        connection = FmtcpConnection(
            sim, paths, source, config=config,
            trace=trace, rng=RngStreams(seed), sink=sink,
        )
    else:
        connection = MptcpConnection(
            sim, paths, source, config=config, trace=trace, sink=sink
        )

    report = TraceReport(
        protocol=protocol,
        scenario_name=scenario.name,
        seed=seed,
        duration_s=duration_s,
        expected_bytes=expected_bytes,
        budget_units=budget_units,
    )

    # Invariant 6 needs proof the replay ran; subscribe before arming so
    # the player's has_subscribers guard sees a listener.
    def _count_tick(record) -> None:
        report.trace_ticks += 1

    trace.subscribe("trace.sample", _count_tick)

    injector = scenario.apply(sim, paths, trace=trace)
    samplers = attach_samplers(sim, connection, trace, period_s=telemetry_period_s)
    budget = MemoryBudget(limits={"recv_occupancy": budget_units})
    watchdog = Watchdog(
        sim,
        connection,
        config=watchdog_config,
        trace=trace,
        samplers=samplers,
        flight=flight,
        dump_dir=flight_dump_dir,
        label=f"{protocol}_{scenario.name}_seed{seed}",
    )

    def _at_heal() -> None:
        report.bytes_at_heal = connection.delivered_bytes
        _check_timers(connection, "at heal", report.violations)

    if scenario.events:
        sim.schedule_at(scenario.heal_time, _at_heal)

    def _watch() -> None:
        budget.observe(connection.memory_stats())
        if connection.delivered_bytes >= expected_bytes:
            if report.completion_time_s is None:
                report.completion_time_s = sim.now
            # A finished transfer makes no further progress; retire the
            # watchdog with it instead of letting it diagnose a "stall".
            watchdog.stop()
            return
        if watchdog.failed:
            return  # terminal: the diagnosis is already frozen
        sim.schedule(0.25, _watch)

    sim.schedule(0.25, _watch)
    watchdog.start()
    connection.start()
    sim.run(until=duration_s)

    budget.observe(connection.memory_stats())
    report.delivered_bytes = connection.delivered_bytes
    report.delivered_units = len(delivered_ids)
    report.completed = report.delivered_bytes >= expected_bytes
    report.peak_occupancy = int(budget.peak("recv_occupancy"))
    report.memory_peaks = budget.summary()
    report.watchdog_failed = watchdog.failed
    report.watchdog_escalation = watchdog.escalation
    report.diagnosis = watchdog.diagnosis

    # Invariant 3: bounded memory while the trace crushed the channel.
    report.violations.extend(budget.violations())

    # Invariant 2: exactly-once, in-order delivery.
    if delivered_ids != list(range(len(delivered_ids))):
        report.violations.append(
            f"delivery not exactly-once/in-order: got {len(delivered_ids)} "
            f"units, first disorder near index "
            f"{next((i for i, v in enumerate(delivered_ids) if v != i), -1)}"
        )
    if report.completed and report.delivered_units != expected_units:
        report.violations.append(
            f"unit count mismatch: delivered {report.delivered_units}, "
            f"expected {expected_units}"
        )

    # Invariant 1: byte-identical delivery, checked on the delivered
    # prefix even for incomplete runs.
    reassembled = b"".join(delivered_data)
    transcript = bytes(source.transcript)
    if reassembled != transcript[: len(reassembled)]:
        first_bad = next(
            (
                i
                for i, (got, want) in enumerate(zip(reassembled, transcript))
                if got != want
            ),
            min(len(reassembled), len(transcript)),
        )
        report.violations.append(
            f"corrupted bytes delivered: reassembled stream diverges from "
            f"the source transcript at offset {first_bad}"
        )

    # Invariant 6: the replay must actually have mutated the links.
    if report.trace_ticks == 0:
        report.violations.append(
            "trace never applied a sample: the scenario exercises nothing"
        )

    # Invariant 4: watchdog interplay — no false clean-fail, no hang.
    if report.completed and report.watchdog_failed:
        report.violations.append(
            "watchdog clean-failed a transfer that completed "
            f"(escalation {report.watchdog_escalation})"
        )
    if not report.completed and not report.watchdog_failed:
        report.violations.append(
            f"deadlock: transfer neither completed nor failed cleanly "
            f"({report.delivered_bytes}/{expected_bytes} bytes after "
            f"{duration_s:.0f}s, watchdog escalation {watchdog.escalation})"
        )
    if report.watchdog_failed and report.diagnosis is None:
        report.violations.append("watchdog failed without a diagnosis")

    # Invariant 5: completion after the restore event healed the channel.
    if not report.completed:
        report.violations.append(
            f"transfer incomplete: {report.delivered_bytes}/{expected_bytes} "
            f"bytes after {duration_s:.0f}s"
        )
        if report.delivered_bytes <= report.bytes_at_heal:
            report.violations.append(
                "no goodput recovery: nothing delivered after the trace "
                f"restored at t={scenario.heal_time:.1f}s"
            )

    # Invariant 7: timers sane, event queue drains.
    _check_timers(connection, "at end", report.violations)
    watchdog.stop()
    for sampler in samplers:
        sampler.stop()
    injector.stop_players()
    connection.close()
    trace.unsubscribe("trace.sample", _count_tick)
    sim.drain_cancelled()
    if report.completed and sim.pending_events != 0:
        report.violations.append(
            f"event queue did not drain: {sim.pending_events} live events "
            "after completion and close"
        )

    if flight is not None:
        if report.violations:
            os.makedirs(flight_dump_dir, exist_ok=True)
            slug = scenario.name.replace(":", "-").replace("/", "-")
            stem = f"traces_{protocol}_{slug}_seed{seed}"
            dump_path = os.path.join(flight_dump_dir, stem + ".jsonl")
            flight.dump(
                dump_path,
                meta={
                    "protocol": protocol,
                    "scenario": scenario.name,
                    "seed": seed,
                    "violations": report.violations,
                    "trace_ticks": report.trace_ticks,
                    "memory_peaks": report.memory_peaks,
                },
            )
            report.flight_dump_path = dump_path
            if profiler is not None:
                profile_path = os.path.join(flight_dump_dir, stem + ".profile.json")
                with open(profile_path, "w") as handle:
                    json.dump(profiler.report(), handle, indent=2)
                report.profile_dump_path = profile_path
        flight.close()
        sim.set_profiler(None)
    return report


def measure_trace_goodput(
    protocol: str,
    trace_spec,
    seed: int = 1,
    duration_s: float = 20.0,
    bandwidth_bps: float = 6e5,
    delay_s: float = 0.03,
) -> float:
    """Steady-state goodput (Mb/s) with ``trace_spec`` riding path 1's
    forward links for the whole run (path 0 stays at the clean baseline).
    A ``None``/empty spec leaves both paths pristine — the no-trace
    baseline draws no extra randomness."""
    trace = TraceBus()
    configs = [
        PathConfig(bandwidth_bps=bandwidth_bps, delay_s=delay_s, loss_rate=0.0)
        for __ in range(2)
    ]
    network, paths = build_two_path_network(configs, rng=RngStreams(seed), trace=trace)
    sim = network.sim
    if protocol == "fmtcp":
        connection = FmtcpConnection(
            sim, paths, BulkSource(), trace=trace, rng=RngStreams(seed)
        )
    elif protocol == "mptcp":
        connection = MptcpConnection(sim, paths, BulkSource(), trace=trace)
    else:
        raise ValueError(f"unknown protocol {protocol!r}")
    player: Optional[TracePlayer] = None
    if trace_spec:
        # "loop" so short traces keep shaping the channel all run long.
        replay = resolve_trace(trace_spec)
        if replay.end_policy != "loop":
            from repro.traces.model import LinkTrace

            replay = LinkTrace(
                replay.name, replay.samples, end_policy="loop",
                interpolate=replay.interpolate,
            )
        player = TracePlayer(sim, paths[1].forward_links, replay, bus=trace)
        player.start()
    connection.start()
    sim.run(until=duration_s)
    goodput = connection.delivered_bytes * 8.0 / duration_s / 1e6
    if player is not None:
        player.stop()
    connection.close()
    return goodput
