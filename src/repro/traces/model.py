"""Trace-driven channel model: time series of link conditions.

A :class:`LinkTrace` is a validated, time-sorted sequence of
:class:`TraceSample` rows — "at t=3.25 s the channel offers 140 kb/s,
480 ms one-way delay and 2 % loss" — replayed onto live
:class:`~repro.net.link.Link` objects by
:class:`~repro.traces.player.TracePlayer`. Traces capture what the
synthetic loss models cannot: the *time structure* of real links (deep
cellular fades, LEO handover sawtooths, incast bursts), which is exactly
where the paper's fountain-coding claims are sharpest.

CSV schema (one row per sample, header required)::

    time_s,bandwidth_bps,delay_s,loss_rate
    0.0,170000,0.45,0.01
    0.25,,0.48,
    0.5,32000,0.5,0.3

A blank cell means "leave that dimension at the link's baseline" — a
bandwidth-only trace does not touch delay or loss. Timestamps must be
non-negative and strictly increasing; bandwidth must be positive, delay
non-negative, loss in ``[0, 1)``; every value must be finite. Malformed
input raises :class:`TraceFormatError` naming the offending line.

End-of-trace policies (what happens after the last sample):

========  ==========================================================
hold      keep the last sample's conditions until stopped (default)
loop      wrap around — sample ``k`` at trace time ``t mod duration``
clear     restore the link's baseline settings
========  ==========================================================

``interpolate=True`` linearly interpolates bandwidth and delay between
samples (loss always steps: it is a probability regime, not a level).
"""

from __future__ import annotations

import csv
import io
import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

#: Valid end-of-trace policies (see module docstring).
END_POLICIES = ("hold", "loop", "clear")

#: The CSV header every trace file starts with.
CSV_HEADER = ("time_s", "bandwidth_bps", "delay_s", "loss_rate")


class TraceFormatError(ValueError):
    """A trace CSV (or sample sequence) that violates the schema."""


@dataclass(frozen=True)
class TraceSample:
    """One row of a channel time series.

    ``None`` fields leave that dimension at the link's baseline.
    """

    time_s: float
    bandwidth_bps: Optional[float] = None
    delay_s: Optional[float] = None
    loss_rate: Optional[float] = None

    def __post_init__(self) -> None:
        if not math.isfinite(self.time_s) or self.time_s < 0:
            raise TraceFormatError(
                f"sample time must be finite and non-negative, got {self.time_s!r}"
            )
        if self.bandwidth_bps is not None and (
            not math.isfinite(self.bandwidth_bps) or self.bandwidth_bps <= 0
        ):
            raise TraceFormatError(
                f"bandwidth must be finite and positive, got {self.bandwidth_bps!r}"
            )
        if self.delay_s is not None and (
            not math.isfinite(self.delay_s) or self.delay_s < 0
        ):
            raise TraceFormatError(
                f"delay must be finite and non-negative, got {self.delay_s!r}"
            )
        if self.loss_rate is not None and not 0.0 <= self.loss_rate < 1.0:
            raise TraceFormatError(
                f"loss rate must be in [0, 1), got {self.loss_rate!r}"
            )


def _lerp(a: float, b: float, frac: float) -> float:
    return a + (b - a) * frac


class LinkTrace:
    """A named, validated channel time series with an end-of-trace policy."""

    def __init__(
        self,
        name: str,
        samples: Sequence[TraceSample],
        end_policy: str = "hold",
        interpolate: bool = False,
    ):
        if not samples:
            raise TraceFormatError(f"trace {name!r} is empty: need >= 1 sample")
        if end_policy not in END_POLICIES:
            raise TraceFormatError(
                f"unknown end policy {end_policy!r} (known: {', '.join(END_POLICIES)})"
            )
        for previous, sample in zip(samples, samples[1:]):
            if sample.time_s <= previous.time_s:
                raise TraceFormatError(
                    f"trace {name!r} timestamps must be strictly increasing: "
                    f"{sample.time_s!r} follows {previous.time_s!r}"
                )
        self.name = name
        self.samples: Tuple[TraceSample, ...] = tuple(samples)
        self.end_policy = end_policy
        self.interpolate = interpolate

    @property
    def duration_s(self) -> float:
        """Time of the last sample (0.0 for a single-sample trace)."""
        return self.samples[-1].time_s

    @property
    def start_s(self) -> float:
        """Time of the first sample."""
        return self.samples[0].time_s

    def ended(self, t: float) -> bool:
        """Whether trace time ``t`` is past the last sample (policy territory)."""
        return t > self.duration_s

    def sample_at(self, t: float) -> Optional[TraceSample]:
        """Channel conditions at trace time ``t``.

        Returns ``None`` when the trace is over and the policy is
        ``clear`` (the caller restores baselines), otherwise a
        :class:`TraceSample` whose ``None`` fields mean "baseline".
        Before the first sample the first sample's conditions apply
        (a trace is a regime description, not a delta log).
        """
        if t > self.duration_s:
            if self.end_policy == "clear":
                return None
            if self.end_policy == "hold" or self.duration_s == 0.0:
                return self.samples[-1]
            t = t % self.duration_s
        if t <= self.samples[0].time_s:
            return self.samples[0]
        # Find the sample pair bracketing t (samples are few; linear scan
        # is dominated by the player's per-tick link mutations anyway).
        for previous, sample in zip(self.samples, self.samples[1:]):
            if t < sample.time_s:
                if not self.interpolate:
                    return previous
                frac = (t - previous.time_s) / (sample.time_s - previous.time_s)
                bandwidth = (
                    None
                    if previous.bandwidth_bps is None or sample.bandwidth_bps is None
                    else _lerp(previous.bandwidth_bps, sample.bandwidth_bps, frac)
                )
                delay = (
                    None
                    if previous.delay_s is None or sample.delay_s is None
                    else _lerp(previous.delay_s, sample.delay_s, frac)
                )
                # Loss always steps: it is a regime probability.
                return TraceSample(
                    time_s=t,
                    bandwidth_bps=bandwidth,
                    delay_s=delay,
                    loss_rate=previous.loss_rate,
                )
        return self.samples[-1]

    # ------------------------------------------------------------------
    # CSV round-trip.
    # ------------------------------------------------------------------
    def to_csv(self) -> str:
        """Serialise to the canonical CSV schema (round-trips exactly)."""
        out = io.StringIO()
        writer = csv.writer(out, lineterminator="\n")
        writer.writerow(CSV_HEADER)
        for sample in self.samples:
            writer.writerow(
                [
                    repr(sample.time_s),
                    "" if sample.bandwidth_bps is None else repr(sample.bandwidth_bps),
                    "" if sample.delay_s is None else repr(sample.delay_s),
                    "" if sample.loss_rate is None else repr(sample.loss_rate),
                ]
            )
        return out.getvalue()

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_csv())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<LinkTrace {self.name!r} {len(self.samples)} samples "
            f"{self.duration_s:.2f}s {self.end_policy}>"
        )


def _parse_cell(
    raw: str, column: str, line_number: int
) -> Optional[float]:
    text = raw.strip()
    if not text:
        return None
    try:
        return float(text)
    except ValueError:
        raise TraceFormatError(
            f"line {line_number}: {column} must be a number or blank, got {raw!r}"
        ) from None


def parse_trace_csv(
    text: str,
    name: str = "trace",
    end_policy: str = "hold",
    interpolate: bool = False,
) -> LinkTrace:
    """Parse the canonical CSV schema into a :class:`LinkTrace`.

    Raises :class:`TraceFormatError` (a ``ValueError``) with a line
    number on any schema violation: wrong header, wrong column count,
    non-numeric cells, out-of-range values, non-monotonic timestamps or
    an empty trace.
    """
    rows = list(csv.reader(io.StringIO(text)))
    rows = [row for row in rows if row and any(cell.strip() for cell in row)]
    if not rows:
        raise TraceFormatError(f"trace {name!r} is empty: no CSV rows")
    header = tuple(cell.strip() for cell in rows[0])
    if header != CSV_HEADER:
        raise TraceFormatError(
            f"line 1: expected header {','.join(CSV_HEADER)!r}, "
            f"got {','.join(header)!r}"
        )
    samples: List[TraceSample] = []
    for line_number, row in enumerate(rows[1:], start=2):
        if len(row) != len(CSV_HEADER):
            raise TraceFormatError(
                f"line {line_number}: expected {len(CSV_HEADER)} columns, "
                f"got {len(row)}"
            )
        time_cell = _parse_cell(row[0], "time_s", line_number)
        if time_cell is None:
            raise TraceFormatError(f"line {line_number}: time_s must not be blank")
        try:
            samples.append(
                TraceSample(
                    time_s=time_cell,
                    bandwidth_bps=_parse_cell(row[1], "bandwidth_bps", line_number),
                    delay_s=_parse_cell(row[2], "delay_s", line_number),
                    loss_rate=_parse_cell(row[3], "loss_rate", line_number),
                )
            )
        except TraceFormatError as error:
            raise TraceFormatError(f"line {line_number}: {error}") from None
    return LinkTrace(name, samples, end_policy=end_policy, interpolate=interpolate)


def load_trace_csv(
    path: str,
    name: Optional[str] = None,
    end_policy: str = "hold",
    interpolate: bool = False,
) -> LinkTrace:
    """Read and parse a trace CSV file.

    Unreadable files raise :class:`TraceFormatError` too, so callers
    (the ``repro faults`` CLI) have a single diagnostic error type.
    """
    import os

    if name is None:
        name = os.path.splitext(os.path.basename(path))[0]
    try:
        with open(path) as handle:
            text = handle.read()
    except OSError as error:
        raise TraceFormatError(f"cannot read trace file {path!r}: {error}") from None
    return parse_trace_csv(
        text, name=name, end_policy=end_policy, interpolate=interpolate
    )
