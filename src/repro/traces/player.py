"""Replay a :class:`~repro.traces.model.LinkTrace` onto live links.

The player is the bridge between a recorded (or generated) channel time
series and the runtime-mutation API of :class:`~repro.net.link.Link`:
on every tick it evaluates the trace at the aligned trace time and
drives ``set_bandwidth`` / ``set_delay`` / ``set_loss_model`` on its
links. Baselines are captured at :meth:`start`, so ``stop`` (or the
``clear`` end policy) returns every link to exactly its pre-trace
settings — the same contract the fault injector keeps.

Clock alignment: trace time 0 is the simulated instant :meth:`start`
runs, and ticks ride a :class:`~repro.sim.timers.PeriodicTimer`, whose
k-th tick fires at exactly ``start + k * step`` — no float drift between
the trace's own clock and the simulator's over long replays.

A ``None`` field in a sample leaves that dimension at the link's
baseline; a trace's loss regime is materialised as a fresh
:class:`~repro.net.loss.BernoulliLoss` (stateless, so each link keeps
drawing from its own RNG stream).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.net.loss import BernoulliLoss
from repro.sim.engine import Simulator
from repro.sim.timers import PeriodicTimer
from repro.sim.trace import TraceBus
from repro.traces.model import LinkTrace, TraceSample


@dataclass
class _LinkBaseline:
    bandwidth_bps: float
    delay_s: float
    loss_model: object


class TracePlayer:
    """Drives one trace onto a set of links until stopped or ended."""

    def __init__(
        self,
        sim: Simulator,
        links: Sequence,
        trace: LinkTrace,
        step_s: float = 0.1,
        bus: Optional[TraceBus] = None,
    ):
        if not links:
            raise ValueError("TracePlayer needs at least one link")
        if step_s <= 0:
            raise ValueError(f"step must be positive, got {step_s}")
        self.sim = sim
        self.links = list(links)
        self.trace = trace
        self.step_s = step_s
        self.bus = bus
        self.ticks_applied = 0
        self._timer = PeriodicTimer(
            sim, step_s, self._tick, name=f"trace:{trace.name}"
        )
        self._baselines: Dict[int, _LinkBaseline] = {}
        self._finished = False

    @property
    def playing(self) -> bool:
        return self._timer.armed

    @property
    def finished(self) -> bool:
        """Whether playback ran off the end of a ``clear``-policy trace."""
        return self._finished

    def start(self) -> None:
        """Capture baselines, anchor trace time 0 at ``sim.now``, begin."""
        if self.playing:
            raise RuntimeError(f"trace {self.trace.name!r} is already playing")
        self._finished = False
        self._baselines = {
            id(link): _LinkBaseline(
                bandwidth_bps=link.bandwidth_bps,
                delay_s=link.delay_s,
                loss_model=link.loss_model,
            )
            for link in self.links
        }
        self._timer.start(fire_now=True)

    def stop(self, restore: bool = True) -> None:
        """End playback; by default return the links to their baselines."""
        self._timer.stop()
        if restore and self._baselines:
            for link in self.links:
                baseline = self._baselines[id(link)]
                link.set_bandwidth(baseline.bandwidth_bps)
                link.set_delay(baseline.delay_s)
                link.set_loss_model(baseline.loss_model)
            if self.bus is not None and self.bus.has_subscribers("trace.restore"):
                self.bus.emit(
                    self.sim.now,
                    "trace.restore",
                    trace=self.trace.name,
                    links=[link.name for link in self.links],
                )

    def _tick(self, elapsed_s: float) -> None:
        sample = self.trace.sample_at(elapsed_s)
        if sample is None:
            # "clear" policy past the end: restore and retire.
            self._finished = True
            self.stop(restore=True)
            return
        self._apply(sample)
        self.ticks_applied += 1
        if self.trace.end_policy == "hold" and elapsed_s >= self.trace.duration_s:
            # Holding the last sample needs no further ticks.
            self._timer.stop()

    def _apply(self, sample: TraceSample) -> None:
        for link in self.links:
            baseline = self._baselines[id(link)]
            if sample.bandwidth_bps is not None:
                link.set_bandwidth(sample.bandwidth_bps)
            else:
                link.set_bandwidth(baseline.bandwidth_bps)
            if sample.delay_s is not None:
                link.set_delay(sample.delay_s)
            else:
                link.set_delay(baseline.delay_s)
            if sample.loss_rate is None:
                link.set_loss_model(baseline.loss_model)
            elif sample.loss_rate > 0.0:
                link.set_loss_model(BernoulliLoss(sample.loss_rate))
            else:
                link.set_loss_model(None)  # lossless regime
        if self.bus is not None and self.bus.has_subscribers("trace.sample"):
            self.bus.emit(
                self.sim.now,
                "trace.sample",
                trace=self.trace.name,
                bandwidth_bps=sample.bandwidth_bps,
                delay_s=sample.delay_s,
                loss_rate=sample.loss_rate,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "playing" if self.playing else "idle"
        return (
            f"<TracePlayer {self.trace.name!r} over {len(self.links)} "
            f"link(s) {state}>"
        )


def attach_players(
    sim: Simulator,
    links_by_group: Sequence[Sequence],
    trace: LinkTrace,
    step_s: float = 0.1,
    bus: Optional[TraceBus] = None,
) -> List[TracePlayer]:
    """One player per link group (e.g. per path), all sharing one trace."""
    return [
        TracePlayer(sim, links, trace, step_s=step_s, bus=bus)
        for links in links_by_group
        if links
    ]
