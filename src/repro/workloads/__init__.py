"""Traffic sources and evaluation scenarios (Table I, the Fig. 4 surge)."""

from repro.workloads.scenarios import (
    SUBFLOW1_CONFIG,
    TABLE1_CASES,
    TestCase,
    surge_path_configs,
    table1_path_configs,
)
from repro.workloads.sources import BulkSource, CbrSource, RandomPayloadSource
from repro.workloads.presets import PRESETS, paths_for
from repro.workloads.video import VbrVideoSource

__all__ = [
    "BulkSource",
    "PRESETS",
    "CbrSource",
    "RandomPayloadSource",
    "SUBFLOW1_CONFIG",
    "TABLE1_CASES",
    "TestCase",
    "VbrVideoSource",
    "paths_for",
    "surge_path_configs",
    "table1_path_configs",
]
