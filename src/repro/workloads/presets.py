"""Named path presets for realistic multi-homing scenarios.

The paper's Table I sweeps abstract (delay, loss) pairs; users composing
their own scenarios usually think in terms of access technologies. These
presets encode typical 2012-era figures for each (bandwidth, one-way
delay, loss, burstiness) as :class:`~repro.net.topology.PathConfig`
factories. Factories return *fresh* configs on every call because loss
models carry per-run state.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.net.loss import GilbertElliottLoss
from repro.net.topology import PathConfig

PresetFactory = Callable[[], PathConfig]


def ethernet() -> PathConfig:
    """Wired LAN/broadband leg: fast, short, clean."""
    return PathConfig(bandwidth_bps=20e6, delay_s=0.005, loss_rate=0.0)


def dsl() -> PathConfig:
    """Residential DSL: moderate rate, interleaver delay, near-clean."""
    return PathConfig(bandwidth_bps=8e6, delay_s=0.020, loss_rate=0.001)


def wifi() -> PathConfig:
    """802.11 in a busy environment: decent rate, bursty residual loss."""
    return PathConfig(
        bandwidth_bps=12e6,
        delay_s=0.015,
        loss_model=GilbertElliottLoss(
            p_gb=0.005, p_bg=0.15, loss_good=0.002, loss_bad=0.25
        ),
    )


def lte() -> PathConfig:
    """Cellular LTE: moderate rate, higher delay, light loss."""
    return PathConfig(bandwidth_bps=6e6, delay_s=0.045, loss_rate=0.01)


def hspa_3g() -> PathConfig:
    """3G data: low rate, high delay, noticeable loss."""
    return PathConfig(bandwidth_bps=2e6, delay_s=0.090, loss_rate=0.03)


def satellite() -> PathConfig:
    """GEO satellite: plenty of rate, enormous propagation delay."""
    return PathConfig(bandwidth_bps=10e6, delay_s=0.280, loss_rate=0.005)


PRESETS: Dict[str, PresetFactory] = {
    "ethernet": ethernet,
    "dsl": dsl,
    "wifi": wifi,
    "lte": lte,
    "3g": hspa_3g,
    "satellite": satellite,
}


def paths_for(*names: str) -> List[PathConfig]:
    """Build a multi-path scenario from preset names.

    >>> configs = paths_for("wifi", "lte")
    """
    if not names:
        raise ValueError("name at least one preset")
    configs = []
    for name in names:
        factory = PRESETS.get(name)
        if factory is None:
            raise KeyError(
                f"unknown preset {name!r}; available: {sorted(PRESETS)}"
            )
        configs.append(factory())
    return configs
