"""The paper's evaluation scenarios.

Table I parameterises subflow 2 across eight test cases while subflow 1
stays fixed at 100 ms one-way delay and zero loss; Fig. 4's scenario holds
both paths at 100 ms / 1 % and surges subflow 2's loss at t = 50 s,
restoring it at t = 200 s.

The paper does not state link bandwidth; ``DEFAULT_BANDWIDTH_BPS`` is
4 Mbit/s per path (DESIGN.md §3.1), which puts aggregate goodput on the
same ~1 MB/s scale as Fig. 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.net.loss import ScheduledLoss
from repro.net.topology import PathConfig

DEFAULT_BANDWIDTH_BPS = 4e6


@dataclass(frozen=True)
class TestCase:
    """One column of Table I: subflow 2's delay and loss rate."""

    case_id: int
    delay_s: float
    loss_rate: float

    def label(self) -> str:
        return f"case {self.case_id}: {self.delay_s * 1e3:.0f}ms/{self.loss_rate * 1e2:.0f}%"


#: Table I — "Path parameters of subflow 2".
TABLE1_CASES: List[TestCase] = [
    TestCase(1, 0.100, 0.02),
    TestCase(2, 0.100, 0.05),
    TestCase(3, 0.100, 0.10),
    TestCase(4, 0.100, 0.15),
    TestCase(5, 0.025, 0.10),
    TestCase(6, 0.050, 0.10),
    TestCase(7, 0.100, 0.10),
    TestCase(8, 0.150, 0.10),
]

#: Subflow 1 is held at 100 ms delay and zero loss throughout Section V.
SUBFLOW1_CONFIG = PathConfig(
    bandwidth_bps=DEFAULT_BANDWIDTH_BPS, delay_s=0.100, loss_rate=0.0
)


def table1_path_configs(
    case: TestCase, bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS
) -> List[PathConfig]:
    """Both paths' configs for one Table I test case."""
    return [
        PathConfig(bandwidth_bps=bandwidth_bps, delay_s=0.100, loss_rate=0.0),
        PathConfig(
            bandwidth_bps=bandwidth_bps,
            delay_s=case.delay_s,
            loss_rate=case.loss_rate,
        ),
    ]


def surge_path_configs(
    surge_loss_rate: float,
    base_loss_rate: float = 0.01,
    surge_start_s: float = 50.0,
    surge_end_s: float = 200.0,
    bandwidth_bps: float = DEFAULT_BANDWIDTH_BPS,
    delay_s: float = 0.100,
) -> List[PathConfig]:
    """Fig. 4's scenario: subflow 2's loss surges and later recovers."""
    if not 0.0 <= surge_loss_rate < 1.0:
        raise ValueError("surge_loss_rate must be in [0, 1)")
    schedule = ScheduledLoss(
        [
            (0.0, base_loss_rate),
            (surge_start_s, surge_loss_rate),
            (surge_end_s, base_loss_rate),
        ]
    )
    return [
        PathConfig(
            bandwidth_bps=bandwidth_bps, delay_s=delay_s, loss_rate=base_loss_rate
        ),
        PathConfig(bandwidth_bps=bandwidth_bps, delay_s=delay_s, loss_model=schedule),
    ]
