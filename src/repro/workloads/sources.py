"""Application traffic sources.

A source answers ``pull(max_bytes)`` with how much data it can hand the
transport right now: an ``int`` (synthetic bytes — the default, nothing is
materialised), a ``bytes`` object (real payload, for end-to-end
correctness tests), or ``0``/``None`` (app-limited / finished).
"""

from __future__ import annotations

import random
from typing import Optional, Union

from repro.sim.engine import Simulator

PullResult = Union[int, bytes, None]


class BulkSource:
    """A backlogged sender: always has data, up to an optional total."""

    def __init__(self, total_bytes: Optional[int] = None):
        if total_bytes is not None and total_bytes < 0:
            raise ValueError("total_bytes must be non-negative")
        self.total_bytes = total_bytes
        self.pulled_bytes = 0

    @property
    def exhausted(self) -> bool:
        return self.total_bytes is not None and self.pulled_bytes >= self.total_bytes

    def pull(self, max_bytes: int) -> PullResult:
        if self.total_bytes is None:
            self.pulled_bytes += max_bytes
            return max_bytes
        remaining = self.total_bytes - self.pulled_bytes
        if remaining <= 0:
            return 0
        granted = min(max_bytes, remaining)
        self.pulled_bytes += granted
        return granted


class RandomPayloadSource:
    """Finite source producing real random bytes (for real-coding tests).

    Keeps a transcript of everything handed out so a test can compare the
    receiver's reassembled stream byte-for-byte.
    """

    def __init__(self, total_bytes: int, rng: Optional[random.Random] = None):
        if total_bytes < 0:
            raise ValueError("total_bytes must be non-negative")
        self._rng = rng or random.Random(0)
        self.total_bytes = total_bytes
        self.pulled_bytes = 0
        self.transcript = bytearray()

    @property
    def exhausted(self) -> bool:
        return self.pulled_bytes >= self.total_bytes

    def pull(self, max_bytes: int) -> PullResult:
        remaining = self.total_bytes - self.pulled_bytes
        if remaining <= 0:
            return None
        granted = min(max_bytes, remaining)
        payload = bytes(self._rng.getrandbits(8) for __ in range(granted))
        self.pulled_bytes += granted
        self.transcript.extend(payload)
        return payload


class ReplayableSource:
    """Wraps a source so a crash-restarted sender can re-pull committed data.

    The recovery layer's epoch model rebuilds a sender from its last
    durable checkpoint, which may sit *behind* the stream position the
    inner source has already granted. This wrapper records every grant;
    :meth:`rewind` moves the read position back to a stream offset so
    subsequent pulls re-serve the recorded region — byte-identically in
    bytes mode, count-identically in int mode — before delegating to the
    inner source for fresh data again.

    Replay offsets are only meaningful at grant boundaries; since both
    stacks pull fixed-size units mid-stream (``block_bytes`` blocks,
    ``mss`` chunks), checkpointed offsets always are. One reader at a
    time: the epoch model tears the old connection down before the new
    one pulls.
    """

    def __init__(self, inner):
        self.inner = inner
        self._record = bytearray()  # grant transcript (bytes mode only)
        self._bytes_mode: Optional[bool] = None
        self.granted_bytes = 0  # unique stream bytes granted by inner
        self._position = 0  # next stream offset served to the reader
        self.rewinds = 0
        self.replayed_bytes = 0

    @property
    def transcript(self):
        """The inner source's transcript, if it keeps one."""
        return getattr(self.inner, "transcript", None)

    @property
    def exhausted(self) -> bool:
        return self._position >= self.granted_bytes and bool(
            getattr(self.inner, "exhausted", False)
        )

    def pull(self, max_bytes: int) -> PullResult:
        if self._position < self.granted_bytes:
            take = min(max_bytes, self.granted_bytes - self._position)
            start = self._position
            self._position += take
            self.replayed_bytes += take
            if self._bytes_mode:
                return bytes(self._record[start : start + take])
            return take
        pulled = self.inner.pull(max_bytes)
        if not pulled:
            return pulled
        if isinstance(pulled, bytes):
            if self._bytes_mode is False:
                raise TypeError("inner source switched from int to bytes grants")
            self._bytes_mode = True
            self._record.extend(pulled)
            self.granted_bytes += len(pulled)
        else:
            if self._bytes_mode:
                raise TypeError("inner source switched from bytes to int grants")
            self._bytes_mode = False
            self.granted_bytes += int(pulled)
        self._position = self.granted_bytes
        return pulled

    def rewind(self, offset: int) -> None:
        """Move the read position back to stream ``offset``."""
        if not 0 <= offset <= self.granted_bytes:
            raise ValueError(
                f"rewind offset {offset} outside granted range "
                f"[0, {self.granted_bytes}]"
            )
        self._position = offset
        self.rewinds += 1


class CbrSource:
    """Constant-bit-rate source (the paper's multimedia-streaming workload).

    Credit accrues continuously at ``rate_bps``; ``pull`` grants at most
    the accrued credit. Because a CBR source can go from empty to ready
    while the transport is idle, it must be attached to the connection so
    it can re-offer transmission opportunities periodically.
    """

    def __init__(
        self,
        sim: Simulator,
        rate_bps: float,
        start_time: float = 0.0,
        wake_interval: float = 0.01,
        total_bytes: Optional[int] = None,
    ):
        if rate_bps <= 0:
            raise ValueError("rate_bps must be positive")
        self.sim = sim
        self.rate_bps = rate_bps
        self.start_time = start_time
        self.wake_interval = wake_interval
        self.total_bytes = total_bytes
        self.pulled_bytes = 0
        self._connection = None
        self._wakeup_scheduled = False

    def attach(self, connection) -> None:
        """Register the connection to wake as credit accrues."""
        self._connection = connection
        self._schedule_wakeup()

    def _schedule_wakeup(self) -> None:
        if self._wakeup_scheduled or self._connection is None:
            return
        self._wakeup_scheduled = True
        self.sim.schedule(self.wake_interval, self._wake)

    def _wake(self) -> None:
        self._wakeup_scheduled = False
        if self._connection is not None:
            self._connection.pump()
        if self.total_bytes is None or self.pulled_bytes < self.total_bytes:
            self._schedule_wakeup()

    def _accrued(self) -> int:
        elapsed = max(0.0, self.sim.now - self.start_time)
        produced = int(elapsed * self.rate_bps / 8.0)
        if self.total_bytes is not None:
            produced = min(produced, self.total_bytes)
        return produced

    @property
    def exhausted(self) -> bool:
        return self.total_bytes is not None and self.pulled_bytes >= self.total_bytes

    def pull(self, max_bytes: int) -> PullResult:
        available = self._accrued() - self.pulled_bytes
        if available <= 0:
            return 0
        granted = min(max_bytes, available)
        self.pulled_bytes += granted
        return granted

    def creation_time_of(self, offset: int) -> float:
        """When the byte at stream ``offset`` was produced by the encoder."""
        return self.start_time + (offset + 1) * 8.0 / self.rate_bps
