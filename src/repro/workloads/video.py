"""A variable-bit-rate video source.

The CBR source models the paper's "multimedia streaming" abstractly; real
codecs emit a group-of-pictures structure — large I-frames followed by
smaller P/B frames — whose burstiness stresses a transport's jitter
behaviour harder than CBR. This source synthesises that pattern
deterministically from a seed: frames arrive at the frame rate, sized by
frame type with mild pseudo-random variation, and accumulate into a pull
buffer exactly like :class:`~repro.workloads.sources.CbrSource`.
"""

from __future__ import annotations

import random
from typing import List, Optional, Union

from repro.sim.engine import Simulator

PullResult = Union[int, bytes, None]


class VbrVideoSource:
    """GOP-structured variable-bit-rate traffic.

    ``gop_pattern`` is a string of frame types, e.g. ``"IPPPPPPPPPPP"``
    (one I-frame per 12); sizes derive from the target mean bit rate and
    the I/P/B weight ratios.
    """

    FRAME_WEIGHTS = {"I": 5.0, "P": 1.0, "B": 0.6}

    def __init__(
        self,
        sim: Simulator,
        mean_rate_bps: float = 2.4e6,
        fps: float = 25.0,
        gop_pattern: str = "IPPBPPBPPBPP",
        jitter_fraction: float = 0.2,
        seed: int = 0,
        total_frames: Optional[int] = None,
    ):
        if mean_rate_bps <= 0 or fps <= 0:
            raise ValueError("mean_rate_bps and fps must be positive")
        if not gop_pattern or any(c not in "IPB" for c in gop_pattern):
            raise ValueError("gop_pattern must be a non-empty string over {I, P, B}")
        if not 0.0 <= jitter_fraction < 1.0:
            raise ValueError("jitter_fraction must be in [0, 1)")
        self.sim = sim
        self.fps = fps
        self.gop_pattern = gop_pattern
        self.jitter_fraction = jitter_fraction
        self.total_frames = total_frames
        self._rng = random.Random(seed)

        # Scale weights so the long-run average hits mean_rate_bps.
        mean_weight = sum(self.FRAME_WEIGHTS[c] for c in gop_pattern) / len(gop_pattern)
        bytes_per_frame_mean = mean_rate_bps / 8.0 / fps
        self._unit_bytes = bytes_per_frame_mean / mean_weight

        self._frames_emitted = 0
        self._buffered_bytes = 0
        self.pulled_bytes = 0
        self.frame_sizes: List[int] = []  # emitted log (for tests/analysis)
        # (cumulative bytes, emit time) per frame, for creation_time_of.
        self._emit_log: List[tuple] = []
        self._cum_bytes = 0
        self._connection = None

    # ------------------------------------------------------------------
    # Frame generation at the frame clock.
    # ------------------------------------------------------------------
    def attach(self, connection) -> None:
        self._connection = connection
        self.sim.schedule(1.0 / self.fps, self._emit_frame)

    def _frame_type(self, index: int) -> str:
        return self.gop_pattern[index % len(self.gop_pattern)]

    def _frame_size(self, index: int) -> int:
        base = self._unit_bytes * self.FRAME_WEIGHTS[self._frame_type(index)]
        if self.jitter_fraction > 0.0:
            base *= 1.0 + self._rng.uniform(-self.jitter_fraction, self.jitter_fraction)
        return max(1, int(base))

    def _emit_frame(self) -> None:
        if self.total_frames is not None and self._frames_emitted >= self.total_frames:
            return
        size = self._frame_size(self._frames_emitted)
        self._frames_emitted += 1
        self.frame_sizes.append(size)
        self._cum_bytes += size
        self._emit_log.append((self._cum_bytes, self.sim.now))
        self._buffered_bytes += size
        if self._connection is not None:
            self._connection.pump()
        if self.total_frames is None or self._frames_emitted < self.total_frames:
            self.sim.schedule(1.0 / self.fps, self._emit_frame)

    # ------------------------------------------------------------------
    # Transport pull interface.
    # ------------------------------------------------------------------
    @property
    def exhausted(self) -> bool:
        return (
            self.total_frames is not None
            and self._frames_emitted >= self.total_frames
            and self._buffered_bytes == 0
        )

    def pull(self, max_bytes: int) -> PullResult:
        if self._buffered_bytes <= 0:
            return 0
        granted = min(max_bytes, self._buffered_bytes)
        self._buffered_bytes -= granted
        self.pulled_bytes += granted
        return granted

    def creation_time_of(self, offset: int):
        """When the byte at stream ``offset`` was emitted by the codec."""
        import bisect

        index = bisect.bisect_right([cum for cum, __ in self._emit_log], offset)
        if index >= len(self._emit_log):
            return None
        return self._emit_log[index][1]

    def mean_frame_bytes(self) -> float:
        if not self.frame_sizes:
            return 0.0
        return sum(self.frame_sizes) / len(self.frame_sizes)
