"""Shared test fixtures and helpers."""

from __future__ import annotations

import pytest

from repro.net.topology import Network, PathConfig, build_two_path_network
from repro.sim.engine import Simulator
from repro.sim.rng import RngStreams
from repro.sim.trace import TraceBus


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def trace() -> TraceBus:
    return TraceBus()


@pytest.fixture
def rng() -> RngStreams:
    return RngStreams(1234)


def make_two_path(
    loss1: float = 0.0,
    loss2: float = 0.0,
    delay1: float = 0.010,
    delay2: float = 0.010,
    bandwidth: float = 8e6,
    seed: int = 7,
):
    """A small, fast two-path network for transport tests."""
    configs = [
        PathConfig(bandwidth_bps=bandwidth, delay_s=delay1, loss_rate=loss1),
        PathConfig(bandwidth_bps=bandwidth, delay_s=delay2, loss_rate=loss2),
    ]
    trace = TraceBus()
    network, paths = build_two_path_network(
        configs, rng=RngStreams(seed), trace=trace
    )
    return network, paths, trace


def make_single_path(
    loss: float = 0.0,
    delay: float = 0.010,
    bandwidth: float = 8e6,
    seed: int = 7,
):
    configs = [PathConfig(bandwidth_bps=bandwidth, delay_s=delay, loss_rate=loss)]
    trace = TraceBus()
    network, paths = build_two_path_network(
        configs, rng=RngStreams(seed), trace=trace
    )
    return network, paths[0], trace
