"""Tests for the adaptive completeness-margin controller (extension)."""

import pytest

from repro.core.blocks import BlockManager
from repro.core.config import FmtcpConfig
from repro.core.sender import FmtcpSender
from repro.experiments.runner import run_transfer
from repro.sim.engine import Simulator
from repro.workloads.scenarios import TABLE1_CASES, table1_path_configs
from repro.workloads.sources import BulkSource
from tests.test_sender_internals import FakeSubflow


def make_sender(**config_kwargs):
    config = FmtcpConfig(adaptive_margin=True, **config_kwargs)
    sim = Simulator()
    manager = BlockManager(config, BulkSource())
    sender = FmtcpSender(sim, config, manager)
    sender.attach_subflows([FakeSubflow(0)])
    return sender, config


def complete_blocks(sender, n):
    """Drive n confirmed decodes through the adaptation path."""
    for __ in range(n):
        sender.blocks.replenish()
        block = sender.blocks.pending_blocks[0]
        block.record_sent(0, 1, now=0.0)
        sender._confirm_decoded(block.block_id)


def test_margin_starts_at_configured_value():
    sender, config = make_sender()
    assert sender.margin == pytest.approx(config.completeness_margin)


def test_miss_free_window_relaxes_margin():
    sender, config = make_sender(adaptive_margin_window=10)
    start = sender.margin
    complete_blocks(sender, 10)
    assert sender.margin == pytest.approx(start - 0.5)


def test_margin_floor_respected():
    sender, config = make_sender(adaptive_margin_window=1, adaptive_margin_floor=3.0)
    complete_blocks(sender, 100)
    assert sender.margin == pytest.approx(3.0)


def test_misses_raise_margin():
    sender, config = make_sender(adaptive_margin_window=5)
    start = sender.margin
    # Manufacture a quiescent under-complete block: enough generated, no
    # in-flight, k_bar short of k.
    sender.blocks.replenish()
    victim = sender.blocks.pending_blocks[0]
    victim.symbols_generated = victim.k + 5
    victim.k_bar = victim.k - 2
    sender._observe_prediction_misses()
    assert victim.missed
    assert sender._miss_count == 1
    complete_blocks(sender, 5)
    assert sender.margin == pytest.approx(start + 1.0)


def test_miss_counted_once_per_block():
    sender, __ = make_sender()
    sender.blocks.replenish()
    victim = sender.blocks.pending_blocks[0]
    victim.symbols_generated = victim.k + 5
    victim.k_bar = victim.k - 2
    sender._observe_prediction_misses()
    sender._observe_prediction_misses()
    assert sender._miss_count == 1


def test_margin_ceiling_respected():
    sender, config = make_sender(
        adaptive_margin_window=1, adaptive_margin_ceiling=12.0
    )
    for __ in range(10):
        sender.blocks.replenish()
        victim = sender.blocks.pending_blocks[0]
        victim.symbols_generated = victim.k + 5
        victim.k_bar = victim.k - 2
        victim.missed = False
        sender._observe_prediction_misses()
        complete_blocks(sender, 1)
    assert sender.margin <= 12.0


def test_adaptive_mode_end_to_end():
    config = FmtcpConfig(adaptive_margin=True)
    result = run_transfer(
        "fmtcp",
        table1_path_configs(TABLE1_CASES[3]),
        duration_s=15.0,
        seed=1,
        fmtcp_config=config,
    )
    assert result.extras["blocks_decoded"] > 100
    # Clean-ish operation relaxes the margin below the static default.
    fixed = run_transfer(
        "fmtcp",
        table1_path_configs(TABLE1_CASES[0]),
        duration_s=15.0,
        seed=1,
        fmtcp_config=FmtcpConfig(adaptive_margin=True),
    )
    assert fixed.extras["blocks_decoded"] > 100
