"""Additional edge cases for Algorithm 1 and the estimators."""

import math

import pytest

from repro.core.allocation import (
    AllocationError,
    allocate_packet,
    allocate_packet_greedy,
    allocate_packet_reference,
)
from repro.core.blocks import PendingBlock
from repro.core.estimators import PathEstimate, eat, eat_table, edt_for_flows
from tests.test_core_allocation import (
    MARGIN,
    MSS,
    WIRE,
    allocate,
    make_blocks,
    make_estimates,
)


def test_single_flow_allocation_is_greedy_equivalent():
    """With one subflow, EAT allocation degenerates to greedy fill."""
    blocks = make_blocks(4)
    estimates = make_estimates([{}])
    eat_result = allocate(0, estimates, blocks, fn=allocate_packet)
    greedy_result = allocate(0, estimates, blocks, fn=allocate_packet_greedy)
    assert eat_result.vector == greedy_result.vector


def test_tiny_mss_one_symbol_packets():
    blocks = make_blocks(2)
    estimates = make_estimates([{}])
    result = allocate_packet(
        pending_subflow_id=0,
        estimates=estimates,
        blocks=blocks,
        loss_rate_of=lambda sf: 0.0,
        mss=WIRE,  # exactly one symbol fits
        symbol_wire_size=WIRE,
        margin=MARGIN,
    )
    assert result.total_symbols == 1
    assert result.vector[0][0] == 0


def test_partial_blocks_with_small_k():
    """Blocks with k=1 (the trailing-data case) allocate sanely."""
    blocks = make_blocks(3, k=1)
    estimates = make_estimates([{}])
    result = allocate(0, estimates, blocks)
    # Each k=1 block needs 1 + margin expected symbols.
    needed_per_block = math.ceil(1 + MARGIN)
    assert result.vector[0][1] == needed_per_block


def test_many_flows_tie_breaking_deterministic():
    blocks = make_blocks(6)
    estimates = make_estimates([{}, {}, {}, {}])  # identical flows
    a = allocate(2, estimates, blocks)
    b = allocate(2, estimates, blocks)
    assert a.vector == b.vector
    assert a.iterations == b.iterations


def test_zero_window_everywhere_still_returns_vector():
    """Even with all windows full, the pending flow eventually wins the
    virtual ordering (EATs grow by RT per virtual packet)."""
    blocks = make_blocks(8)
    estimates = make_estimates(
        [{"window_space": 0, "tau": 0.05}, {"window_space": 0, "tau": 0.01}]
    )
    result = allocate(1, estimates, blocks)
    # Must terminate and produce something or nothing — never hang/raise.
    assert result.iterations >= 1


def test_reference_and_fast_agree_on_pathological_spread():
    blocks = make_blocks(5, k=8)
    for index, block in enumerate(blocks):
        block.k_bar = index * 3  # staircase of partial completion
    estimates = make_estimates(
        [{"rtt": 0.01}, {"rtt": 1.0, "loss": 0.4, "window_space": 1}]
    )
    fast = allocate(1, estimates, blocks, fn=allocate_packet)
    reference = allocate(1, estimates, blocks, fn=allocate_packet_reference)
    assert fast.vector == reference.vector


# ----------------------------------------------------------------------
# Estimator corner cases.
# ----------------------------------------------------------------------
def test_eat_table_empty_rejected():
    with pytest.raises(ValueError):
        eat_table([])


def test_edt_with_equal_sedt_ties_on_id():
    flows = [
        PathEstimate(subflow_id=1, rtt=0.2, rto=0.4, loss=0.0, window_space=1, tau=0.0),
        PathEstimate(subflow_id=0, rtt=0.2, rto=0.4, loss=0.0, window_space=1, tau=0.0),
    ]
    edts = edt_for_flows(flows)
    # Tie → lower id is "best"; both equal numerically anyway.
    assert edts[0] == pytest.approx(edts[1])


def test_eat_zero_rtt_flow():
    flow = PathEstimate(
        subflow_id=0, rtt=0.0, rto=0.2, loss=0.0, window_space=0, tau=0.0
    )
    # Degenerate RTT=0: EAT = edt + RT (=0) - tau, clamped at >= 0.
    assert eat(flow, edt=0.0) == 0.0
