"""Tests for the Section IV-C closed forms (Eqs. 16-17, Theorems 2-3)."""

import pytest

from repro.analysis.allocation import (
    fmtcp_beats_mptcp_condition,
    lemma1_min_r2,
    mptcp_delivery_ratio,
    theorem3_ratio_bound,
)
from repro.core.estimators import sedt


def test_lemma1_formula():
    r1, p1, p2 = 0.1, 0.05, 0.2
    factor = ((1 + p1) * (1 - p2)) / ((1 - p1) * (1 + p2)) + 2 / (1 + p2)
    assert lemma1_min_r2(r1, p1, p2) == pytest.approx(factor * r1)


def test_lemma1_lossless_paths_threshold_is_three_r1():
    # p1 = p2 = 0: factor = 1 + 2 = 3.
    assert lemma1_min_r2(1.0, 0.0, 0.0) == pytest.approx(3.0)


def test_lemma1_threshold_grows_with_p1():
    assert lemma1_min_r2(1.0, 0.2, 0.1) > lemma1_min_r2(1.0, 0.0, 0.1)


def test_theorem3_formula():
    p1, p2, m = 0.01, 0.15, 3.0
    expected = p2 + 2 * (1 - p1) / (1 + p1) + (1 - p2) * m
    assert theorem3_ratio_bound(p1, p2, m) == pytest.approx(expected)


def test_theorem3_bound_beats_mptcp_for_large_m():
    p1, p2 = 0.01, 0.15
    threshold = fmtcp_beats_mptcp_condition(p1, p2)
    m_large = threshold * 1.5
    assert theorem3_ratio_bound(p1, p2, m_large) < mptcp_delivery_ratio(m_large)


def test_theorem3_bound_worse_for_small_m():
    p1, p2 = 0.01, 0.15
    threshold = fmtcp_beats_mptcp_condition(p1, p2)
    m_small = threshold * 0.5
    assert theorem3_ratio_bound(p1, p2, m_small) >= mptcp_delivery_ratio(m_small)


def test_threshold_formula():
    p1, p2 = 0.05, 0.2
    expected = 1 + 2 * (1 - p1) / (p2 * (1 + p1))
    assert fmtcp_beats_mptcp_condition(p1, p2) == pytest.approx(expected)


def test_threshold_infinite_when_p2_zero():
    assert fmtcp_beats_mptcp_condition(0.1, 0.0) == float("inf")


def test_threshold_decreases_with_p2():
    # The lossier the inferior path, the sooner FMTCP wins.
    assert fmtcp_beats_mptcp_condition(0.01, 0.3) < fmtcp_beats_mptcp_condition(
        0.01, 0.1
    )


def test_theorem2_sedt_ordering_numerical():
    """SEDT preserves the EDT quality order across a parameter sweep."""
    paths = [
        (0.05, 0.0, 0.2),
        (0.1, 0.02, 0.25),
        (0.2, 0.05, 0.5),
        (0.2, 0.15, 0.5),
        (0.4, 0.15, 1.0),
    ]
    sedts = [sedt(rtt, loss, rto) for rtt, loss, rto in paths]
    assert sedts == sorted(sedts)


def test_validation():
    with pytest.raises(ValueError):
        lemma1_min_r2(0.0, 0.1, 0.1)
    with pytest.raises(ValueError):
        theorem3_ratio_bound(0.1, 1.0, 2.0)
    with pytest.raises(ValueError):
        theorem3_ratio_bound(0.1, 0.1, 0.0)
    with pytest.raises(ValueError):
        mptcp_delivery_ratio(-1.0)
