"""Tests for the Section III-B closed forms (Eqs. 3-7)."""

import pytest

from repro.analysis.coding import (
    chernoff_no_retransmission_bound,
    expected_actual_delivered,
    expected_packets_delivered,
    fixed_rate_packets_to_send,
    fountain_expected_symbols_bound,
    fountain_expected_symbols_exact,
    simulate_fixed_rate_delivery,
    simulate_fountain_delivery,
)


# ----------------------------------------------------------------------
# Eq. (3)-(5).
# ----------------------------------------------------------------------
def test_expected_packets_delivered_eq3():
    assert expected_packets_delivered(100, 0.0) == pytest.approx(100.0)
    assert expected_packets_delivered(100, 0.5) == pytest.approx(200.0)


def test_fixed_rate_budget_eq4():
    assert fixed_rate_packets_to_send(90, 0.1) == pytest.approx(100.0)


def test_expected_actual_delivered_eq5():
    # a = A/(1-p1); E = (1-p2) a = (1-p2)/(1-p1) A
    assert expected_actual_delivered(100, 0.1, 0.2) == pytest.approx(
        (0.8 / 0.9) * 100
    )


def test_underestimated_loss_delivers_fewer_than_needed():
    assert expected_actual_delivered(100, 0.05, 0.20) < 100


# ----------------------------------------------------------------------
# Eq. (6): Chernoff bound.
# ----------------------------------------------------------------------
def test_chernoff_formula_value():
    import math

    p1, p2, block = 0.05, 0.15, 100
    expected = math.exp(-((p2 - p1) ** 2) * block / (3 * (1 - p1) * (1 - p2)))
    assert chernoff_no_retransmission_bound(block, p1, p2) == pytest.approx(expected)


def test_chernoff_trivial_when_loss_not_underestimated():
    assert chernoff_no_retransmission_bound(100, 0.2, 0.1) == 1.0
    assert chernoff_no_retransmission_bound(100, 0.2, 0.2) == 1.0


def test_chernoff_decays_with_block_size():
    small = chernoff_no_retransmission_bound(50, 0.05, 0.15)
    large = chernoff_no_retransmission_bound(500, 0.05, 0.15)
    assert large < small


def test_chernoff_upper_bounds_empirical_probability():
    """The bound must hold: empirical P(no retx) <= Chernoff bound."""
    for p1, p2, block in ((0.05, 0.15, 100), (0.1, 0.2, 200), (0.0, 0.1, 50)):
        bound = chernoff_no_retransmission_bound(block, p1, p2)
        empirical = simulate_fixed_rate_delivery(block, p1, p2, trials=1500)
        assert empirical <= bound + 0.02


def test_fixed_rate_succeeds_when_loss_overestimated():
    # Budgeting for 20% loss on a 5% path: success nearly certain.
    empirical = simulate_fixed_rate_delivery(100, 0.20, 0.05, trials=500)
    assert empirical > 0.99


# ----------------------------------------------------------------------
# Eq. (7): fountain expected symbols.
# ----------------------------------------------------------------------
def test_fountain_bound_formula():
    assert fountain_expected_symbols_bound(256, 0.2) == pytest.approx(260 / 0.8)


def test_fountain_exact_below_bound():
    for k in (8, 64, 256):
        for p in (0.0, 0.1, 0.3):
            assert fountain_expected_symbols_exact(k, p) <= (
                fountain_expected_symbols_bound(k, p)
            )


def test_fountain_empirical_matches_exact():
    for p in (0.0, 0.2):
        exact = fountain_expected_symbols_exact(64, p)
        empirical = simulate_fountain_delivery(64, p, trials=400)
        assert empirical == pytest.approx(exact, rel=0.05)


def test_fountain_overhead_constant_in_block_size():
    """Eq. (7)'s point: overhead beyond k/(1-p) stays O(1) as k grows."""
    for k in (16, 64, 256):
        extra = fountain_expected_symbols_exact(k, 0.0) - k
        assert extra < 4.0  # the paper bounds it by 4


# ----------------------------------------------------------------------
# Validation.
# ----------------------------------------------------------------------
def test_loss_rate_validation():
    with pytest.raises(ValueError):
        expected_packets_delivered(10, 1.0)
    with pytest.raises(ValueError):
        fountain_expected_symbols_bound(10, -0.1)
    with pytest.raises(ValueError):
        expected_packets_delivered(0, 0.1)
