"""Tests for the PFTK throughput model and the sensitivity sweeps."""

import pytest

from repro.analysis.throughput import (
    pftk_throughput_pps,
    predicted_aggregate_goodput_bps,
    subflow_goodput_bps,
)
from repro.experiments.sensitivity import (
    sweep_bandwidth,
    sweep_delay_asymmetry,
    sweep_loss,
)
from repro.net.topology import PathConfig


# ----------------------------------------------------------------------
# PFTK model.
# ----------------------------------------------------------------------
def test_pftk_lossless_is_unbounded():
    assert pftk_throughput_pps(0.1, 0.2, 0.0) == float("inf")


def test_pftk_decreases_with_loss():
    rates = [pftk_throughput_pps(0.2, 0.4, loss) for loss in (0.01, 0.05, 0.1, 0.3)]
    assert rates == sorted(rates, reverse=True)


def test_pftk_decreases_with_rtt():
    assert pftk_throughput_pps(0.1, 0.4, 0.05) > pftk_throughput_pps(0.4, 0.8, 0.05)


def test_pftk_inverse_sqrt_regime():
    """At small p (fast-retransmit regime) T ~ (1/rtt)·sqrt(3/2p)."""
    rtt, p = 0.2, 0.005
    approx = (1.0 / rtt) * (1.0 / (2 * p / 3) ** 0.5)
    full = pftk_throughput_pps(rtt, 0.4, p)
    assert full == pytest.approx(approx, rel=0.30)  # timeout term is small


def test_pftk_validation():
    with pytest.raises(ValueError):
        pftk_throughput_pps(0.0, 0.2, 0.1)
    with pytest.raises(ValueError):
        pftk_throughput_pps(0.1, 0.2, 1.0)


def test_subflow_goodput_capped_by_bandwidth():
    clean = PathConfig(bandwidth_bps=4e6, delay_s=0.1, loss_rate=0.0)
    assert subflow_goodput_bps(clean) == pytest.approx(4e6)
    lossy = PathConfig(bandwidth_bps=4e6, delay_s=0.1, loss_rate=0.15)
    assert subflow_goodput_bps(lossy) < 4e6


def test_aggregate_prediction_shapes():
    configs = [
        PathConfig(bandwidth_bps=4e6, delay_s=0.1, loss_rate=0.0),
        PathConfig(bandwidth_bps=4e6, delay_s=0.1, loss_rate=0.15),
    ]
    fmtcp = predicted_aggregate_goodput_bps(configs, "fmtcp")
    mptcp = predicted_aggregate_goodput_bps(configs, "mptcp")
    # The closed form charges FMTCP its redundancy and MPTCP nothing
    # (it is an upper bound ignoring HoL blocking).
    assert fmtcp < mptcp
    assert fmtcp > 4e6 / 1.1  # dominated by the clean path


def test_aggregate_prediction_validation():
    with pytest.raises(ValueError):
        predicted_aggregate_goodput_bps([PathConfig()], "sctp")


# ----------------------------------------------------------------------
# Sensitivity sweeps (smoke scale).
# ----------------------------------------------------------------------
def test_sweep_loss_advantage_monotone_trend():
    points = sweep_loss(loss_rates=(0.0, 0.15), duration_s=6.0)
    assert len(points) == 2
    assert points[1].advantage > points[0].advantage


def test_sweep_bandwidth_runs():
    points = sweep_bandwidth(bandwidths_bps=(2e6, 4e6), duration_s=6.0)
    assert [point.label for point in points] == ["bw=2Mbps", "bw=4Mbps"]
    assert all(point.results["fmtcp"].summary["total_mbytes"] > 0 for point in points)


def test_sweep_delay_asymmetry_runs():
    points = sweep_delay_asymmetry(delays_s=(0.05, 0.2), duration_s=6.0)
    assert len(points) == 2
    for point in points:
        assert point.predicted_bps["fmtcp"] > 0


def test_sweep_point_description_mentions_parameters():
    points = sweep_loss(loss_rates=(0.1,), duration_s=4.0)
    assert "10%" in points[0].configs_description
