"""Chaos soak: both protocols through dozens of seeded fault sequences.

Every run must satisfy the four robustness invariants checked by
:func:`repro.faults.run_chaos`:

1. exactly-once, in-order delivery to the application sink;
2. no wedged RTO timers (data in flight always has a timer pending);
3. the event queue drains once the transfer completes and closes;
4. goodput recovers after the last fault heals (the transfer finishes).

The random scenarios are seeded and fully deterministic, so a failure
here reproduces exactly from the seed named in the assertion message.

Set ``REPRO_FLIGHT_DIR`` to a directory to get a flight-recorder dump
(last trace records before the violation) plus a sim-profiler report for
every failing run — CI does this and uploads them as artifacts.
"""

import os

import pytest

from repro.faults import SCENARIOS, FaultEvent, FaultScenario, run_chaos

CHAOS_SEEDS = range(1, 31)
FLIGHT_DIR = os.environ.get("REPRO_FLIGHT_DIR") or None


@pytest.mark.parametrize("protocol", ["fmtcp", "mptcp"])
def test_chaos_soak_randomized_scenarios(protocol):
    """30 distinct seeded fault sequences per protocol, zero violations."""
    failures = []
    for seed in CHAOS_SEEDS:
        scenario = FaultScenario.random(seed)
        report = run_chaos(protocol, scenario, seed=seed, flight_dump_dir=FLIGHT_DIR)
        if not report.ok:
            detail = f"seed {seed}: {report.violations}"
            if report.flight_dump_path:
                detail += f" [flight dump: {report.flight_dump_path}]"
            failures.append(detail)
    assert not failures, f"{protocol} chaos violations:\n" + "\n".join(failures)


@pytest.mark.parametrize("protocol", ["fmtcp", "mptcp"])
@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_chaos_preset_scenarios(protocol, name):
    report = run_chaos(
        protocol, FaultScenario.named(name), flight_dump_dir=FLIGHT_DIR
    )
    assert report.ok, f"{name}/{protocol}: {report.violations}"
    assert report.completed
    # The fault window bit: the transfer was still running when the
    # faults hit (otherwise the scenario exercised nothing).
    assert report.bytes_at_heal < report.expected_bytes or name in (
        "queue_saturation",
        "reorder_storm",
        "delay_spike",
    )


def test_chaos_report_shape():
    report = run_chaos("fmtcp", FaultScenario.named("path_death"))
    assert report.protocol == "fmtcp"
    assert report.scenario_name == "path_death"
    assert report.expected_bytes > 0
    assert report.delivered_bytes == report.expected_bytes
    assert report.completion_time_s is not None
    assert report.ok and not report.violations


def test_chaos_flags_unhealed_scenario_as_incomplete():
    """A scenario that never heals the only paths must show violations —
    the harness detects the stall rather than masking it."""
    scenario = FaultScenario(
        "both_dead",
        [FaultEvent(2.0, "down", 0), FaultEvent(2.0, "down", 1)],
    )
    report = run_chaos("fmtcp", scenario, duration_s=20.0)
    assert not report.completed
    assert any("incomplete" in violation for violation in report.violations)
