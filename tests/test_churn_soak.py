"""Churn soak: both protocols through every mobility preset, many seeds.

Every run must satisfy the churn invariants checked by
:func:`repro.faults.run_churn`:

1. exactly-once, in-order delivery across every subflow removal;
2. no wedged RTO timers on the surviving subflows;
3. completion on the surviving paths (a permanent ``path_down`` degrades
   capacity, never correctness);
4. goodput back within a bounded window of the last ``path_up`` /
   handover settle (unless the transfer already finished);
5. the event queue drains after completion and close (a removed subflow
   must not leak timers).

Seeded and fully deterministic: a failure reproduces exactly from the
seed named in the assertion message. Set ``REPRO_FLIGHT_DIR`` for a
flight-recorder dump + profiler report of every failing run (CI uploads
them as artifacts).
"""

import os

import pytest

from repro.faults import MOBILITY_SCENARIOS, FaultScenario, run_chaos, run_churn

CHURN_SEEDS = range(1, 31)
FLIGHT_DIR = os.environ.get("REPRO_FLIGHT_DIR") or None


@pytest.mark.parametrize("protocol", ["fmtcp", "mptcp"])
@pytest.mark.parametrize("name", sorted(MOBILITY_SCENARIOS))
def test_churn_soak_mobility_presets(protocol, name):
    """30 seeds per preset per protocol, zero violations."""
    failures = []
    for seed in CHURN_SEEDS:
        report = run_churn(
            protocol,
            FaultScenario.named(name),
            seed=seed,
            flight_dump_dir=FLIGHT_DIR,
        )
        if not report.ok:
            detail = f"seed {seed}: {report.violations}"
            if report.flight_dump_path:
                detail += f" [flight dump: {report.flight_dump_path}]"
            failures.append(detail)
    assert not failures, f"{name}/{protocol} churn violations:\n" + "\n".join(failures)


def test_churn_report_shape():
    report = run_churn("mptcp", FaultScenario.named("wifi_to_lte_handover"))
    assert report.protocol == "mptcp"
    assert report.scenario_name == "wifi_to_lte_handover"
    assert report.completed and report.completion_time_s is not None
    assert report.handovers == 1
    assert report.path_downs == 1 and report.path_ups == 1
    assert report.pre_churn_mbps > 0  # handover implies a re-add check
    assert report.ok and not report.violations


def test_permanent_removal_counts_no_readds():
    report = run_churn("fmtcp", FaultScenario.named("single_path_degradation"))
    assert report.ok
    assert report.path_downs == 1
    assert report.path_ups == 0 and report.handovers == 0


def test_harness_routing_is_enforced():
    """Churn scenarios cannot run through the link-fault harness and
    vice versa — silently using the wrong invariants would mask bugs."""
    churn = FaultScenario.named("flaky_path_churn")
    with pytest.raises(ValueError):
        run_chaos("fmtcp", churn)
    with pytest.raises(ValueError):
        run_churn("fmtcp", FaultScenario.named("path_death"))
