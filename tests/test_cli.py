"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_knows_all_commands():
    parser = build_parser()
    for command in (
        "table1", "fig3", "fig4", "fig5", "fig6", "fig7", "analysis",
        "fairness", "replicate", "heatmap", "sensitivity", "faults",
        "policy", "all",
    ):
        args = parser.parse_args(
            [command] if command != "fig4" else [command, "--surge", "0.2"]
        )
        assert callable(args.fn)


def test_parser_global_options():
    args = build_parser().parse_args(["--duration", "5", "--seed", "9", "fig3"])
    assert args.duration == 5.0
    assert args.seed == 9


def test_table1_output(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out
    assert out.count("\n") >= 9  # header + 8 cases


def test_fig3_output(capsys):
    assert main(["--duration", "3", "fig3"]) == 0
    out = capsys.readouterr().out
    assert "Figure 3" in out
    assert "FMTCP" in out and "MPTCP" in out


def test_fig5_and_fig6_output(capsys):
    assert main(["--duration", "3", "fig5"]) == 0
    assert main(["--duration", "3", "fig6"]) == 0
    out = capsys.readouterr().out
    assert "delivery delay" in out
    assert "jitter" in out


def test_fig7_output(capsys):
    assert main(["--duration", "3", "fig7"]) == 0
    out = capsys.readouterr().out
    assert "Figure 7" in out
    assert "max/mean" in out


def test_analysis_output(capsys):
    assert main(["analysis"]) == 0
    out = capsys.readouterr().out
    assert "Chernoff" in out
    assert "fountain" in out


def test_unknown_command_exits_nonzero():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["fig99"])


def test_fairness_command(capsys):
    assert main(["--duration", "4", "fairness", "--competitors", "2"]) == 0
    out = capsys.readouterr().out
    assert "Jain" in out
    assert "fmtcp" in out and "tcp" in out


def test_replicate_command(capsys):
    assert main(["--duration", "3", "replicate", "--case", "4", "--seeds", "2"]) == 0
    out = capsys.readouterr().out
    assert "±" in out
    assert "n=2" in out


def test_fig3_csv_export(tmp_path, capsys):
    target = tmp_path / "fig3.csv"
    assert main(["--duration", "3", "--csv", str(target), "fig3"]) == 0
    text = target.read_text()
    assert text.startswith("case,")
    assert len(text.strip().splitlines()) == 9  # header + 8 cases


def test_heatmap_command(capsys):
    assert main(["--duration", "3", "heatmap"]) == 0
    out = capsys.readouterr().out
    assert "loss" in out and "KB" in out


def test_sensitivity_command(capsys):
    assert main(["--duration", "3", "sensitivity"]) == 0
    out = capsys.readouterr().out
    assert "loss sweep" in out
    assert "ratio" in out


def test_fig4_plot_and_csv(tmp_path, capsys):
    target = tmp_path / "fig4.csv"
    assert main(
        ["--duration", "20", "--csv", str(target), "fig4", "--surge", "0.3"]
    ) == 0
    out = capsys.readouterr().out
    assert "┤" in out  # the ASCII series plot was rendered
    assert "series,time_s,value" in target.read_text()


def test_faults_list_command(capsys):
    assert main(["faults", "--scenario", "list"]) == 0
    out = capsys.readouterr().out
    assert "link_flap" in out and "path_death" in out
    assert "random:SEED" in out
    # Mobility (subflow churn) presets are listed alongside link faults.
    assert "Mobility presets" in out
    assert "wifi_to_lte_handover" in out and "flaky_path_churn" in out
    # And the corruption (data-integrity) registry gets its own group.
    assert "Corruption presets" in out
    assert "bit_rot" in out and "truncation_storm" in out


def test_faults_chaos_command(capsys):
    assert main(["faults", "--scenario", "path_death", "--protocol", "fmtcp"]) == 0
    out = capsys.readouterr().out
    assert "Scenario path_death" in out
    assert "fmtcp" in out
    assert "OK" in out
    assert "mptcp" not in out  # --protocol fmtcp runs one stack only


def test_faults_random_scenario_and_bench(capsys):
    assert main(
        ["--duration", "25", "faults", "--scenario", "random:3",
         "--protocol", "mptcp", "--bench"]
    ) == 0
    out = capsys.readouterr().out
    assert "Scenario random:3" in out
    assert "retain" in out and "recov(s)" in out


def test_faults_unknown_scenario_exits_2_with_preset_list(capsys):
    assert main(["faults", "--scenario", "nonsense"]) == 2
    captured = capsys.readouterr()
    assert "unknown scenario 'nonsense'" in captured.err
    # The user gets the full menu instead of a traceback.
    assert "path_death" in captured.out
    assert "wifi_to_lte_handover" in captured.out


def test_faults_churn_scenario_command(capsys):
    assert main(
        ["faults", "--scenario", "single_path_degradation", "--protocol", "mptcp"]
    ) == 0
    out = capsys.readouterr().out
    assert "Scenario single_path_degradation" in out
    assert "OK" in out
    assert "downs" in out  # churn reports show lifecycle counters


def test_faults_corruption_scenario_command(capsys):
    assert main(
        ["faults", "--scenario", "bit_rot", "--protocol", "fmtcp"]
    ) == 0
    out = capsys.readouterr().out
    assert "Scenario bit_rot" in out
    assert "OK" in out
    # Corruption reports show integrity-defense counters.
    assert "corrupted" in out and "discarded" in out and "quarantined" in out


def test_faults_unknown_scenario_menu_includes_corruption(capsys):
    assert main(["faults", "--scenario", "nonsense"]) == 2
    captured = capsys.readouterr()
    assert "bit_rot" in captured.out and "corruption_burst" in captured.out


def test_faults_list_includes_trace_presets(capsys):
    assert main(["faults", "--scenario", "list"]) == 0
    out = capsys.readouterr().out
    assert "Trace presets" in out
    assert "gprs_bursty" in out and "leo_handover" in out
    assert "trace:FILE.csv" in out


def test_faults_trace_scenario_command(capsys):
    assert main(
        ["faults", "--scenario", "dc_incast", "--protocol", "fmtcp"]
    ) == 0
    out = capsys.readouterr().out
    assert "Scenario dc_incast" in out
    assert "OK" in out
    # Trace reports show replay + flow-control counters.
    assert "trace ticks" in out and "peak occupancy" in out


def test_faults_trace_file_scenario(tmp_path, capsys):
    from repro.traces import gprs_trace

    path = tmp_path / "drive.csv"
    path.write_text(gprs_trace(seed=3).to_csv())
    assert main(["faults", "--scenario", f"trace:{path}", "--protocol",
                 "fmtcp"]) == 0
    out = capsys.readouterr().out
    assert "OK" in out and "trace ticks" in out


def test_faults_malformed_trace_csv_exits_2_with_menu(tmp_path, capsys):
    path = tmp_path / "broken.csv"
    path.write_text("time_s,bandwidth_bps\n0.0,100\n")
    assert main(["faults", "--scenario", f"trace:{path}"]) == 2
    captured = capsys.readouterr()
    assert "expected header" in captured.err
    assert "gprs_bursty" in captured.out  # menu convention


def test_faults_unreadable_trace_csv_exits_2(tmp_path, capsys):
    assert main(["faults", "--scenario", f"trace:{tmp_path / 'nope.csv'}"]) == 2
    captured = capsys.readouterr()
    assert "cannot read trace file" in captured.err
    assert "Trace presets" in captured.out


def test_policy_list_command(capsys):
    assert main(["policy", "list"]) == 0
    out = capsys.readouterr().out
    for name in ("paper-eat", "roundrobin", "weighted-rtt", "egreedy-redundancy"):
        assert name in out


def test_policy_bare_prints_help(capsys):
    assert main(["policy"]) == 0
    out = capsys.readouterr().out
    assert "rollout" in out and "compare" in out and "list" in out


def test_policy_unknown_name_exits_2_with_menu(capsys):
    for command in ("rollout", "compare"):
        assert main(["policy", command, "--policy", "nonsense"]) == 2
        captured = capsys.readouterr()
        assert "unknown policy 'nonsense'" in captured.err
        # The user gets the policy menu instead of a traceback.
        assert "paper-eat" in captured.out
        assert "egreedy-redundancy" in captured.out


def test_policy_rollout_command(tmp_path, capsys):
    out_file = tmp_path / "traj.jsonl"
    assert main(
        ["--duration", "2", "policy", "rollout", "--policy", "paper-eat",
         "--seeds", "1", "--out", str(out_file), "--workers", "1"]
    ) == 0
    out = capsys.readouterr().out
    assert "paper-eat" in out and "good(MB)" in out
    lines = out_file.read_text().splitlines()
    assert len(lines) == 8  # 2 s / 0.25 s epochs
    import json as _json

    record = _json.loads(lines[0])
    assert record["policy"] == "paper-eat" and record["obs_version"] >= 1


def test_policy_compare_command(capsys):
    assert main(
        ["--duration", "2", "policy", "compare", "--policy", "paper-eat",
         "--policy", "roundrobin", "--seeds", "2", "--workers", "1"]
    ) == 0
    out = capsys.readouterr().out
    assert "Table I case 4" in out
    assert "paper-eat" in out and "roundrobin" in out
