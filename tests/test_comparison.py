"""Tests for the paired-comparison methodology helpers."""

import pytest

from repro.experiments.comparison import (
    PairedComparison,
    binomial_tail,
    compare_protocols,
)
from repro.workloads.scenarios import TABLE1_CASES, table1_path_configs


# ----------------------------------------------------------------------
# Sign-test machinery.
# ----------------------------------------------------------------------
def test_binomial_tail_exact_values():
    assert binomial_tail(5, 0) == 1.0
    assert binomial_tail(5, 6) == 0.0
    assert binomial_tail(5, 5) == pytest.approx(1 / 32)
    assert binomial_tail(5, 4) == pytest.approx(6 / 32)
    assert binomial_tail(10, 10) == pytest.approx(2.0**-10)


def test_paired_comparison_counts_wins():
    comparison = PairedComparison(
        protocol_a="fmtcp",
        protocol_b="mptcp",
        metric="goodput_mbytes_per_s",
        higher_is_better=True,
        values_a=[1.0, 2.0, 3.0, 4.0],
        values_b=[0.5, 2.5, 2.0, 3.0],
        seeds=[1, 2, 3, 4],
    )
    assert comparison.wins == 3
    assert comparison.mean_delta == pytest.approx(0.5)
    assert comparison.p_value == pytest.approx(binomial_tail(4, 3))


def test_lower_is_better_metrics():
    comparison = PairedComparison(
        protocol_a="fmtcp",
        protocol_b="mptcp",
        metric="mean_block_delay_ms",
        higher_is_better=False,
        values_a=[100.0, 120.0],
        values_b=[200.0, 110.0],
        seeds=[1, 2],
    )
    assert comparison.wins == 1


def test_ties_are_excluded_from_the_test():
    comparison = PairedComparison(
        protocol_a="a", protocol_b="b", metric="m", higher_is_better=True,
        values_a=[1.0, 1.0, 2.0], values_b=[1.0, 1.0, 1.0], seeds=[1, 2, 3],
    )
    assert comparison.p_value == pytest.approx(0.5)  # one decisive win of one


def test_all_ties_is_p_one():
    comparison = PairedComparison(
        protocol_a="a", protocol_b="b", metric="m", higher_is_better=True,
        values_a=[1.0], values_b=[1.0], seeds=[1],
    )
    assert comparison.p_value == 1.0
    assert "no significant difference" in comparison.verdict()


# ----------------------------------------------------------------------
# End-to-end paired runs.
# ----------------------------------------------------------------------
def test_fmtcp_beats_mptcp_significantly_on_case4():
    comparison = compare_protocols(
        "fmtcp",
        "mptcp",
        lambda: table1_path_configs(TABLE1_CASES[3]),
        duration_s=8.0,
        seeds=range(1, 7),
    )
    assert comparison.wins == 6
    assert comparison.p_value == pytest.approx(2.0**-6)
    assert "beats" in comparison.verdict()


def test_compare_requires_seeds():
    with pytest.raises(ValueError):
        compare_protocols(
            "fmtcp", "mptcp", lambda: table1_path_configs(TABLE1_CASES[0]),
            duration_s=1.0, seeds=(),
        )
