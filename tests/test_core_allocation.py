"""Unit and property tests for Algorithm 1 (EAT data allocation)."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.allocation import (
    allocate_packet,
    allocate_packet_greedy,
    allocate_packet_reference,
)
from repro.core.blocks import PendingBlock
from repro.core.estimators import PathEstimate

MARGIN = math.log2(1000)  # delta_hat = 1e-3
WIRE = 34
MSS = 1400


def make_blocks(count, k=64, k_bar=0):
    blocks = []
    for block_id in range(count):
        block = PendingBlock(block_id=block_id, k=k, data_bytes=k * 32)
        block.k_bar = k_bar
        blocks.append(block)
    return blocks


def make_estimates(spec):
    """spec: list of dicts with rtt/loss/window_space/tau overrides."""
    estimates = []
    for subflow_id, overrides in enumerate(spec):
        params = {
            "rtt": 0.2,
            "rto": 0.4,
            "loss": 0.0,
            "window_space": 4,
            "tau": 0.0,
        }
        params.update(overrides)
        estimates.append(PathEstimate(subflow_id=subflow_id, **params))
    return estimates


def loss_of(estimates):
    table = {estimate.subflow_id: estimate.loss for estimate in estimates}
    return lambda subflow_id: table[subflow_id]


def allocate(pending, estimates, blocks, fn=allocate_packet):
    return fn(
        pending_subflow_id=pending,
        estimates=estimates,
        blocks=blocks,
        loss_rate_of=loss_of(estimates),
        mss=MSS,
        symbol_wire_size=WIRE,
        margin=MARGIN,
    )


# ----------------------------------------------------------------------
# Basic behaviour.
# ----------------------------------------------------------------------
def test_fills_packet_up_to_mss():
    blocks = make_blocks(4)
    estimates = make_estimates([{}, {}])
    result = allocate(0, estimates, blocks)
    assert result.total_symbols == MSS // WIRE
    assert sum(size for __, size in result.vector) <= MSS // WIRE


def test_rule_r2_fills_blocks_in_order():
    blocks = make_blocks(4)
    estimates = make_estimates([{}])
    result = allocate(0, estimates, blocks)
    assert result.vector[0][0] == 0  # first pending block first


def test_rule_r1_skips_delta_complete_blocks():
    blocks = make_blocks(3)
    blocks[0].k_bar = blocks[0].k + int(MARGIN) + 1  # already complete
    estimates = make_estimates([{}])
    result = allocate(0, estimates, blocks)
    assert all(block_id != 0 for block_id, __ in result.vector)
    assert result.vector[0][0] == 1


def test_no_demand_returns_empty():
    blocks = make_blocks(2)
    for block in blocks:
        block.k_bar = block.k + int(MARGIN) + 1
    estimates = make_estimates([{}, {}])
    result = allocate(0, estimates, blocks)
    assert result.is_empty()


def test_empty_block_list_returns_empty():
    estimates = make_estimates([{}])
    result = allocate(0, estimates, [])
    assert result.is_empty()


def test_partial_demand_smaller_packet():
    """A block needing fewer symbols than a packet yields a short packet
    only if no later block has demand."""
    blocks = make_blocks(1, k=4)
    blocks[0].k_bar = 4 + int(MARGIN) - 2  # needs ~3 more expected symbols
    estimates = make_estimates([{}])
    result = allocate(0, estimates, blocks)
    assert 0 < result.total_symbols < MSS // WIRE


def test_in_flight_symbols_reduce_demand():
    blocks = make_blocks(1, k=64)
    estimates = make_estimates([{"loss": 0.0}])
    blocks[0].record_sent(0, 60, now=0.0)  # 60 expected arrivals in flight
    result = allocate(0, estimates, blocks)
    needed = 64 + MARGIN - 60
    assert result.total_symbols == math.ceil(needed)


def test_lossy_inflight_counts_fractionally():
    blocks = make_blocks(1, k=64)
    estimates = make_estimates([{"loss": 0.5}])
    blocks[0].record_sent(0, 60, now=0.0)  # only 30 expected to arrive
    result = allocate(0, estimates, blocks)
    # Demand ≈ 64 + margin - 30, each new symbol worth 0.5.
    expected = math.ceil((64 + MARGIN - 30) / 0.5)
    assert result.total_symbols == min(expected, MSS // WIRE)


# ----------------------------------------------------------------------
# EAT-driven virtual allocation.
# ----------------------------------------------------------------------
def test_urgent_block_goes_to_fast_flow():
    """With one urgent block, the slow pending flow gets nothing: the fast
    flow virtually claims the first block's demand (the Section IV-B
    example: don't put the first pending block on the high-delay path)."""
    blocks = make_blocks(1)
    estimates = make_estimates(
        [
            {"rtt": 0.05, "window_space": 100},  # fast, lots of room
            {"rtt": 1.0, "window_space": 4},  # slow pending flow
        ]
    )
    result = allocate(1, estimates, blocks)
    assert result.is_empty()
    assert result.virtual_packets.get(0, 0) > 0


def test_slow_flow_gets_later_blocks():
    """With plenty of blocks, the slow flow is assigned symbols for blocks
    beyond those the fast flow will handle first."""
    blocks = make_blocks(12)
    estimates = make_estimates(
        [
            {"rtt": 0.05, "window_space": 2},
            {"rtt": 0.5, "window_space": 4},
        ]
    )
    result = allocate(1, estimates, blocks)
    assert not result.is_empty()
    first_block_allocated = result.vector[0][0]
    assert first_block_allocated >= 1  # fast flow virtually took block 0


def test_pending_flow_is_fast_flow_gets_first_block():
    blocks = make_blocks(8)
    estimates = make_estimates(
        [
            {"rtt": 0.05, "window_space": 2},
            {"rtt": 0.5, "window_space": 4},
        ]
    )
    result = allocate(0, estimates, blocks)
    assert result.vector[0][0] == 0


def test_iterations_reported():
    blocks = make_blocks(8)
    estimates = make_estimates([{"rtt": 0.05}, {"rtt": 0.5}])
    result = allocate(1, estimates, blocks)
    assert result.iterations >= 1


def test_unknown_pending_subflow_rejected():
    with pytest.raises(ValueError):
        allocate(9, make_estimates([{}]), make_blocks(1))


def test_symbol_larger_than_mss_rejected():
    estimates = make_estimates([{}])
    with pytest.raises(ValueError):
        allocate_packet(
            pending_subflow_id=0,
            estimates=estimates,
            blocks=make_blocks(1),
            loss_rate_of=loss_of(estimates),
            mss=10,
            symbol_wire_size=34,
            margin=MARGIN,
        )


# ----------------------------------------------------------------------
# Greedy ablation allocator.
# ----------------------------------------------------------------------
def test_greedy_ignores_other_flows():
    blocks = make_blocks(1)
    estimates = make_estimates(
        [
            {"rtt": 0.05, "window_space": 100},
            {"rtt": 1.0, "window_space": 4},
        ]
    )
    result = allocate(1, estimates, blocks, fn=allocate_packet_greedy)
    # Greedy gives the urgent block to the slow flow anyway.
    assert not result.is_empty()
    assert result.vector[0][0] == 0


def test_greedy_respects_r1():
    blocks = make_blocks(2)
    blocks[0].k_bar = blocks[0].k + int(MARGIN) + 1
    estimates = make_estimates([{}])
    result = allocate(0, estimates, blocks, fn=allocate_packet_greedy)
    assert result.vector[0][0] == 1


# ----------------------------------------------------------------------
# Optimised vs reference equivalence (property).
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_property_optimised_matches_reference(data):
    rng = random.Random(data.draw(st.integers(min_value=0, max_value=2**31)))
    n_flows = rng.randint(1, 4)
    n_blocks = rng.randint(0, 10)
    spec = [
        {
            "rtt": rng.uniform(0.01, 1.0),
            "rto": rng.uniform(1.0, 3.0) * 0.5,
            "loss": rng.uniform(0.0, 0.5),
            "window_space": rng.randint(0, 6),
            "tau": rng.uniform(0.0, 0.3),
        }
        for __ in range(n_flows)
    ]
    estimates = make_estimates(spec)
    blocks = make_blocks(n_blocks, k=rng.choice([8, 32, 64]))
    for block in blocks:
        block.k_bar = rng.randint(0, block.k)
        for subflow_id in range(n_flows):
            if rng.random() < 0.5:
                block.record_sent(subflow_id, rng.randint(0, 20), now=0.0)
    pending = rng.randrange(n_flows)
    fast = allocate(pending, estimates, blocks, fn=allocate_packet)
    reference = allocate(pending, estimates, blocks, fn=allocate_packet_reference)
    assert fast.vector == reference.vector


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_property_packet_always_fits_mss_and_respects_order(seed):
    rng = random.Random(seed)
    estimates = make_estimates(
        [
            {
                "rtt": rng.uniform(0.01, 0.5),
                "loss": rng.uniform(0.0, 0.4),
                "window_space": rng.randint(0, 8),
            }
            for __ in range(rng.randint(1, 3))
        ]
    )
    blocks = make_blocks(rng.randint(1, 8), k=32)
    for block in blocks:
        block.k_bar = rng.randint(0, 40)
    result = allocate(rng.randrange(len(estimates)), estimates, blocks)
    assert result.total_symbols * WIRE <= MSS
    block_ids = [block_id for block_id, __ in result.vector]
    assert block_ids == sorted(block_ids)
    counts = [count for __, count in result.vector]
    assert all(count > 0 for count in counts)
