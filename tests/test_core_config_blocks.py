"""Unit tests for FMTCP configuration and sender-side block state."""

import math

import pytest

from repro.core.blocks import BlockManager, PendingBlock
from repro.core.config import FmtcpConfig
from repro.workloads.sources import BulkSource


# ----------------------------------------------------------------------
# Config.
# ----------------------------------------------------------------------
def test_default_config_derived_values():
    config = FmtcpConfig()
    assert config.block_bytes == 256 * 32
    assert config.symbol_wire_size == 34
    assert config.symbols_per_packet == 1400 // 34
    assert config.completeness_margin == pytest.approx(math.log2(1000))


def test_config_validation():
    with pytest.raises(ValueError):
        FmtcpConfig(symbols_per_block=0)
    with pytest.raises(ValueError):
        FmtcpConfig(symbol_size=0)
    with pytest.raises(ValueError):
        FmtcpConfig(delta_hat=0.0)
    with pytest.raises(ValueError):
        FmtcpConfig(delta_hat=1.0)
    with pytest.raises(ValueError):
        FmtcpConfig(coding="quantum")
    with pytest.raises(ValueError):
        FmtcpConfig(allocation="magic")
    with pytest.raises(ValueError):
        FmtcpConfig(symbol_size=2000, mss=1400)


# ----------------------------------------------------------------------
# PendingBlock: Eq. (8) and Definitions 2-4.
# ----------------------------------------------------------------------
def loss_zero(subflow_id):
    return 0.0


def test_k_tilde_counts_acked_and_inflight():
    block = PendingBlock(block_id=0, k=10, data_bytes=100)
    block.k_bar = 3
    block.record_sent(subflow_id=0, count=4, now=1.0)
    block.record_sent(subflow_id=1, count=2, now=1.1)
    # Eq. 8 with p0 = 0.5, p1 = 0: 3 + 4*0.5 + 2*1.0 = 7
    loss = {0: 0.5, 1: 0.0}
    assert block.k_tilde(lambda sf: loss[sf]) == pytest.approx(7.0)


def test_expected_failure_uses_eq2():
    block = PendingBlock(block_id=0, k=4, data_bytes=16)
    block.k_bar = 4
    assert block.expected_failure(loss_zero) == 1.0  # exactly k
    block.k_bar = 6
    assert block.expected_failure(loss_zero) == pytest.approx(0.25)


def test_delta_completeness_margin_form():
    block = PendingBlock(block_id=0, k=10, data_bytes=100)
    margin = math.log2(100)  # delta_hat = 0.01
    block.k_bar = 10 + 7
    assert block.is_delta_complete(loss_zero, margin)
    block.k_bar = 10 + 6
    assert not block.is_delta_complete(loss_zero, margin)


def test_record_resolved_never_goes_negative():
    block = PendingBlock(block_id=0, k=4, data_bytes=16)
    block.record_sent(0, 3, now=0.0)
    block.record_resolved(0, 5)
    assert block.in_flight_total() == 0


def test_first_tx_timestamp_set_once():
    block = PendingBlock(block_id=0, k=4, data_bytes=16)
    block.record_sent(0, 1, now=2.0)
    block.record_sent(0, 1, now=5.0)
    assert block.first_tx_at == 2.0


# ----------------------------------------------------------------------
# BlockManager.
# ----------------------------------------------------------------------
def make_manager(total_bytes=None, **config_kwargs):
    config = FmtcpConfig(**config_kwargs)
    return BlockManager(config, BulkSource(total_bytes)), config


def test_replenish_fills_to_limit():
    manager, config = make_manager()
    manager.replenish()
    assert len(manager.pending_blocks) == config.max_pending_blocks
    assert [block.block_id for block in manager.pending_blocks] == list(
        range(config.max_pending_blocks)
    )


def test_blocks_are_full_sized_from_bulk_source():
    manager, config = make_manager()
    manager.replenish()
    block = manager.pending_blocks[0]
    assert block.k == config.symbols_per_block
    assert block.data_bytes == config.block_bytes


def test_partial_final_block_gets_smaller_k():
    # One full block plus 100 trailing bytes of data.
    config = FmtcpConfig()
    manager = BlockManager(config, BulkSource(config.block_bytes + 100))
    manager.replenish()
    assert len(manager.pending_blocks) == 2
    tail = manager.pending_blocks[1]
    assert tail.data_bytes == 100
    assert tail.k == -(-100 // config.symbol_size)


def test_exhausted_source_stops_replenishing():
    config = FmtcpConfig()
    manager = BlockManager(config, BulkSource(config.block_bytes * 2))
    manager.replenish()
    assert len(manager.pending_blocks) == 2
    assert manager.source_exhausted


def test_mark_decoded_retires_block():
    manager, config = make_manager()
    manager.replenish()
    retired = manager.mark_decoded(0)
    assert retired is not None and retired.decoded
    assert manager.block_by_id(0) is None
    assert manager.blocks_completed == 1
    # Replenish pulls a fresh block to fill the hole.
    manager.replenish()
    assert len(manager.pending_blocks) == config.max_pending_blocks


def test_mark_decoded_unknown_id_is_noop():
    manager, __ = make_manager()
    manager.replenish()
    assert manager.mark_decoded(999) is None


def test_update_k_bar_is_monotone_max():
    manager, __ = make_manager()
    manager.replenish()
    manager.update_k_bar(0, 5)
    manager.update_k_bar(0, 3)  # stale report must not regress
    assert manager.block_by_id(0).k_bar == 5


def test_real_coding_mode_attaches_encoders():
    config = FmtcpConfig(coding="real", max_pending_blocks=2)
    manager = BlockManager(config, BulkSource())
    manager.replenish()
    assert all(block.encoder is not None for block in manager.pending_blocks)
    symbol = manager.pending_blocks[0].encoder.next_symbol()
    assert symbol.coeff > 0
